"""CI benchmark harness: a pinned fast subset with stable JSON output.

Runs a fixed set of scenarios — the DES-core microbenchmarks from
``bench_engine``, the uncontended lock-primitive costs from
``bench_lock_primitives``, the observability overhead probe from
``bench_obs``, and one fig5-style sweep cell — each repeated
``--repeats`` times, and writes the medians to ``BENCH_ci.json`` —
plus a ``flight_overhead`` entry (note count, profiled share, paired
wall delta) that the regression script gates at <3% recorder cost.

This is *not* pytest-benchmark: CI needs a dependency-light harness
whose output schema is stable enough to diff against a committed
baseline (``scripts/check_bench_regression.py`` fails the build on a
>20% median regression).  The pytest-benchmark suite remains the tool
for interactive, statistically careful measurement.

Usage::

    PYTHONPATH=src python benchmarks/ci_bench.py --out BENCH_ci.json
    PYTHONPATH=src python scripts/check_bench_regression.py \\
        --baseline benchmarks/baselines/BENCH_ci.json --current BENCH_ci.json

Re-baselining (after an intentional perf change, on the machine class
that runs the gate)::

    PYTHONPATH=src python benchmarks/ci_bench.py --repeats 9 \\
        --out benchmarks/baselines/BENCH_ci.json
    # commit the new baseline together with the change that moved it
"""

from __future__ import annotations

import argparse
import cProfile
import gc
import json
import os
import platform
import pstats
import statistics
import sys
import time

from repro.cluster import Cluster
from repro.locks import make_lock
from repro.memory import MemoryRegion
from repro.obs import ObsConfig
from repro.sim import Environment, Resource, core_info
from repro.workload.runner import run_workload
from repro.workload.spec import WorkloadSpec

SCHEMA = "alock-bench-ci/1"


# -- pinned scenarios ------------------------------------------------------
def event_dispatch() -> int:
    env = Environment()

    def proc():
        for _ in range(2000):
            yield env.timeout(1)

    env.process(proc())
    env.run()
    return env.event_count


def resource_contention() -> int:
    env = Environment()
    res = Resource(env, capacity=1)

    def proc():
        for _ in range(100):
            yield from res.serve(5)

    for _ in range(10):
        env.process(proc())
    env.run()
    return res.total_served


def watcher_chain() -> int:
    env = Environment()
    region = MemoryRegion(env, 0, 4096)

    def ponger():
        for i in range(500):
            yield region.watch(64)
            region.write(72, i)

    def pinger():
        for i in range(500):
            region.write(64, i)
            yield region.watch(72)

    env.process(ponger())
    env.process(pinger())
    env.run()
    return region.local_writes


def verb_round_trips() -> int:
    cluster = Cluster(2, audit="off")
    ctx = cluster.thread_ctx(0, 0)
    ptr = cluster.alloc_on(1, 64)

    def proc():
        for i in range(200):
            yield from ctx.r_cas(ptr, i, i + 1)

    cluster.env.process(proc())
    cluster.run()
    return cluster.network.verb_counts["rCAS"]


def _lock_cycle(kind: str, local: bool, cycles: int) -> int:
    cluster = Cluster(2, audit="off")
    lock = make_lock(kind, cluster, 0)
    ctx = cluster.thread_ctx(0 if local else 1, 0)

    def proc():
        for _ in range(cycles):
            yield from lock.lock(ctx)
            yield from lock.unlock(ctx)

    cluster.env.process(proc())
    cluster.run()
    return cycles


def alock_local_cycle() -> int:
    return _lock_cycle("alock", local=True, cycles=500)


def alock_remote_cycle() -> int:
    return _lock_cycle("alock", local=False, cycles=100)


def mcs_local_cycle() -> int:
    return _lock_cycle("mcs", local=True, cycles=100)


def obs_overhead_run() -> int:
    spec = WorkloadSpec(
        n_nodes=5, threads_per_node=4, n_locks=20, locality_pct=90.0,
        ops_per_thread=30, cs_ns=500.0, seed=17, lock_kind="alock",
        audit="off")
    result = run_workload(spec, obs=ObsConfig(spans=True, metrics=True))
    return result.measured_ops


def engine_dense_ticks() -> int:
    """Calendar-queue best case: wide same-tick fan-in.

    200 processes all sleep to the *same* future tick, 20 rounds — each
    tick pops as one 200-entry batch, so the per-event queue cost is a
    slice of a sorted bucket rather than 200 heap sift-downs.
    """
    env = Environment()

    def proc():
        for round_no in range(1, 21):
            yield env.timeout(round_no * 1000 - env.now)

    for _ in range(200):
        env.process(proc())
    env.run()
    return env.event_count


def engine_sparse_timers() -> int:
    """Calendar-queue adversarial case: one outstanding timer per
    process, staggered so no two events ever share a tick.  Exercises
    the singleton-bucket run loop and the bucket-shell re-arm path."""
    env = Environment()

    def proc(offset: int):
        for _ in range(40):
            yield env.timeout(97 + offset)

    for i in range(100):
        env.process(proc(i))
    env.run()
    return env.event_count


def single_cell() -> int:
    spec = WorkloadSpec(
        n_nodes=5, threads_per_node=4, n_locks=100, locality_pct=90.0,
        lock_kind="alock", warmup_ns=100_000.0, measure_ns=400_000.0,
        seed=0, audit="off")
    return run_workload(spec).measured_ops


# -- flight-recorder overhead probe ---------------------------------------
def flight_overhead_probe(profile_runs: int = 3, paired_rounds: int = 4) -> dict:
    """Measure the always-on flight recorder's cost on the obs workload.

    The gated number is the *profiled share*: the fraction of total
    cProfile time spent inside ``FlightRecorder.note`` over
    ``profile_runs`` flight-on runs.  A within-run ratio is the only
    estimator stable enough for a <3% budget on shared CI runners —
    paired wall-clock deltas have a null (off-vs-off) distribution whose
    medians span roughly ±6% on such boxes, so they are recorded here
    purely as context (``paired_wall_delta_pct``), never gated.

    ``note_calls_per_run`` is fully deterministic for a fixed spec and
    is the early-warning number: someone instrumenting a poll loop shows
    up as a call-count jump long before any timer can prove it.
    """
    spec = WorkloadSpec(
        n_nodes=5, threads_per_node=4, n_locks=20, locality_pct=90.0,
        ops_per_thread=30, cs_ns=500.0, seed=17, lock_kind="alock",
        audit="off")

    run_workload(spec, flight=True)  # warm imports/caches
    run_workload(spec, flight=False)

    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(profile_runs):
        run_workload(spec, flight=True)
    profiler.disable()
    stats = pstats.Stats(profiler)
    note_cum = 0.0
    note_calls = 0
    for (filename, _line, name), (_cc, nc, _tt, ct, _callers) in stats.stats.items():
        if name == "note" and filename.endswith("flight.py"):
            note_cum += ct
            note_calls += nc
    share_pct = 100.0 * note_cum / stats.total_tt if stats.total_tt else 0.0

    def timed(flight: bool) -> float:
        t0 = time.process_time()
        run_workload(spec, flight=flight)
        return time.process_time() - t0

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        ratios = []
        for _ in range(paired_rounds):
            a_on, a_off = timed(True), timed(False)   # ABBA interleave
            b_off, b_on = timed(False), timed(True)   # cancels drift/order bias
            ratios.append((a_on + b_on) / (a_off + b_off))
    finally:
        if gc_was_enabled:
            gc.enable()

    return {
        "note_calls_per_run": note_calls // profile_runs,
        "profiled_share_pct": round(share_pct, 3),
        "paired_wall_delta_pct": round(
            100.0 * (statistics.median(ratios) - 1.0), 2),
        "profile_runs": profile_runs,
        "paired_rounds": paired_rounds,
    }


SCENARIOS = {
    "event_dispatch": event_dispatch,
    "resource_contention": resource_contention,
    "watcher_chain": watcher_chain,
    "verb_round_trips": verb_round_trips,
    "engine_dense_ticks": engine_dense_ticks,
    "engine_sparse_timers": engine_sparse_timers,
    "alock_local_cycle": alock_local_cycle,
    "alock_remote_cycle": alock_remote_cycle,
    "mcs_local_cycle": mcs_local_cycle,
    "obs_overhead_run": obs_overhead_run,
    "single_cell": single_cell,
}


def measure(fn, repeats: int) -> dict:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return {
        "median_s": statistics.median(times),
        "min_s": min(times),
        "repeats": repeats,
        "runs_s": [round(t, 6) for t in times],
    }


def run_suite(repeats: int, only=None) -> dict:
    results = {}
    for name, fn in SCENARIOS.items():
        if only and name not in only:
            continue
        fn()  # warm imports/caches outside the timed region
        results[name] = measure(fn, repeats)
        print(f"  {name}: median {results[name]['median_s'] * 1e3:.1f} ms",
              file=sys.stderr)
    payload = {
        "schema": SCHEMA,
        "hardware": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        # which event core served this run (pure vs compiled legs must
        # never be compared against each other's baselines)
        "core": core_info(),
        "benchmarks": results,
    }
    if only is None or "flight_overhead" in only:
        payload["flight_overhead"] = flight_overhead_probe()
        fo = payload["flight_overhead"]
        print(f"  flight_overhead: {fo['note_calls_per_run']} notes/run, "
              f"profiled share {fo['profiled_share_pct']:.2f}%, "
              f"paired wall delta {fo['paired_wall_delta_pct']:+.1f}%",
              file=sys.stderr)
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_ci.json")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed runs per scenario (median is compared)")
    parser.add_argument("--only", nargs="*", default=None,
                        help=f"subset of scenarios ({', '.join(SCENARIOS)})")
    args = parser.parse_args(argv)
    payload = run_suite(args.repeats, set(args.only) if args.only else None)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(payload['benchmarks'])} scenario medians to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
