"""Benchmark + shape check for paper Table 1 (atomicity matrix)."""

from conftest import run_once

from repro.experiments import run_experiment


def test_table1_matrix(benchmark, experiment_cache):
    result = run_once(benchmark, run_experiment, "table1", scale="small")
    experiment_cache["table1"] = result
    assert result.all_shapes_hold, result.shape_checks
    assert len(result.rows) == 9
    unsafe = {(r["local_op"], r["remote_op"])
              for r in result.rows if r["atomic"] == "No"}
    assert unsafe == {("Write", "rCAS"), ("RMW", "rCAS")}
    benchmark.extra_info["cells_checked"] = len(result.rows)
