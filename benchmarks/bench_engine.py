"""Microbenchmarks of the simulation substrate itself.

These are conventional pytest-benchmark measurements (many rounds):
event throughput of the DES core, resource queueing, memory watchers,
and verb round trips.  They bound the cost of every simulated nanosecond
and catch engine regressions that would silently stretch experiment
wall-clock times.
"""

from repro.cluster import Cluster
from repro.memory import MemoryRegion
from repro.memory.pointer import pack_ptr
from repro.sim import Environment, Resource


def test_event_dispatch_rate(benchmark):
    """Raw timeout scheduling/dispatch throughput."""

    def run():
        env = Environment()

        def proc():
            for _ in range(2000):
                yield env.timeout(1)

        env.process(proc())
        env.run()
        return env.event_count

    events = benchmark(run)
    assert events >= 2000


def test_resource_contention_dispatch(benchmark):
    """FIFO resource with a deep queue (the NIC hot path)."""

    def run():
        env = Environment()
        res = Resource(env, capacity=1)

        def proc():
            for _ in range(100):
                yield from res.serve(5)

        for _ in range(10):
            env.process(proc())
        env.run()
        return res.total_served

    served = benchmark(run)
    assert served == 1000


def test_watcher_wakeup_chain(benchmark):
    """Ping-pong through memory watchers (the MCS hand-off path)."""

    def run():
        env = Environment()
        region = MemoryRegion(env, 0, 4096)

        def ponger():
            for i in range(500):
                yield region.watch(64)
                region.write(72, i)

        def pinger():
            for i in range(500):
                region.write(64, i)
                yield region.watch(72)

        env.process(ponger())
        env.process(pinger())
        env.run()
        return region.local_writes

    writes = benchmark(run)
    assert writes == 1000


def test_verb_round_trips(benchmark):
    """End-to-end rCAS round trips through NIC pipelines + fabric."""

    def run():
        cluster = Cluster(2, audit="off")
        ctx = cluster.thread_ctx(0, 0)
        ptr = cluster.alloc_on(1, 64)

        def proc():
            for i in range(200):
                yield from ctx.r_cas(ptr, i, i + 1)

        cluster.env.process(proc())
        cluster.run()
        return cluster.network.verb_counts["rCAS"]

    count = benchmark(run)
    assert count == 200


def test_alock_local_acquire_release(benchmark):
    """The ALock local fast path, the op the paper's 100%-locality
    results are made of."""
    from repro.locks import ALock

    def run():
        cluster = Cluster(1, audit="off")
        lock = ALock(cluster, 0)
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            for _ in range(500):
                yield from lock.lock(ctx)
                yield from lock.unlock(ctx)

        cluster.env.process(proc())
        cluster.run()
        return lock.acquisitions

    assert benchmark(run) == 500
