"""Benchmarks of the KV-store application over different lock kinds.

The end-to-end payoff measurement: for a locality-heavy data-store
workload (the paper's motivating use case), how much application-level
throughput does the lock choice buy?
"""

from conftest import run_once

from repro.cluster import Cluster
from repro.kvstore import KVConfig, ShardedKVStore


def run_store_workload(lock_kind: str, *, n_nodes=3, clients=4,
                       ops_per_client=60, locality=0.9, seed=8) -> dict:
    cluster = Cluster(n_nodes, seed=seed, audit="off")
    store = ShardedKVStore(cluster, KVConfig(n_buckets=30,
                                             lock_kind=lock_kind))
    env = cluster.env

    def client(node, tid):
        ctx = cluster.thread_ctx(node, tid)
        rng = cluster.rng.get("bench-kv", node, tid)
        my_keys = store.local_keys(node, 4)
        for i in range(ops_per_client):
            local = rng.random() < locality
            if local:
                key = my_keys[i % 4]
            else:
                other = (node + 1 + int(rng.integers(0, n_nodes - 1))) % n_nodes
                key = store.local_keys(other, 4)[i % 4]
            # read-heavy mix, typical for KV serving
            if rng.random() < 0.75:
                yield from store.get(ctx, key)
            else:
                yield from store.add(ctx, key, 1)

    procs = [env.process(client(n, t))
             for n in range(n_nodes) for t in range(clients)]
    cluster.run()
    assert all(p.ok for p in procs)
    total_ops = n_nodes * clients * ops_per_client
    return {
        "ops_per_sec": total_ops / (env.now * 1e-9),
        "sim_ns": env.now,
        "adds": store.puts,
        "total_value": store.total_value(),
        "audit": store.audit(),
    }


def test_kvstore_alock_vs_baselines(benchmark):
    """Application-level speedup from the lock choice at 90% locality.

    A finding worth keeping honest: the application gap (~1.4x over the
    spinlock, ~2x over MCS) is much smaller than the lock-primitive gap
    (4-6x), because a *remote* client's critical section contains remote
    data reads/writes (~11 us held) that dwarf lock overhead and stall
    local clients queued on the same bucket.  This is exactly why
    RDMA stores fight for data locality and lock-free reads — the
    paper's locality axis, seen from the application side."""

    def run():
        return {kind: run_store_workload(kind)
                for kind in ("alock", "spinlock", "mcs", "rpc")}

    results = run_once(benchmark, run)
    for kind, r in results.items():
        assert r["audit"] == [], kind
        assert r["total_value"] == r["adds"]  # every += under the lock
    tput = {k: r["ops_per_sec"] for k, r in results.items()}
    assert tput["alock"] > 1.25 * tput["spinlock"]
    assert tput["alock"] > 1.8 * tput["mcs"]
    benchmark.extra_info.update(
        {k: round(v) for k, v in tput.items()})


def test_kvstore_transfer_stress(benchmark):
    """Cross-node transfers (nested ALock acquisitions) at volume:
    conservation + checksum witnesses hold, and the run completes
    without deadlock (global bucket ordering)."""

    def run():
        cluster = Cluster(3, seed=5, audit="off")
        store = ShardedKVStore(cluster, KVConfig(n_buckets=30))
        env = cluster.env
        keys = [store.local_keys(n, 2)[i] for n in range(3) for i in range(2)]

        def seed_money():
            ctx = cluster.thread_ctx(0, 0)
            for key in keys:
                yield from store.put(ctx, key, 10_000)

        p = env.process(seed_money())
        cluster.run()
        assert p.ok
        start_total = store.total_value()

        def mover(node, tid):
            ctx = cluster.thread_ctx(node, tid)
            rng = cluster.rng.get("mover", node, tid)
            for _ in range(40):
                src, dst = rng.choice(len(keys), size=2, replace=False)
                yield from store.transfer(ctx, keys[src], keys[dst], 7)

        procs = [env.process(mover(n, t)) for n in range(3) for t in range(2)]
        cluster.run()
        assert all(p.ok for p in procs)
        return start_total, store.total_value(), store.audit(), store.transfers

    start_total, end_total, audit, transfers = run_once(benchmark, run)
    assert end_total == start_total
    assert audit == []
    assert transfers == 240
    benchmark.extra_info["transfers"] = transfers
