"""Benchmarks of the related-work alternatives against ALock.

Turns the paper's §1/§7 dismissals into measurements:

* the filter lock and bakery pay O(n) remote operations and remote
  spinning — orders of magnitude behind ALock even uncontended;
* the RPC service is correct and simple, but every op pays two message
  traversals and serializes on the server CPU;
* on a CXL-like coherent fabric the naive mixed-CAS lock becomes both
  correct and competitive — the future §7 sketches.
"""

from conftest import run_once

from repro.cluster import Cluster
from repro.locks import make_lock
from repro.locks.extensions.coherent import cxl_config
from repro.workload import WorkloadSpec, run_workload


def _uncontended_sim_ns(kind, cluster=None, **options):
    cluster = cluster or Cluster(2, audit="off")
    lock = make_lock(kind, cluster, 1, **options)
    ctx = cluster.thread_ctx(0, 0)
    env = cluster.env

    def proc():
        yield from lock.lock(ctx)  # warm QPs / slots
        yield from lock.unlock(ctx)
        start = env.now
        yield from lock.lock(ctx)
        yield from lock.unlock(ctx)
        return env.now - start

    p = env.process(proc())
    cluster.run()
    assert p.ok, p.value
    return p.value


def test_related_work_uncontended_costs(benchmark):
    """Single remote client, no contention: the op-count asymmetry the
    paper argues from first principles."""

    def run():
        return {
            "alock": _uncontended_sim_ns("alock"),
            "rpc": _uncontended_sim_ns("rpc"),
            "filter4": _uncontended_sim_ns("filter", max_slots=4),
            "filter8": _uncontended_sim_ns("filter", max_slots=8),
            "bakery8": _uncontended_sim_ns("bakery", max_slots=8),
        }

    costs = run_once(benchmark, run)
    # filter/bakery pay O(n) verbs: far slower than ALock, growing with n
    assert costs["filter4"] > 2 * costs["alock"]
    assert costs["filter8"] > 1.5 * costs["filter4"]
    assert costs["bakery8"] > 2 * costs["alock"]
    # RPC pays two traversals vs ALock's swap+peterson: same order, and
    # it cannot beat the one-sided design
    assert costs["rpc"] > 0.5 * costs["alock"]
    benchmark.extra_info.update({k: round(v) for k, v in costs.items()})


def test_related_work_contended_throughput(benchmark):
    """Contended table, scaling threads: the filter/bakery straw men are
    orders of magnitude behind; RPC keeps up at low thread counts (its
    best case: cheap local IPC, idle server CPU) but flatlines once the
    per-node server CPU saturates, while ALock keeps scaling."""
    base = WorkloadSpec(n_nodes=3, n_locks=12, locality_pct=95.0,
                        warmup_ns=100_000, measure_ns=400_000, audit="off",
                        ops_per_thread=0)

    def run():
        out = {}
        for kind, options in (("alock", {}), ("rpc", {}),
                              ("filter", {"max_slots": 8}),
                              ("bakery", {"max_slots": 8})):
            spec = base.with_(lock_kind=kind, lock_options=options,
                              threads_per_node=8)
            out[kind] = run_workload(spec).throughput_ops_per_sec
        out["rpc@4"] = run_workload(base.with_(
            lock_kind="rpc", threads_per_node=4)).throughput_ops_per_sec
        out["alock@4"] = run_workload(base.with_(
            lock_kind="alock", threads_per_node=4)).throughput_ops_per_sec
        return out

    tput = run_once(benchmark, run)
    assert tput["alock"] > 2 * tput["rpc"]
    assert tput["alock"] > 10 * tput["filter"]
    assert tput["alock"] > 10 * tput["bakery"]
    # RPC scaling stalls on the server CPU; ALock keeps scaling
    assert tput["rpc"] < 1.25 * tput["rpc@4"]
    assert tput["alock"] > 1.25 * tput["alock@4"]
    benchmark.extra_info.update({k: round(v) for k, v in tput.items()})


def test_cxl_future_mixed_cas_competitive(benchmark):
    """§7's CXL outlook: with coherent atomics the one-word lock gets
    within striking distance of ALock, shrinking the asymmetric design's
    advantage — while staying incorrect on plain RDMA."""

    def run():
        cxl_mixed = _uncontended_sim_ns(
            "mixedcas", Cluster(2, config=cxl_config(), audit="off"))
        cxl_alock = _uncontended_sim_ns(
            "alock", Cluster(2, config=cxl_config(), audit="off"))
        rdma_alock = _uncontended_sim_ns("alock")
        return cxl_mixed, cxl_alock, rdma_alock

    cxl_mixed, cxl_alock, rdma_alock = run_once(benchmark, run)
    # on CXL the naive lock is within ~3x of ALock (vs ~never on RDMA,
    # where it is incorrect)
    assert cxl_mixed < 3 * cxl_alock
    # and coherent fabrics shrink remote costs across the board
    assert cxl_alock < rdma_alock
    benchmark.extra_info.update({
        "cxl_mixedcas_ns": round(cxl_mixed),
        "cxl_alock_ns": round(cxl_alock),
        "rdma_alock_ns": round(rdma_alock),
    })
