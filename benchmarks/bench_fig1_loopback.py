"""Benchmark + shape checks for paper Fig. 1 (loopback saturation).

Paper shape: single-node RDMA spinlock throughput rises with threads,
peaks early, then *declines* as loopback drains PCIe and the RX buffer
accumulates.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig1_loopback_saturation(benchmark):
    result = run_once(benchmark, run_experiment, "fig1", scale="small")
    assert result.all_shapes_hold, result.shape_checks

    threads = [r["threads"] for r in result.rows]
    tput = [r["throughput_ops"] for r in result.rows]
    peak_idx = max(range(len(tput)), key=tput.__getitem__)
    # peak strictly inside the sweep, and a real decline follows
    assert 0 < peak_idx < len(tput) - 1
    assert tput[-1] < 0.75 * tput[peak_idx]
    # rising edge up to the peak
    assert all(tput[i] < tput[i + 1] for i in range(peak_idx))
    # congestion evidence: RX utilization ~1 and queues at the high end
    assert result.rows[-1]["rx_utilization"] > 0.9
    benchmark.extra_info["peak_threads"] = threads[peak_idx]
    benchmark.extra_info["peak_throughput_ops"] = tput[peak_idx]
    benchmark.extra_info["decline_ratio"] = round(tput[-1] / tput[peak_idx], 3)
