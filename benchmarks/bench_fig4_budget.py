"""Benchmark + shape checks for paper Fig. 4 (budget sensitivity)."""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig4_budget_grid(benchmark):
    result = run_once(benchmark, run_experiment, "fig4", scale="small")
    assert result.all_shapes_hold, result.shape_checks
    by_pair = {(r["remote_budget"], r["local_budget"]): r for r in result.rows}
    # the full grid was swept
    assert set(by_pair) == {(r, l) for r in (5, 10, 20) for l in (5, 10, 20)}
    # baseline is its own reference
    assert by_pair[(5, 5)]["speedup_vs_5_5_pct"] == 0.0
    # the paper's chosen configuration does not regress vs the baseline
    assert by_pair[(20, 5)]["speedup_vs_5_5_pct"] >= -1.0
    benchmark.extra_info["paper_choice_speedup_pct"] = \
        by_pair[(20, 5)]["speedup_vs_5_5_pct"]
