"""Benchmark of the schedule-exploration harness.

Measures exploration throughput (schedules/second) for the policies the
test suite leans on, plus the bug-hunt latencies for the three seeded
lock defects — the constants the mutation tests pin down ("found within
N schedules") should stay cheap enough to run in CI.
"""

from conftest import run_once

from repro.schedcheck import (
    LockScenario,
    enumerate_schedules,
    explore_random,
    replay,
    run_schedule,
    shrink_failure,
)

ALOCK_SMALL = LockScenario(lock_kind="alock", n_nodes=2, threads_per_node=2,
                           ops_per_thread=2, seed=5)


def test_schedcheck_random_walk_rate(benchmark):
    """Seeded random-walk schedules over the 4-client ALock scenario."""
    n = 20

    def run():
        return explore_random(ALOCK_SMALL, n, seed=11)

    report = run_once(benchmark, run)
    assert report.schedules_run == n and report.ok_count == n
    benchmark.extra_info["schedules_per_s"] = round(
        n / benchmark.stats["mean"], 1)
    benchmark.extra_info["distinct_executions"] = report.distinct_executions


def test_schedcheck_pct_rate(benchmark):
    """PCT priority schedules: same scenario, different policy cost."""
    n = 20

    def run():
        return explore_random(ALOCK_SMALL, n, seed=11, policy="pct")

    report = run_once(benchmark, run)
    assert report.ok_count == n


def test_schedcheck_dfs_enumeration(benchmark):
    """Bounded exhaustive enumeration over the first choice points."""

    def run():
        return enumerate_schedules(ALOCK_SMALL, max_schedules=24,
                                   max_choice_points=4)

    report = run_once(benchmark, run)
    assert report.schedules_run >= 1
    benchmark.extra_info["distinct_executions"] = report.distinct_executions


def test_schedcheck_replay_overhead(benchmark):
    """Replaying a recorded schedule costs one run, and reproduces the
    digest byte for byte."""
    recorded = explore_random(ALOCK_SMALL, 3, seed=7)
    probe = run_schedule(ALOCK_SMALL, None)

    def run():
        return replay(ALOCK_SMALL, probe.decisions)

    result = run_once(benchmark, run)
    assert result.digest == probe.digest
    assert recorded.schedules_run == 3


def test_schedcheck_bug_hunt_and_shrink(benchmark):
    """End-to-end hunt on the seeded MCS lost-wakeup: explore until the
    deadlock appears, then delta-debug the counterexample."""
    scenario = LockScenario(lock_kind="mcs", n_nodes=1, threads_per_node=3,
                            ops_per_thread=3, seed=0,
                            lock_options=(("bug", "lost_wakeup"),
                                          ("poll_interval_ns", 200.0)))

    def run():
        report = explore_random(scenario, 50, seed=1, stop_on_failure=True)
        shrunk = shrink_failure(scenario, report.first_failure)
        return report, shrunk

    report, shrunk = run_once(benchmark, run)
    assert report.first_failure is not None
    assert shrunk.size <= 25
    benchmark.extra_info["schedules_to_find"] = report.schedules_run
    benchmark.extra_info["shrink_replays"] = shrunk.replays_used
    benchmark.extra_info["shrunk_decisions"] = shrunk.size


def test_schedcheck_fleet_rate(benchmark):
    """Serial fleet throughput with coverage folding and candidate
    breeding on — the per-schedule overhead of steering over a bare
    explore_random loop."""
    from repro.schedcheck.fleet import FleetConfig, run_fleet

    n = 32
    config = FleetConfig(scenarios=(("alock_small", ALOCK_SMALL),),
                         budget=n, seed=11, cell_size=8, cells_per_round=2,
                         stop_on_find=False, shrink=False)

    def run():
        return run_fleet(config)

    report = run_once(benchmark, run)
    assert report.total_schedules == n
    s = report.scenarios[0]
    benchmark.extra_info["schedules_per_s"] = round(
        n / benchmark.stats["mean"], 1)
    benchmark.extra_info["novel_prefixes"] = s.coverage["prefixes_seen"]
    benchmark.extra_info["mutations_run"] = s.mut_run
