"""Spot checks at the paper's headline scale: 20 nodes x 12 threads.

The full `--scale paper` grid takes tens of minutes; these benches run
just the configurations behind the abstract's headline claims:

* high contention (20 locks): "ALock outperforms the MCS lock by up to
  29x and the spinlock by up to 24x";
* 100% locality: "up to 24x as many operations as the MCS lock and 22x
  as many as the spinlock";
* QP pressure: at 20 nodes the per-NIC queue-pair working set
  (12 threads x 19 peers, both directions) exceeds the QPC cache —
  thrashing is active exactly where the paper says it should be.
"""

from conftest import run_once

from repro.workload import WorkloadSpec, run_workload

BASE = WorkloadSpec(n_nodes=20, threads_per_node=12, n_locks=20,
                    locality_pct=90.0, warmup_ns=200_000,
                    measure_ns=800_000, audit="off")


def test_twenty_nodes_high_contention(benchmark):
    def run():
        return {kind: run_workload(BASE.with_(lock_kind=kind))
                for kind in ("alock", "spinlock", "mcs")}

    results = run_once(benchmark, run)
    tput = {k: r.throughput_ops_per_sec for k, r in results.items()}
    # headline class: ALock wins by large factors at 240 threads
    assert tput["alock"] >= 4 * tput["spinlock"]
    assert tput["alock"] >= 6 * tput["mcs"]
    benchmark.extra_info["alock_vs_spinlock"] = round(
        tput["alock"] / tput["spinlock"], 1)
    benchmark.extra_info["alock_vs_mcs"] = round(tput["alock"] / tput["mcs"], 1)


def test_twenty_nodes_full_locality(benchmark):
    spec = BASE.with_(locality_pct=100.0)

    def run():
        return {kind: run_workload(spec.with_(lock_kind=kind))
                for kind in ("alock", "spinlock", "mcs")}

    results = run_once(benchmark, run)
    tput = {k: r.throughput_ops_per_sec for k, r in results.items()}
    assert tput["alock"] >= 10 * tput["spinlock"]
    assert tput["alock"] >= 10 * tput["mcs"]
    # and ALock's traffic is NIC-free while the baselines are loopback-bound
    assert results["alock"].loopback_verbs == 0
    assert results["spinlock"].loopback_verbs > 0
    benchmark.extra_info["alock_vs_spinlock"] = round(
        tput["alock"] / tput["spinlock"], 1)
    benchmark.extra_info["alock_vs_mcs"] = round(tput["alock"] / tput["mcs"], 1)


def test_twenty_nodes_qpc_pressure_is_real(benchmark):
    """At 20 nodes the per-NIC QP working set (12x19 TX + 19x12 RX ≈ 456
    QPs) overwhelms the 256-entry QPC cache, while 5 nodes fit easily —
    the §2 scalability pitfall, localized.  Uses an uncontended all-
    remote workload: under contention the spinlock's retries hammer one
    QP back-to-back, which is cache-*friendly* and masks the thrashing
    (itself a finding worth keeping out of the headline measurement)."""
    spec = BASE.with_(lock_kind="spinlock", locality_pct=0.0, n_locks=1000)

    def run():
        from statistics import mean

        big = run_workload(spec)
        small = run_workload(spec.with_(n_nodes=5))
        miss_big = mean(n["qpc_miss_rate"] for n in big.nic_stats)
        miss_small = mean(n["qpc_miss_rate"] for n in small.nic_stats)
        return miss_big, miss_small

    miss_big, miss_small = run_once(benchmark, run)
    assert miss_big > 4 * miss_small
    assert miss_big > 0.15
    benchmark.extra_info["qpc_miss_20_nodes"] = round(miss_big, 3)
    benchmark.extra_info["qpc_miss_5_nodes"] = round(miss_small, 3)
