"""Benchmark + shape checks for paper Fig. 5 (throughput grid).

The experiment module already asserts the paper's shapes per panel
(ALock leads; >=4x at high contention; >=8x at 100% locality; ALock
scales with threads); this bench runs the grid at ``small`` scale and
re-asserts the headline factors across panels.
"""

import pytest
from conftest import run_once

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def fig5(request):
    cache = {}

    def runner(benchmark):
        if "result" not in cache:
            cache["result"] = run_once(benchmark, run_experiment, "fig5",
                                       scale="small")
        return cache["result"]

    return runner


def _ratio_at_top_threads(result, panel, a, b):
    rows = [r for r in result.rows if r["panel"] == panel
            and r["locality_pct"] in (90.0, 100.0)]
    top = max(r["threads_per_node"] for r in rows)
    tp = {r["lock"]: r["throughput_ops"] for r in rows
          if r["threads_per_node"] == top}
    return tp[a] / tp[b]


def test_fig5_grid_shapes(benchmark, fig5, experiment_cache):
    result = fig5(benchmark)
    experiment_cache["fig5"] = result
    assert result.all_shapes_hold, {
        k: v for k, v in result.shape_checks.items() if not v}
    # headline factors at the top thread count
    high_vs_spin = _ratio_at_top_threads(result, "a", "alock", "spinlock")
    high_vs_mcs = _ratio_at_top_threads(result, "a", "alock", "mcs")
    full_local_vs_spin = _ratio_at_top_threads(result, "d", "alock", "spinlock")
    full_local_vs_mcs = _ratio_at_top_threads(result, "d", "alock", "mcs")
    # paper: up to 29x/24x (20 nodes); at 5 nodes the gap is smaller but
    # must stay an order-of-magnitude class win
    assert high_vs_spin >= 4 and high_vs_mcs >= 4
    assert full_local_vs_spin >= 8 and full_local_vs_mcs >= 8
    benchmark.extra_info.update({
        "high_contention_alock_vs_spinlock": round(high_vs_spin, 1),
        "high_contention_alock_vs_mcs": round(high_vs_mcs, 1),
        "local100_alock_vs_spinlock": round(full_local_vs_spin, 1),
        "local100_alock_vs_mcs": round(full_local_vs_mcs, 1),
    })


def test_fig5_locality_scaling(benchmark, fig5):
    """The paper's §6.2 locality claim: ALock's low-contention throughput
    grows markedly from 85% -> 90% -> 95% locality."""
    result = fig5(benchmark)
    rows = [r for r in result.rows if r["panel"] == "c" and r["lock"] == "alock"]
    top = max(r["threads_per_node"] for r in rows)
    by_loc = {r["locality_pct"]: r["throughput_ops"] for r in rows
              if r["threads_per_node"] == top}
    assert by_loc[95.0] > by_loc[90.0] > by_loc[85.0]
    gain_90 = by_loc[90.0] / by_loc[85.0] - 1
    gain_95 = by_loc[95.0] / by_loc[90.0] - 1
    # paper: +40% and +75%; require the qualitative acceleration
    assert gain_90 > 0.05
    assert gain_95 > gain_90
    benchmark.extra_info["gain_85_to_90_pct"] = round(100 * gain_90, 1)
    benchmark.extra_info["gain_90_to_95_pct"] = round(100 * gain_95, 1)
