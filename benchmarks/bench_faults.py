"""Benchmarks of the fault-injection layer: throughput vs verb loss.

The paper measures a failure-free cluster; these benches quantify what
each lock gives back when the fabric misbehaves.  ALock's advantage
should *widen* under loss — it issues fewer remote verbs per operation,
so a fixed per-verb loss rate taxes it less — and the retransmission
harness itself must be free when no plan is armed.
"""

from conftest import run_once

from repro.faults import FaultPlan
from repro.workload import WorkloadSpec, run_workload

BASE = WorkloadSpec(n_nodes=3, threads_per_node=4, n_locks=100,
                    locality_pct=90.0, warmup_ns=100_000,
                    measure_ns=400_000, audit="off")
RETRY = dict(retry_timeout_ns=25_000.0, retry_backoff=2.0, retry_limit=8)


def test_fault_throughput_degradation(benchmark):
    """Sweep loss rate for each lock: throughput falls with loss, retries
    climb, and ALock degrades the least."""
    rates = (0.0, 0.01, 0.03)

    def run():
        out = {}
        for kind in ("alock", "spinlock", "mcs"):
            for rate in rates:
                plan = FaultPlan(verb_loss_rate=rate, **RETRY) if rate else None
                res = run_workload(BASE.with_(lock_kind=kind, faults=plan))
                out[kind, rate] = (res.throughput_ops_per_sec, res.retry_count)
        return out

    results = run_once(benchmark, run)
    worst = rates[-1]
    for kind in ("alock", "spinlock", "mcs"):
        tput0, _ = results[kind, 0.0]
        tputw, retw = results[kind, worst]
        assert tputw < tput0, f"{kind}: loss should cost throughput"
        assert tputw > 0.3 * tput0, f"{kind}: retries should mask the drops"
        assert retw > 0, f"{kind}: lossy run must report retransmissions"
    retained = {k: results[k, worst][0] / results[k, 0.0][0]
                for k in ("alock", "spinlock", "mcs")}
    # fewer verbs per op -> a per-verb loss rate taxes ALock least
    assert retained["alock"] > retained["spinlock"]
    assert retained["alock"] > retained["mcs"]
    benchmark.extra_info.update(
        {f"{k}_retained_pct": round(v * 100) for k, v in retained.items()})


def test_zero_fault_plan_is_free(benchmark):
    """An inactive FaultPlan must not perturb the simulation at all."""

    def run():
        plain = run_workload(BASE)
        zero = run_workload(BASE.with_(faults=FaultPlan()))
        return plain, zero

    plain, zero = run_once(benchmark, run)
    assert plain.completed_ops == zero.completed_ops
    assert plain.measured_ops == zero.measured_ops
    assert (plain.latencies_ns == zero.latencies_ns).all()
    assert not zero.fault_stats
    benchmark.extra_info["ops"] = plain.completed_ops


def test_stall_recovery_detection(benchmark):
    """Holder stalls + lease monitor: the run degrades, reports lease
    expirations, and never deadlocks."""
    plan = FaultPlan(verb_loss_rate=0.005, holder_stall_rate=0.02,
                     holder_stall_ns=40_000.0, lease_ns=10_000.0, **RETRY)

    def run():
        healthy = run_workload(BASE)
        stalled = run_workload(BASE.with_(faults=plan))
        return healthy, stalled

    healthy, stalled = run_once(benchmark, run)
    assert 0 < stalled.throughput_ops_per_sec < healthy.throughput_ops_per_sec
    assert stalled.fault_stats["injected_cs_stalls"] > 0
    assert stalled.fault_stats["lease_expirations"] > 0
    assert stalled.fault_stats["degraded_locks"] > 0
    benchmark.extra_info.update({
        "lease_expirations": stalled.fault_stats["lease_expirations"],
        "tput_retained_pct": round(100 * stalled.throughput_ops_per_sec
                                   / healthy.throughput_ops_per_sec),
    })
