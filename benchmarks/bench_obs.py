"""Observability overhead benchmark.

Runs the same Fig. 5-style workload three ways — observability off,
spans only, spans + metrics — and records the wall-clock overhead of
each instrumented configuration relative to the off baseline in
``benchmark.extra_info``.  Also asserts the layer's two contracts:

* **Non-perturbation**: all three configurations report identical
  simulation results (ops, latency samples, sim-time window) — the
  instrumentation reads the sim clock but never advances it.
* **Coverage**: the instrumented run actually produced spans for every
  measured operation (the overhead number is of a *working* recorder).

``test_flight_overhead`` holds the *always-on* flight recorder (PR 8)
to the same contracts plus its <3% budget, gated on the profiled
within-run share of ``FlightRecorder.note`` — wall-clock pairing is
recorded but not asserted, because the off-vs-off null distribution on
shared runners spans several percent on its own.
"""

import cProfile
import pstats
import time

import numpy as np
from conftest import run_once

from repro.cluster import Cluster
from repro.locks import make_lock
from repro.obs import ObsConfig
from repro.workload.runner import run_workload
from repro.workload.spec import WorkloadSpec

#: The always-on recorder's budget, as a percent of profiled run time.
FLIGHT_BUDGET_PCT = 3.0

CONFIGS = {
    "off": None,
    "spans": ObsConfig(spans=True),
    "full": ObsConfig(spans=True, metrics=True),
}


def spec():
    return WorkloadSpec(
        n_nodes=5, threads_per_node=4, n_locks=20, locality_pct=90.0,
        ops_per_thread=30, cs_ns=500.0, seed=17, lock_kind="alock",
        audit="off")


def run_all():
    out = {}
    for name, obs in CONFIGS.items():
        t0 = time.perf_counter()
        res = run_workload(spec(), obs=obs)
        out[name] = (time.perf_counter() - t0, res)
    return out


def test_obs_overhead(benchmark):
    results = run_once(benchmark, run_all)
    base_s, base = results["off"]
    for name in ("spans", "full"):
        wall_s, res = results[name]
        benchmark.extra_info[f"{name}_overhead_pct"] = round(
            100.0 * (wall_s / base_s - 1.0), 1)
        # non-perturbation: identical simulation under instrumentation
        assert res.measured_ops == base.measured_ops
        assert res.window_ns == base.window_ns
        assert np.array_equal(np.asarray(res.latencies_ns),
                              np.asarray(base.latencies_ns))
    benchmark.extra_info["measured_ops"] = base.measured_ops
    # the off config records nothing; the instrumented ones record a
    # span tree covering every measured operation
    assert not base.spans
    full = results["full"][1]
    acquires = [s for s in full.spans
                if s.name == "lock.acquire" and s.attrs.get("outcome") == "ok"]
    assert len(acquires) >= full.measured_ops
    assert full.obs_metrics["network"]["verbs"]["rCAS"] > 0


def _profiled_note_share(runs: int = 3) -> tuple[float, int]:
    """(profiled share of ``note`` in percent, note calls per run)."""
    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(runs):
        run_workload(spec(), flight=True)
    profiler.disable()
    stats = pstats.Stats(profiler)
    note_cum = 0.0
    note_calls = 0
    for (filename, _line, name), (_cc, nc, _tt, ct, _cl) in stats.stats.items():
        if name == "note" and filename.endswith("flight.py"):
            note_cum += ct
            note_calls += nc
    return 100.0 * note_cum / stats.total_tt, note_calls // runs


def test_flight_overhead(benchmark):
    def run_pair():
        t0 = time.perf_counter()
        on = run_workload(spec(), flight=True)
        t1 = time.perf_counter()
        off = run_workload(spec(), flight=False)
        t2 = time.perf_counter()
        return (t1 - t0, on), (t2 - t1, off)

    (on_s, on), (off_s, off) = run_once(benchmark, run_pair)
    # informational only — see the module docstring for why this number
    # is never asserted against the budget
    benchmark.extra_info["flight_wall_delta_pct"] = round(
        100.0 * (on_s / off_s - 1.0), 1)

    # non-perturbation: the recorder reads the sim clock, never advances it
    assert on.measured_ops == off.measured_ops
    assert on.window_ns == off.window_ns
    assert np.array_equal(np.asarray(on.latencies_ns),
                          np.asarray(off.latencies_ns))

    # the budget gate: profiled within-run share of note(), plus the
    # deterministic call count (catches a newly instrumented poll loop)
    share_pct, calls_per_run = _profiled_note_share()
    benchmark.extra_info["flight_profiled_share_pct"] = round(share_pct, 2)
    benchmark.extra_info["flight_notes_per_run"] = calls_per_run
    assert calls_per_run > 0, "flight-on run recorded nothing"
    assert share_pct < FLIGHT_BUDGET_PCT, (
        f"flight recorder profiled share {share_pct:.2f}% exceeds the "
        f"{FLIGHT_BUDGET_PCT}% always-on budget")


def test_flight_coverage():
    """The recorder is on by default and actually sees the protocol."""
    cluster = Cluster(2, audit="off")
    assert cluster.flight is not None  # always on unless opted out
    lock = make_lock("alock", cluster, 0)
    ctx = cluster.thread_ctx(1, 0)  # remote cohort: exercises verbs too

    def proc():
        for _ in range(3):
            yield from lock.lock(ctx)
            yield from lock.unlock(ctx)

    cluster.env.process(proc())
    cluster.run()
    kinds = {e.kind for e in cluster.flight.window()}
    assert {"lock.acquired", "lock.released", "desc.begin",
            "verb.issue"} <= kinds
    # opting out leaves no ring and costs call sites one attribute test
    assert Cluster(2, audit="off", flight=False).flight is None
