"""Observability overhead benchmark.

Runs the same Fig. 5-style workload three ways — observability off,
spans only, spans + metrics — and records the wall-clock overhead of
each instrumented configuration relative to the off baseline in
``benchmark.extra_info``.  Also asserts the layer's two contracts:

* **Non-perturbation**: all three configurations report identical
  simulation results (ops, latency samples, sim-time window) — the
  instrumentation reads the sim clock but never advances it.
* **Coverage**: the instrumented run actually produced spans for every
  measured operation (the overhead number is of a *working* recorder).
"""

import time

import numpy as np
from conftest import run_once

from repro.obs import ObsConfig
from repro.workload.runner import run_workload
from repro.workload.spec import WorkloadSpec

CONFIGS = {
    "off": None,
    "spans": ObsConfig(spans=True),
    "full": ObsConfig(spans=True, metrics=True),
}


def spec():
    return WorkloadSpec(
        n_nodes=5, threads_per_node=4, n_locks=20, locality_pct=90.0,
        ops_per_thread=30, cs_ns=500.0, seed=17, lock_kind="alock",
        audit="off")


def run_all():
    out = {}
    for name, obs in CONFIGS.items():
        t0 = time.perf_counter()
        res = run_workload(spec(), obs=obs)
        out[name] = (time.perf_counter() - t0, res)
    return out


def test_obs_overhead(benchmark):
    results = run_once(benchmark, run_all)
    base_s, base = results["off"]
    for name in ("spans", "full"):
        wall_s, res = results[name]
        benchmark.extra_info[f"{name}_overhead_pct"] = round(
            100.0 * (wall_s / base_s - 1.0), 1)
        # non-perturbation: identical simulation under instrumentation
        assert res.measured_ops == base.measured_ops
        assert res.window_ns == base.window_ns
        assert np.array_equal(np.asarray(res.latencies_ns),
                              np.asarray(base.latencies_ns))
    benchmark.extra_info["measured_ops"] = base.measured_ops
    # the off config records nothing; the instrumented ones record a
    # span tree covering every measured operation
    assert not base.spans
    full = results["full"][1]
    acquires = [s for s in full.spans
                if s.name == "lock.acquire" and s.attrs.get("outcome") == "ok"]
    assert len(acquires) >= full.measured_ops
    assert full.obs_metrics["network"]["verbs"]["rCAS"] > 0
