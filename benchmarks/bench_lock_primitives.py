"""Single-op cost of each lock primitive, local vs remote.

Reports the *simulated* cost of one uncontended lock+unlock per lock
kind and access class via ``extra_info`` — the microscopic asymmetry
(ALock local ≈ hundreds of ns; everything else ≈ microseconds) that
§6's macro results are built from — while the benchmark time measures
simulator wall-clock for the same op.
"""

import pytest

from repro.cluster import Cluster
from repro.locks import make_lock


def _one_op_sim_ns(kind: str, local: bool) -> float:
    cluster = Cluster(2, audit="off")
    lock = make_lock(kind, cluster, 0)
    ctx = cluster.thread_ctx(0 if local else 1, 0)
    env = cluster.env

    def warm_and_measure():
        # warm QP contexts so we time the steady-state op
        yield from lock.lock(ctx)
        yield from lock.unlock(ctx)
        start = env.now
        yield from lock.lock(ctx)
        yield from lock.unlock(ctx)
        return env.now - start

    p = env.process(warm_and_measure())
    cluster.run()
    assert p.ok, p.value
    return p.value


@pytest.mark.parametrize("kind", ["alock", "spinlock", "mcs"])
@pytest.mark.parametrize("access", ["local", "remote"])
def test_uncontended_op_cost(benchmark, kind, access):
    local = access == "local"
    sim_ns = benchmark(_one_op_sim_ns, kind, local)
    benchmark.extra_info["simulated_ns_per_op"] = sim_ns
    if kind == "alock" and local:
        # the headline asymmetry: local ALock ops in shared-memory range
        assert sim_ns < 1_500
    else:
        # every RDMA-path op costs microseconds
        assert sim_ns > 1_500


def test_alock_local_vs_baselines_factor(benchmark):
    """The local-access cost gap that drives the paper's 100%-locality
    results: ALock vs the loopback-based baselines."""

    def measure():
        alock = _one_op_sim_ns("alock", local=True)
        spin = _one_op_sim_ns("spinlock", local=True)
        mcs = _one_op_sim_ns("mcs", local=True)
        return alock, spin, mcs

    alock, spin, mcs = benchmark(measure)
    assert spin / alock > 4
    assert mcs / alock > 8
    benchmark.extra_info["spin_over_alock"] = round(spin / alock, 1)
    benchmark.extra_info["mcs_over_alock"] = round(mcs / alock, 1)
