"""Benchmark + shape checks for paper Fig. 6 (latency CDFs)."""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig6_latency_cdfs(benchmark, experiment_cache):
    result = run_once(benchmark, run_experiment, "fig6", scale="small")
    experiment_cache["fig6"] = result
    assert result.all_shapes_hold, {
        k: v for k, v in result.shape_checks.items() if not v}
    assert {r["panel"] for r in result.rows} == set("abcdefghijkl")

    rows = {(r["panel"], r["lock"]): r for r in result.rows}
    # paper: 100% local + high contention (panel a), ALock up to 17x/33x
    # faster than MCS/spinlock; require >= 5x at this scale
    a_alock = rows[("a", "alock")]
    assert rows[("a", "spinlock")]["p50_ns"] >= 5 * a_alock["p50_ns"]
    assert rows[("a", "mcs")]["p50_ns"] >= 5 * a_alock["p50_ns"]
    # 100% local ALock latency is in shared-memory territory (< 2 us)
    assert a_alock["p50_ns"] < 2_000
    benchmark.extra_info["panel_a_alock_p50_ns"] = a_alock["p50_ns"]
    benchmark.extra_info["panel_a_spin_over_alock"] = round(
        rows[("a", "spinlock")]["p50_ns"] / a_alock["p50_ns"], 1)
