"""Shared helpers for the benchmark suite.

Every paper artifact (table/figure) has one ``bench_*`` module that
regenerates it via :mod:`repro.experiments` and asserts the paper's
*shape* (who wins, by roughly what factor, where crossovers fall) —
absolute numbers are simulator-scale, not testbed-scale.

Heavy experiment benches run exactly once per session
(``benchmark.pedantic(rounds=1)``) and cache their result at module
scope so shape assertions don't re-run the simulation.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under the benchmark timer and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture(scope="session")
def experiment_cache():
    """Session-wide cache: experiment id -> ExperimentResult, so shape
    assertions across tests reuse one simulation run."""
    return {}
