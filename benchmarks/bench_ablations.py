"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each test removes or alters one mechanism and verifies the consequence
the design rationale predicts:

* congestion model off  -> the Fig. 1 decline disappears;
* strict Algorithm-3 RDMA vs same-node short-circuit in the remote cohort;
* spinlock backoff       -> helps, but nowhere near closing the ALock gap;
* budget size            -> fairness/latency trade-off for remote ops;
* MCS poll interval      -> loopback spin traffic vs hand-off delay.
"""

from conftest import run_once

from repro.rdma.config import RdmaConfig
from repro.workload import WorkloadSpec, run_workload


def _tput(spec, **cluster_kwargs):
    return run_workload(spec, **cluster_kwargs).throughput_ops_per_sec


FIG1_SPEC = WorkloadSpec(n_nodes=1, threads_per_node=16, n_locks=1000,
                         locality_pct=100.0, lock_kind="spinlock",
                         warmup_ns=200_000, measure_ns=800_000, audit="off")


def test_ablation_no_congestion_model(benchmark):
    """With RX congestion disabled, the single-node spinlock saturates
    flat instead of declining — the decline is *caused* by the modeled
    RX-buffer accumulation, not an artifact of closed-loop clients."""

    def run():
        peak8 = _tput(FIG1_SPEC.with_(threads_per_node=8))
        with_model = _tput(FIG1_SPEC)
        flat_cfg = RdmaConfig().with_nic(rx_congestion_factor=0.0)
        peak8_flat = _tput(FIG1_SPEC.with_(threads_per_node=8), config=flat_cfg)
        without_model = _tput(FIG1_SPEC, config=flat_cfg)
        return peak8, with_model, peak8_flat, without_model

    peak8, with_model, peak8_flat, without_model = run_once(benchmark, run)
    assert with_model < 0.75 * peak8          # decline with the model
    assert without_model >= 0.95 * peak8_flat  # no decline without it
    benchmark.extra_info["decline_with_model"] = round(with_model / peak8, 2)
    benchmark.extra_info["decline_without_model"] = round(
        without_model / peak8_flat, 2)


def test_ablation_strict_remote_rdma(benchmark):
    """Algorithm 3 uses rWrite for every remote-cohort interaction, even
    when the neighbor's descriptor is on the caller's own node (loopback).
    Short-circuiting those to local stores is a small win at most — it
    must never *hurt*, and the strict variant stays within ~25%."""
    base = WorkloadSpec(n_nodes=3, threads_per_node=8, n_locks=6,
                        locality_pct=50.0, lock_kind="alock",
                        warmup_ns=200_000, measure_ns=800_000, audit="off")

    def run():
        strict = _tput(base.with_(lock_options={"strict_remote_rdma": True}))
        relaxed = _tput(base.with_(lock_options={"strict_remote_rdma": False}))
        return strict, relaxed

    strict, relaxed = run_once(benchmark, run)
    assert relaxed >= 0.95 * strict
    assert strict >= 0.75 * relaxed
    benchmark.extra_info["relaxed_over_strict"] = round(relaxed / strict, 3)


def test_ablation_spinlock_backoff(benchmark):
    """Backoff reduces the spinlock's wasted rCAS traffic under high
    contention but does not close the gap to ALock."""
    base = WorkloadSpec(n_nodes=5, threads_per_node=12, n_locks=20,
                        locality_pct=90.0, warmup_ns=200_000,
                        measure_ns=800_000, audit="off")

    def run():
        plain = _tput(base.with_(lock_kind="spinlock"))
        backoff = _tput(base.with_(lock_kind="spinlock",
                                   lock_options={"backoff_ns": 1_000.0}))
        alock = _tput(base.with_(lock_kind="alock"))
        return plain, backoff, alock

    plain, backoff, alock = run_once(benchmark, run)
    assert backoff > 0.8 * plain          # backoff is not catastrophic
    assert alock > 2.5 * max(plain, backoff)  # and never closes the gap
    benchmark.extra_info["backoff_over_plain"] = round(backoff / plain, 2)
    benchmark.extra_info["alock_over_best_spin"] = round(
        alock / max(plain, backoff), 1)


def test_ablation_budget_extremes(benchmark):
    """Budget 1 forces a Peterson reacquire on almost every pass; a huge
    budget effectively disables cross-cohort yielding.  Throughput must
    be monotone-ish in budget, while the remote p99 shows the fairness
    price of the huge budget."""
    base = WorkloadSpec(n_nodes=5, threads_per_node=8, n_locks=5,
                        locality_pct=90.0, lock_kind="alock",
                        warmup_ns=200_000, measure_ns=800_000, audit="off")

    def run():
        out = {}
        for name, budgets in (("tiny", (1, 1)), ("paper", (20, 5)),
                              ("huge", (10_000, 10_000))):
            result = run_workload(base.with_(lock_options={
                "remote_budget": budgets[0], "local_budget": budgets[1]}))
            remote = result.remote_latency
            out[name] = (result.throughput_ops_per_sec,
                         remote.p99 if remote.count else 0.0)
        return out

    out = run_once(benchmark, run)
    assert out["paper"][0] >= 0.9 * out["tiny"][0]
    # with yielding disabled, remote requesters wait out whole local runs
    assert out["huge"][1] >= out["paper"][1]
    benchmark.extra_info["tput_tiny_paper_huge"] = [
        round(out[k][0]) for k in ("tiny", "paper", "huge")]
    benchmark.extra_info["remote_p99_tiny_paper_huge"] = [
        round(out[k][1]) for k in ("tiny", "paper", "huge")]


def test_ablation_mcs_poll_interval(benchmark):
    """Pacing the MCS baseline's loopback polling trades spin traffic
    for hand-off delay; neither setting rescues it against ALock."""
    base = WorkloadSpec(n_nodes=3, threads_per_node=8, n_locks=6,
                        locality_pct=90.0, warmup_ns=200_000,
                        measure_ns=800_000, audit="off")

    def run():
        tight = _tput(base.with_(lock_kind="mcs"))
        paced = _tput(base.with_(lock_kind="mcs",
                                 lock_options={"poll_interval_ns": 3_000.0}))
        alock = _tput(base.with_(lock_kind="alock"))
        return tight, paced, alock

    tight, paced, alock = run_once(benchmark, run)
    assert alock > 2 * max(tight, paced)
    benchmark.extra_info["paced_over_tight"] = round(paced / tight, 2)
    benchmark.extra_info["alock_over_best_mcs"] = round(
        alock / max(tight, paced), 1)
