"""Benchmark of the explicit-state model checker (paper Appendix A).

Measures exploration rate and re-verifies the appendix's properties at
the configuration sizes the test suite uses.
"""

from conftest import run_once

from repro.verification import (
    ALockSpec,
    check_deadlock_freedom,
    check_mutual_exclusion,
    check_starvation_freedom,
)


def test_modelcheck_np2_sweep_budgets(benchmark):
    """NP=2 across budgets — the pure Peterson competition."""

    def run():
        results = [check_mutual_exclusion(ALockSpec(2, b)) for b in (1, 2, 3)]
        return results

    results = benchmark(run)
    assert all(r.holds for r in results)
    benchmark.extra_info["states"] = [r.states_explored for r in results]


def test_modelcheck_np3_full(benchmark):
    """NP=3, budget 2 — passing + Peterson; ~80k states."""

    def run():
        me = check_mutual_exclusion(ALockSpec(3, 2))
        dl = check_deadlock_freedom(ALockSpec(3, 2))
        return me, dl

    me, dl = run_once(benchmark, run)
    assert me.holds and dl.holds
    assert me.states_explored > 50_000
    benchmark.extra_info["states_explored"] = me.states_explored


def test_modelcheck_starvation_freedom_np3(benchmark):
    """The SCC-based weak-fairness liveness check at NP=3."""

    def run():
        return check_starvation_freedom(ALockSpec(3, 2))

    result = run_once(benchmark, run)
    assert result.holds
    benchmark.extra_info["states"] = result.states_explored


def test_modelcheck_detects_livelock(benchmark):
    """StarvationFree fails fast on the victim-less Peterson bug."""

    def run():
        return check_starvation_freedom(ALockSpec(2, 1, bug="no_victim_check"))

    result = benchmark(run)
    assert not result.holds


def test_modelcheck_finds_bug_quickly(benchmark):
    """Counterexample search on the buggy spec (BFS finds the shortest
    violating trace)."""

    def run():
        return check_mutual_exclusion(ALockSpec(3, 2, bug="skip_handoff_wait"))

    result = benchmark(run)
    assert not result.holds
    benchmark.extra_info["trace_length"] = len(result.counterexample.states)
