#!/usr/bin/env python3
"""Why RDMA locks are hard: the Table-1 atomicity gap, live.

Three acts:

1. **The broken lock** — the "obvious" design: local threads use a local
   CAS on the lock word, remote threads use rCAS on the same word.
   Table 1 says local RMW and remote RMW are NOT atomic with each other;
   this act shows real lost lock-word updates, critical-section
   overlap, and the race auditor lighting up.

2. **The loopback fix** — today's standard workaround: local threads go
   through their own RNIC (the RDMA spinlock).  Correct, but local
   acquisitions now cost microseconds instead of nanoseconds.

3. **The ALock** — correct *and* local-fast: cohorts keep each API
   family on its own words, so only the atomic cells of Table 1 are
   ever exercised.

Run:  python examples/atomicity_pitfalls.py
"""

from repro import ALock, Cluster, RdmaSpinlock
from repro.locks.layout import SPINLOCK_LAYOUT


class BrokenMixedLock:
    """The naive design Table 1 forbids: one lock word, local CAS from
    co-located threads, rCAS from remote threads."""

    def __init__(self, cluster, home_node):
        self.cluster = cluster
        self.word_ptr = cluster.alloc_on(home_node, SPINLOCK_LAYOUT.size)
        self.overlaps = 0
        self._in_cs = 0

    def lock(self, ctx):
        while True:
            if ctx.is_local(self.word_ptr):
                old = yield from ctx.cas(self.word_ptr, 0, ctx.gid)
            else:
                old = yield from ctx.r_cas(self.word_ptr, 0, ctx.gid)
            if old == 0:
                break
        self._in_cs += 1
        if self._in_cs > 1:
            self.overlaps += 1

    def unlock(self, ctx):
        self._in_cs -= 1
        if ctx.is_local(self.word_ptr):
            yield from ctx.write(self.word_ptr, 0)
        else:
            yield from ctx.r_write(self.word_ptr, 0)


def hammer(cluster, lock, rounds=300, think_ns=300):
    """One local + one remote thread fight over the lock.  The think
    time leaves the lock free often enough that the remote rCAS's read
    phase can observe 0 — the precondition for the classic lost-update
    overlap."""
    done = []

    def client(node):
        ctx = cluster.thread_ctx(node, 0)
        for _ in range(rounds):
            yield from lock.lock(ctx)
            yield cluster.env.timeout(50)
            yield from lock.unlock(ctx)
            yield cluster.env.timeout(think_ns)
        done.append((node, cluster.env.now))

    procs = [cluster.env.process(client(n)) for n in (0, 1)]
    cluster.run()
    return procs, done


def main() -> None:
    print("=" * 70)
    print("ACT 1 - the broken mixed lock (local CAS vs rCAS on one word)")
    print("=" * 70)
    cluster = Cluster(2, seed=7, audit="record")
    broken = BrokenMixedLock(cluster, home_node=1)
    procs, _ = hammer(cluster, broken, rounds=1000)
    print(f"  critical-section overlaps observed : {broken.overlaps}")
    print(f"  Table-1 violations recorded        : "
          f"{cluster.auditor.violation_count}")
    if cluster.auditor.violations:
        print(f"  first violation: {cluster.auditor.violations[0]}")
    assert broken.overlaps > 0 or cluster.auditor.violation_count > 0, \
        "expected the broken lock to misbehave"

    print()
    print("=" * 70)
    print("ACT 2 - the loopback workaround (RDMA spinlock)")
    print("=" * 70)
    cluster = Cluster(2, seed=7, audit="record")
    spin = RdmaSpinlock(cluster, home_node=1)
    hammer(cluster, spin, rounds=150)
    local_ctx = cluster.thread_ctx(1, 0)
    print(f"  Table-1 violations                 : "
          f"{cluster.auditor.violation_count} (correct!)")
    print(f"  loopback verbs paid by local thread: "
          f"{cluster.network.loopback_verbs}")
    print(f"  local thread's shared-memory ops   : {local_ctx.local_op_count}"
          f"  <- everything went through the NIC")

    print()
    print("=" * 70)
    print("ACT 3 - the ALock (correct, and local ops stay local)")
    print("=" * 70)
    cluster = Cluster(2, seed=7, audit="strict")  # strict: raise on any race
    alock = ALock(cluster, home_node=1)
    hammer(cluster, alock, rounds=150)
    local_ctx = cluster.thread_ctx(1, 0)
    print(f"  Table-1 violations (strict audit)  : "
          f"{cluster.auditor.violation_count}")
    print(f"  loopback verbs                     : "
          f"{cluster.network.loopback_verbs}")
    print(f"  local thread: {local_ctx.local_op_count} shared-memory ops, "
          f"{local_ctx.remote_op_count} verbs")
    print()
    print("The asymmetric design uses only the 'Yes' cells of Table 1: "
          "tail_l is\nonly ever CASed locally, tail_r only ever rCASed, and "
          "the victim word\nsees plain reads/writes from both sides.")


if __name__ == "__main__":
    main()
