#!/usr/bin/env python3
"""Tuning the ALock budgets (the paper's §6.1 / Fig. 4 methodology).

Sweeps the (remote_budget, local_budget) grid on a contended lock table
and prints throughput relative to the (5, 5) baseline, plus the
fairness side of the trade-off the throughput number hides: the p99
latency of *remote* operations, which grows when the local cohort is
allowed longer chains.

Run:  python examples/budget_tuning.py
"""

from statistics import mean

from repro import WorkloadSpec, run_workload
from repro.analysis import format_table, relative_speedup


def measure(remote_budget: int, local_budget: int):
    tputs, remote_p99s = [], []
    for locality in (85.0, 90.0, 95.0):
        spec = WorkloadSpec(
            n_nodes=5, threads_per_node=12, n_locks=5,  # 1 lock/node
            locality_pct=locality, lock_kind="alock",
            lock_options={"remote_budget": remote_budget,
                          "local_budget": local_budget},
            warmup_ns=200_000, measure_ns=800_000, audit="off", seed=11)
        result = run_workload(spec)
        tputs.append(result.throughput_ops_per_sec)
        remote = result.remote_latency
        if remote.count:
            remote_p99s.append(remote.p99)
    return mean(tputs), mean(remote_p99s)


def main() -> None:
    baseline_tput, _ = measure(5, 5)
    rows = []
    for remote_budget in (5, 10, 20):
        for local_budget in (5, 10, 20):
            tput, remote_p99 = measure(remote_budget, local_budget)
            rows.append({
                "remote_budget": remote_budget,
                "local_budget": local_budget,
                "throughput_op_s": round(tput),
                "vs_(5,5)_%": round(relative_speedup(tput, baseline_tput), 1),
                "remote_p99_us": round(remote_p99 / 1000, 1),
            })
    print(format_table(
        rows,
        title="Budget grid: 5 nodes x 12 threads, 1 lock/node, "
              "avg over 85/90/95% locality\n"))
    print("\nReading the trade-off: larger LOCAL budgets buy raw throughput "
          "(local passes\nare ~100x cheaper than verbs) but push the remote "
          "p99 up — remote leaders sit\nin Peterson's algorithm while the "
          "local chain runs.  The paper picks\nremote=20, local=5 to bound "
          "exactly that cost; the library defaults follow it.")


if __name__ == "__main__":
    main()
