#!/usr/bin/env python3
"""Distributed lock table: ALock vs the RDMA spinlock and MCS baselines.

The paper's evaluation application (§6): a lock table striped over the
cluster, closed-loop clients, locality-controlled lock choice.  This
example runs a compact version of the comparison — one cluster size,
three locality levels, all three lock types — and prints the paper-style
summary: throughput, median/tail latency, and who used loopback.

Run:  python examples/lock_table_comparison.py [--nodes 5] [--threads 8]
"""

import argparse

from repro import WorkloadSpec, run_workload
from repro.analysis import format_table, ratio


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--nodes", type=int, default=5)
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--locks", type=int, default=100)
    args = parser.parse_args()

    rows = []
    by_key = {}
    for locality in (100.0, 95.0, 85.0):
        for kind in ("alock", "spinlock", "mcs"):
            spec = WorkloadSpec(
                n_nodes=args.nodes, threads_per_node=args.threads,
                n_locks=args.locks, locality_pct=locality, lock_kind=kind,
                warmup_ns=200_000, measure_ns=800_000, audit="off", seed=1)
            result = run_workload(spec)
            by_key[(locality, kind)] = result.throughput_ops_per_sec
            rows.append({
                "locality_%": locality,
                "lock": kind,
                "throughput_op_s": round(result.throughput_ops_per_sec),
                "p50_ns": round(result.latency.p50),
                "p99_ns": round(result.latency.p99),
                "loopback_verbs": result.loopback_verbs,
            })

    print(format_table(
        rows, title=f"Lock table: {args.nodes} nodes x {args.threads} "
                    f"threads, {args.locks} locks\n"))
    print("\nALock advantage (throughput ratio):")
    for locality in (100.0, 95.0, 85.0):
        a = by_key[(locality, "alock")]
        print(f"  {locality:5.1f}% locality: "
              f"{ratio(a, by_key[(locality, 'spinlock')]):5.1f}x vs spinlock, "
              f"{ratio(a, by_key[(locality, 'mcs')]):5.1f}x vs MCS")
    print("\nNote the loopback column: the baselines route *local* accesses "
          "through their own RNIC;\nALock's count stays at zero — the "
          "paper's core design claim.")


if __name__ == "__main__":
    main()
