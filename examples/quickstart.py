#!/usr/bin/env python3
"""Quickstart: the paper's Figure 2 walkthrough, live.

Two nodes, one ALock on node 1, one thread per node.  Thread t1 (on
node 0) locks the ALock *remotely*; while it holds the lock, thread t2
(on node 1) attempts a *local* acquisition and must wait in Peterson's
algorithm until the remote cohort's tail clears.  The protocol trace
printed at the end is the execution of the paper's eight frames.

Run:  python examples/quickstart.py
      python examples/quickstart.py --trace-out fig2.trace.json
        (then open the JSON at https://ui.perfetto.dev — each lock
        acquisition is a span tree: lock.acquire > peterson.compete >
        verb.rtt)
"""

import argparse

from repro import ALock, Cluster
from repro.obs import ObsConfig
from repro.obs.capture import CapturedRun
from repro.obs.export import span_table, write_trace


def main(trace_out: str | None = None) -> None:
    obs = ObsConfig(spans=True) if trace_out else None
    cluster = Cluster(n_nodes=2, seed=42, trace=True, audit="strict",
                      obs=obs)
    lock = ALock(cluster, home_node=1, name="l2")
    t1 = cluster.thread_ctx(node_id=0, thread_id=0)   # remote to l2
    t2 = cluster.thread_ctx(node_id=1, thread_id=0)   # local to l2
    env = cluster.env
    events = []

    def remote_thread():
        # Frames 2-4: t1 swaps its RemoteDescriptor onto tail_r (rCAS),
        # then competes in Peterson's algorithm and wins immediately
        # because the local tail is NULL.
        yield from lock.lock(t1)
        events.append(("t1 enters CS (remote cohort)", env.now))
        yield env.timeout(10_000)  # critical section work
        # Frame 7: rCAS the remote tail back to NULL -> releases the
        # Peterson flag as a side effect.
        yield from lock.unlock(t1)
        events.append(("t1 released", env.now))

    def local_thread():
        yield env.timeout(7_000)  # arrive while t1 is in its CS
        # Frames 5-6: t2 swaps onto tail_l with a plain (shared-memory)
        # CAS, sets victim=LOCAL, and waits: victim == LOCAL and the
        # remote tail is still locked.
        yield from lock.lock(t2)
        # Frame 8: the remote tail cleared, t2's budget is set -> CS.
        events.append(("t2 enters CS (local cohort)", env.now))
        yield from lock.unlock(t2)
        events.append(("t2 released", env.now))

    p1 = env.process(remote_thread(), name="t1")
    p2 = env.process(local_thread(), name="t2")
    cluster.run()
    assert p1.ok and p2.ok

    print("=== Figure 2 walkthrough (2 nodes, 1 ALock on node 1) ===\n")
    print("Protocol trace:")
    for ev in cluster.tracer:
        print(f"  {ev}")
    print("\nTimeline:")
    for what, when in events:
        print(f"  [{when:>10.1f} ns] {what}")
    print("\nKey properties demonstrated:")
    print("  - critical sections did not overlap: t2's cs.enter follows "
          "t1's cs.exit\n    (t1's release rCAS lands at the target before "
          "its completion returns,\n    so the 't1 released' timeline entry "
          "trails t2's entry — the trace has\n    the linearization order)")
    print(f"  - t2's acquisition used ZERO RDMA verbs "
          f"(local ops: {t2.local_op_count}, remote: {t2.remote_op_count})")
    print(f"  - t1's acquisition used one rCAS + Peterson traffic "
          f"(remote ops: {t1.remote_op_count})")
    print(f"  - no loopback anywhere: {cluster.network.loopback_verbs} "
          f"loopback verbs")
    print(f"  - Table-1 audit (strict mode): "
          f"{cluster.auditor.violation_count} violations")

    if trace_out:
        spans = cluster.obs.spans.spans()
        write_trace(trace_out, [CapturedRun("quickstart-fig2", spans,
                                            cluster.obs.metrics.collect())])
        print(f"\nTyped span tree ({len(spans)} spans):")
        print(span_table(spans))
        print(f"\nPerfetto trace written to {trace_out} — open it at "
              f"https://ui.perfetto.dev")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="also record typed spans and write a "
                             "Chrome/Perfetto trace-event JSON")
    main(parser.parse_args().trace_out)
