#!/usr/bin/env python3
"""A FaRM-style sharded key-value store on top of the ALock.

The paper's introduction motivates ALock with RDMA data repositories
that need atomicity between local and remote accesses.  This example
runs such a store: buckets striped across a 3-node cluster, each
guarded by an ALock, with clients doing locality-weighted gets/puts and
cross-node bank transfers (two bucket locks in global order, via the
descriptor-pool nesting extension).

Witnesses printed at the end:

* the checksum audit (every record satisfies checksum = value+version);
* transfer conservation (total value unchanged);
* zero Table-1 violations under strict auditing;
* zero loopback verbs — local data ops stayed in shared memory.

Run:  python examples/kv_store.py
"""

from repro import Cluster
from repro.kvstore import KVConfig, ShardedKVStore


def main() -> None:
    cluster = Cluster(3, seed=2024, audit="strict")
    store = ShardedKVStore(cluster, KVConfig(n_buckets=30))
    env = cluster.env

    # Give every node's first few keys a starting balance.
    accounts = [key for node in range(3) for key in store.local_keys(node, 3)]

    def seed():
        ctx = cluster.thread_ctx(0, 0)
        for key in accounts:
            yield from store.put(ctx, key, 1_000)

    p = env.process(seed())
    cluster.run()
    assert p.ok
    initial_total = store.total_value()

    stats = {"ops": 0}

    def worker(node, tid):
        ctx = cluster.thread_ctx(node, tid)
        rng = cluster.rng.get("kv-client", node, tid)
        my_keys = store.local_keys(node, 3)
        for i in range(120):
            roll = rng.random()
            if roll < 0.60:                      # local read
                yield from store.get(ctx, my_keys[i % 3])
            elif roll < 0.85:                    # local update
                yield from store.add(ctx, my_keys[i % 3], 0)
            elif roll < 0.95:                    # remote lock-free read
                other = accounts[int(rng.integers(0, len(accounts)))]
                yield from store.get_optimistic(ctx, other)
            else:                                # cross-node transfer
                src = my_keys[i % 3]
                dst = accounts[int(rng.integers(0, len(accounts)))]
                yield from store.transfer(ctx, src, dst, 10)
            stats["ops"] += 1

    procs = [env.process(worker(n, t)) for n in range(3) for t in range(2)]
    cluster.run()
    assert all(p.ok for p in procs), [p.value for p in procs if not p.ok]

    print("=== sharded KV store over ALock: 3 nodes x 2 clients ===\n")
    print(f"operations completed      : {stats['ops']} "
          f"({store.gets} locked gets, {store.optimistic_gets} lock-free "
          f"gets,\n                             {store.puts} puts, "
          f"{store.transfers} transfers)")
    print(f"simulated time            : {env.now / 1e6:.2f} ms")
    print(f"checksum audit            : "
          f"{'CLEAN' if not store.audit() else store.audit()}")
    print(f"transfer conservation     : total {store.total_value()} "
          f"(= initial {initial_total}: "
          f"{store.total_value() == initial_total})")
    print(f"Table-1 violations        : {cluster.auditor.violation_count} "
          f"(strict mode — would have raised)")
    print(f"loopback verbs            : {cluster.network.loopback_verbs} "
          f"(Algorithm-3 strict rWrites between two same-node threads\n"
          f"                             queued remotely on one bucket — "
          f"not local data access)")
    verbs = cluster.network.verb_counts
    print(f"RDMA verbs (remote ops)   : {verbs}")
    print("\nLocal reads/updates ran at shared-memory speed while remote "
          "clients and\ncross-node transfers synchronized through the same "
          "ALocks — no RPC, and no\nloopback on any local data path.")
    assert store.total_value() == initial_total
    assert not store.audit()


if __name__ == "__main__":
    main()
