#!/usr/bin/env python3
"""Model-check the ALock protocol (the paper's Appendix A, in Python).

Explores the full reachable state space of the PlusCal translation and
checks MutualExclusion, deadlock freedom and progress possibility —
then injects two bugs to show the checker catching real violations with
counterexample traces.

Run:  python examples/model_checking.py [--processes 3] [--budget 2]
"""

import argparse
import time

from repro.verification import (
    ALockSpec,
    check_deadlock_freedom,
    check_mutual_exclusion,
    check_progress_possibility,
    check_starvation_freedom,
)


def report(result):
    verdict = "HOLDS" if result.holds else "VIOLATED"
    print(f"  {result.property_name:<22} {verdict:<9} "
          f"({result.states_explored} states)")
    if result.counterexample is not None:
        print(f"    -> {result.counterexample.violation}")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--processes", type=int, default=3,
                        help="NP (3 exercises intra-cohort passing)")
    parser.add_argument("--budget", type=int, default=2, help="InitialBudget")
    args = parser.parse_args()

    print(f"=== correct ALock spec: NP={args.processes}, "
          f"B={args.budget} ===")
    spec = ALockSpec(args.processes, args.budget)
    t0 = time.perf_counter()
    report(check_mutual_exclusion(spec))
    report(check_deadlock_freedom(spec))
    if args.processes <= 3:
        report(check_progress_possibility(spec))
        report(check_starvation_freedom(spec))
    print(f"  (exploration took {time.perf_counter() - t0:.2f}s)")

    print("\n=== injected bug: waiter skips the hand-off wait ===")
    buggy = ALockSpec(3, 2, bug="skip_handoff_wait")
    result = check_mutual_exclusion(buggy)
    report(result)
    if result.counterexample:
        print("\n  counterexample trace (last 6 steps):")
        cex = result.counterexample
        start = max(0, len(cex.states) - 6)
        for i in range(start, len(cex.states)):
            mover = f"pid {cex.actions[i - 1]} moved -> " if i else "init: "
            print(f"    {mover}pc={cex.states[i].pc} "
                  f"cohort={cex.states[i].cohort}")

    print("\n=== injected bug: Peterson without the victim yield ===")
    livelocked = ALockSpec(2, 1, bug="no_victim_check")
    report(check_deadlock_freedom(livelocked))
    report(check_progress_possibility(livelocked))
    report(check_starvation_freedom(livelocked))
    print("\n  (both cohort leaders spin forever: no deadlock — steps stay "
          "enabled —\n   but progress is impossible: a livelock, exactly "
          "what the victim word prevents)")


if __name__ == "__main__":
    main()
