"""Benchmark regression gate: compare a fresh ``BENCH_ci.json`` against
the committed baseline and fail on significant median slowdowns.

Usage (what CI runs)::

    PYTHONPATH=src python benchmarks/ci_bench.py --out BENCH_ci.json
    python scripts/check_bench_regression.py \\
        --baseline benchmarks/baselines/BENCH_ci.json \\
        --current BENCH_ci.json

Exit status: 0 when every scenario's median is within ``--threshold``
(default 20%) of the baseline, 1 when any scenario regressed or is
missing from the current run.  New scenarios absent from the baseline
are reported but don't fail — they start gating once re-baselined.

The always-on flight recorder has its own budget: the current run's
``flight_overhead`` probe must show a profiled recorder share under
``--flight-threshold`` (default 3%), and the deterministic
notes-per-run count must not have grown past 1.5x the baseline's.

Re-baselining: after an *intentional* perf change (or a runner-class
change), regenerate the baseline on the machine class that runs the
gate and commit it together with the change that moved the numbers::

    PYTHONPATH=src python benchmarks/ci_bench.py --repeats 9 \\
        --out benchmarks/baselines/BENCH_ci.json
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if "benchmarks" not in payload:
        raise SystemExit(f"{path}: not a bench file (no 'benchmarks' key)")
    return payload


def compare(baseline: dict, current: dict, threshold: float) -> tuple[list[str], list[str]]:
    """Returns (report_lines, failures)."""
    lines: list[str] = []
    failures: list[str] = []
    base_benches = baseline["benchmarks"]
    cur_benches = current["benchmarks"]
    width = max((len(n) for n in base_benches), default=10)
    for name, base in sorted(base_benches.items()):
        cur = cur_benches.get(name)
        if cur is None:
            failures.append(f"{name}: missing from current run")
            continue
        base_m, cur_m = base["median_s"], cur["median_s"]
        ratio = cur_m / base_m if base_m > 0 else float("inf")
        delta_pct = 100.0 * (ratio - 1.0)
        verdict = "ok"
        if ratio > 1.0 + threshold:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {base_m * 1e3:.1f} ms -> {cur_m * 1e3:.1f} ms "
                f"({delta_pct:+.1f}% > +{threshold * 100:.0f}% budget)")
        elif ratio < 1.0 - threshold:
            verdict = "improved (consider re-baselining)"
        lines.append(f"  {name:<{width}}  {base_m * 1e3:9.1f} ms -> "
                     f"{cur_m * 1e3:9.1f} ms  {delta_pct:+6.1f}%  {verdict}")
    for name in sorted(set(cur_benches) - set(base_benches)):
        lines.append(f"  {name:<{width}}  (new scenario, no baseline — "
                     f"not gated)")
    return lines, failures


def check_flight_overhead(baseline: dict, current: dict,
                          flight_threshold: float) -> tuple[list[str], list[str]]:
    """Gate the always-on flight recorder's cost (the <3% budget).

    Two checks, both on the *current* run's ``flight_overhead`` probe
    (see ``ci_bench.flight_overhead_probe`` for why the gated number is
    the profiled within-run share, not a paired wall delta):

    * ``profiled_share_pct`` must stay under ``flight_threshold``;
    * ``note_calls_per_run`` — deterministic for the pinned workload —
      must not exceed 1.5x the baseline's count, which catches a newly
      instrumented hot path (e.g. a per-poll note) with zero timer noise.
    """
    lines: list[str] = []
    failures: list[str] = []
    cur = current.get("flight_overhead")
    base = baseline.get("flight_overhead")
    if cur is None:
        if base is not None:
            failures.append("flight_overhead: probe missing from current run")
        return lines, failures
    share = cur.get("profiled_share_pct", 0.0)
    calls = cur.get("note_calls_per_run", 0)
    verdict = "ok"
    if share > flight_threshold:
        verdict = "REGRESSION"
        failures.append(
            f"flight_overhead: recorder profiled share {share:.2f}% exceeds "
            f"the {flight_threshold:.1f}% always-on budget")
    lines.append(f"  flight recorder: {calls} notes/run, profiled share "
                 f"{share:.2f}% (budget {flight_threshold:.1f}%), paired wall "
                 f"delta {cur.get('paired_wall_delta_pct', 0.0):+.1f}% "
                 f"(ungated, noisy)  {verdict}")
    if base is not None:
        base_calls = base.get("note_calls_per_run", 0)
        if base_calls and calls > 1.5 * base_calls:
            failures.append(
                f"flight_overhead: {calls} notes/run vs {base_calls} in the "
                f"baseline (> 1.5x) — a hot path gained a flight note")
    return lines, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline",
                        default="benchmarks/baselines/BENCH_ci.json")
    parser.add_argument("--current", default="BENCH_ci.json")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed median slowdown fraction "
                             "(0.20 = fail beyond +20%%)")
    parser.add_argument("--flight-threshold", type=float, default=3.0,
                        help="flight-recorder budget as a percent of "
                             "profiled run time (default %(default)s%%)")
    args = parser.parse_args(argv)
    baseline = load(args.baseline)
    current = load(args.current)
    base_hw = baseline.get("hardware", {})
    cur_hw = current.get("hardware", {})
    if base_hw.get("platform") != cur_hw.get("platform"):
        print(f"note: baseline platform {base_hw.get('platform')!r} != "
              f"current {cur_hw.get('platform')!r}; thresholds assume "
              f"comparable hardware", file=sys.stderr)
    lines, failures = compare(baseline, current, args.threshold)
    flight_lines, flight_failures = check_flight_overhead(
        baseline, current, args.flight_threshold)
    lines += flight_lines
    failures += flight_failures
    print(f"bench regression check (threshold +{args.threshold * 100:.0f}%):")
    print("\n".join(lines))
    if failures:
        print(f"\nFAILED — {len(failures)} benchmark(s) regressed:",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print("\nIf this slowdown is intentional, re-baseline: see the "
              "module docstring.", file=sys.stderr)
        return 1
    print("\nall benchmarks within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
