"""Benchmark regression gate: compare a fresh ``BENCH_ci.json`` against
the committed baseline and fail on significant median slowdowns.

Usage (what CI runs)::

    PYTHONPATH=src python benchmarks/ci_bench.py --out BENCH_ci.json
    python scripts/check_bench_regression.py \\
        --baseline benchmarks/baselines/BENCH_ci.json \\
        --current BENCH_ci.json

Exit status: 0 when every scenario's median is within ``--threshold``
(default 20%) of the baseline, 1 when any scenario regressed or is
missing from the current run.  New scenarios absent from the baseline
are reported but don't fail — they start gating once re-baselined.

Re-baselining: after an *intentional* perf change (or a runner-class
change), regenerate the baseline on the machine class that runs the
gate and commit it together with the change that moved the numbers::

    PYTHONPATH=src python benchmarks/ci_bench.py --repeats 9 \\
        --out benchmarks/baselines/BENCH_ci.json
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if "benchmarks" not in payload:
        raise SystemExit(f"{path}: not a bench file (no 'benchmarks' key)")
    return payload


def compare(baseline: dict, current: dict, threshold: float) -> tuple[list[str], list[str]]:
    """Returns (report_lines, failures)."""
    lines: list[str] = []
    failures: list[str] = []
    base_benches = baseline["benchmarks"]
    cur_benches = current["benchmarks"]
    width = max((len(n) for n in base_benches), default=10)
    for name, base in sorted(base_benches.items()):
        cur = cur_benches.get(name)
        if cur is None:
            failures.append(f"{name}: missing from current run")
            continue
        base_m, cur_m = base["median_s"], cur["median_s"]
        ratio = cur_m / base_m if base_m > 0 else float("inf")
        delta_pct = 100.0 * (ratio - 1.0)
        verdict = "ok"
        if ratio > 1.0 + threshold:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {base_m * 1e3:.1f} ms -> {cur_m * 1e3:.1f} ms "
                f"({delta_pct:+.1f}% > +{threshold * 100:.0f}% budget)")
        elif ratio < 1.0 - threshold:
            verdict = "improved (consider re-baselining)"
        lines.append(f"  {name:<{width}}  {base_m * 1e3:9.1f} ms -> "
                     f"{cur_m * 1e3:9.1f} ms  {delta_pct:+6.1f}%  {verdict}")
    for name in sorted(set(cur_benches) - set(base_benches)):
        lines.append(f"  {name:<{width}}  (new scenario, no baseline — "
                     f"not gated)")
    return lines, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline",
                        default="benchmarks/baselines/BENCH_ci.json")
    parser.add_argument("--current", default="BENCH_ci.json")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed median slowdown fraction "
                             "(0.20 = fail beyond +20%%)")
    args = parser.parse_args(argv)
    baseline = load(args.baseline)
    current = load(args.current)
    base_hw = baseline.get("hardware", {})
    cur_hw = current.get("hardware", {})
    if base_hw.get("platform") != cur_hw.get("platform"):
        print(f"note: baseline platform {base_hw.get('platform')!r} != "
              f"current {cur_hw.get('platform')!r}; thresholds assume "
              f"comparable hardware", file=sys.stderr)
    lines, failures = compare(baseline, current, args.threshold)
    print(f"bench regression check (threshold +{args.threshold * 100:.0f}%):")
    print("\n".join(lines))
    if failures:
        print(f"\nFAILED — {len(failures)} benchmark(s) regressed:",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print("\nIf this slowdown is intentional, re-baseline: see the "
              "module docstring.", file=sys.stderr)
        return 1
    print("\nall benchmarks within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
