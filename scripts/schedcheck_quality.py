#!/usr/bin/env python
"""Exploration-quality metrics: does novelty steering earn its keep?

For every hardened seeded bug (client staggers thin out the time-0 tie
cluster, so the defects need rarer interleavings than the stock repro
scenarios) this script measures *schedules-to-first-find* over a panel
of fleet seeds, once with coverage steering and once with the pure
random baseline — the same walk-seed stream, so the comparison is
apples to apples.  It prints the medians, the per-bug win/loss, and the
measured fleet schedule rate, and can rewrite the committed baseline::

    PYTHONPATH=src python scripts/schedcheck_quality.py \\
        --out benchmarks/baselines/QUALITY_schedcheck.json

The committed JSON is informational (it sits next to ``BENCH_ci.json``
but is not a pass/fail gate): CI gates only on *found at all within
budget*, via ``tests/schedcheck/test_coverage.py``.  Everything written
to the file is a pure function of the seed panel — byte-identical on
any machine — while wall-clock rates go to stdout only.

Exit status: 0 when steering's median beats random on at least 2 of the
3 bugs (the acceptance bar this repo documents), 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

from repro.schedcheck.fleet import (
    HARDENED_BUGS,
    SEEDED_BUGS,
    FleetConfig,
    first_find,
    run_fleet,
)

SCHEMA = "alock-schedcheck-quality/1"

#: fleet seeds the medians are taken over
DEFAULT_SEEDS = 16


def measure(seeds: int) -> dict:
    """Schedules-to-first-find per bug per mode, over ``seeds`` fleets."""
    bugs = {}
    for name, scenario, budget in HARDENED_BUGS:
        modes = {}
        for mode, coverage in (("random", False), ("steered", True)):
            finds = [first_find(scenario, budget, seed=s, coverage=coverage)
                     for s in range(seeds)]
            hits = [f for f in finds if f is not None]
            modes[mode] = {
                "found": len(hits),
                "of": seeds,
                "median_schedules_to_find":
                    statistics.median(hits) if hits else None,
                "finds": finds,
            }
        r, st = modes["random"], modes["steered"]
        comparable = (r["median_schedules_to_find"] is not None
                      and st["median_schedules_to_find"] is not None)
        bugs[name] = {
            "budget": budget,
            "random": r,
            "steered": st,
            "steered_wins": bool(
                comparable and st["median_schedules_to_find"]
                < r["median_schedules_to_find"]),
        }
    return bugs


def fleet_rate() -> tuple[float, int]:
    """Measured schedules/sec of a serial gate-sized fleet (stdout only
    — wall clock is machine-dependent and never committed)."""
    config = FleetConfig(
        scenarios=tuple((name, sc) for name, sc, _b in SEEDED_BUGS),
        budget=64, seed=1, stop_on_find=False, shrink=False)
    start = time.perf_counter()
    report = run_fleet(config)
    elapsed = time.perf_counter() - start
    return report.total_schedules / elapsed, report.total_schedules


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure novelty-steering quality on the hardened "
                    "seeded bugs.")
    parser.add_argument("--seeds", type=int, default=DEFAULT_SEEDS,
                        help="fleet seeds per (bug, mode) cell "
                             "(default %(default)s — the committed panel)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the canonical quality JSON here "
                             "(e.g. benchmarks/baselines/"
                             "QUALITY_schedcheck.json)")
    parser.add_argument("--skip-rate", action="store_true",
                        help="skip the wall-clock schedules/sec probe")
    args = parser.parse_args(argv)

    bugs = measure(args.seeds)
    wins = sum(1 for b in bugs.values() if b["steered_wins"])
    for name, b in bugs.items():
        r, st = b["random"], b["steered"]
        verdict = "WIN" if b["steered_wins"] else "tie/loss"
        print(f"{name}: random {r['found']}/{r['of']} "
              f"med={r['median_schedules_to_find']} | "
              f"steered {st['found']}/{st['of']} "
              f"med={st['median_schedules_to_find']}  [{verdict}]")
    print(f"steered wins on {wins}/{len(bugs)} bugs "
          f"(acceptance bar: >= 2)")

    if not args.skip_rate:
        rate, total = fleet_rate()
        print(f"fleet rate: {rate:.0f} schedules/sec "
              f"({total} schedules, serial)")

    if args.out:
        doc = {
            "schema": SCHEMA,
            "description": "schedules-to-first-find on the hardened "
                           "seeded bugs; informational (CI gates on "
                           "found-at-all only). Regenerate with "
                           "scripts/schedcheck_quality.py; wall-clock "
                           "rates intentionally excluded.",
            "seeds": args.seeds,
            "probe": "first_find defaults: cell_size=1, "
                     "cells_per_round=1, mutation fraction 3/4",
            "bugs": bugs,
            "steered_wins": wins,
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(doc, sort_keys=True, indent=2,
                                ensure_ascii=True) + "\n")
        print(f"written: {args.out}")

    return 0 if wins >= 2 else 1


if __name__ == "__main__":
    sys.exit(main())
