#!/usr/bin/env python
"""CI smoke gate for the content-addressed sweep cache.

Runs the same small sweep grid twice against a throwaway cache store and
fails unless

* the second run serves >= 90% of its cells from the cache (it should
  be 100% — the threshold only absorbs future grid tweaks), and
* both runs serialize to byte-identical JSON and CSV (a cached row and
  a computed row must be indistinguishable).

Usage::

    PYTHONPATH=src python scripts/cached_sweep_smoke.py [--workers N]

Exit code 0 on success, 1 with a diagnosis on stderr otherwise.
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from repro.parallel import ResultCache, run_sweep_parallel
from repro.workload.spec import WorkloadSpec

MIN_HIT_RATE = 0.90

BASE = WorkloadSpec(n_nodes=2, threads_per_node=1, n_locks=20,
                    ops_per_thread=20, audit="off")

AXES = {"lock_kind": ["alock", "spinlock", "mcs"],
        "n_locks": [20, 100],
        "locality_pct": [90.0, 100.0]}


def run_gate(workers: int = 0, cache_dir: str | None = None) -> list[str]:
    """Run the two-pass gate; returns a list of failure messages."""
    problems: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        root = cache_dir or tmp
        first = run_sweep_parallel(BASE, AXES, seeds=[0], workers=workers,
                                   cache=ResultCache(root))
        second = run_sweep_parallel(BASE, AXES, seeds=[0], workers=workers,
                                    cache=ResultCache(root))
        n = len(second.results)
        hit_rate = second.cache_hits / n if n else 1.0
        print(f"pass 1: {first.cache_hits} hits / {first.cache_misses} misses"
              f" over {n} cells")
        print(f"pass 2: {second.cache_hits} hits / {second.cache_misses} "
              f"misses ({hit_rate:.0%} hit rate)")
        if first.failures:
            problems.append(f"{len(first.failures)} cell(s) failed outright")
        if hit_rate < MIN_HIT_RATE:
            problems.append(
                f"second pass hit rate {hit_rate:.0%} is below the "
                f"{MIN_HIT_RATE:.0%} gate — the cache is not memoizing "
                f"unchanged cells")
        if first.to_json_bytes() != second.to_json_bytes():
            problems.append("JSON bytes differ between computed and cached "
                            "runs — cached rows are not canonical")
        if first.to_csv_bytes() != second.to_csv_bytes():
            problems.append("CSV bytes differ between computed and cached "
                            "runs — cached rows are not canonical")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes for both passes (default "
                             "serial; hit rate and bytes must not depend "
                             "on this)")
    args = parser.parse_args(argv)
    problems = run_gate(workers=args.workers)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print("cached-sweep smoke gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
