#!/usr/bin/env python3
"""Build the compiled event core (``repro.sim._ccore``) in place.

Compiles ``src/repro/sim/_ccore.c`` into ``src/repro/sim/_ccore.<abi>.so``
with the interpreter's own compiler flags, no setuptools invocation —
the extension is a single translation unit with no dependencies beyond
the CPython headers, so a direct ``gcc`` call keeps the build fast and
the failure modes legible.  ``pip install -e .`` builds the same
extension through ``setup.py``; this script is what CI and dev loops
use (it is idempotent and skips the compile when the .so is newer than
the source).

Exit codes: 0 built (or fresh), 1 compile failed, 2 import self-check
failed.  ``--force`` rebuilds unconditionally; ``--check`` only
verifies that the built extension imports and reports its digest.
"""

from __future__ import annotations

import argparse
import hashlib
import subprocess
import sys
import sysconfig
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro" / "sim" / "_ccore.c"


def so_path() -> Path:
    ext = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return SRC.with_name("_ccore" + ext)


def source_digest() -> str:
    """Digest of the core source + Python ABI — CI's cache key."""
    h = hashlib.sha256()
    h.update(SRC.read_bytes())
    h.update(sys.version.encode())
    h.update((sysconfig.get_config_var("EXT_SUFFIX") or "").encode())
    return h.hexdigest()


def build(force: bool = False) -> Path:
    out = so_path()
    if not force and out.exists() and out.stat().st_mtime >= SRC.stat().st_mtime:
        print(f"fresh: {out.name}")
        return out
    include = sysconfig.get_paths()["include"]
    cc = sysconfig.get_config_var("CC") or "cc"
    cmd = [
        *cc.split(),
        "-shared", "-fPIC", "-O2", "-fno-strict-aliasing",
        "-Wall", "-Wextra", "-Wno-unused-parameter",
        "-Wno-cast-function-type",  # PyCFunctionWithKeywords casts are idiom
        f"-I{include}",
        str(SRC), "-o", str(out),
    ]
    print(" ".join(cmd))
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(1)
    if proc.stderr.strip():
        sys.stderr.write(proc.stderr)
    return out


def self_check() -> None:
    """Import the extension in a subprocess and confirm it serves."""
    code = (
        "import os; os.environ['ALOCK_SIM_CORE'] = 'compiled';\n"
        "from repro.sim.core import core_info\n"
        "info = core_info()\n"
        "assert info['kind'] == 'compiled', info\n"
        "from repro.sim import Environment\n"
        "env = Environment()\n"
        "def p(env):\n"
        "    yield env.timeout(5)\n"
        "    return env.now\n"
        "assert env.run(env.process(p(env))) == 5.0\n"
        "print('compiled core ok:', type(env).__module__)\n"
    )
    env = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"}
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(2)
    print(proc.stdout.strip())


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--force", action="store_true",
                    help="rebuild even when the .so is newer than the source")
    ap.add_argument("--check", action="store_true",
                    help="only run the import self-check on the existing build")
    ap.add_argument("--digest", action="store_true",
                    help="print the source+ABI digest (CI cache key) and exit")
    args = ap.parse_args()
    if args.digest:
        print(source_digest())
        return
    if not args.check:
        build(force=args.force)
    self_check()


if __name__ == "__main__":
    main()
