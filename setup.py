from setuptools import Extension, setup

# Kept alongside pyproject.toml so `pip install -e .` works on
# environments without the `wheel` package (legacy setup.py develop
# path); all metadata lives in pyproject.toml.
#
# The compiled event core is an optimization, never a requirement:
# `optional=True` turns any compiler failure into a warning and the
# install proceeds pure-Python (the selector in repro.sim.core falls
# back at import time).  `scripts/build_compiled_core.py` builds the
# same extension in place without setuptools, for checkouts that are
# never pip-installed (CI uses it for its digest-keyed build cache).
setup(
    ext_modules=[
        Extension(
            "repro.sim._ccore",
            sources=["src/repro/sim/_ccore.c"],
            extra_compile_args=["-O2", "-fno-strict-aliasing"],
            optional=True,
        ),
    ],
)
