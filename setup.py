from setuptools import setup

setup()
# Kept alongside pyproject.toml so `pip install -e .` works on
# environments without the `wheel` package (legacy setup.py develop
# path); all metadata lives in pyproject.toml.
