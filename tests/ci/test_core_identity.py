"""Cross-core byte-identity: figure outputs and schedcheck decision
strings must not depend on which event core serves the process — or on
``PYTHONHASHSEED``.

Each probe runs in a fresh interpreter (core selection is import-time)
and prints a digest blob; the blobs are compared as exact strings across
``pure``/``compiled`` × several hash seeds.  The compiled leg is skipped
when the extension is not built (CI builds it and separately *fails* on
fallback — see the compiled-core job).

These are subprocess smokes, so they lean on the "smoke" experiment
scale; the in-process randomized depth lives in
``tests/sim/test_core_equivalence.py``.
"""

import os
import subprocess
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

try:
    from repro.sim import _compiled  # noqa: F401 - availability probe
    HAVE_COMPILED = True
except ImportError:
    HAVE_COMPILED = False

CORE_PARAMS = ["pure"] + (["compiled"] if HAVE_COMPILED else [])

FIG_PROBE = """\
import hashlib, json
from repro.sim import core_info
from repro.experiments import run_experiment
assert core_info()["kind"] == {kind!r}, core_info()
for exp in ("fig5", "fig6"):
    r = run_experiment(exp, scale="smoke")
    digest = hashlib.blake2b(
        json.dumps(r.rows, sort_keys=True).encode(), digest_size=16).hexdigest()
    print(exp, digest)
"""

SCHED_PROBE = """\
from repro.sim import core_info
from repro.schedcheck.explore import explore_random, run_schedule
from repro.schedcheck.policies import PctPolicy, RandomWalkPolicy
from repro.schedcheck.scenario import LockScenario
assert core_info()["kind"] == {kind!r}, core_info()
sc = LockScenario(lock_kind="alock", n_nodes=2, threads_per_node=2,
                  n_locks=1, ops_per_thread=3, seed=7)
print("default", run_schedule(sc, None).digest)
rep = explore_random(sc, 6, seed=3)
print("random6", rep.distinct_executions,
      [[f.failure_kind, f.decisions.to_string()] for f in rep.failures])
r = run_schedule(sc, RandomWalkPolicy(42))
print("rw42", r.digest, list(r.dense), list(r.fanouts))
r = run_schedule(sc, PctPolicy(7, change_points=3))
print("pct7", r.digest, list(r.dense), list(r.fanouts))
"""


def _run_probe(template: str, kind: str, hashseed: str) -> str:
    env = dict(
        os.environ,
        PYTHONPATH=os.path.join(REPO, "src"),
        ALOCK_SIM_CORE=kind,
        PYTHONHASHSEED=hashseed,
    )
    proc = subprocess.run(
        [sys.executable, "-c", template.format(kind=kind)],
        env=env, capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestFigureIdentity:
    @pytest.mark.skipif(not HAVE_COMPILED, reason="compiled core not built")
    def test_fig5_fig6_identical_across_cores(self):
        assert _run_probe(FIG_PROBE, "pure", "0") \
            == _run_probe(FIG_PROBE, "compiled", "0")

    @pytest.mark.parametrize("kind", CORE_PARAMS)
    def test_fig_digests_hashseed_invariant(self, kind):
        assert _run_probe(FIG_PROBE, kind, "1") \
            == _run_probe(FIG_PROBE, kind, "31337")


class TestSchedcheckIdentity:
    @pytest.mark.skipif(not HAVE_COMPILED, reason="compiled core not built")
    def test_decision_strings_identical_across_cores(self):
        assert _run_probe(SCHED_PROBE, "pure", "0") \
            == _run_probe(SCHED_PROBE, "compiled", "0")

    @pytest.mark.parametrize("kind", CORE_PARAMS)
    def test_decision_strings_hashseed_invariant(self, kind):
        assert _run_probe(SCHED_PROBE, kind, "2") \
            == _run_probe(SCHED_PROBE, kind, "424242")
