"""The benchmark-regression gate must trip on real slowdowns and stay
quiet inside the noise budget."""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]

spec = importlib.util.spec_from_file_location(
    "check_bench_regression", REPO / "scripts" / "check_bench_regression.py")
gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(gate)


def _bench_file(tmp_path, name, medians: dict) -> str:
    payload = {
        "schema": "alock-bench-ci/1",
        "hardware": {"cpu_count": 4, "platform": "test", "python": "3.x"},
        "benchmarks": {
            bench: {"median_s": m, "min_s": m, "repeats": 3,
                    "runs_s": [m, m, m]}
            for bench, m in medians.items()
        },
    }
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


BASE = {"event_dispatch": 0.010, "single_cell": 0.300}


def _run(tmp_path, current: dict, threshold=None) -> int:
    argv = ["--baseline", _bench_file(tmp_path, "base.json", BASE),
            "--current", _bench_file(tmp_path, "cur.json", current)]
    if threshold is not None:
        argv += ["--threshold", str(threshold)]
    return gate.main(argv)


def test_synthetic_25pct_slowdown_fails(tmp_path, capsys):
    rc = _run(tmp_path, {"event_dispatch": 0.0125, "single_cell": 0.300})
    assert rc == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_within_budget_passes(tmp_path):
    assert _run(tmp_path, {"event_dispatch": 0.0115,
                           "single_cell": 0.330}) == 0


def test_improvement_passes_and_is_flagged(tmp_path, capsys):
    rc = _run(tmp_path, {"event_dispatch": 0.005, "single_cell": 0.300})
    assert rc == 0
    assert "re-baselining" in capsys.readouterr().out


def test_missing_benchmark_fails(tmp_path, capsys):
    rc = _run(tmp_path, {"event_dispatch": 0.010})
    assert rc == 1
    assert "missing" in capsys.readouterr().err


def test_new_benchmark_not_gated(tmp_path, capsys):
    rc = _run(tmp_path, {"event_dispatch": 0.010, "single_cell": 0.300,
                         "brand_new": 1.0})
    assert rc == 0
    assert "not gated" in capsys.readouterr().out


def test_custom_threshold(tmp_path):
    # +10% slowdown passes the default 20% gate but fails a 5% gate.
    current = {"event_dispatch": 0.011, "single_cell": 0.300}
    assert _run(tmp_path, current) == 0
    assert _run(tmp_path, current, threshold=0.05) == 1


def test_committed_baseline_is_valid():
    """The committed baseline parses and covers the pinned scenarios."""
    baseline = gate.load(str(REPO / "benchmarks" / "baselines"
                             / "BENCH_ci.json"))
    assert baseline["schema"] == "alock-bench-ci/1"
    assert {"event_dispatch", "verb_round_trips", "single_cell",
            "obs_overhead_run"} <= set(baseline["benchmarks"])
    for entry in baseline["benchmarks"].values():
        assert entry["median_s"] > 0


def test_not_a_bench_file(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text("{}")
    with pytest.raises(SystemExit, match="not a bench file"):
        gate.load(str(path))
