"""Tier-1 wrapper around the CI cached-sweep smoke gate, so the exact
script the bench tier runs is exercised locally on every pytest run."""

from __future__ import annotations

import pathlib
import sys

SCRIPTS = pathlib.Path(__file__).resolve().parents[2] / "scripts"


def _load_gate():
    sys.path.insert(0, str(SCRIPTS))
    try:
        import cached_sweep_smoke
    finally:
        sys.path.pop(0)
    return cached_sweep_smoke


def test_gate_passes_on_the_current_tree(tmp_path):
    gate = _load_gate()
    assert gate.run_gate(workers=0, cache_dir=str(tmp_path)) == []


def test_gate_catches_a_non_memoizing_cache(tmp_path, monkeypatch):
    """Sanity-check the gate itself: if lookups never hit, it must
    report the hit-rate failure rather than pass vacuously."""
    from repro.parallel import ResultCache

    gate = _load_gate()
    monkeypatch.setattr(ResultCache, "lookup_cell",
                        lambda self, cell, metric: None)
    problems = gate.run_gate(workers=0, cache_dir=str(tmp_path))
    assert any("hit rate" in p for p in problems)
