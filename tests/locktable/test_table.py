"""Tests for the distributed lock table."""

import pytest

from repro.cluster import Cluster
from repro.common.errors import ConfigError
from repro.locktable import DistributedLockTable


@pytest.fixture()
def cluster():
    return Cluster(4, seed=11)


class TestPartitioning:
    def test_striped_across_nodes(self, cluster):
        table = DistributedLockTable(cluster, 12, "alock")
        for i, entry in enumerate(table.entries):
            assert entry.home_node == i % 4

    def test_equal_partitions(self, cluster):
        table = DistributedLockTable(cluster, 100, "spinlock")
        sizes = [len(table.local_indices(n)) for n in range(4)]
        assert sizes == [25, 25, 25, 25]

    def test_local_and_remote_indices_partition_table(self, cluster):
        table = DistributedLockTable(cluster, 8, "alock")
        for node in range(4):
            local = set(table.local_indices(node))
            remote = set(table.remote_indices(node))
            assert local | remote == set(range(8))
            assert not local & remote

    def test_too_few_locks_rejected(self, cluster):
        with pytest.raises(ConfigError):
            DistributedLockTable(cluster, 3, "alock")

    def test_lock_options_forwarded(self, cluster):
        table = DistributedLockTable(cluster, 4, "alock",
                                     lock_options={"remote_budget": 11})
        assert table.entry(0).lock.remote_budget == 11

    def test_counter_colocated_with_lock(self, cluster):
        from repro.memory.pointer import ptr_node

        table = DistributedLockTable(cluster, 8, "alock")
        for entry in table.entries:
            assert ptr_node(entry.counter_ptr) == entry.home_node


class TestGuardedCounter:
    def test_increments_under_lock(self, cluster):
        table = DistributedLockTable(cluster, 4, "alock")
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            for _ in range(5):
                yield from table.acquire(ctx, 0)
                yield from table.guarded_increment(ctx, 0)
                yield from table.release(ctx, 0)

        p = cluster.env.process(proc())
        cluster.run()
        assert p.ok, p.value
        assert table.counter_value(0) == 5
        table.check_counters(5)

    def test_remote_increment_path(self, cluster):
        table = DistributedLockTable(cluster, 4, "alock")
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from table.acquire(ctx, 1)  # lock homed on node 1
            yield from table.guarded_increment(ctx, 1)
            yield from table.release(ctx, 1)

        p = cluster.env.process(proc())
        cluster.run()
        assert p.ok, p.value
        assert table.counter_value(1) == 1

    def test_check_counters_detects_lost_update(self, cluster):
        table = DistributedLockTable(cluster, 4, "alock")
        with pytest.raises(AssertionError, match="lost updates"):
            table.check_counters(3)

    def test_total_acquisitions(self, cluster):
        table = DistributedLockTable(cluster, 4, "spinlock")
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            for i in range(4):
                yield from table.acquire(ctx, i)
                yield from table.release(ctx, i)

        p = cluster.env.process(proc())
        cluster.run()
        assert p.ok
        assert table.total_acquisitions() == 4


class TestUnguardedRace:
    def test_concurrent_unguarded_increments_lose_updates(self, cluster):
        """Sanity check that the witness has teeth: *without* a lock,
        concurrent read-modify-write on one counter loses updates."""
        table = DistributedLockTable(cluster, 4, "alock")

        def racer(node, tid):
            ctx = cluster.thread_ctx(node, tid)
            for _ in range(10):
                yield from table.guarded_increment(ctx, 0)

        procs = [cluster.env.process(racer(n, t))
                 for n in range(2) for t in range(2)]
        cluster.run()
        assert all(p.ok for p in procs)
        assert table.counter_value(0) < 40
