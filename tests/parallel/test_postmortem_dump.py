"""Failed sweep cells carry their post-mortem dump across the process
boundary as a plain JSON string (CellResult.dump)."""

import json

from repro.locks import LOCK_TYPES, register_lock_type
from repro.obs.postmortem import SCHEMA
from repro.parallel import SweepCell, cell_key, run_cells
from repro.workload.spec import WorkloadSpec
from tests.obs.test_postmortem import HangLock


def test_failed_cell_carries_dump():
    register_lock_type("hang", HangLock)
    try:
        ok_spec = WorkloadSpec(n_nodes=1, threads_per_node=1, n_locks=1,
                               ops_per_thread=2, seed=0, audit="off",
                               lock_kind="spinlock")
        bad_spec = ok_spec.with_(lock_kind="hang")
        cells = [
            SweepCell(index=0, key=cell_key(0, {"seed": 0}), spec=ok_spec),
            SweepCell(index=1, key=cell_key(1, {"seed": 1}), spec=bad_spec),
        ]
        results = run_cells(cells, workers=0)  # inline: registry visible
    finally:
        del LOCK_TYPES["hang"]
    good, bad = results
    assert good.ok and good.dump is None
    assert not bad.ok and "deadlocked" in bad.error
    dump = json.loads(bad.dump)
    assert dump["schema"] == SCHEMA
    assert dump["reason"] == "deadlock"
    assert any("hang[0]@n0.never" in p["waiting_on"]
               for p in dump["processes"])
