"""Wall-clock scaling of the parallel sweep engine.

These assertions need real cores: on the 1-core containers this repo is
often developed in, 4 workers time-slice a single CPU and no speedup is
physically possible, so the tests skip themselves below 4 cores.  The
recorded numbers for such hosts live in
``benchmarks/baselines/BENCH_parallel.json`` (see its ``sweep_scaling``
section); CI's multi-core runners execute the real assertion.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.parallel import run_sweep_parallel
from repro.workload.spec import WorkloadSpec

#: Enough simulated work per cell (~100ms+) that pool spawn overhead is
#: amortized and the speedup measures computation, not IPC.
BASE = WorkloadSpec(n_nodes=4, threads_per_node=3, n_locks=50,
                    ops_per_thread=150, audit="off")
AXES = {"lock_kind": ["alock", "spinlock", "mcs"],
        "locality_pct": [0.0, 50.0, 100.0]}
SEEDS = [1, 2]


def _wall(workers: int) -> float:
    t0 = time.perf_counter()  # simlint: ignore[nondet-source]
    result = run_sweep_parallel(BASE, AXES, seeds=SEEDS, workers=workers)
    elapsed = time.perf_counter() - t0  # simlint: ignore[nondet-source]
    assert not result.failures
    return elapsed


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="scaling needs >= 4 real cores "
                           f"(host has {os.cpu_count()})")
def test_four_worker_sweep_scales():
    """ISSUE acceptance: >= 2.5x wall-clock at 4 workers on a 4-core host.

    The threshold is held slightly below the ideal 4x to absorb pool
    startup, result pickling, and whatever else shares the machine; a
    drop below 1.8x would mean the engine is serializing somewhere and
    must fail loudly even on busy CI hosts, so the hard floor is 1.8x
    with a soft (warning) target of 2.5x.
    """
    serial = _wall(1)
    quad = _wall(4)
    speedup = serial / quad
    assert speedup >= 1.8, f"4-worker sweep speedup {speedup:.2f}x < 1.8x"
    if speedup < 2.5:  # pragma: no cover - host-dependent
        import warnings

        warnings.warn(f"4-worker speedup {speedup:.2f}x below the 2.5x "
                      "target (busy host?)", stacklevel=1)


@pytest.mark.skipif((os.cpu_count() or 1) < 2,
                    reason="needs >= 2 real cores")
def test_two_worker_sweep_not_slower():
    """Two workers must never lose to one: chunked work-stealing should
    at minimum hide pool overhead on any multi-core host."""
    serial = _wall(1)
    dual = _wall(2)
    assert dual <= serial * 1.10, (
        f"2-worker sweep took {dual:.2f}s vs {serial:.2f}s serial")
