"""Failure-path regressions for the parallel engine.

Three bug classes, each of which used to lose information:

* a worker returning a *malformed* chunk (wrong shape, wrong keys,
  missing cells) aborted the whole sweep with a generic late
  ``SimulationError("sweep lost cells ...")`` instead of failing just
  the unanswered cells;
* ``pmap_workloads`` raised only ``failures[0]``, discarding every
  other chunk failure and the failing chunk's identity;
* ``enumerate_grid`` silently let an explicit ``"seed"`` axis collide
  with the ``seeds=`` parameter (the axis overwrote the seeds).
"""

from __future__ import annotations

from concurrent.futures import Executor, Future

import pytest

from repro.common.errors import ConfigError
from repro.parallel import (CellResult, SweepCell, cell_key, enumerate_grid,
                            pmap_workloads, run_cells)
from repro.workload.spec import WorkloadSpec

BASE = WorkloadSpec(n_nodes=2, threads_per_node=1, n_locks=20,
                    ops_per_thread=10, audit="off")


def _cells(n: int) -> list[SweepCell]:
    return [SweepCell(index=i, key=cell_key(i, {"seed": i}),
                      spec=BASE.with_(seed=i))
            for i in range(n)]


class _TamperingExecutor(Executor):
    """Inline executor that corrupts chosen chunks' return values.

    ``tamper(chunk_counter, value)`` sees each successive submission's
    real result and returns what the "worker" hands back — the seam for
    modelling malformed/partial chunks without a real broken pool.
    """

    def __init__(self, tamper):
        self._tamper = tamper
        self._count = 0

    def submit(self, fn, *args, **kwargs):
        fut: Future = Future()
        try:
            value = fn(*args, **kwargs)
        except BaseException as exc:
            fut.set_exception(exc)
            return fut
        try:
            fut.set_result(self._tamper(self._count, value))
        except BaseException as exc:
            fut.set_exception(exc)
        finally:
            self._count += 1
        return fut

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestMalformedChunks:
    def _run(self, tamper, n=4):
        cells = _cells(n)
        results = run_cells(
            cells, workers=2, chunk_size=2,
            executor_factory=lambda workers: _TamperingExecutor(tamper))
        assert [r.key for r in results] == [c.key for c in cells]
        return results

    def test_partial_chunk_fails_only_missing_cells(self):
        """A worker that drops one cell of its chunk fails that cell;
        the chunk's other cell and all other chunks keep their rows."""
        results = self._run(
            lambda i, value: value[1:] if i == 0 else value)
        assert [r.ok for r in results] == [False, True, True, True]
        assert "malformed chunk 0" in results[0].error
        assert "no result for this cell" in results[0].error

    def test_wrong_shape_fails_whole_chunk(self):
        results = self._run(
            lambda i, value: "garbage" if i == 1 else value)
        assert [r.ok for r in results] == [True, True, False, False]
        assert "expected a list of CellResult" in results[2].error

    def test_foreign_keys_are_rejected_not_merged(self):
        """A result tagged with a key that was never submitted in the
        chunk must not leak into the merge; the submitted cell whose
        answer it displaced is recorded as failed."""
        alien = CellResult(key=cell_key(99, {"seed": 99}), ok=True,
                           row={"metric": 1.0})

        results = self._run(
            lambda i, value: [alien, value[1]] if i == 0 else value)
        assert [r.ok for r in results] == [False, True, True, True]
        assert "foreign key" in results[0].error
        assert all(r.key[0] != 99 for r in results)

    def test_duplicate_keys_are_flagged(self):
        results = self._run(
            lambda i, value: [value[0], value[0]] if i == 0 else value)
        assert results[0].ok
        assert not results[1].ok
        assert "duplicate key" in results[1].error

    def test_non_cellresult_entries_are_flagged(self):
        results = self._run(
            lambda i, value: [value[0], {"ok": True}] if i == 0 else value)
        assert results[0].ok
        assert not results[1].ok
        assert "non-CellResult entry" in results[1].error

    def test_serial_shell_validates_too(self):
        """The in-process shell runs the same reconciliation: a lying
        worker function cannot lose a serial sweep either."""
        from repro.parallel.engine import InProcessShell

        cells = _cells(2)

        class _LyingShell(InProcessShell):
            def run_chunks(self, chunks, submit_fn, on_chunk_done):
                for idx, chunk in enumerate(chunks):
                    on_chunk_done(idx, [], None)  # drops every cell

        results = run_cells(cells, chunk_size=1, shell=_LyingShell())
        assert [r.ok for r in results] == [False, False]
        assert all("malformed chunk" in r.error for r in results)


class TestPmapFailureChaining:
    def _boom_factory(self, bad_indices):
        def tamper(i, value):
            if i in bad_indices:
                raise RuntimeError(f"chunk {i} exploded")
            return value
        return lambda workers: _TamperingExecutor(tamper)

    def test_all_failures_chained_with_chunk_identity(self):
        specs = [BASE.with_(seed=s) for s in range(8)]
        with pytest.raises(RuntimeError) as excinfo:
            pmap_workloads(specs, workers=2, chunk_size=2,
                           executor_factory=self._boom_factory({0, 2, 3}))
        exc = excinfo.value
        # The primary failure is the lowest-index failing chunk ...
        assert "chunk 0 exploded" in str(exc)
        notes = "\n".join(getattr(exc, "__notes__", []))
        # ... its note names its own chunk index and spec keys ...
        assert "pmap chunk 0 failed" in notes
        assert "alock n2x1" in notes
        # ... and every other failure is chained, not discarded.
        assert "also failed: chunk 2" in notes
        assert "also failed: chunk 3" in notes
        assert "chunk 2 exploded" in notes

    def test_single_failure_still_raises_original_type(self):
        specs = [BASE.with_(seed=s) for s in range(4)]
        with pytest.raises(RuntimeError, match="chunk 1 exploded"):
            pmap_workloads(specs, workers=2, chunk_size=2,
                           executor_factory=self._boom_factory({1}))

    def test_successful_chunks_unaffected_by_note_machinery(self):
        specs = [BASE.with_(seed=s) for s in range(4)]
        results = pmap_workloads(
            specs, workers=2, chunk_size=2,
            executor_factory=self._boom_factory(set()))
        assert [r.spec.seed for r in results] == [0, 1, 2, 3]


class TestSeedAxisCollision:
    def test_explicit_seed_axis_with_seeds_param_raises(self):
        with pytest.raises(ConfigError, match="'seed' axis is reserved"):
            enumerate_grid(BASE, {"seed": [1, 2]}, seeds=[0, 1])

    def test_seed_axis_alone_is_allowed(self):
        cells = enumerate_grid(BASE, {"seed": [3, 4]})
        assert [dict(c.key[1:])["seed"] for c in cells] == [3, 4]
        assert [c.spec.seed for c in cells] == [3, 4]

    def test_seeds_param_alone_is_allowed(self):
        cells = enumerate_grid(BASE, {"lock_kind": ["alock"]}, seeds=[5])
        assert [c.spec.seed for c in cells] == [5]
