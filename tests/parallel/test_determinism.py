"""Deterministic-merge guarantees: the serialized sweep output is
byte-identical at any worker count, and the experiment modules produce
identical results serial vs parallel."""

from __future__ import annotations

import pytest

from repro.experiments.registry import run_experiment
from repro.parallel import enumerate_grid, run_cells, run_sweep_parallel
from repro.workload.spec import WorkloadSpec

#: Small, count-mode base so each cell is a few milliseconds.
BASE = WorkloadSpec(n_nodes=2, threads_per_node=1, n_locks=20,
                    ops_per_thread=20, audit="off")

#: Fig5/fig6-style axes: the three lock types × contention × locality.
AXES = {"lock_kind": ["alock", "spinlock", "mcs"],
        "n_locks": [20, 100],
        "locality_pct": [90.0, 100.0]}


def test_enumerate_grid_order_and_keys():
    cells = enumerate_grid(BASE, AXES, seeds=[0, 1])
    assert len(cells) == 2 * 3 * 2 * 2
    # Keys carry the enumeration index first and the axis assignments.
    assert [c.index for c in cells] == list(range(len(cells)))
    assert cells[0].key[0] == 0
    assert dict(cells[0].key[1:]) == {"seed": 0, "lock_kind": "alock",
                                      "n_locks": 20, "locality_pct": 90.0}
    # Seeds are the outermost axis: the second half repeats the grid.
    half = len(cells) // 2
    assert all(dict(c.key[1:])["seed"] == 0 for c in cells[:half])
    assert all(dict(c.key[1:])["seed"] == 1 for c in cells[half:])


def test_single_worker_matches_serial_byte_identical():
    serial = run_sweep_parallel(BASE, AXES, workers=0)
    one = run_sweep_parallel(BASE, AXES, workers=1)
    assert serial.to_json_bytes() == one.to_json_bytes()
    assert serial.to_csv_bytes() == one.to_csv_bytes()


def test_workers4_byte_identical_to_serial():
    """The acceptance gate: fig5/fig6-style config axes, 4 workers,
    byte-identical JSON and CSV."""
    serial = run_sweep_parallel(BASE, AXES, seeds=[0], workers=0)
    par = run_sweep_parallel(BASE, AXES, seeds=[0], workers=4)
    assert serial.to_json_bytes() == par.to_json_bytes()
    assert serial.to_csv_bytes() == par.to_csv_bytes()
    assert not serial.failures


def test_chunk_size_does_not_change_output():
    serial = run_sweep_parallel(BASE, AXES, workers=0)
    for chunk_size in (1, 3, 100):
        par = run_sweep_parallel(BASE, AXES, workers=2, chunk_size=chunk_size)
        assert serial.to_json_bytes() == par.to_json_bytes()


def test_run_cells_results_in_key_order():
    cells = enumerate_grid(BASE, {"lock_kind": ["alock", "mcs"]})
    results = run_cells(cells, workers=2, chunk_size=1)
    assert [r.key for r in results] == [c.key for c in cells]


@pytest.mark.parametrize("experiment_id", ["fig5", "fig6"])
def test_experiment_parallel_parity(experiment_id):
    """fig5/fig6 via the registry: workers=2 reproduces the serial rows,
    series, and shape-check outcomes exactly."""
    serial = run_experiment(experiment_id, scale="smoke", seed=0)
    par = run_experiment(experiment_id, scale="smoke", seed=0, workers=2)
    assert serial.rows == par.rows
    assert serial.shape_checks == par.shape_checks
    assert serial.series == par.series
    assert serial.to_markdown() == par.to_markdown()
