"""Edge cases of the parallel engine: more workers than cells, crashing
cells, and interrupt handling (no orphan processes)."""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.common.errors import ConfigError
from repro.parallel import (SweepCell, cell_key, enumerate_grid, run_cells,
                            run_sweep_parallel)
from repro.workload.spec import WorkloadSpec

BASE = WorkloadSpec(n_nodes=2, threads_per_node=1, n_locks=20,
                    ops_per_thread=10, audit="off")


def _cells(n: int, **overrides) -> list[SweepCell]:
    return [SweepCell(index=i, key=cell_key(i, {"seed": i}),
                      spec=BASE.with_(seed=i, **overrides))
            for i in range(n)]


def test_more_workers_than_cells():
    cells = _cells(2)
    results = run_cells(cells, workers=6)
    assert [r.ok for r in results] == [True, True]
    assert [r.key for r in results] == [c.key for c in cells]


def test_raising_cell_becomes_failed_record():
    """A diverging cell is recorded as failed; the sweep completes and
    every other cell still produces its row."""
    cells = _cells(4)
    # lock_kind is validated inside the worker (lock factory), so this
    # cell raises during run_workload, not at spec construction.
    bad = SweepCell(index=4, key=cell_key(4, {"seed": 4}),
                    spec=BASE.with_(lock_kind="no-such-lock"))
    all_cells = cells + [bad]
    results = run_cells(all_cells, workers=2, chunk_size=1)
    assert len(results) == 5
    assert [r.ok for r in results] == [True, True, True, True, False]
    assert "no-such-lock" in results[-1].error
    assert results[-1].row is None


def test_raising_cell_serial_path_matches():
    bad = SweepCell(index=0, key=cell_key(0, {"seed": 0}),
                    spec=BASE.with_(lock_kind="no-such-lock"))
    (serial,) = run_cells([bad], workers=0)
    (par,) = run_cells([bad], workers=2)
    assert not serial.ok and not par.ok
    # Same exception, same first line (tracebacks differ by process).
    assert serial.error.splitlines()[0] == par.error.splitlines()[0]


def test_failed_cells_survive_serialization():
    axes = {"lock_kind": ["alock", "no-such-lock"]}
    serial = run_sweep_parallel(BASE, axes, workers=0)
    par = run_sweep_parallel(BASE, axes, workers=2)
    assert len(serial.failures) == len(par.failures) == 1
    assert len(serial.rows) == 1
    # Byte identity must hold for the *rows*; error text includes
    # process-specific traceback paths, so compare CSV minus the error
    # column via the JSON row payloads.
    import json
    s = json.loads(serial.to_json_bytes())
    p = json.loads(par.to_json_bytes())
    for cs, cp in zip(s["cells"], p["cells"]):
        assert cs["key"] == cp["key"]
        assert cs["ok"] == cp["ok"]
        assert cs["row"] == cp["row"]


def test_keyboard_interrupt_leaves_no_orphans():
    """An interrupt mid-sweep propagates out of run_cells and the pool
    is fully shut down — no orphan worker processes remain."""
    cells = _cells(16, ops_per_thread=200)

    hits = {"n": 0}

    def boom(result):
        hits["n"] += 1
        if hits["n"] == 2:
            raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        run_cells(cells, workers=2, chunk_size=1, on_result=boom)
    # shutdown(wait=True) joins the pool before re-raising; give the
    # reaper a beat, then require every child to be gone.
    deadline = time.monotonic() + 5.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []


def test_unknown_metric_rejected():
    with pytest.raises(ConfigError, match="unknown metric"):
        run_cells(_cells(1), metric="nope")


def test_empty_grid():
    res = run_sweep_parallel(BASE, {"lock_kind": []}, workers=2)
    assert res.results == []
    assert res.to_csv_bytes().startswith(b"index,")


def test_workers_beyond_cells_sweep_byte_identity():
    axes = {"lock_kind": ["alock"]}
    serial = run_sweep_parallel(BASE, axes, workers=0)
    par = run_sweep_parallel(BASE, axes, workers=8)
    assert serial.to_json_bytes() == par.to_json_bytes()


def test_enumerate_grid_rejects_unpicklable_axis():
    class Weird:
        pass

    with pytest.raises(ConfigError, match="process boundary"):
        enumerate_grid(BASE, {"lock_options": [((("x", Weird()),))]})
