"""The content-addressed sweep cache: hits, misses, invalidation scope,
resume, and corruption handling.

The acceptance gates: an unchanged grid re-run is all hits and
byte-identical to the uncached serial path; editing one lock's source
invalidates only that lock's cells; an interrupted sweep resumes
recomputing only the missing cells; a corrupted store entry is a miss,
never a crash.
"""

from __future__ import annotations

import json

import pytest

from repro.parallel import (ResultCache, SourceFingerprinter, enumerate_grid,
                            pmap_workloads, run_cells, run_sweep_parallel)
from repro.parallel.cache import CACHE_FORMAT
from repro.workload.spec import WorkloadSpec

BASE = WorkloadSpec(n_nodes=2, threads_per_node=1, n_locks=20,
                    ops_per_thread=10, audit="off")

AXES = {"lock_kind": ["alock", "spinlock", "mcs"],
        "locality_pct": [90.0, 100.0]}

N_CELLS = 6


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "store"))


def _fresh(tmp_path) -> ResultCache:
    """A new cache instance over the same store — models a new process
    resuming against the on-disk state."""
    return ResultCache(str(tmp_path / "store"))


class TestHitMiss:
    def test_first_run_is_all_misses_and_writes(self, cache):
        res = run_sweep_parallel(BASE, AXES, workers=0, cache=cache)
        assert res.cache_misses == N_CELLS
        assert res.cache_hits == 0
        assert cache.stats.writes == N_CELLS

    def test_unchanged_rerun_is_all_hits_and_byte_identical(self, cache, tmp_path):
        uncached = run_sweep_parallel(BASE, AXES, workers=0)
        run_sweep_parallel(BASE, AXES, workers=0, cache=cache)
        rerun = run_sweep_parallel(BASE, AXES, workers=0,
                                   cache=_fresh(tmp_path))
        assert rerun.cache_hits == N_CELLS
        assert rerun.cache_misses == 0
        assert rerun.to_json_bytes() == uncached.to_json_bytes()
        assert rerun.to_csv_bytes() == uncached.to_csv_bytes()

    def test_cached_parallel_run_byte_identical(self, cache, tmp_path):
        uncached = run_sweep_parallel(BASE, AXES, workers=0)
        run_sweep_parallel(BASE, AXES, workers=2, cache=cache)
        rerun = run_sweep_parallel(BASE, AXES, workers=2,
                                   cache=_fresh(tmp_path))
        assert rerun.cache_hits == N_CELLS
        assert rerun.to_json_bytes() == uncached.to_json_bytes()
        assert rerun.to_csv_bytes() == uncached.to_csv_bytes()

    def test_different_metric_is_a_different_address(self, cache):
        run_sweep_parallel(BASE, AXES, workers=0, cache=cache)
        res = run_sweep_parallel(BASE, AXES, workers=0, metric="p50",
                                 cache=cache)
        assert res.cache_hits == 0
        assert res.cache_misses == N_CELLS

    def test_different_seed_is_a_different_address(self, cache):
        run_sweep_parallel(BASE, AXES, seeds=[0], workers=0, cache=cache)
        res = run_sweep_parallel(BASE, AXES, seeds=[1], workers=0,
                                 cache=cache)
        assert res.cache_hits == 0

    def test_failed_cells_are_not_cached(self, cache):
        axes = {"lock_kind": ["alock", "no-such-lock"]}
        first = run_sweep_parallel(BASE, axes, workers=0, cache=cache)
        assert len(first.failures) == 1
        assert cache.stats.writes == 1  # only the successful cell
        second = run_sweep_parallel(BASE, axes, workers=0, cache=cache)
        assert second.cache_hits == 1  # alock
        assert second.cache_misses == 1  # the failing cell retried


class TestInvalidationScope:
    """Editing a lock's source (modelled via the fingerprinter overlay)
    invalidates exactly that lock's cells."""

    def _hits_by_lock(self, tmp_path, overlay):
        cache = ResultCache(str(tmp_path / "store"),
                            fingerprinter=SourceFingerprinter(overlay))
        cells = enumerate_grid(BASE, AXES)
        hits = {}
        for cell in cells:
            kind = dict(cell.key[1:])["lock_kind"]
            hit = cache.lookup_cell(cell, "throughput")
            hits.setdefault(kind, []).append(hit is not None)
        return hits

    def test_editing_one_lock_invalidates_only_its_cells(self, cache, tmp_path):
        run_sweep_parallel(BASE, AXES, workers=0, cache=cache)
        hits = self._hits_by_lock(
            tmp_path,
            overlay={"repro.locks.baselines.spinlock": b"# edited\n"})
        assert hits["spinlock"] == [False, False]
        assert hits["alock"] == [True, True]
        assert hits["mcs"] == [True, True]

    def test_editing_an_imported_helper_invalidates_its_lock(self, cache, tmp_path):
        """peterson.py is not a registered kind but ALock imports it —
        the closure walk must catch the dependency."""
        run_sweep_parallel(BASE, AXES, workers=0, cache=cache)
        hits = self._hits_by_lock(
            tmp_path,
            overlay={"repro.locks.alock.peterson": b"# edited\n"})
        assert hits["alock"] == [False, False]
        assert hits["spinlock"] == [True, True]
        assert hits["mcs"] == [True, True]

    def test_editing_shared_core_invalidates_everything(self, cache, tmp_path):
        run_sweep_parallel(BASE, AXES, workers=0, cache=cache)
        hits = self._hits_by_lock(
            tmp_path, overlay={"repro.sim.core": b"# edited\n"})
        assert all(not any(flags) for flags in hits.values())


class TestResume:
    def test_interrupted_sweep_resumes_only_missing_cells(self, cache, tmp_path):
        """Interrupt after 2 completed cells; the re-run recomputes
        exactly the other cells and serializes byte-identically."""
        uncached = run_sweep_parallel(BASE, AXES, workers=0)
        seen = {"n": 0}

        def interrupt(result):
            seen["n"] += 1
            if seen["n"] == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_sweep_parallel(BASE, AXES, workers=0, chunk_size=1,
                               on_result=interrupt, cache=cache)
        # Write-back happens before the progress callback: both
        # completed cells are durable.
        assert cache.stats.writes == 2

        resumed = run_sweep_parallel(BASE, AXES, workers=0,
                                     cache=_fresh(tmp_path))
        assert resumed.cache_hits == 2
        assert resumed.cache_misses == N_CELLS - 2
        assert resumed.to_json_bytes() == uncached.to_json_bytes()
        assert resumed.to_csv_bytes() == uncached.to_csv_bytes()

    def test_all_hit_sweep_never_builds_a_pool(self, cache, tmp_path):
        """With every cell cached, workers=8 must not spawn anything —
        the executor seam would blow up if touched."""
        run_sweep_parallel(BASE, AXES, workers=0, cache=cache)

        def forbidden_factory(workers):
            raise AssertionError("pool built for an all-hit sweep")

        res = run_sweep_parallel(BASE, AXES, workers=8,
                                 executor_factory=forbidden_factory,
                                 cache=_fresh(tmp_path))
        assert res.cache_hits == N_CELLS


class TestCorruption:
    def _one_cell(self):
        return enumerate_grid(BASE, {"lock_kind": ["alock"]})

    def test_corrupted_entry_is_a_miss_not_a_crash(self, cache):
        cells = self._one_cell()
        run_cells(cells, cache=cache)
        digest = cache.cell_digest(cells[0].spec, "throughput")
        path = cache.store.json_path(digest)
        with open(path, "wb") as fh:
            fh.write(b"\x00garbage{{{")
        fresh = ResultCache(cache.cache_dir)
        results = run_cells(cells, cache=fresh)
        assert results[0].ok
        assert fresh.stats.hits == 0
        assert fresh.stats.misses == 1
        # ... and the recompute repaired the entry.
        repaired = ResultCache(cache.cache_dir)
        assert repaired.lookup_cell(cells[0], "throughput") is not None

    def test_wrong_format_version_is_a_miss(self, cache):
        cells = self._one_cell()
        run_cells(cells, cache=cache)
        digest = cache.cell_digest(cells[0].spec, "throughput")
        cache.store.put_json(digest, {"format": CACHE_FORMAT + 1,
                                      "row": {"metric": 1.0}})
        fresh = ResultCache(cache.cache_dir)
        assert fresh.lookup_cell(cells[0], "throughput") is None
        assert fresh.stats.invalid == 1

    def test_non_primitive_row_fails_the_boundary_audit(self, cache):
        cells = self._one_cell()
        digest = cache.cell_digest(cells[0].spec, "throughput")
        cache.store.put_json(digest, {"format": CACHE_FORMAT,
                                      "row": {"metric": [1.0, {"a": None}]}})
        # Nested primitives are fine ...
        assert ResultCache(cache.cache_dir).lookup_cell(
            cells[0], "throughput") is not None
        # ... a row that is not a dict is not.
        cache.store.put_json(digest, {"format": CACHE_FORMAT, "row": 7})
        fresh = ResultCache(cache.cache_dir)
        assert fresh.lookup_cell(cells[0], "throughput") is None
        assert fresh.stats.invalid == 1


class TestPmapCache:
    def test_full_runresults_round_trip(self, cache, tmp_path):
        specs = [BASE.with_(seed=s) for s in (0, 1)]
        plain = pmap_workloads(specs)
        pmap_workloads(specs, cache=cache)
        resumed = pmap_workloads(specs, cache=_fresh(tmp_path))
        assert [r.summary_row() for r in resumed] == \
               [r.summary_row() for r in plain]
        assert [r.spec for r in resumed] == specs

    def test_corrupt_pickle_is_a_miss(self, cache, tmp_path):
        specs = [BASE.with_(seed=0)]
        pmap_workloads(specs, cache=cache)
        digest = cache.run_digest(specs[0])
        path = cache.store.json_path(digest)[:-len(".json")] + ".pkl"
        with open(path, "wb") as fh:
            fh.write(b"not a pickle")
        fresh = _fresh(tmp_path)
        results = pmap_workloads(specs, cache=fresh)
        assert results[0].spec == specs[0]
        assert fresh.stats.misses == 1


class TestDigestStability:
    def test_digest_is_stable_across_instances(self, cache, tmp_path):
        spec = BASE.with_(seed=7)
        assert cache.cell_digest(spec, "p99") == \
               _fresh(tmp_path).cell_digest(spec, "p99")

    def test_digest_depends_on_every_keyed_part(self, cache):
        spec = BASE.with_(seed=7)
        base = cache.cell_digest(spec, "p99")
        assert cache.cell_digest(spec.with_(seed=8), "p99") != base
        assert cache.cell_digest(spec, "p50") != base
        assert cache.cell_digest(spec.with_(n_locks=21), "p99") != base

    def test_store_entry_is_canonical_json(self, cache):
        cells = enumerate_grid(BASE, {"lock_kind": ["alock"]})
        run_cells(cells, cache=cache)
        digest = cache.cell_digest(cells[0].spec, "throughput")
        with open(cache.store.json_path(digest), "rb") as fh:
            raw = fh.read()
        payload = json.loads(raw)
        assert payload["format"] == CACHE_FORMAT
        assert json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8") == raw
