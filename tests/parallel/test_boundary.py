"""The process-boundary contract: only primitive-keyed cell specs cross
into workers, and everything that crosses survives pickling unchanged."""

from __future__ import annotations

import pickle

import pytest

from repro.common.errors import ConfigError
from repro.faults import FaultPlan
from repro.parallel import (SweepCell, cell_key, check_boundary_value,
                            enumerate_grid, worker_entry)
from repro.parallel.engine import run_cell_chunk, run_spec_chunk
from repro.workload.spec import WorkloadSpec


def test_worker_entry_marks_function():
    @worker_entry
    def f(x):
        return x

    assert f.__is_worker_entry__ is True
    assert f(3) == 3


def test_engine_entry_points_are_marked():
    assert run_cell_chunk.__is_worker_entry__
    assert run_spec_chunk.__is_worker_entry__


def test_boundary_accepts_primitives_and_frozen_dataclasses():
    check_boundary_value(1)
    check_boundary_value("x")
    check_boundary_value(None)
    check_boundary_value((1, [2.0, "a"], {"k": b"v"}))
    check_boundary_value(WorkloadSpec(ops_per_thread=1))
    check_boundary_value(WorkloadSpec(ops_per_thread=1, faults=FaultPlan()))


def test_boundary_rejects_live_objects():
    from repro.sim.core import Environment

    with pytest.raises(ConfigError, match="process boundary"):
        check_boundary_value(Environment())
    with pytest.raises(ConfigError, match="process boundary"):
        check_boundary_value({"env": Environment()})
    with pytest.raises(ConfigError, match=r"cell\[1\]"):
        check_boundary_value((1, object()))


def test_cells_pickle_round_trip_unchanged():
    """What the pool actually ships: cells must round-trip through
    pickle bit-for-bit (frozen dataclasses of primitives do)."""
    base = WorkloadSpec(n_nodes=2, threads_per_node=1, n_locks=20,
                        ops_per_thread=5)
    cells = enumerate_grid(base, {"lock_kind": ["alock", "mcs"],
                                  "locality_pct": [90.0, 100.0]}, seeds=[0, 7])
    blob = pickle.dumps(tuple(cells))
    restored = pickle.loads(blob)
    assert tuple(cells) == restored
    for cell in restored:
        check_boundary_value(cell.key)
        check_boundary_value(cell.spec)


def test_sweepcell_constructor_audits():
    with pytest.raises(ConfigError):
        SweepCell(index=0, key=(0, ("x", object())),
                  spec=WorkloadSpec(ops_per_thread=1))


def test_cell_key_stable():
    assert cell_key(3, {"seed": 1, "lock_kind": "alock"}) == \
        (3, ("seed", 1), ("lock_kind", "alock"))
