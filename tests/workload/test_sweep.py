"""Tests for the sweep/grid helpers."""

import pytest

from repro.workload import (
    SweepResult,
    WorkloadSpec,
    grid,
    p99_metric,
    sweep,
    throughput_metric,
)

from tests.conftest import small_workload_spec

BASE = small_workload_spec(ops_per_thread=8, seed=0, audit="off")


class TestSweep:
    def test_one_axis(self):
        result = sweep(BASE, "threads_per_node", [1, 2, 3])
        assert result.axes == ("threads_per_node",)
        assert result.column("threads_per_node") == [1, 2, 3]
        assert all(m > 0 for m in result.column("metric"))

    def test_metric_callable(self):
        by_tput = sweep(BASE, "threads_per_node", [2], metric=throughput_metric)
        by_p99 = sweep(BASE, "threads_per_node", [2], metric=p99_metric)
        assert by_tput.points[0]["metric"] != by_p99.points[0]["metric"]

    def test_results_attached(self):
        result = sweep(BASE, "n_locks", [4, 8])
        assert result.points[0]["result"].completed_ops == 32

    def test_best(self):
        result = sweep(BASE, "threads_per_node", [1, 4])
        # count mode: same ops; throughput is higher with more threads
        assert result.best()["threads_per_node"] == 4
        assert result.best(maximize=False)["threads_per_node"] == 1


class TestGrid:
    def test_cartesian_product(self):
        result = grid(BASE, lock_kind=["alock", "spinlock"],
                      locality_pct=[100.0])
        assert len(result.points) == 2
        kinds = {p["lock_kind"] for p in result.points}
        assert kinds == {"alock", "spinlock"}

    def test_series_by(self):
        result = grid(BASE, lock_kind=["alock", "spinlock"],
                      threads_per_node=[1, 2])
        series = result.series_by("lock_kind", "threads_per_node")
        assert set(series) == {"alock", "spinlock"}
        xs, ys = series["alock"]
        assert xs == [1, 2]
        assert len(ys) == 2

    def test_grid_deterministic(self):
        a = grid(BASE, threads_per_node=[1, 2])
        b = grid(BASE, threads_per_node=[1, 2])
        assert a.column("metric") == b.column("metric")


class TestSweepResult:
    def test_column_missing_key_raises(self):
        result = SweepResult(axes=("x",), points=[{"x": 1, "metric": 2.0}])
        with pytest.raises(KeyError):
            result.column("nope")
