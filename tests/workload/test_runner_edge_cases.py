"""Runner edge cases: error propagation, degenerate windows, verb
accounting, and the build_cluster escape hatch."""

import pytest

from repro.common.errors import SimulationError
from repro.rdma.config import RdmaConfig
from repro.workload import WorkloadSpec, run_workload
from repro.workload.runner import build_cluster


class TestErrorPropagation:
    def test_failing_lock_surfaces_in_count_mode(self):
        """A lock that raises mid-protocol must fail the run loudly, not
        silently produce partial numbers."""
        from repro.locks.base import LOCK_TYPES, DistributedLock, register_lock_type

        class ExplodingLock(DistributedLock):
            kind = "exploding"

            def lock(self, ctx):
                yield ctx.env.timeout(10)
                raise RuntimeError("boom")

            def unlock(self, ctx):  # pragma: no cover - never reached
                yield ctx.env.timeout(10)

        if "exploding" not in LOCK_TYPES:
            register_lock_type(
                "exploding",
                lambda cluster, home_node, **kw: ExplodingLock(cluster, home_node, **kw))

        with pytest.raises(SimulationError, match="client .* failed"):
            run_workload(WorkloadSpec(n_nodes=2, threads_per_node=1,
                                      n_locks=2, lock_kind="exploding",
                                      ops_per_thread=1, audit="off"))


class TestWindows:
    def test_zero_warmup_allowed(self):
        result = run_workload(WorkloadSpec(
            n_nodes=2, threads_per_node=1, n_locks=2, lock_kind="alock",
            warmup_ns=0.0, measure_ns=300_000, audit="off"))
        assert result.measured_ops > 0

    def test_window_shorter_than_one_op(self):
        """A measurement window shorter than any op yields zero samples
        but a well-formed result, not a crash."""
        result = run_workload(WorkloadSpec(
            n_nodes=2, threads_per_node=1, n_locks=2, lock_kind="alock",
            locality_pct=0.0, warmup_ns=0.0, measure_ns=100.0, audit="off"))
        assert result.measured_ops == 0
        assert result.throughput_ops_per_sec == 0.0
        assert result.latency.count == 0


class TestAccounting:
    def test_verb_counts_zero_for_pure_local_alock(self):
        result = run_workload(WorkloadSpec(
            n_nodes=2, threads_per_node=2, n_locks=4, locality_pct=100.0,
            lock_kind="alock", ops_per_thread=10, audit="off"))
        assert result.verb_counts == {"rRead": 0, "rWrite": 0,
                                      "rCAS": 0, "rFAA": 0}
        assert result.loopback_verbs == 0

    def test_verb_counts_nonzero_for_baseline(self):
        result = run_workload(WorkloadSpec(
            n_nodes=2, threads_per_node=2, n_locks=4, locality_pct=100.0,
            lock_kind="spinlock", ops_per_thread=10, audit="off"))
        assert result.verb_counts["rCAS"] >= 40
        assert result.loopback_verbs > 0

    def test_nic_stats_cover_all_nodes(self):
        result = run_workload(WorkloadSpec(
            n_nodes=3, threads_per_node=1, n_locks=3, locality_pct=50.0,
            lock_kind="alock", ops_per_thread=5, audit="off"))
        assert [n["node"] for n in result.nic_stats] == [0, 1, 2]
        assert all("rx_utilization" in n for n in result.nic_stats)


class TestBuildCluster:
    def test_exposes_cluster_and_table(self):
        spec = WorkloadSpec(n_nodes=2, threads_per_node=1, n_locks=6,
                            lock_kind="mcs", ops_per_thread=1)
        cluster, table = build_cluster(spec)
        assert cluster.n_nodes == 2
        assert len(table) == 6
        assert table.lock_kind == "mcs"

    def test_cluster_kwargs_forwarded(self):
        spec = WorkloadSpec(n_nodes=2, threads_per_node=1, n_locks=2,
                            lock_kind="alock", ops_per_thread=1)
        cfg = RdmaConfig().with_fabric(one_way_latency_ns=123.0)
        cluster, _ = build_cluster(spec, config=cfg)
        assert cluster.config.fabric.one_way_latency_ns == 123.0
