"""Tests for the per-thread lock picker."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.workload import LockPicker, WorkloadSpec


def make_picker(locality=90.0, local=(0, 2), remote=(1, 3, 5),
                distribution="uniform", seed=0, theta=0.99):
    spec = WorkloadSpec(n_nodes=2, n_locks=6, locality_pct=locality,
                        distribution=distribution, zipf_theta=theta)
    return LockPicker(spec, node=0, thread=0,
                      local_indices=list(local), remote_indices=list(remote),
                      rng=np.random.default_rng(seed))


class TestLocality:
    def test_full_locality_only_local(self):
        picker = make_picker(locality=100.0)
        picks = {picker.next_lock() for _ in range(200)}
        assert picks <= {0, 2}
        assert picker.remote_picks == 0

    def test_zero_locality_only_remote(self):
        picker = make_picker(locality=0.0)
        picks = {picker.next_lock() for _ in range(200)}
        assert picks <= {1, 3, 5}
        assert picker.local_picks == 0

    def test_observed_locality_tracks_target(self):
        picker = make_picker(locality=90.0)
        for _ in range(5000):
            picker.next_lock()
        assert picker.observed_locality_pct == pytest.approx(90.0, abs=2.0)

    def test_empty_local_partition_rejected(self):
        spec = WorkloadSpec(n_nodes=2, n_locks=4)
        with pytest.raises(ConfigError):
            LockPicker(spec, 0, 0, [], [1, 2], np.random.default_rng(0))

    def test_remote_needed_but_missing_rejected(self):
        spec = WorkloadSpec(n_nodes=2, n_locks=4, locality_pct=50)
        with pytest.raises(ConfigError):
            LockPicker(spec, 0, 0, [0, 1], [], np.random.default_rng(0))


class TestDistributions:
    def test_uniform_covers_all_local_locks(self):
        picker = make_picker(locality=100.0, local=tuple(range(8)), remote=())
        picks = {picker.next_lock() for _ in range(500)}
        assert picks == set(range(8))

    def test_zipfian_skews_to_first_rank(self):
        picker = make_picker(locality=100.0, local=tuple(range(16)), remote=(),
                             distribution="zipfian", theta=1.2)
        counts = np.zeros(16)
        for _ in range(4000):
            counts[picker.next_lock()] += 1
        assert counts[0] > counts[8] * 3

    def test_zipfian_theta_zero_roughly_uniform(self):
        picker = make_picker(locality=100.0, local=tuple(range(8)), remote=(),
                             distribution="zipfian", theta=1e-9)
        counts = np.zeros(8)
        for _ in range(8000):
            counts[picker.next_lock()] += 1
        assert counts.min() > 0.7 * counts.max()


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = make_picker(seed=33)
        b = make_picker(seed=33)
        assert [a.next_lock() for _ in range(100)] == [b.next_lock() for _ in range(100)]

    def test_different_seed_different_stream(self):
        a = make_picker(seed=1)
        b = make_picker(seed=2)
        assert [a.next_lock() for _ in range(50)] != [b.next_lock() for _ in range(50)]
