"""Tests for WorkloadSpec validation and helpers."""

import pytest

from repro.common.errors import ConfigError
from repro.workload import WorkloadSpec


class TestValidation:
    def test_defaults_valid(self):
        WorkloadSpec()

    def test_bad_nodes(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(n_nodes=0)

    def test_bad_threads(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(threads_per_node=0)

    def test_locks_fewer_than_nodes(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(n_nodes=4, n_locks=3)

    def test_locality_range(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(locality_pct=101)
        with pytest.raises(ConfigError):
            WorkloadSpec(locality_pct=-1)

    def test_remote_access_needs_two_nodes(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(n_nodes=1, n_locks=4, locality_pct=95)

    def test_one_node_full_locality_ok(self):
        WorkloadSpec(n_nodes=1, n_locks=4, locality_pct=100)

    def test_duration_mode_needs_window(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(measure_ns=0)

    def test_unknown_distribution(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(distribution="pareto")


class TestHelpers:
    def test_lock_options_dict_normalized(self):
        spec = WorkloadSpec(lock_options={"remote_budget": 10, "local_budget": 2})
        assert spec.options_dict == {"remote_budget": 10, "local_budget": 2}
        # normalized form is hashable
        hash(spec)

    def test_with_override(self):
        spec = WorkloadSpec(n_nodes=2, n_locks=10)
        other = spec.with_(n_locks=20)
        assert other.n_locks == 20
        assert spec.n_locks == 10

    def test_total_threads(self):
        assert WorkloadSpec(n_nodes=3, threads_per_node=4, n_locks=3).total_threads == 12

    def test_label_mentions_axes(self):
        label = WorkloadSpec(n_nodes=5, threads_per_node=2, n_locks=20,
                             locality_pct=95, lock_kind="alock").label()
        assert "alock" in label and "n5x2" in label and "95" in label
