"""Tests for the fairness metrics and their integration with runs."""

import pytest
from hypothesis import given, strategies as st

from repro.workload import (
    FairnessReport,
    WorkloadSpec,
    jain_index,
    min_max_share,
    run_workload,
)


class TestJainIndex:
    def test_perfect_equality(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_total_starvation(self):
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_is_nan(self):
        import math
        assert math.isnan(jain_index([]))

    def test_all_zero_degenerate(self):
        assert jain_index([0, 0]) == 1.0

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=20))
    def test_bounds(self, counts):
        j = jain_index(counts)
        assert 1.0 / len(counts) - 1e-9 <= j <= 1.0 + 1e-9

    @given(st.lists(st.integers(1, 1000), min_size=2, max_size=20),
           st.integers(2, 5))
    def test_scale_invariant(self, counts, k):
        assert jain_index(counts) == pytest.approx(
            jain_index([c * k for c in counts]))


class TestMinMaxShare:
    def test_equality(self):
        assert min_max_share([3, 3, 3]) == 1.0

    def test_starvation(self):
        assert min_max_share([0, 10]) == 0.0

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=10))
    def test_bounds(self, counts):
        s = min_max_share(counts)
        assert 0.0 <= s <= 1.0


class TestFairnessReport:
    def test_from_per_thread_ops(self):
        report = FairnessReport.from_per_thread_ops(
            {(0, 0): 10, (0, 1): 10, (1, 0): 10})
        assert report.jain == pytest.approx(1.0)
        assert report.split_by_node() == {0: 20, 1: 10}


class TestRunFairness:
    def test_count_mode_run_is_trivially_fair(self):
        result = run_workload(WorkloadSpec(
            n_nodes=2, threads_per_node=2, n_locks=4, lock_kind="alock",
            ops_per_thread=10, audit="off"))
        report = FairnessReport.from_per_thread_ops(result.per_thread_ops)
        assert report.jain == pytest.approx(1.0)

    def test_alock_duration_run_is_fair_across_threads(self):
        """In a symmetric contended workload, no thread should get a
        disproportionate share — the budget policy at work."""
        result = run_workload(WorkloadSpec(
            n_nodes=2, threads_per_node=4, n_locks=2, locality_pct=100.0,
            lock_kind="alock", warmup_ns=100_000, measure_ns=800_000,
            audit="off"))
        report = FairnessReport.from_per_thread_ops(result.per_thread_ops)
        assert report.jain > 0.9
        assert report.min_max > 0.5
