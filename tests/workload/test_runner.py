"""Tests for the workload runner and metrics."""

import numpy as np
import pytest

from repro.workload import LatencySummary, WorkloadSpec, run_workload
from tests.conftest import small_workload_spec as small_spec


class TestCountMode:
    def test_all_ops_complete(self):
        result = run_workload(small_spec())
        assert result.completed_ops == 40
        assert result.measured_ops == 40
        assert len(result.latencies_ns) == 40

    def test_counters_verified_when_cs_counter(self):
        run_workload(small_spec(cs_counter=True))  # raises on lost updates

    def test_per_thread_ops_recorded(self):
        result = run_workload(small_spec())
        assert result.per_thread_ops == {(n, t): 10 for n in range(2) for t in range(2)}

    def test_latencies_positive(self):
        result = run_workload(small_spec())
        assert (result.latencies_ns > 0).all()

    def test_local_mask_full_locality(self):
        result = run_workload(small_spec(locality_pct=100.0))
        assert result.local_mask.all()

    def test_mixed_locality_has_both_classes(self):
        result = run_workload(small_spec(locality_pct=50.0, ops_per_thread=30))
        assert result.local_mask.any()
        assert (~result.local_mask).any()

    def test_audit_clean_for_alock(self):
        result = run_workload(small_spec(locality_pct=60.0, ops_per_thread=15))
        assert result.atomicity_violations == 0

    def test_all_lock_kinds_run(self):
        for kind in ("alock", "spinlock", "mcs"):
            result = run_workload(small_spec(lock_kind=kind, ops_per_thread=5))
            assert result.completed_ops == 20

    def test_cs_delay_lengthens_latency(self):
        fast = run_workload(small_spec())
        slow = run_workload(small_spec(cs_ns=5_000))
        assert slow.latencies_ns.mean() > fast.latencies_ns.mean() + 4_000

    def test_think_time_does_not_count_into_latency(self):
        base = run_workload(small_spec(threads_per_node=1))
        thinky = run_workload(small_spec(threads_per_node=1, think_ns=10_000))
        assert thinky.latencies_ns.mean() == pytest.approx(
            base.latencies_ns.mean(), rel=0.01)


class TestDurationMode:
    def test_measures_window_only(self):
        spec = small_spec(ops_per_thread=0, warmup_ns=100_000,
                          measure_ns=500_000)
        result = run_workload(spec)
        assert result.window_ns == 500_000
        assert result.measured_ops > 0
        assert result.throughput_ops_per_sec > 0

    def test_longer_window_more_ops(self):
        short = run_workload(small_spec(ops_per_thread=0, measure_ns=300_000))
        long = run_workload(small_spec(ops_per_thread=0, measure_ns=1_200_000))
        assert long.measured_ops > 2 * short.measured_ops

    def test_throughput_scale_sane(self):
        """4 threads of ~600ns local ALock ops -> order 10^6..10^7 op/s."""
        result = run_workload(small_spec(ops_per_thread=0, measure_ns=1_000_000))
        assert 1e5 < result.throughput_ops_per_sec < 1e8


class TestDeterminism:
    def test_same_spec_same_result(self):
        a = run_workload(small_spec(locality_pct=80.0))
        b = run_workload(small_spec(locality_pct=80.0))
        assert a.completed_ops == b.completed_ops
        assert np.array_equal(a.latencies_ns, b.latencies_ns)

    def test_different_seed_different_timeline(self):
        a = run_workload(small_spec(locality_pct=80.0, seed=1, ops_per_thread=20))
        b = run_workload(small_spec(locality_pct=80.0, seed=2, ops_per_thread=20))
        assert not np.array_equal(a.latencies_ns, b.latencies_ns)


class TestMetrics:
    def test_latency_summary_from_samples(self):
        samples = np.arange(1, 1001, dtype=np.float64)
        summary = LatencySummary.from_samples(samples)
        assert summary.count == 1000
        assert summary.p50 == pytest.approx(500.5)
        assert summary.max == 1000

    def test_latency_summary_empty(self):
        summary = LatencySummary.from_samples(np.empty(0))
        assert summary.count == 0
        assert np.isnan(summary.mean)

    def test_cdf_monotone(self):
        result = run_workload(small_spec(ops_per_thread=20))
        values, probs = result.latency_cdf()
        assert (np.diff(values) >= 0).all()
        assert (np.diff(probs) >= 0).all()
        assert probs[-1] == pytest.approx(1.0)

    def test_cdf_subsets(self):
        result = run_workload(small_spec(locality_pct=50.0, ops_per_thread=30))
        lv, _ = result.latency_cdf(subset="local")
        rv, _ = result.latency_cdf(subset="remote")
        assert len(lv) > 0 and len(rv) > 0
        # remote ops are slower at every quantile in an uncongested run
        assert np.median(rv) > np.median(lv)

    def test_cdf_downsampling(self):
        result = run_workload(small_spec(ops_per_thread=30))
        values, probs = result.latency_cdf(points=10)
        assert len(values) <= 10

    def test_summary_row_fields(self):
        result = run_workload(small_spec())
        row = result.summary_row()
        assert row["lock"] == "alock"
        assert row["violations"] == 0
        assert row["throughput_ops"] > 0
        # fairness + deep tail live in every summary row
        assert row["jain"] is not None and 0.0 < row["jain"] <= 1.0
        assert row["lat_p999_ns"] is not None
        assert row["lat_p999_ns"] >= row["lat_p99_ns"]
