"""Tests for packed RDMA pointers."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import MemoryError_
from repro.memory import (
    ADDR_BITS,
    NULL_PTR,
    RdmaPointer,
    is_null,
    pack_ptr,
    ptr_addr,
    ptr_node,
)
from repro.memory.pointer import MAX_NODES


class TestPacking:
    def test_null_is_zero(self):
        assert NULL_PTR == 0
        assert is_null(NULL_PTR)

    def test_pack_unpack_round_trip(self):
        p = pack_ptr(7, 0x1234)
        assert ptr_node(p) == 7
        assert ptr_addr(p) == 0x1234

    def test_node_zero_nonzero_addr_not_null(self):
        assert not is_null(pack_ptr(0, 64))

    def test_node_out_of_range(self):
        with pytest.raises(MemoryError_):
            pack_ptr(MAX_NODES, 0)
        with pytest.raises(MemoryError_):
            pack_ptr(-1, 0)

    def test_addr_out_of_range(self):
        with pytest.raises(MemoryError_):
            pack_ptr(0, 1 << ADDR_BITS)

    def test_paper_twenty_node_testbed_representable(self):
        """The paper runs 20 machines; our widened node field must hold
        node id 19 (the paper's own 4-bit field could not)."""
        p = pack_ptr(19, 0x40)
        assert ptr_node(p) == 19

    @given(node=st.integers(0, MAX_NODES - 1),
           addr=st.integers(0, (1 << ADDR_BITS) - 1))
    def test_round_trip_property(self, node, addr):
        p = pack_ptr(node, addr)
        assert ptr_node(p) == node
        assert ptr_addr(p) == addr
        assert 0 <= p < (1 << 64)

    @given(n1=st.integers(0, MAX_NODES - 1), a1=st.integers(0, 2**20),
           n2=st.integers(0, MAX_NODES - 1), a2=st.integers(0, 2**20))
    def test_injective(self, n1, a1, n2, a2):
        if (n1, a1) != (n2, a2):
            assert pack_ptr(n1, a1) != pack_ptr(n2, a2)


class TestRdmaPointer:
    def test_make_and_fields(self):
        p = RdmaPointer.make(3, 128)
        assert (p.node, p.addr) == (3, 128)
        assert int(p) == pack_ptr(3, 128)

    def test_null_constructor(self):
        assert RdmaPointer.null().is_null

    def test_offset(self):
        p = RdmaPointer.make(2, 64)
        q = p.offset(8)
        assert (q.node, q.addr) == (2, 72)

    def test_offset_null_raises(self):
        with pytest.raises(MemoryError_):
            RdmaPointer.null().offset(8)

    def test_index_protocol(self):
        p = RdmaPointer.make(1, 64)
        assert hex(p) == hex(int(p))

    def test_equality_by_value(self):
        assert RdmaPointer.make(1, 64) == RdmaPointer(pack_ptr(1, 64))
