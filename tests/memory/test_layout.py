"""Tests for StructLayout / WordField (paper Fig. 3 discipline)."""

import pytest

from repro.common.errors import MemoryError_
from repro.memory import StructLayout, WordField


def make_alock_layout():
    return StructLayout("ALock", 64, (
        WordField("tail_r", 0),
        WordField("tail_l", 8),
        WordField("victim", 16, signed=True),
    ))


class TestWordField:
    def test_misaligned_offset_rejected(self):
        with pytest.raises(MemoryError_):
            WordField("x", 4)

    def test_signed_flag_default_false(self):
        assert not WordField("x", 0).signed


class TestStructLayout:
    def test_offsets(self):
        lay = make_alock_layout()
        assert lay.offset_of("tail_r") == 0
        assert lay.offset_of("tail_l") == 8
        assert lay.offset_of("victim") == 16

    def test_addr_of(self):
        lay = make_alock_layout()
        assert lay.addr_of(0x400, "tail_l") == 0x408

    def test_unknown_field(self):
        with pytest.raises(MemoryError_):
            make_alock_layout().offset_of("nope")

    def test_size_must_be_cache_line_multiple(self):
        with pytest.raises(MemoryError_):
            StructLayout("Bad", 48, (WordField("a", 0),))

    def test_field_overruns_struct(self):
        with pytest.raises(MemoryError_):
            StructLayout("Bad", 64, (WordField("a", 64),))

    def test_duplicate_names_rejected(self):
        with pytest.raises(MemoryError_):
            StructLayout("Bad", 64, (WordField("a", 0), WordField("a", 8)))

    def test_overlapping_offsets_rejected(self):
        with pytest.raises(MemoryError_):
            StructLayout("Bad", 64, (WordField("a", 0), WordField("b", 0)))

    def test_field_names(self):
        assert make_alock_layout().field_names == ("tail_r", "tail_l", "victim")

    def test_spans_cache_lines(self):
        assert not make_alock_layout().spans_cache_lines()
        big = StructLayout("Big", 128, (WordField("a", 0), WordField("b", 64)))
        assert big.spans_cache_lines()
