"""Tests for the Table-1 race auditor."""

import pytest

from repro.common.errors import AtomicityViolation, SimulationError
from repro.memory.races import (
    LOCAL_READ,
    LOCAL_RMW,
    LOCAL_WRITE,
    RaceAuditor,
    UNSAFE_PAIRS,
)


@pytest.fixture()
def auditor():
    return RaceAuditor(mode="record")


def open_window(auditor, node=0, addr=64, start=100.0, end=200.0, op="rCAS"):
    return auditor.remote_rmw_begin(node, addr, op, "remote", start, end)


class TestTable1Matrix:
    """The UNSAFE_PAIRS set must mirror the paper's Table 1 exactly."""

    def test_local_write_vs_rcas_unsafe(self):
        assert (LOCAL_WRITE, "rCAS") in UNSAFE_PAIRS

    def test_local_rmw_vs_rcas_unsafe(self):
        assert (LOCAL_RMW, "rCAS") in UNSAFE_PAIRS

    def test_local_read_always_safe(self):
        assert all(local != LOCAL_READ for local, _ in UNSAFE_PAIRS)

    def test_exactly_two_unsafe_cells(self):
        assert len(UNSAFE_PAIRS) == 2


class TestDetection:
    def test_local_write_in_window_flagged(self, auditor):
        open_window(auditor)
        auditor.local_op(0, 64, LOCAL_WRITE, "t0", 150.0)
        assert auditor.violation_count == 1
        rec = auditor.violations[0]
        assert rec.local_op == LOCAL_WRITE
        assert rec.remote_op == "rCAS"
        assert rec.addr == 64

    def test_local_rmw_in_window_flagged(self, auditor):
        open_window(auditor)
        auditor.local_op(0, 64, LOCAL_RMW, "t0", 150.0)
        assert auditor.violation_count == 1

    def test_local_read_in_window_clean(self, auditor):
        open_window(auditor)
        auditor.local_op(0, 64, LOCAL_READ, "t0", 150.0)
        assert auditor.violation_count == 0

    def test_outside_window_clean(self, auditor):
        open_window(auditor, start=100.0, end=200.0)
        auditor.local_op(0, 64, LOCAL_WRITE, "t0", 99.0)
        auditor.local_op(0, 64, LOCAL_WRITE, "t0", 200.0)  # end exclusive
        assert auditor.violation_count == 0

    def test_window_start_inclusive(self, auditor):
        open_window(auditor, start=100.0, end=200.0)
        auditor.local_op(0, 64, LOCAL_WRITE, "t0", 100.0)
        assert auditor.violation_count == 1

    def test_different_address_clean(self, auditor):
        open_window(auditor, addr=64)
        auditor.local_op(0, 72, LOCAL_WRITE, "t0", 150.0)
        assert auditor.violation_count == 0

    def test_different_node_clean(self, auditor):
        open_window(auditor, node=0)
        auditor.local_op(1, 64, LOCAL_WRITE, "t0", 150.0)
        assert auditor.violation_count == 0

    def test_retired_window_clean(self, auditor):
        win = open_window(auditor)
        auditor.remote_rmw_end(0, win)
        auditor.local_op(0, 64, LOCAL_WRITE, "t0", 150.0)
        assert auditor.violation_count == 0

    def test_overlapping_windows_both_checked(self, auditor):
        open_window(auditor, start=100, end=200)
        open_window(auditor, start=150, end=250)
        auditor.local_op(0, 64, LOCAL_WRITE, "t0", 160.0)
        assert auditor.violation_count == 2


class TestModes:
    def test_strict_raises(self):
        auditor = RaceAuditor(mode="strict")
        open_window(auditor)
        with pytest.raises(AtomicityViolation) as exc:
            auditor.local_op(0, 64, LOCAL_WRITE, "t0", 150.0)
        assert exc.value.address == 64

    def test_off_mode_no_bookkeeping(self):
        auditor = RaceAuditor(mode="off")
        open_window(auditor)
        auditor.local_op(0, 64, LOCAL_WRITE, "t0", 150.0)
        assert auditor.violation_count == 0
        assert auditor.checked_ops == 0

    def test_assert_clean_raises_on_violation(self, auditor):
        open_window(auditor)
        auditor.local_op(0, 64, LOCAL_WRITE, "t0", 150.0)
        with pytest.raises(AtomicityViolation):
            auditor.assert_clean()

    def test_assert_clean_passes_when_clean(self, auditor):
        auditor.assert_clean()

    def test_reset(self, auditor):
        open_window(auditor)
        auditor.local_op(0, 64, LOCAL_WRITE, "t0", 150.0)
        auditor.reset()
        assert auditor.violation_count == 0
        auditor.local_op(0, 64, LOCAL_WRITE, "t0", 150.0)
        assert auditor.violation_count == 0  # window cleared too


class TestWindowConsistency:
    """Retiring a window the auditor never saw is an internal bug of the
    verbs layer (double retire / unmatched begin-end), not a Table-1
    violation — counted always, raised in strict mode."""

    def test_double_retire_counted(self, auditor):
        win = open_window(auditor)
        auditor.remote_rmw_end(0, win)
        auditor.remote_rmw_end(0, win)
        assert auditor.consistency_errors == 1
        assert auditor.violation_count == 0  # not a Table-1 violation

    def test_unknown_window_counted(self, auditor):
        win = auditor.remote_rmw_begin(0, 64, "rCAS", "r", 0.0, 1.0)
        auditor.reset()
        auditor.remote_rmw_end(0, win)
        assert auditor.consistency_errors == 1

    def test_wrong_node_counted(self, auditor):
        win = open_window(auditor, node=0)
        auditor.remote_rmw_end(1, win)
        assert auditor.consistency_errors == 1
        # the real window is still live and keeps detecting races
        auditor.local_op(0, 64, LOCAL_WRITE, "t0", 150.0)
        assert auditor.violation_count == 1

    def test_strict_mode_raises(self):
        auditor = RaceAuditor(mode="strict")
        win = open_window(auditor)
        auditor.remote_rmw_end(0, win)
        with pytest.raises(SimulationError, match="unknown RMW window"):
            auditor.remote_rmw_end(0, win)
        assert auditor.consistency_errors == 1

    def test_record_mode_does_not_raise(self, auditor):
        win = open_window(auditor)
        auditor.remote_rmw_end(0, win)
        auditor.remote_rmw_end(0, win)  # swallowed but counted

    def test_off_mode_ignores(self):
        auditor = RaceAuditor(mode="off")
        win = auditor.remote_rmw_begin(0, 64, "rCAS", "r", 0.0, 1.0)
        auditor.remote_rmw_end(0, win)
        auditor.remote_rmw_end(0, win)
        assert auditor.consistency_errors == 0

    def test_matched_retire_not_counted(self, auditor):
        win = open_window(auditor)
        auditor.remote_rmw_end(0, win)
        assert auditor.consistency_errors == 0

    def test_reset_clears_counter(self, auditor):
        win = open_window(auditor)
        auditor.remote_rmw_end(0, win)
        auditor.remote_rmw_end(0, win)
        auditor.reset()
        assert auditor.consistency_errors == 0
