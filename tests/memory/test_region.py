"""Tests for MemoryRegion: word ops, allocation, watchers, signedness."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import MemoryError_
from repro.memory import MemoryRegion
from repro.memory.pointer import CACHE_LINE, ptr_addr, ptr_node
from repro.memory.region import from_signed, to_signed
from repro.sim import Environment


@pytest.fixture()
def env():
    return Environment()


@pytest.fixture()
def region(env):
    return MemoryRegion(env, node_id=1, size_bytes=4096)


class TestSignedness:
    @given(st.integers(-(2**63), 2**63 - 1))
    def test_signed_round_trip(self, v):
        assert to_signed(from_signed(v)) == v

    def test_minus_one_is_all_ones(self):
        assert from_signed(-1) == (1 << 64) - 1

    def test_region_signed_read(self, region):
        region.write(64, -1)
        assert region.read_signed(64) == -1
        assert region.read(64) == (1 << 64) - 1


class TestWordOps:
    def test_zero_initialized(self, region):
        assert region.read(128) == 0

    def test_write_read(self, region):
        region.write(64, 0xDEADBEEF)
        assert region.read(64) == 0xDEADBEEF

    def test_cas_success_returns_old(self, region):
        region.write(64, 5)
        old = region.cas(64, 5, 9)
        assert old == 5
        assert region.read(64) == 9

    def test_cas_failure_no_write(self, region):
        region.write(64, 5)
        old = region.cas(64, 7, 9)
        assert old == 5
        assert region.read(64) == 5

    def test_cas_with_negative_expected(self, region):
        region.write(64, -1)
        old = region.cas(64, -1, 0)
        assert to_signed(old) == -1
        assert region.read(64) == 0

    def test_faa(self, region):
        region.write(64, 10)
        assert to_signed(region.faa(64, -3)) == 10
        assert region.read_signed(64) == 7

    def test_misaligned_access(self, region):
        with pytest.raises(MemoryError_):
            region.read(65)

    def test_out_of_bounds(self, region):
        with pytest.raises(MemoryError_):
            region.read(4096)
        with pytest.raises(MemoryError_):
            region.write(-8, 1)

    def test_stat_counters(self, region):
        region.read(64)
        region.write(64, 1)
        region.cas(64, 1, 2)
        region.faa(64, 1)
        assert region.local_reads == 1
        assert region.local_writes == 1
        assert region.local_rmws == 2


class TestRemoteLanding:
    def test_remote_write_then_local_read(self, region):
        region.remote_write(64, 77)
        assert region.read(64) == 77
        assert region.remote_ops_landed == 1

    def test_two_phase_rmw_lost_update(self, region):
        """A local write inside a remote CAS window is overwritten —
        the Table-1 hazard, reproduced mechanically."""
        region.write(64, 0)
        observed = region.remote_rmw_read(64)       # NIC reads 0
        assert observed == 0
        region.write(64, 123)                       # local write lands in window
        region.remote_rmw_commit(64, 1)             # NIC writes back CAS result
        assert region.read(64) == 1                 # 123 was lost


class TestAllocation:
    def test_first_line_reserved(self, region):
        assert region.alloc(8) >= CACHE_LINE

    def test_alignment(self, region):
        region.alloc(8, align=8)
        addr = region.alloc(64, align=64)
        assert addr % 64 == 0

    def test_alloc_ptr_packs_node(self, region):
        p = region.alloc_ptr(64)
        assert ptr_node(p) == 1
        assert ptr_addr(p) % 64 == 0

    def test_exhaustion(self, env):
        small = MemoryRegion(env, 0, 256)
        small.alloc(128)
        with pytest.raises(MemoryError_):
            small.alloc(128)  # only 64B left after reserved line

    def test_bad_sizes(self, region):
        with pytest.raises(MemoryError_):
            region.alloc(0)
        with pytest.raises(MemoryError_):
            region.alloc(8, align=3)

    def test_region_size_validation(self, env):
        with pytest.raises(MemoryError_):
            MemoryRegion(env, 0, 100)  # not a cache-line multiple


class TestWatchers:
    def test_watch_fires_on_local_write(self, env, region):
        got = {}

        def waiter():
            got["v"] = yield region.watch(64)

        env.process(waiter())

        def writer():
            yield env.timeout(10)
            region.write(64, 42)

        env.process(writer())
        env.run()
        assert got["v"] == (64, 42)

    def test_watch_fires_on_remote_write(self, env, region):
        got = {}

        def waiter():
            got["v"] = yield region.watch(64)

        env.process(waiter())

        def writer():
            yield env.timeout(5)
            region.remote_write(64, 7)

        env.process(writer())
        env.run()
        assert got["v"] == (64, 7)

    def test_watch_is_one_shot(self, env, region):
        hits = []

        def waiter():
            v = yield region.watch(64)
            hits.append(v)

        env.process(waiter())

        def writer():
            yield env.timeout(1)
            region.write(64, 1)
            region.write(64, 2)

        env.process(writer())
        env.run()
        assert hits == [(64, 1)]

    def test_watch_any_fires_once(self, env, region):
        got = []

        def waiter():
            v = yield region.watch_any([64, 72])
            got.append(v)

        env.process(waiter())

        def writer():
            yield env.timeout(1)
            region.write(72, 9)
            region.write(64, 8)

        env.process(writer())
        env.run()
        assert got == [(72, 9)]

    def test_gc_watchers_cleans_triggered(self, env, region):
        def waiter():
            yield region.watch_any([64, 72])

        env.process(waiter())

        def writer():
            yield env.timeout(1)
            region.write(64, 1)

        env.process(writer())
        env.run()
        assert region.watcher_count() == 1  # stale entry under addr 72
        region.gc_watchers()
        assert region.watcher_count() == 0

    def test_rmw_commit_wakes_watcher(self, env, region):
        """The MCS wakeup path: predecessor's remote write-back must wake
        a spinner parked on the word."""
        got = {}

        def waiter():
            got["v"] = yield region.watch(64)

        env.process(waiter())

        def remote():
            yield env.timeout(3)
            region.remote_rmw_read(64)
            region.remote_rmw_commit(64, 55)

        env.process(remote())
        env.run()
        assert got["v"] == (64, 55)
