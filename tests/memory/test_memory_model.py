"""Model-based property tests of MemoryRegion (hypothesis).

A random sequence of word operations is applied both to the region and
to a plain Python dict reference model; the observable values must
match at every step.  Covers local ops, remote landings, and the
two-phase remote RMW (whose lost-update semantics the model encodes
explicitly).
"""

from hypothesis import given, settings, strategies as st

from repro.memory import MemoryRegion
from repro.memory.region import from_signed, to_signed
from repro.sim import Environment

ADDRS = [64, 72, 80, 128]
VALUES = st.integers(-(2**31), 2**31 - 1)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.sampled_from(ADDRS), VALUES),
        st.tuples(st.just("cas"), st.sampled_from(ADDRS), VALUES, VALUES),
        st.tuples(st.just("faa"), st.sampled_from(ADDRS), st.integers(-100, 100)),
        st.tuples(st.just("remote_write"), st.sampled_from(ADDRS), VALUES),
        st.tuples(st.just("rmw2", ), st.sampled_from(ADDRS), VALUES, VALUES),
    ),
    max_size=60)


class TestAgainstReferenceModel:
    @given(sequence=ops)
    @settings(max_examples=80)
    def test_word_state_matches_model(self, sequence):
        env = Environment()
        region = MemoryRegion(env, 0, 4096)
        model = {a: 0 for a in ADDRS}
        for op in sequence:
            kind = op[0]
            if kind == "write":
                _, addr, value = op
                region.write(addr, value)
                model[addr] = from_signed(value)
            elif kind == "cas":
                _, addr, expected, desired = op
                old = region.cas(addr, expected, desired)
                assert old == model[addr]
                if model[addr] == from_signed(expected):
                    model[addr] = from_signed(desired)
            elif kind == "faa":
                _, addr, delta = op
                old = region.faa(addr, delta)
                assert old == model[addr]
                model[addr] = from_signed(to_signed(model[addr]) + delta)
            elif kind == "remote_write":
                _, addr, value = op
                region.remote_write(addr, value)
                model[addr] = from_signed(value)
            elif kind == "rmw2":
                # two-phase remote CAS, no interleaving local op: must be
                # equivalent to an atomic CAS
                _, addr, expected, desired = op
                old = region.remote_rmw_read(addr)
                assert old == model[addr]
                if old == from_signed(expected):
                    region.remote_rmw_commit(addr, desired)
                    model[addr] = from_signed(desired)
            for a in ADDRS:
                assert region.peek(a) == model[a]

    @given(sequence=ops, interleave_at=st.integers(0, 59), value=VALUES)
    @settings(max_examples=40)
    def test_lost_update_semantics(self, sequence, interleave_at, value):
        """A local write inside an rmw2 window is always overwritten by a
        committing RMW — the model encodes the Table-1 hazard exactly."""
        env = Environment()
        region = MemoryRegion(env, 0, 4096)
        addr = 64
        region.write(addr, 7)
        old = region.remote_rmw_read(addr)
        region.write(addr, value)            # lands inside the window
        if old == 7:
            region.remote_rmw_commit(addr, 9)
            assert region.peek(addr) == 9    # local write lost

    @given(st.lists(st.tuples(st.sampled_from(ADDRS), VALUES), min_size=1,
                    max_size=30))
    @settings(max_examples=50)
    def test_watchers_fire_for_every_write(self, writes):
        """A watcher registered before each write observes exactly that
        write's address/value."""
        env = Environment()
        region = MemoryRegion(env, 0, 4096)
        seen = []

        def observer(addr):
            ev = region.watch(addr)

            def proc():
                got = yield ev
                seen.append(got)

            env.process(proc())

        for addr, value in writes:
            observer(addr)
            region.write(addr, value)
        env.run()
        assert len(seen) == len(writes)
        for (addr, value), (got_addr, got_raw) in zip(writes, seen):
            assert got_addr == addr
            assert got_raw == from_signed(value)


class TestAllocatorProperties:
    @given(st.lists(st.tuples(st.integers(1, 256),
                              st.sampled_from([8, 16, 64, 128])),
                    min_size=1, max_size=30))
    @settings(max_examples=60)
    def test_allocations_disjoint_and_aligned(self, requests):
        env = Environment()
        region = MemoryRegion(env, 0, 1 << 20)
        spans = []
        for nbytes, align in requests:
            addr = region.alloc(nbytes, align)
            assert addr % align == 0
            for start, end in spans:
                assert addr + nbytes <= start or addr >= end, "overlap"
            spans.append((addr, addr + nbytes))
        assert region.bytes_allocated <= 1 << 20
