"""Tests for the sharded KV store."""

import pytest

from repro.cluster import Cluster
from repro.common.errors import ConfigError
from repro.kvstore import KVConfig, ShardedKVStore


@pytest.fixture()
def cluster():
    return Cluster(3, seed=31, audit="record")


@pytest.fixture()
def store(cluster):
    return ShardedKVStore(cluster, KVConfig(n_buckets=12))


def drive(cluster, *gens):
    procs = [cluster.env.process(g) for g in gens]
    cluster.run()
    for p in procs:
        assert p.ok, p.value
    return procs


class TestConfig:
    def test_bucket_validation(self):
        with pytest.raises(ConfigError):
            KVConfig(n_buckets=0)

    def test_buckets_at_least_nodes(self, cluster):
        with pytest.raises(ConfigError):
            ShardedKVStore(cluster, KVConfig(n_buckets=2))

    def test_striping(self, store):
        homes = [b.home_node for b in store.buckets]
        assert homes == [i % 3 for i in range(12)]

    def test_hash_stable_and_in_range(self, store):
        for key in range(200):
            b = store.bucket_of(key)
            assert 0 <= b < 12
            assert store.bucket_of(key) == b

    def test_local_keys_helper(self, store):
        keys = store.local_keys(1, count=5)
        assert len(keys) == 5
        assert all(store.home_of(k) == 1 for k in keys)


class TestSingleKeyOps:
    def test_put_then_get_local(self, cluster, store):
        ctx = cluster.thread_ctx(0, 0)
        key = store.local_keys(0, 1)[0]

        def proc():
            version = yield from store.put(ctx, key, 42)
            value, seen_version = yield from store.get(ctx, key)
            return version, value, seen_version

        [p] = drive(cluster, proc())
        version, value, seen_version = p.value
        assert value == 42
        assert seen_version == version == 2  # seqlock: +2 per write

    def test_put_then_get_remote(self, cluster, store):
        ctx = cluster.thread_ctx(0, 0)
        key = store.local_keys(2, 1)[0]  # homed on another node

        def proc():
            yield from store.put(ctx, key, -7)
            return (yield from store.get(ctx, key))

        [p] = drive(cluster, proc())
        assert p.value[0] == -7

    def test_version_increments_per_write(self, cluster, store):
        ctx = cluster.thread_ctx(0, 0)
        key = store.local_keys(0, 1)[0]

        def proc():
            for i in range(5):
                yield from store.put(ctx, key, i)
            _, version = yield from store.get(ctx, key)
            return version

        [p] = drive(cluster, proc())
        assert p.value == 10  # seqlock: versions advance by 2 per write

    def test_add(self, cluster, store):
        ctx = cluster.thread_ctx(1, 0)
        key = store.local_keys(1, 1)[0]

        def proc():
            yield from store.put(ctx, key, 10)
            new = yield from store.add(ctx, key, -4)
            return new

        [p] = drive(cluster, proc())
        assert p.value == 6
        assert store.peek_value(key) == 6

    def test_audit_clean_after_ops(self, cluster, store):
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            for key in range(10):
                yield from store.put(ctx, key, key * 11)

        drive(cluster, proc())
        assert store.audit() == []
        cluster.auditor.assert_clean()


class TestConcurrentClients:
    def test_concurrent_adds_conserve_sum(self, cluster, store):
        """Many clients doing += on shared keys: the final sum must equal
        the number of increments — the KV-level lost-update witness."""
        keys = [store.local_keys(n, 2)[i] for n in range(3) for i in range(2)]

        def client(node, tid, n_ops):
            ctx = cluster.thread_ctx(node, tid)
            for i in range(n_ops):
                key = keys[(node + tid + i) % len(keys)]
                yield from store.add(ctx, key, 1)

        drive(cluster, *(client(n, t, 20) for n in range(3) for t in range(2)))
        assert store.total_value() == 6 * 20
        assert store.audit() == []
        cluster.auditor.assert_clean()

    def test_mixed_readers_and_writers_never_tear(self, cluster, store):
        """get() checks the checksum equation at read time: concurrent
        multi-word writes must never be observed half-done."""
        key = store.local_keys(0, 1)[0]

        def writer(tid):
            ctx = cluster.thread_ctx(0, tid)
            for i in range(30):
                yield from store.put(ctx, key, i * 1000 + tid)

        def reader(node):
            ctx = cluster.thread_ctx(node, 3)
            for _ in range(30):
                yield from store.get(ctx, key)  # raises on a torn read

        drive(cluster, writer(0), writer(1), reader(1), reader(2))
        assert store.audit() == []


class TestTransfers:
    def test_transfer_moves_value(self, cluster, store):
        ctx = cluster.thread_ctx(0, 0)
        a = store.local_keys(0, 1)[0]
        b = store.local_keys(1, 1)[0]

        def proc():
            yield from store.put(ctx, a, 100)
            yield from store.put(ctx, b, 0)
            yield from store.transfer(ctx, a, b, 30)

        drive(cluster, proc())
        assert store.peek_value(a) == 70
        assert store.peek_value(b) == 30

    def test_concurrent_transfers_conserve_total(self, cluster, store):
        """The bank-transfer stress: opposing transfer streams over the
        same keys, with lock-ordering preventing deadlock and the total
        conserved exactly."""
        keys = [store.local_keys(n, 1)[0] for n in range(3)]

        def seed_money():
            ctx = cluster.thread_ctx(0, 0)
            for key in keys:
                yield from store.put(ctx, key, 1000)

        drive(cluster, seed_money())
        initial = store.total_value()

        def mover(node, tid, direction):
            ctx = cluster.thread_ctx(node, tid)
            for i in range(15):
                src = keys[(i + direction) % 3]
                dst = keys[(i + direction + 1) % 3]
                yield from store.transfer(ctx, src, dst, 5)

        drive(cluster, mover(0, 1, 0), mover(1, 1, 1), mover(2, 1, 2),
              mover(0, 2, 1))
        assert store.total_value() == initial
        assert store.audit() == []
        cluster.auditor.assert_clean()

    def test_same_bucket_transfer_noop_on_sum(self, cluster, store):
        ctx = cluster.thread_ctx(0, 0)
        key = store.local_keys(0, 1)[0]
        # find another key in the same bucket
        twin = next(k for k in range(1000, 5000)
                    if store.bucket_of(k) == store.bucket_of(key))

        def proc():
            yield from store.put(ctx, key, 50)
            yield from store.transfer(ctx, key, twin, 10)

        drive(cluster, proc())
        assert store.peek_value(key) == 50
        assert store.transfers == 1


class TestLockKinds:
    @pytest.mark.parametrize("kind", ["alock", "spinlock", "mcs", "rpc"])
    def test_store_works_over_any_single_key_lock(self, kind):
        cluster = Cluster(2, seed=2, audit="record")
        store = ShardedKVStore(cluster, KVConfig(n_buckets=8, lock_kind=kind))

        def client(node):
            ctx = cluster.thread_ctx(node, 0)
            for i in range(10):
                yield from store.add(ctx, i, 1)

        drive(cluster, client(0), client(1))
        assert store.total_value() == 20
        assert store.audit() == []
        cluster.auditor.assert_clean()
