"""Model-based property tests for the KV store (hypothesis).

A single client applies a random op sequence; a plain dict (keyed by
bucket, since the store is bucket-granular) predicts every result.
Separately, concurrent random schedules must keep the conservation and
checksum witnesses.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import Cluster
from repro.kvstore import KVConfig, ShardedKVStore

KEYS = list(range(12))

ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(KEYS),
                  st.integers(-1000, 1000)),
        st.tuples(st.just("get"), st.sampled_from(KEYS)),
        st.tuples(st.just("add"), st.sampled_from(KEYS),
                  st.integers(-50, 50)),
        st.tuples(st.just("transfer"), st.sampled_from(KEYS),
                  st.sampled_from(KEYS), st.integers(0, 100)),
    ),
    max_size=30)

_SETTINGS = settings(max_examples=30, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


class TestSequentialModel:
    @given(sequence=ops)
    @_SETTINGS
    def test_matches_dict_model(self, sequence):
        cluster = Cluster(2, seed=1, audit="strict")
        store = ShardedKVStore(cluster, KVConfig(n_buckets=6))
        ctx = cluster.thread_ctx(0, 0)
        model: dict[int, int] = {b: 0 for b in range(6)}
        observed = []

        def client():
            for op in sequence:
                if op[0] == "put":
                    _, key, value = op
                    yield from store.put(ctx, key, value)
                    model[store.bucket_of(key)] = value
                elif op[0] == "get":
                    _, key = op
                    value, _version = yield from store.get(ctx, key)
                    observed.append((value, model[store.bucket_of(key)]))
                elif op[0] == "add":
                    _, key, delta = op
                    yield from store.add(ctx, key, delta)
                    model[store.bucket_of(key)] += delta
                else:
                    _, src, dst, amount = op
                    yield from store.transfer(ctx, src, dst, amount)
                    b_src, b_dst = store.bucket_of(src), store.bucket_of(dst)
                    if b_src != b_dst:
                        model[b_src] -= amount
                        model[b_dst] += amount

        p = cluster.env.process(client())
        cluster.run()
        assert p.ok, p.value
        for got, expected in observed:
            assert got == expected
        for bucket in range(6):
            key = next(k for k in range(1000) if store.bucket_of(k) == bucket)
            assert store.peek_value(key) == model[bucket]
        assert store.audit() == []

    @given(sequence=ops)
    @_SETTINGS
    def test_total_invariant_under_puts_and_transfers(self, sequence):
        """Whatever the schedule, total == sum of model buckets and the
        checksum audit is clean."""
        cluster = Cluster(2, seed=3, audit="strict")
        store = ShardedKVStore(cluster, KVConfig(n_buckets=6))
        ctx = cluster.thread_ctx(1, 0)

        def client():
            for op in sequence:
                if op[0] == "put":
                    yield from store.put(ctx, op[1], op[2])
                elif op[0] == "get":
                    yield from store.get(ctx, op[1])
                elif op[0] == "add":
                    yield from store.add(ctx, op[1], op[2])
                else:
                    yield from store.transfer(ctx, op[1], op[2], op[3])

        p = cluster.env.process(client())
        cluster.run()
        assert p.ok, p.value
        assert store.audit() == []
        cluster.auditor.assert_clean()


class TestConcurrentConservation:
    @given(seed=st.integers(0, 10_000), n_movers=st.integers(2, 5))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_transfer_storms_conserve(self, seed, n_movers):
        cluster = Cluster(3, seed=seed, audit="record")
        store = ShardedKVStore(cluster, KVConfig(n_buckets=9))
        keys = [store.local_keys(n, 1)[0] for n in range(3)]

        def seed_money():
            ctx = cluster.thread_ctx(0, 0)
            for key in keys:
                yield from store.put(ctx, key, 500)

        p = cluster.env.process(seed_money())
        cluster.run()
        assert p.ok
        initial = store.total_value()

        def mover(i):
            ctx = cluster.thread_ctx(i % 3, 1 + i // 3)
            rng = cluster.rng.get("prop-mover", i)
            for _ in range(10):
                a, b = rng.choice(3, size=2, replace=False)
                yield from store.transfer(ctx, keys[a], keys[b], 3)

        procs = [cluster.env.process(mover(i)) for i in range(n_movers)]
        cluster.run()
        assert all(p.ok for p in procs)
        assert store.total_value() == initial
        assert store.audit() == []
        cluster.auditor.assert_clean()
