"""Tests for seqlock-style optimistic (lock-free) reads.

The FaRM-style alternative the paper's related work contrasts with
locking: readers validate a version+checksum pair instead of taking the
bucket lock.  The invariant under test: an optimistic read NEVER
returns a torn value — it either observes a fully published record or
retries.
"""

import pytest

from repro.cluster import Cluster
from repro.kvstore import KVConfig, ShardedKVStore


@pytest.fixture()
def cluster():
    return Cluster(3, seed=41, audit="record")


@pytest.fixture()
def store(cluster):
    return ShardedKVStore(cluster, KVConfig(n_buckets=9))


def drive(cluster, *gens):
    procs = [cluster.env.process(g) for g in gens]
    cluster.run()
    for p in procs:
        assert p.ok, p.value
    return procs


class TestBasics:
    def test_reads_current_value_without_lock(self, cluster, store):
        ctx = cluster.thread_ctx(0, 0)
        key = store.local_keys(0, 1)[0]

        def proc():
            yield from store.put(ctx, key, 77)
            lock_acquisitions_before = store.buckets[store.bucket_of(key)].lock.acquisitions
            value, version = yield from store.get_optimistic(ctx, key)
            after = store.buckets[store.bucket_of(key)].lock.acquisitions
            return value, version, lock_acquisitions_before, after

        [p] = drive(cluster, proc())
        value, version, before, after = p.value
        assert value == 77
        assert version % 2 == 0
        assert before == after  # no lock taken
        assert store.optimistic_gets == 1

    def test_remote_optimistic_cheaper_than_locked_get(self, cluster, store):
        """The point of the design: a remote optimistic read is 4 rReads
        vs lock + 3 reads + unlock."""
        ctx = cluster.thread_ctx(0, 0)
        key = store.local_keys(2, 1)[0]
        times = {}

        def proc():
            yield from store.put(ctx, key, 5)  # also warms the QP
            t0 = cluster.env.now
            yield from store.get(ctx, key)
            times["locked"] = cluster.env.now - t0
            t1 = cluster.env.now
            yield from store.get_optimistic(ctx, key)
            times["optimistic"] = cluster.env.now - t1

        drive(cluster, proc())
        assert times["optimistic"] < 0.75 * times["locked"]

    def test_seqlock_version_parity(self, cluster, store):
        """Stable records always show even versions."""
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            for key in range(6):
                yield from store.put(ctx, key, key)
            for key in range(6):
                _v, version = yield from store.get_optimistic(ctx, key)
                assert version % 2 == 0

        drive(cluster, proc())


class TestNeverTorn:
    def test_concurrent_writers_never_produce_torn_optimistic_read(
            self, cluster, store):
        """Writers publish (value, checksum, version) non-atomically;
        optimistic readers must only ever observe states satisfying the
        checksum equation."""
        key = store.local_keys(0, 1)[0]
        observed = []

        def writer(tid):
            ctx = cluster.thread_ctx(0, tid)
            for i in range(60):
                yield from store.put(ctx, key, i * 7 + tid)

        def reader(node):
            ctx = cluster.thread_ctx(node, 2)
            for _ in range(60):
                value, version = yield from store.get_optimistic(ctx, key)
                observed.append((value, version))

        drive(cluster, writer(0), writer(1), reader(1), reader(2))
        assert len(observed) == 120
        # every observed (value, version) pair was a published state:
        # version even and consistent with some writer's value
        for value, version in observed:
            assert version % 2 == 0
        # under writer pressure some retries/validation failures happened
        assert store.optimistic_retries + store.optimistic_fallbacks >= 0

    def test_fallback_to_locked_get_under_writer_storm(self, cluster, store):
        """With max_retries=0-ish pressure the reader falls back to the
        locked path and still returns a valid value."""
        key = store.local_keys(0, 1)[0]

        def hot_writer():
            ctx = cluster.thread_ctx(0, 0)
            for i in range(200):
                yield from store.put(ctx, key, i)

        def reader():
            ctx = cluster.thread_ctx(1, 0)
            for _ in range(20):
                value, version = yield from store.get_optimistic(
                    ctx, key, max_retries=1)
                assert version % 2 == 0

        drive(cluster, hot_writer(), reader())
        # both the retry and the locked-fallback paths actually fired
        assert store.optimistic_retries > 0
        assert store.optimistic_fallbacks > 0
        assert store.optimistic_fallbacks + store.optimistic_gets == 20

    def test_optimistic_read_sees_monotone_versions(self, cluster, store):
        """Versions grow monotonically: a reader polling one key never
        observes the version going backwards."""
        key = store.local_keys(0, 1)[0]
        versions = []

        def writer():
            ctx = cluster.thread_ctx(0, 0)
            for i in range(40):
                yield from store.put(ctx, key, i)

        def reader():
            ctx = cluster.thread_ctx(1, 0)
            for _ in range(40):
                _v, version = yield from store.get_optimistic(ctx, key)
                versions.append(version)

        drive(cluster, writer(), reader())
        assert versions == sorted(versions)
