"""Tests for Cluster and ThreadContext."""

import pytest

from repro.cluster import Cluster
from repro.common.errors import ConfigError, MemoryError_
from repro.memory.pointer import MAX_NODES, pack_ptr, ptr_node


@pytest.fixture()
def cluster():
    return Cluster(3, seed=7)


def drive(cluster, gen):
    p = cluster.env.process(gen)
    cluster.run()
    assert p.ok, p.value
    return p.value


class TestConstruction:
    def test_node_count(self, cluster):
        assert cluster.n_nodes == 3
        assert len(cluster.regions) == 3
        assert len(cluster.network.nics) == 3

    def test_node_count_bounds(self):
        with pytest.raises(ConfigError):
            Cluster(0)
        with pytest.raises(ConfigError):
            Cluster(MAX_NODES + 1)

    def test_max_nodes_constructible(self):
        assert Cluster(MAX_NODES).n_nodes == MAX_NODES

    def test_alloc_on_packs_node(self, cluster):
        ptr = cluster.alloc_on(2, 64)
        assert ptr_node(ptr) == 2

    def test_thread_ctx_cached(self, cluster):
        assert cluster.thread_ctx(0, 1) is cluster.thread_ctx(0, 1)
        assert cluster.thread_ctx(0, 1) is not cluster.thread_ctx(1, 1)

    def test_thread_ctx_bad_node(self, cluster):
        with pytest.raises(ConfigError):
            cluster.thread_ctx(9, 0)

    def test_distinct_gids(self, cluster):
        gids = {cluster.thread_ctx(n, t).gid for n in range(3) for t in range(4)}
        assert len(gids) == 12
        assert 0 not in gids  # 0 is reserved for "no owner"


class TestLocalOps:
    def test_read_write_round_trip(self, cluster):
        ctx = cluster.thread_ctx(1, 0)
        ptr = cluster.alloc_on(1, 64)

        def proc():
            yield from ctx.write(ptr, 42)
            return (yield from ctx.read(ptr))

        assert drive(cluster, proc()) == 42

    def test_local_ops_cost_cpu_time(self, cluster):
        ctx = cluster.thread_ctx(0, 0)
        ptr = cluster.alloc_on(0, 64)

        def proc():
            t0 = cluster.env.now
            yield from ctx.write(ptr, 1)
            yield from ctx.read(ptr)
            yield from ctx.cas(ptr, 1, 2)
            yield from ctx.fence()
            return cluster.env.now - t0

        cpu = cluster.config.cpu
        expected = (cpu.local_write_ns + cpu.local_read_ns
                    + cpu.local_cas_ns + cpu.fence_ns)
        assert drive(cluster, proc()) == pytest.approx(expected)

    def test_local_op_on_remote_memory_rejected(self, cluster):
        """Definition 4.1: shared-memory ops only touch the own node."""
        ctx = cluster.thread_ctx(0, 0)
        remote_ptr = cluster.alloc_on(1, 64)

        def proc():
            yield from ctx.read(remote_ptr)

        p = cluster.env.process(proc())
        cluster.run()
        assert not p.ok
        assert isinstance(p.value, MemoryError_)

    def test_signed_local_ops(self, cluster):
        ctx = cluster.thread_ctx(0, 0)
        ptr = cluster.alloc_on(0, 64)

        def proc():
            yield from ctx.write(ptr, -1)
            v = yield from ctx.read(ptr, signed=True)
            old = yield from ctx.cas(ptr, -1, 5, signed=True)
            return v, old

        assert drive(cluster, proc()) == (-1, -1)

    def test_faa_local(self, cluster):
        ctx = cluster.thread_ctx(0, 0)
        ptr = cluster.alloc_on(0, 64)

        def proc():
            yield from ctx.write(ptr, 10)
            old = yield from ctx.faa(ptr, 5, signed=True)
            now = yield from ctx.read(ptr, signed=True)
            return old, now

        assert drive(cluster, proc()) == (10, 15)


class TestRemoteOps:
    def test_r_write_visible_to_local_reader(self, cluster):
        writer = cluster.thread_ctx(0, 0)
        reader = cluster.thread_ctx(2, 0)
        ptr = cluster.alloc_on(2, 64)

        def proc():
            yield from writer.r_write(ptr, 77)
            return (yield from reader.read(ptr))

        assert drive(cluster, proc()) == 77

    def test_remote_much_slower_than_local(self, cluster):
        """The paper's operation asymmetry: remote ~20x local."""
        ctx = cluster.thread_ctx(0, 0)
        local_ptr = cluster.alloc_on(0, 64)
        remote_ptr = cluster.alloc_on(1, 64)
        times = {}

        def proc():
            yield from ctx.r_read(remote_ptr)  # warm QP
            t0 = cluster.env.now
            yield from ctx.read(local_ptr)
            times["local"] = cluster.env.now - t0
            t1 = cluster.env.now
            yield from ctx.r_read(remote_ptr)
            times["remote"] = cluster.env.now - t1

        drive(cluster, proc())
        assert times["remote"] >= 10 * times["local"]

    def test_op_counters(self, cluster):
        ctx = cluster.thread_ctx(0, 0)
        lp = cluster.alloc_on(0, 64)
        rp = cluster.alloc_on(1, 64)

        def proc():
            yield from ctx.read(lp)
            yield from ctx.r_read(rp)
            yield from ctx.r_cas(rp, 0, 1)

        drive(cluster, proc())
        assert ctx.local_op_count == 1
        assert ctx.remote_op_count == 2


class TestWaitLocal:
    def test_returns_immediately_if_satisfied(self, cluster):
        ctx = cluster.thread_ctx(0, 0)
        ptr = cluster.alloc_on(0, 64)

        def proc():
            yield from ctx.write(ptr, 3)
            v = yield from ctx.wait_local(ptr, lambda x: x == 3)
            return v

        assert drive(cluster, proc()) == 3

    def test_wakes_on_remote_write(self, cluster):
        """The MCS handoff path: a remote rWrite wakes the local spinner."""
        spinner = cluster.thread_ctx(1, 0)
        remote = cluster.thread_ctx(0, 0)
        ptr = cluster.alloc_on(1, 64)
        got = {}

        def spin():
            v = yield from spinner.wait_local(ptr, lambda x: x != 0)
            got["v"] = v
            got["t"] = cluster.env.now

        def write():
            yield cluster.env.timeout(500)
            yield from remote.r_write(ptr, 9)

        cluster.env.process(spin())
        cluster.env.process(write())
        cluster.run()
        assert got["v"] == 9
        assert got["t"] > 500

    def test_signed_predicate(self, cluster):
        """The descriptor budget spin: wait until budget != -1."""
        ctx = cluster.thread_ctx(0, 0)
        other = cluster.thread_ctx(0, 1)
        ptr = cluster.alloc_on(0, 64)
        got = {}

        def spin():
            yield from ctx.write(ptr, -1)
            v = yield from ctx.wait_local(ptr, lambda b: b != -1, signed=True)
            got["v"] = v

        def release():
            yield cluster.env.timeout(1000)
            yield from other.write(ptr, 5)

        cluster.env.process(spin())
        cluster.env.process(release())
        cluster.run()
        assert got["v"] == 5

    def test_skips_non_matching_writes(self, cluster):
        ctx = cluster.thread_ctx(0, 0)
        other = cluster.thread_ctx(0, 1)
        ptr = cluster.alloc_on(0, 64)
        got = {}

        def spin():
            v = yield from ctx.wait_local(ptr, lambda x: x >= 3)
            got["v"] = v

        def writes():
            for v in (1, 2, 3):
                yield cluster.env.timeout(100)
                yield from other.write(ptr, v)

        cluster.env.process(spin())
        cluster.env.process(writes())
        cluster.run()
        assert got["v"] == 3

    def test_wait_local_any_identifies_writer(self, cluster):
        ctx = cluster.thread_ctx(0, 0)
        other = cluster.thread_ctx(0, 1)
        p1 = cluster.alloc_on(0, 64)
        p2 = cluster.alloc_on(0, 64)
        got = {}

        def spin():
            ptr, raw = yield from ctx.wait_local_any([p1, p2])
            got["ptr"] = ptr
            got["raw"] = raw

        def write():
            yield cluster.env.timeout(50)
            yield from other.write(p2, 4)

        cluster.env.process(spin())
        cluster.env.process(write())
        cluster.run()
        assert got == {"ptr": p2, "raw": 4}


class TestLocality:
    def test_is_local(self, cluster):
        ctx = cluster.thread_ctx(1, 0)
        assert ctx.is_local(pack_ptr(1, 64))
        assert not ctx.is_local(pack_ptr(0, 64))

    def test_stats_shape(self, cluster):
        s = cluster.stats()
        assert set(s) == {"network", "memory", "atomicity_violations"}
        assert len(s["memory"]) == 3
