"""Hand-counted NIC and verb accounting.

Scripted verb sequences where every counter value is derivable on paper:
``verb_counts`` tallies one entry per verb call, each verb charges the
requester NIC's send side (``tx_ops``) and the target NIC's receive side
(``rx_ops``), and a loopback verb runs both sides on the *same* NIC plus
one ``loopback_ops`` turnaround.  These are the numbers every experiment
table reports and the obs metrics tree re-exports, so they get verified
against a by-hand count at least once.
"""

from repro.memory import MemoryRegion, pack_ptr
from repro.rdma import RdmaConfig, RdmaNetwork
from repro.sim import Environment


def make_net(n_nodes=3):
    env = Environment()
    regions = [MemoryRegion(env, i, 1 << 16) for i in range(n_nodes)]
    net = RdmaNetwork(env, RdmaConfig(), regions)
    return env, net, regions


def run(env, gen):
    p = env.process(gen)
    env.run()
    assert p.ok, p.value
    return p.value


class TestVerbCounts:
    def test_mixed_sequence_hand_count(self):
        """3 rRead + 2 rWrite + 2 rCAS + 1 rFAA, all node0 -> node1."""
        env, net, regions = make_net()
        ptr = pack_ptr(1, 128)

        def proc():
            for _ in range(2):
                yield from net.r_write(0, 0, ptr, 7)
            for _ in range(3):
                yield from net.r_read(0, 0, ptr)
            yield from net.r_cas(0, 0, ptr, 7, 8)
            yield from net.r_cas(0, 0, ptr, 999, 1)   # failed CAS counts too
            yield from net.r_faa(0, 0, ptr, 5)

        run(env, proc())
        assert net.verb_counts == {"rRead": 3, "rWrite": 2, "rCAS": 2,
                                   "rFAA": 1}
        assert net.loopback_verbs == 0
        # 8 verbs total: requester sent 8, target received 8.
        assert net.nics[0].tx_ops == 8
        assert net.nics[0].rx_ops == 0
        assert net.nics[1].rx_ops == 8
        assert net.nics[1].tx_ops == 0
        assert net.nics[2].tx_ops == net.nics[2].rx_ops == 0

    def test_stats_tree_matches_counters(self):
        env, net, _ = make_net()
        ptr = pack_ptr(1, 64)

        def proc():
            yield from net.r_write(0, 0, ptr, 1)
            yield from net.r_read(0, 0, ptr)

        run(env, proc())
        stats = net.stats()
        assert stats["verbs"] == {"rRead": 1, "rWrite": 1, "rCAS": 0,
                                  "rFAA": 0}
        assert stats["loopback_verbs"] == 0
        assert stats["nics"][0]["tx_ops"] == 2
        assert stats["nics"][1]["rx_ops"] == 2


class TestLoopbackAccounting:
    def test_loopback_charges_both_sides_of_one_nic(self):
        """A node targeting its own memory through the NIC (the §2
        loopback anti-pattern) pays send + receive on its own NIC and
        one turnaround per verb, and never touches other NICs."""
        env, net, _ = make_net()
        ptr = pack_ptr(0, 256)

        def proc():
            yield from net.r_write(0, 0, ptr, 3)
            yield from net.r_cas(0, 0, ptr, 3, 4)
            yield from net.r_read(0, 0, ptr)

        run(env, proc())
        assert net.loopback_verbs == 3
        assert net.verb_counts == {"rRead": 1, "rWrite": 1, "rCAS": 1,
                                   "rFAA": 0}
        nic0 = net.nics[0]
        assert nic0.tx_ops == 3
        assert nic0.rx_ops == 3
        assert nic0.loopback_ops == 3
        assert net.nics[1].tx_ops == net.nics[1].rx_ops == 0

    def test_mixed_local_remote_split(self):
        env, net, _ = make_net()
        remote = pack_ptr(1, 64)
        local = pack_ptr(0, 64)

        def proc():
            yield from net.r_read(0, 0, remote)
            yield from net.r_read(0, 0, local)
            yield from net.r_read(0, 0, remote)

        run(env, proc())
        assert net.verb_counts["rRead"] == 3
        assert net.loopback_verbs == 1
        assert net.nics[0].tx_ops == 3            # requester always sends
        assert net.nics[0].rx_ops == 1            # only the loopback lands here
        assert net.nics[0].loopback_ops == 1
        assert net.nics[1].rx_ops == 2


class TestObsReexport:
    def test_cluster_metrics_tree_reexports_network_stats(self):
        """The metrics registry's 'network' collector must be the same
        numbers as ``network.stats()`` — one source of truth."""
        from repro.cluster import Cluster

        cluster = Cluster(n_nodes=2, seed=1)
        ctx = cluster.thread_ctx(node_id=0, thread_id=0)
        ptr = pack_ptr(1, 512)

        def proc():
            yield from cluster.network.r_write(0, 0, ptr, 42)
            yield from cluster.network.r_read(0, 0, ptr)

        p = cluster.env.process(proc())
        cluster.run()
        assert p.ok
        tree = cluster.obs.metrics.collect()
        assert tree["network"] == cluster.network.stats()
        assert tree["network"]["verbs"]["rWrite"] == 1
        assert cluster.obs.metrics.query("network.verbs.rRead") == 1
        assert ctx.local_op_count == 0
