"""Tests for the verbs layer: semantics, latency calibration, loopback,
congestion, QPC thrashing, and Table-1 non-atomicity."""

import pytest

from repro.common.errors import MemoryError_
from repro.memory import MemoryRegion, RaceAuditor, pack_ptr
from repro.rdma import RdmaConfig, RdmaNetwork
from repro.rdma.config import unloaded_remote_read_ns
from repro.sim import Environment


def make_net(n_nodes=2, auditor=None, config=None, region_size=1 << 16):
    env = Environment()
    cfg = config or RdmaConfig()
    regions = [MemoryRegion(env, i, region_size, auditor=auditor)
               for i in range(n_nodes)]
    net = RdmaNetwork(env, cfg, regions, auditor=auditor)
    return env, net, regions


def run_verb(env, gen):
    p = env.process(gen)
    env.run()
    assert p.ok, p.value
    return p.value


class TestVerbSemantics:
    def test_r_write_then_r_read(self):
        env, net, regions = make_net()
        ptr = pack_ptr(1, 64)

        def proc():
            yield from net.r_write(0, 0, ptr, 1234)
            v = yield from net.r_read(0, 0, ptr)
            return v

        assert run_verb(env, proc()) == 1234
        assert regions[1].peek(64) == 1234

    def test_r_cas_success(self):
        env, net, regions = make_net()
        ptr = pack_ptr(1, 64)
        regions[1].remote_write(64, 5)

        def proc():
            old = yield from net.r_cas(0, 0, ptr, 5, 9)
            return old

        assert run_verb(env, proc()) == 5
        assert regions[1].peek(64) == 9

    def test_r_cas_failure_no_write(self):
        env, net, regions = make_net()
        ptr = pack_ptr(1, 64)
        regions[1].remote_write(64, 5)

        def proc():
            return (yield from net.r_cas(0, 0, ptr, 7, 9))

        assert run_verb(env, proc()) == 5
        assert regions[1].peek(64) == 5

    def test_r_cas_signed_values(self):
        env, net, regions = make_net()
        ptr = pack_ptr(1, 64)
        regions[1].write(64, -1)

        def proc():
            return (yield from net.r_cas(0, 0, ptr, -1, 0, signed=True))

        assert run_verb(env, proc()) == -1
        assert regions[1].peek(64) == 0

    def test_r_faa(self):
        env, net, regions = make_net()
        ptr = pack_ptr(1, 64)
        regions[1].remote_write(64, 10)

        def proc():
            return (yield from net.r_faa(0, 0, ptr, -4, signed=True))

        assert run_verb(env, proc()) == 10
        assert regions[1].peek_signed(64) == 6

    def test_bad_node_pointer(self):
        env, net, _ = make_net(n_nodes=2)
        ptr = pack_ptr(5, 64)  # node 5 does not exist

        def proc():
            yield from net.r_read(0, 0, ptr)

        p = env.process(proc())
        env.run()
        assert not p.ok
        assert isinstance(p.value, MemoryError_)

    def test_verb_counters(self):
        env, net, _ = make_net()
        ptr = pack_ptr(1, 64)

        def proc():
            yield from net.r_write(0, 0, ptr, 1)
            yield from net.r_read(0, 0, ptr)
            yield from net.r_cas(0, 0, ptr, 1, 2)
            yield from net.r_faa(0, 0, ptr, 1)

        run_verb(env, proc())
        assert net.verb_counts == {"rRead": 1, "rWrite": 1, "rCAS": 1, "rFAA": 1}


class TestLatencyCalibration:
    def test_unloaded_remote_read_matches_model(self):
        env, net, _ = make_net()
        ptr = pack_ptr(1, 64)

        def proc():
            yield from net.r_read(0, 0, ptr)  # warm the QP context
            t0 = env.now
            yield from net.r_read(0, 0, ptr)
            return env.now - t0

        latency = run_verb(env, proc())
        assert latency == pytest.approx(unloaded_remote_read_ns(RdmaConfig()))

    def test_remote_op_in_realistic_microsecond_range(self):
        """CX-3-era one-sided verbs are ~1.5-3 us unloaded."""
        env, net, _ = make_net()
        ptr = pack_ptr(1, 64)

        def proc():
            t0 = env.now
            yield from net.r_cas(0, 0, ptr, 0, 1)
            return env.now - t0

        latency = run_verb(env, proc())
        assert 1000 <= latency <= 4000

    def test_loopback_cheaper_than_remote_but_far_above_local(self):
        env, net, _ = make_net()
        remote_ptr = pack_ptr(1, 64)
        local_ptr = pack_ptr(0, 64)
        times = {}

        def proc():
            t0 = env.now
            yield from net.r_read(0, 0, remote_ptr)
            times["remote"] = env.now - t0
            t1 = env.now
            yield from net.r_read(0, 0, local_ptr)
            times["loopback"] = env.now - t1

        run_verb(env, proc())
        assert times["loopback"] < times["remote"]
        # Paper: RDMA (incl. loopback) is >= an order of magnitude slower
        # than a ~100ns shared-memory op.
        assert times["loopback"] >= 500

    def test_atomic_slower_than_read(self):
        env, net, _ = make_net()
        ptr = pack_ptr(1, 64)
        times = {}

        def proc():
            yield from net.r_read(0, 0, ptr)  # warm the QP context
            t0 = env.now
            yield from net.r_read(0, 0, ptr)
            times["read"] = env.now - t0
            t1 = env.now
            yield from net.r_cas(0, 0, ptr, 0, 1)
            times["cas"] = env.now - t1

        run_verb(env, proc())
        assert times["cas"] > times["read"]


class TestLoopbackAccounting:
    def test_loopback_counted(self):
        env, net, _ = make_net()

        def proc():
            yield from net.r_read(0, 0, pack_ptr(0, 64))
            yield from net.r_read(0, 0, pack_ptr(1, 64))

        run_verb(env, proc())
        assert net.loopback_verbs == 1
        assert net.nics[0].loopback_ops == 1

    def test_loopback_occupies_both_pipelines_of_same_nic(self):
        env, net, _ = make_net()

        def proc():
            yield from net.r_write(0, 0, pack_ptr(0, 64), 1)

        run_verb(env, proc())
        nic = net.nics[0]
        assert nic.tx_ops == 1
        assert nic.rx_ops == 1
        assert net.nics[1].rx_ops == 0


class TestCongestion:
    def test_latency_grows_with_concurrency(self):
        """Many concurrent loopback atomics on one NIC must queue: mean
        latency grows with offered concurrency (RX-buffer accumulation)."""
        def mean_latency(n_threads):
            env, net, _ = make_net(n_nodes=1)
            ptr = pack_ptr(0, 64)
            latencies = []

            def worker(tid):
                for _ in range(20):
                    t0 = env.now
                    yield from net.r_cas(0, tid, ptr, 0, 0)
                    latencies.append(env.now - t0)

            for tid in range(n_threads):
                env.process(worker(tid))
            env.run()
            return sum(latencies) / len(latencies)

        assert mean_latency(8) > 1.3 * mean_latency(1)

    def test_congestion_inflation_engages_past_threshold(self):
        """Under a sustained backlog, runs with RX congestion enabled must
        take strictly longer than with it disabled."""
        def makespan(factor):
            cfg = RdmaConfig().with_nic(rx_congestion_threshold=0,
                                        rx_congestion_factor=factor)
            env, net, _ = make_net(n_nodes=1, config=cfg)
            ptr = pack_ptr(0, 64)

            def worker(tid):
                for _ in range(5):
                    yield from net.r_read(0, tid, ptr)

            for tid in range(12):
                env.process(worker(tid))
            env.run()
            return env.now

        assert makespan(1.0) > makespan(0.0)


class TestQpcThrashing:
    def test_many_connections_increase_latency(self):
        """When per-NIC live QPs exceed the cache, ops pay reload
        penalties and serialize slower."""
        cfg = RdmaConfig().with_nic(qpc_cache_entries=4)
        env, net, _ = make_net(n_nodes=2, config=cfg)
        ptr = pack_ptr(1, 64)

        def churn():
            # 16 distinct QPs against a 4-entry cache, twice round.
            for rnd in range(2):
                for tid in range(16):
                    yield from net.r_read(0, tid, ptr)

        run_verb(env, churn())
        assert net.nics[0].qpc.miss_rate == 1.0
        assert net.nics[0].qpc_penalty_ns_total > 0

    def test_small_working_set_no_thrashing(self):
        env, net, _ = make_net(n_nodes=2)
        ptr = pack_ptr(1, 64)

        def steady():
            for _ in range(10):
                yield from net.r_read(0, 0, ptr)

        run_verb(env, steady())
        assert net.nics[0].qpc.misses == 1  # cold miss only


class TestTable1NonAtomicity:
    def test_local_write_lost_inside_rcas_window(self):
        """A local write racing the rCAS window is overwritten and the
        auditor records the violation — Table 1 reproduced end to end."""
        auditor = RaceAuditor(mode="record")
        env, net, regions = make_net(n_nodes=2, auditor=auditor)
        ptr = pack_ptr(1, 64)
        target = regions[1]

        def remote():
            yield from net.r_cas(0, 0, ptr, 0, 111, actor="remote")

        local_done = {}

        def local():
            # Land a local write inside the RMW window.  The window opens
            # after send+transit+rx service; poll cheaply until the read
            # phase has happened, then write.
            while target.remote_ops_landed == 0:
                yield env.timeout(10)
            target.write(64, 999, actor="local")
            local_done["t"] = env.now

        env.process(remote())
        env.process(local())
        env.run()
        assert target.peek(64) == 111          # local 999 lost
        assert auditor.violation_count == 1
        assert auditor.violations[0].local_op == "Write"

    def test_no_violation_when_local_read_races(self):
        auditor = RaceAuditor(mode="record")
        env, net, regions = make_net(n_nodes=2, auditor=auditor)
        ptr = pack_ptr(1, 64)
        target = regions[1]

        def remote():
            yield from net.r_cas(0, 0, ptr, 0, 111)

        def local():
            while target.remote_ops_landed == 0:
                yield env.timeout(10)
            target.read(64, actor="local")

        env.process(remote())
        env.process(local())
        env.run()
        assert auditor.violation_count == 0


class TestAuditAttribution:
    def test_rmw_verbs_report_their_own_label(self):
        """Regression: rFAA atomic windows were registered with the
        auditor as "rCAS", mislabelling Table-1 violation reports."""
        seen = []

        class SpyAuditor(RaceAuditor):
            def remote_rmw_begin(self, node, addr, op, actor, start, end):
                seen.append(op)
                return super().remote_rmw_begin(
                    node, addr, op, actor, start, end)

        auditor = SpyAuditor(mode="record")
        env, net, _ = make_net(n_nodes=2, auditor=auditor)
        ptr = pack_ptr(1, 64)

        def proc():
            yield from net.r_cas(0, 0, ptr, 0, 1)
            yield from net.r_faa(0, 0, ptr, 1)

        run_verb(env, proc())
        assert seen == ["rCAS", "rFAA"]


class TestDeterminism:
    def test_same_seed_same_timeline(self):
        def run_once():
            env, net, _ = make_net(n_nodes=3)
            finish = []

            def worker(node, tid):
                for step in range(5):
                    target = (node + 1 + step) % 3
                    yield from net.r_cas(node, tid, pack_ptr(target, 64), 0, 0)
                finish.append((node, tid, env.now))

            for node in range(3):
                for tid in range(2):
                    env.process(worker(node, tid))
            env.run()
            return finish

        assert run_once() == run_once()
