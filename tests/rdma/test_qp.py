"""Tests for the QPC cache (QP thrashing model)."""

import pytest

from repro.rdma.qp import QpcCache, qp_id


class TestQpId:
    def test_identity_tuple(self):
        assert qp_id(1, 2, 3) == (1, 2, 3)

    def test_loopback_qp(self):
        qp = qp_id(4, 0, 4)
        assert qp[0] == qp[2]


class TestQpcCache:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            QpcCache(0)

    def test_first_access_misses(self):
        cache = QpcCache(4)
        assert not cache.access(("a",))
        assert cache.misses == 1

    def test_second_access_hits(self):
        cache = QpcCache(4)
        cache.access(("a",))
        assert cache.access(("a",))
        assert cache.hits == 1

    def test_lru_eviction(self):
        cache = QpcCache(2)
        cache.access(("a",))
        cache.access(("b",))
        cache.access(("c",))  # evicts a
        assert ("a",) not in cache
        assert ("b",) in cache
        assert cache.evictions == 1

    def test_access_refreshes_recency(self):
        cache = QpcCache(2)
        cache.access(("a",))
        cache.access(("b",))
        cache.access(("a",))  # refresh a
        cache.access(("c",))  # evicts b, not a
        assert ("a",) in cache
        assert ("b",) not in cache

    def test_thrashing_working_set_larger_than_cache(self):
        """With a working set > capacity cycled round-robin, every access
        misses — the QP-thrashing regime from the paper's §2."""
        cache = QpcCache(8)
        qps = [(i,) for i in range(16)]
        for _ in range(4):
            for qp in qps:
                cache.access(qp)
        assert cache.hits == 0
        assert cache.miss_rate == 1.0

    def test_working_set_fits_all_hits_after_warmup(self):
        cache = QpcCache(16)
        qps = [(i,) for i in range(8)]
        for qp in qps:
            cache.access(qp)
        cache.reset_stats()
        for _ in range(4):
            for qp in qps:
                cache.access(qp)
        assert cache.miss_rate == 0.0

    def test_len(self):
        cache = QpcCache(4)
        for i in range(6):
            cache.access((i,))
        assert len(cache) == 4
