"""Tests for RDMA configuration validation, overrides, and fabric jitter."""

import pytest

from repro.cluster import Cluster
from repro.common.errors import ConfigError
from repro.rdma import CostModel, FabricConfig, NicConfig, RdmaConfig
from repro.rdma.config import unloaded_remote_read_ns


class TestValidation:
    @pytest.mark.parametrize("field", [
        "tx_service_ns", "rx_service_ns", "atomic_window_ns",
        "pcie_crossing_ns", "qpc_miss_penalty_ns", "loopback_turnaround_ns"])
    def test_negative_nic_latency_rejected(self, field):
        with pytest.raises(ConfigError):
            NicConfig(**{field: -1.0})

    def test_pcie_lanes_positive(self):
        with pytest.raises(ConfigError):
            NicConfig(pcie_lanes=0)

    def test_qpc_entries_positive(self):
        with pytest.raises(ConfigError):
            NicConfig(qpc_cache_entries=0)

    def test_congestion_cap_at_least_one(self):
        with pytest.raises(ConfigError):
            NicConfig(rx_congestion_max_factor=0.5)

    def test_fabric_negative_rejected(self):
        with pytest.raises(ConfigError):
            FabricConfig(one_way_latency_ns=-1)
        with pytest.raises(ConfigError):
            FabricConfig(jitter_ns=-1)

    def test_cpu_negative_rejected(self):
        with pytest.raises(ConfigError):
            CostModel(local_cas_ns=-1)


class TestOverrides:
    def test_with_nic_returns_new_config(self):
        base = RdmaConfig()
        tuned = base.with_nic(tx_service_ns=999.0)
        assert tuned.nic.tx_service_ns == 999.0
        assert base.nic.tx_service_ns != 999.0  # original untouched

    def test_with_fabric_and_cpu(self):
        cfg = RdmaConfig().with_fabric(one_way_latency_ns=10.0).with_cpu(
            fence_ns=1.0)
        assert cfg.fabric.one_way_latency_ns == 10.0
        assert cfg.cpu.fence_ns == 1.0

    def test_unloaded_model_tracks_overrides(self):
        slow = RdmaConfig().with_fabric(one_way_latency_ns=5_000.0)
        assert (unloaded_remote_read_ns(slow)
                > unloaded_remote_read_ns(RdmaConfig()) + 8_000)


class TestFabricJitter:
    def _latencies(self, jitter_ns, seed=0, n=10):
        cfg = RdmaConfig().with_fabric(jitter_ns=jitter_ns)
        cluster = Cluster(2, seed=seed, config=cfg, audit="off")
        ctx = cluster.thread_ctx(0, 0)
        ptr = cluster.alloc_on(1, 64)
        samples = []

        def proc():
            yield from ctx.r_read(ptr)  # warm QP
            for _ in range(n):
                t0 = cluster.env.now
                yield from ctx.r_read(ptr)
                samples.append(cluster.env.now - t0)

        p = cluster.env.process(proc())
        cluster.run()
        assert p.ok, p.value
        return samples

    def test_zero_jitter_constant_latency(self):
        assert len(set(self._latencies(0.0))) == 1

    def test_jitter_varies_latency(self):
        assert len(set(self._latencies(200.0))) > 1

    def test_jitter_bounded(self):
        base = self._latencies(0.0)[0]
        for sample in self._latencies(200.0):
            assert base <= sample <= base + 2 * 200.0 + 1e-9

    def test_jitter_deterministic_per_seed(self):
        assert self._latencies(200.0, seed=4) == self._latencies(200.0, seed=4)
        assert self._latencies(200.0, seed=4) != self._latencies(200.0, seed=5)
