"""Tests for the two-sided RPC transport."""

import pytest

from repro.cluster import Cluster
from repro.common.errors import ConfigError
from repro.rdma.rpc import HANDLER_CPU_NS, LOCAL_IPC_NS, RpcTransport


@pytest.fixture()
def cluster():
    return Cluster(3, seed=5)


@pytest.fixture()
def transport(cluster):
    return RpcTransport(cluster.env, cluster.network)


def echo_handler(request):
    return ("echo", request.payload), False


class TestBasicRpc:
    def test_call_and_reply(self, cluster, transport):
        cluster.env.process(transport.serve(1, echo_handler))
        got = {}

        def client():
            got["reply"] = yield from transport.call(0, 0, 1, "hello")

        p = cluster.env.process(client())
        cluster.run(until=p)
        assert got["reply"] == ("echo", "hello")

    def test_bad_destination(self, cluster, transport):
        def client():
            yield from transport.call(0, 0, 9, "x")

        p = cluster.env.process(client())
        cluster.run()
        assert not p.ok
        assert isinstance(p.value, ConfigError)

    def test_remote_call_costs_two_traversals(self, cluster, transport):
        cluster.env.process(transport.serve(1, echo_handler))
        times = {}

        def client():
            t0 = cluster.env.now
            yield from transport.call(0, 0, 1, 1)
            times["first"] = cluster.env.now - t0
            t1 = cluster.env.now
            yield from transport.call(0, 0, 1, 2)
            times["warm"] = cluster.env.now - t1

        p = cluster.env.process(client())
        cluster.run(until=p)
        # warm call: ~2 one-way paths + handler CPU, i.e. several us
        assert times["warm"] > 2_000
        assert times["warm"] >= HANDLER_CPU_NS

    def test_local_call_uses_ipc(self, cluster, transport):
        cluster.env.process(transport.serve(0, echo_handler))
        times = {}

        def client():
            t0 = cluster.env.now
            yield from transport.call(0, 0, 0, "local")
            times["local"] = cluster.env.now - t0

        p = cluster.env.process(client())
        cluster.run(until=p)
        assert transport.local_ipc_messages == 2
        assert cluster.network.nics[0].tx_ops == 0
        assert times["local"] == pytest.approx(2 * LOCAL_IPC_NS + HANDLER_CPU_NS)

    def test_messages_counted(self, cluster, transport):
        cluster.env.process(transport.serve(1, echo_handler))

        def client():
            for i in range(3):
                yield from transport.call(0, 0, 1, i)

        p = cluster.env.process(client())
        cluster.run(until=p)
        assert transport.messages_sent == 6  # 3 requests + 3 replies


class TestServerSerialization:
    def test_server_cpu_is_a_bottleneck(self, cluster, transport):
        """Concurrent requests from co-located clients serialize on the
        single server CPU: total time ~ n x handler time."""
        cluster.env.process(transport.serve(0, echo_handler))
        finish = []

        def client(tid):
            yield from transport.call(0, tid, 0, tid)
            finish.append(cluster.env.now)

        n = 8
        for tid in range(n):
            cluster.env.process(client(tid))
        cluster.run()
        assert len(finish) == n
        assert max(finish) >= n * HANDLER_CPU_NS

    def test_deferred_reply(self, cluster, transport):
        """A handler can hold a request and reply later (lock grants)."""
        held = []

        def handler(request):
            if request.payload == "hold":
                held.append(request)
                return None, True
            # "release": complete the held request first
            if held:
                transport.reply(1, held.pop(), "finally")
            return "ok", False

        cluster.env.process(transport.serve(1, handler))
        got = {}

        def holder():
            got["held"] = yield from transport.call(0, 0, 1, "hold")
            got["held_at"] = cluster.env.now

        def releaser():
            yield cluster.env.timeout(50_000)
            got["rel"] = yield from transport.call(2, 0, 1, "release")

        cluster.env.process(holder())
        cluster.env.process(releaser())
        cluster.run()
        assert got["held"] == "finally"
        assert got["held_at"] > 50_000
        assert got["rel"] == "ok"
