"""Smoke-scale runs of every experiment: structure + qualitative shapes.

These are the per-artifact regression tests; the benchmarks run the
same experiments at larger scales with the paper's quantitative checks.
"""

import pytest

from repro.common.errors import ConfigError
from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.base import CONTENTION_LOCKS, ExperimentResult, SCALES


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        assert {"table1", "fig1", "fig4", "fig5", "fig6"} <= set(EXPERIMENTS)

    def test_extensions_registered(self):
        assert {"ext-related", "ext-skew", "ext-faults"} <= set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(ConfigError):
            run_experiment("fig9")

    def test_unknown_scale(self):
        with pytest.raises(ConfigError):
            run_experiment("fig1", scale="galactic")

    def test_contention_levels_match_paper(self):
        assert CONTENTION_LOCKS == {"high": 20, "medium": 100, "low": 1000}

    def test_scales_defined(self):
        assert set(SCALES) == {"smoke", "small", "paper"}


@pytest.fixture(scope="module")
def table1():
    return run_experiment("table1", scale="smoke")


@pytest.fixture(scope="module")
def fig1():
    return run_experiment("fig1", scale="smoke")


class TestTable1:
    def test_nine_cells(self, table1):
        assert len(table1.rows) == 9

    def test_all_cells_match_paper(self, table1):
        assert table1.all_shapes_hold
        assert all(row["match"] for row in table1.rows)

    def test_unsafe_cells_are_the_rcas_column(self, table1):
        unsafe = [(r["local_op"], r["remote_op"])
                  for r in table1.rows if r["atomic"] == "No"]
        assert sorted(unsafe) == [("RMW", "rCAS"), ("Write", "rCAS")]


class TestFig1:
    def test_shape_checks_pass(self, fig1):
        assert fig1.all_shapes_hold, fig1.shape_checks

    def test_rows_cover_thread_axis(self, fig1):
        assert [r["threads"] for r in fig1.rows] == list(SCALES["smoke"]["fig1_threads"])

    def test_markdown_render(self, fig1):
        md = fig1.to_markdown()
        assert "fig1" in md and "threads" in md and "- [x]" in md


class TestFig4Smoke:
    def test_runs_and_reports_grid(self):
        result = run_experiment("fig4", scale="smoke")
        budgets = SCALES["smoke"]["budgets"]
        assert len(result.rows) == len(budgets) ** 2
        baseline_rows = [r for r in result.rows
                         if r["remote_budget"] == 5 and r["local_budget"] == 5]
        assert baseline_rows[0]["speedup_vs_5_5_pct"] == 0.0
        assert result.all_shapes_hold


class TestFig5Smoke:
    @pytest.fixture(scope="class")
    def fig5(self):
        return run_experiment("fig5", scale="smoke")

    def test_all_panels_present(self, fig5):
        panels = {r["panel"] for r in fig5.rows}
        # smoke has 1 node count -> 4 panels (a-d)
        assert panels == {"a", "b", "c", "d"}

    def test_qualitative_shapes_hold(self, fig5):
        assert fig5.all_shapes_hold, fig5.shape_checks

    def test_three_locks_per_panel(self, fig5):
        locks = {r["lock"] for r in fig5.rows}
        assert locks == {"alock", "spinlock", "mcs"}

    def test_locality_sensitivity_rows_present(self, fig5):
        localities = {r["locality_pct"] for r in fig5.rows if r["lock"] == "alock"}
        assert {85.0, 95.0} <= localities


class TestFig6Smoke:
    @pytest.fixture(scope="class")
    def fig6(self):
        return run_experiment("fig6", scale="smoke")

    def test_twelve_panels(self, fig6):
        assert {r["panel"] for r in fig6.rows} == set("abcdefghijkl")

    def test_qualitative_shapes_hold(self, fig6):
        assert fig6.all_shapes_hold, fig6.shape_checks

    def test_cdf_curves_recorded(self, fig6):
        assert set(fig6.series) == set("abcdefghijkl")
        _, curves = fig6.series["a"]
        values, probs = curves["alock"]
        assert len(values) == len(probs) > 0


class TestExperimentResult:
    def test_check_records(self):
        result = ExperimentResult("x", "t", "smoke")
        result.check("good", True)
        result.check("bad", False)
        assert not result.all_shapes_hold
        md = result.to_markdown()
        assert "- [x] good" in md and "- [ ] bad" in md
