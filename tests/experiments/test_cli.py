"""Tests for the alock-experiments CLI."""

import pytest

from repro.experiments.cli import main


class TestList:
    def test_list_prints_experiment_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("table1", "fig1", "fig4", "fig5", "fig6",
                       "ext-related", "ext-skew"):
            assert exp_id in out


class TestRun:
    def test_run_single_experiment(self, capsys):
        assert main(["run", "table1", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "- [x]" in out

    def test_run_writes_markdown_report(self, tmp_path, capsys):
        report = tmp_path / "out.md"
        assert main(["run", "table1", "--scale", "smoke",
                     "--out", str(report)]) == 0
        text = report.read_text()
        assert "## table1" in text
        assert "rCAS" in text

    def test_run_unknown_experiment_raises(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["run", "fig99", "--scale", "smoke"])

    def test_seed_changes_are_accepted(self, capsys):
        assert main(["run", "table1", "--scale", "smoke", "--seed", "5"]) == 0


class TestExamplesRun:
    """The examples are part of the public deliverable: each fast one
    must execute cleanly end to end."""

    @pytest.mark.parametrize("script,args", [
        ("quickstart.py", []),
        ("model_checking.py", ["--processes", "2", "--budget", "1"]),
        ("lock_table_comparison.py", ["--nodes", "2", "--threads", "2",
                                      "--locks", "8"]),
    ])
    def test_example_runs(self, script, args):
        import pathlib
        import subprocess
        import sys

        path = pathlib.Path(__file__).resolve().parents[2] / "examples" / script
        result = subprocess.run([sys.executable, str(path), *args],
                                capture_output=True, text=True, timeout=300)
        assert result.returncode == 0, result.stderr
        assert result.stdout  # printed a report
