"""Tests for table rendering and comparison helpers."""

import pytest

from repro.analysis import (
    crossover_point,
    format_series,
    format_table,
    ratio,
    relative_speedup,
)


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "22" in lines[3]
        # all rows same width
        assert len({len(l) for l in lines}) == 1

    def test_explicit_columns(self):
        out = format_table([{"a": 1, "b": 2}], columns=["b", "a"])
        assert out.splitlines()[0].startswith("b")

    def test_missing_values_dash(self):
        out = format_table([{"a": 1}, {"a": None}])
        assert "-" in out.splitlines()[-1]

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_title(self):
        assert format_table([{"a": 1}], title="T").splitlines()[0] == "T"

    def test_float_formatting(self):
        out = format_table([{"v": 1234567.0}, {"v": 0.5}, {"v": float("nan")}])
        assert "1.23e+06" in out
        assert "0.50" in out
        assert "nan" in out


class TestFormatSeries:
    def test_bars_scale_to_peak(self):
        out = format_series([1, 2], {"a": [10.0, 20.0], "b": [5.0, 0.0]},
                            width=10)
        lines = out.splitlines()
        peak_line = [l for l in lines if "20.00" in l][0]
        assert peak_line.count("#") == 10
        zero_line = [l for l in lines if " 0.00" in l][0]
        assert "#" not in zero_line

    def test_empty_series(self):
        assert format_series([], {}, title="t") == "t"


class TestRatios:
    def test_ratio(self):
        assert ratio(10, 2) == 5
        assert ratio(1, 0) == float("inf")
        assert ratio(0, 0) == 0.0

    def test_relative_speedup(self):
        assert relative_speedup(123, 100) == pytest.approx(23.0)
        assert relative_speedup(80, 100) == pytest.approx(-20.0)
        assert relative_speedup(1, 0) == float("inf")


class TestCrossover:
    def test_finds_crossover(self):
        x = [1, 2, 3, 4]
        a = [1, 2, 5, 9]   # overtakes b at x=3
        b = [3, 4, 4, 4]
        assert crossover_point(x, a, b) == 3

    def test_no_crossover(self):
        x = [1, 2, 3]
        assert crossover_point(x, [1, 2, 3], [5, 6, 7]) is None

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            crossover_point([1], [1, 2], [1, 2])
