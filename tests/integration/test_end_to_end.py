"""End-to-end integration scenarios across the whole stack.

These run realistic (if compact) workloads through cluster + locks +
table + workload runner and assert system-level properties: emergent
congestion, QP thrashing at scale, fairness under adversarial load,
cross-lock independence, and full-run determinism.
"""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.locks import ALock, make_lock
from repro.locktable import DistributedLockTable
from repro.rdma.config import RdmaConfig
from repro.workload import WorkloadSpec, run_workload
from tests.conftest import make_cluster_and_table


class TestEmergentCongestion:
    def test_spinlock_collapse_is_emergent_not_scripted(self):
        """The Fig.1 decline must come from queueing: with an
        over-provisioned NIC (fast pipelines, no congestion) the same
        workload scales instead of collapsing."""
        spec = WorkloadSpec(n_nodes=1, threads_per_node=16, n_locks=1000,
                            locality_pct=100.0, lock_kind="spinlock",
                            warmup_ns=100_000, measure_ns=400_000,
                            audit="off")
        stock = run_workload(spec).throughput_ops_per_sec
        beefy = RdmaConfig().with_nic(rx_service_ns=10.0, tx_service_ns=10.0,
                                      rx_congestion_factor=0.0,
                                      pcie_lanes=16, pcie_crossing_ns=10.0)
        fast = run_workload(spec, config=beefy).throughput_ops_per_sec
        assert fast > 2 * stock

    def test_qpc_thrashing_emerges_at_connection_scale(self):
        """Shrinking the QPC cache below the live-QP working set slows
        remote-heavy workloads (the §2 thrashing pitfall)."""
        spec = WorkloadSpec(n_nodes=4, threads_per_node=8, n_locks=40,
                            locality_pct=0.0, lock_kind="spinlock",
                            warmup_ns=100_000, measure_ns=400_000,
                            audit="off")
        roomy = run_workload(
            spec, config=RdmaConfig().with_nic(qpc_cache_entries=4096))
        tiny = run_workload(
            spec, config=RdmaConfig().with_nic(qpc_cache_entries=8))
        assert tiny.throughput_ops_per_sec < 0.9 * roomy.throughput_ops_per_sec

    def test_alock_local_workload_immune_to_nic_size(self):
        """100%-local ALock traffic never touches the NIC, so NIC sizing
        cannot change it — the no-loopback claim, falsifiably."""
        spec = WorkloadSpec(n_nodes=2, threads_per_node=6, n_locks=10,
                            locality_pct=100.0, lock_kind="alock",
                            warmup_ns=100_000, measure_ns=400_000,
                            audit="off")
        stock = run_workload(spec)
        crippled = run_workload(
            spec, config=RdmaConfig().with_nic(rx_service_ns=5000.0,
                                               tx_service_ns=5000.0))
        assert stock.throughput_ops_per_sec == pytest.approx(
            crippled.throughput_ops_per_sec)
        assert stock.loopback_verbs == 0


class TestFairnessUnderAdversarialLoad:
    def test_remote_latency_bounded_by_local_budget(self):
        """With a smaller local budget, a remote requester facing a
        constant local barrage gets the lock sooner (the §6.1 fairness
        rationale)."""
        def remote_wait(local_budget):
            cluster = Cluster(2, seed=3, audit="off")
            lock = ALock(cluster, 0, local_budget=local_budget,
                         remote_budget=20)
            waits = []

            def local_stream(tid):
                ctx = cluster.thread_ctx(0, tid)
                for _ in range(200):
                    yield from lock.lock(ctx)
                    yield cluster.env.timeout(200)
                    yield from lock.unlock(ctx)

            def remote_requester():
                ctx = cluster.thread_ctx(1, 0)
                for _ in range(5):
                    start = cluster.env.now
                    yield from lock.lock(ctx)
                    waits.append(cluster.env.now - start)
                    yield from lock.unlock(ctx)

            for tid in range(3):
                cluster.env.process(local_stream(tid))
            p = cluster.env.process(remote_requester())
            cluster.run()
            assert p.ok, p.value
            return float(np.mean(waits))

        assert remote_wait(local_budget=2) < remote_wait(local_budget=40)

    def test_no_thread_starves_in_long_mixed_run(self):
        """Every client in a contended mixed run completes its quota —
        starvation freedom observed end to end."""
        result = run_workload(WorkloadSpec(
            n_nodes=3, threads_per_node=3, n_locks=3, locality_pct=70.0,
            lock_kind="alock", ops_per_thread=25, seed=13, audit="record",
            cs_counter=True))
        assert result.completed_ops == 3 * 3 * 25
        assert all(v == 25 for v in result.per_thread_ops.values())
        assert result.atomicity_violations == 0


class TestCrossLockIndependence:
    def test_disjoint_locks_do_not_serialize(self):
        """Threads on disjoint local locks proceed in parallel: the
        makespan matches one thread's serial time, not the sum."""
        cluster = Cluster(2, audit="off")
        locks = [ALock(cluster, n % 2) for n in range(4)]
        finish = []

        def client(i):
            ctx = cluster.thread_ctx(i % 2, i // 2)
            for _ in range(50):
                yield from locks[i].lock(ctx)
                yield from locks[i].unlock(ctx)
            finish.append(cluster.env.now)

        for i in range(4):
            cluster.env.process(client(i))
        cluster.run()
        assert max(finish) < 1.5 * min(finish)

    def test_one_thread_many_locks_sequentially(self):
        """A single thread can traverse many distinct locks (descriptor
        reuse across locks is sound when acquisitions don't overlap)."""
        cluster = Cluster(2, audit="strict")
        locks = [make_lock("alock", cluster, i % 2) for i in range(10)]
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            for _ in range(3):
                for lock in locks:
                    yield from lock.lock(ctx)
                    yield from lock.unlock(ctx)

        p = cluster.env.process(proc())
        cluster.run()
        assert p.ok, p.value
        assert sum(l.acquisitions for l in locks) == 30
        cluster.auditor.assert_clean()


class TestFullRunDeterminism:
    def test_entire_experiment_reproducible(self):
        """Two complete duration-mode runs (cluster, table, workload,
        metrics) are bit-identical."""
        spec = WorkloadSpec(n_nodes=3, threads_per_node=4, n_locks=30,
                            locality_pct=88.0, lock_kind="alock",
                            warmup_ns=100_000, measure_ns=500_000,
                            seed=77, audit="off")
        a = run_workload(spec)
        b = run_workload(spec)
        assert a.measured_ops == b.measured_ops
        assert np.array_equal(a.latencies_ns, b.latencies_ns)
        assert np.array_equal(a.local_mask, b.local_mask)
        assert a.verb_counts == b.verb_counts

    def test_seed_changes_timeline_not_invariants(self):
        specs = [WorkloadSpec(n_nodes=2, threads_per_node=3, n_locks=6,
                              locality_pct=80.0, lock_kind="alock",
                              ops_per_thread=15, cs_counter=True,
                              seed=s, audit="record") for s in (1, 2, 3)]
        results = [run_workload(s) for s in specs]
        # different seeds, different timelines
        assert len({r.latencies_ns.tobytes() for r in results}) == 3
        # but every invariant holds in all of them
        for r in results:
            assert r.completed_ops == 90
            assert r.atomicity_violations == 0


class TestMixedLockKindsOneCluster:
    def test_tables_of_different_kinds_coexist(self):
        """Two tables with different lock kinds share one cluster without
        interfering with each other's correctness."""
        cluster, alock_table = make_cluster_and_table(
            "alock", n_nodes=2, n_locks=4, seed=4, audit="record")
        spin_table = DistributedLockTable(cluster, 4, "spinlock")
        done = {"ops": 0}

        def client(node, thread, table):
            ctx = cluster.thread_ctx(node, thread)
            for op in range(10):
                idx = op % 4
                yield from table.acquire(ctx, idx)
                yield from table.guarded_increment(ctx, idx)
                yield from table.release(ctx, idx)
                done["ops"] += 1

        procs = [cluster.env.process(client(0, 0, alock_table)),
                 cluster.env.process(client(1, 0, alock_table)),
                 cluster.env.process(client(0, 1, spin_table)),
                 cluster.env.process(client(1, 1, spin_table))]
        cluster.run()
        assert all(p.ok for p in procs)
        alock_table.check_counters(20)
        spin_table.check_counters(20)
        cluster.auditor.assert_clean()
