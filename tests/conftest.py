"""Shared test-suite plumbing: cluster/lock setup used across packages.

Three families of helpers that used to be copied between
``tests/locks/helpers.py``, ``tests/integration/test_end_to_end.py`` and
``tests/workload/*``:

* lock **pickers** — deterministic ``(node, thread, op, table) -> index``
  strategies for choosing which lock an operation targets;
* the closed-loop **client harness** — build a cluster + lock table,
  spawn one generator client per (node, thread), run to completion and
  assert every client finished cleanly;
* the canonical **small workload spec** — the 2×2 shape most workload
  tests start from.

Import directly (``from tests.conftest import run_lock_clients``) or via
the back-compat re-exports in ``tests.locks.helpers``.
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.locktable import DistributedLockTable


# ---------------------------------------------------------------- pickers

def always_local(node, thread, op, table):
    """Pick a lock homed on the caller's node (round-robins its partition)."""
    indices = table.local_indices(node)
    return indices[op % len(indices)]


def always_remote(node, thread, op, table):
    """Pick a lock homed on some other node."""
    indices = table.remote_indices(node)
    return indices[(op + thread) % len(indices)]


def single_lock(node, thread, op, table):
    """Everyone hammers lock 0 — maximum logical contention."""
    return 0


def mixed_locality(node, thread, op, table):
    """Alternate local and remote targets deterministically."""
    if op % 2 == 0:
        return always_local(node, thread, op, table)
    return always_remote(node, thread, op, table)


# --------------------------------------------------- closed-loop harness

def make_cluster_and_table(lock_kind: str, *, n_nodes: int, n_locks: int,
                           lock_options: dict | None = None, seed: int = 1234,
                           audit: str = "record", **cluster_kw):
    """One cluster plus a lock table over it — the standard rig."""
    cluster = Cluster(n_nodes, seed=seed, audit=audit, **cluster_kw)
    table = DistributedLockTable(cluster, n_locks, lock_kind,
                                 lock_options=lock_options)
    return cluster, table


def run_lock_clients(cluster, table, *, threads_per_node: int,
                     ops_per_thread: int, pick_lock) -> int:
    """Spawn one acquire→guarded-increment→release client per
    (node, thread), run the cluster to completion, and assert every
    client finished without an exception.  Returns completed op count."""
    completed = {"ops": 0}

    def client(node: int, thread: int):
        ctx = cluster.thread_ctx(node, thread)
        for op in range(ops_per_thread):
            idx = pick_lock(node, thread, op, table)
            yield from table.acquire(ctx, idx)
            yield from table.guarded_increment(ctx, idx)
            yield from table.release(ctx, idx)
            completed["ops"] += 1

    procs = []
    for node in range(cluster.n_nodes):
        for thread in range(threads_per_node):
            procs.append(cluster.env.process(client(node, thread),
                                             name=f"client-n{node}t{thread}"))
    cluster.run()
    for p in procs:
        assert p.ok, f"client failed: {p.value!r}"
    return completed["ops"]


# ----------------------------------------------------- workload baseline

def small_workload_spec(**over):
    """The 2-node, 2-thread, 4-lock workload most tests start from."""
    from repro.workload import WorkloadSpec

    base = dict(n_nodes=2, threads_per_node=2, n_locks=4, locality_pct=100.0,
                lock_kind="alock", ops_per_thread=10, seed=3, audit="record")
    base.update(over)
    return WorkloadSpec(**base)
