"""Fault-injection layer: plan validation, determinism, retransmission,
timeouts, crash windows, lease recovery, and the zero-fault guarantee."""

import pytest

from repro.cluster import Cluster
from repro.common.errors import ConfigError, VerbTimeout
from repro.common.rng import RngStreams
from repro.faults import CrashWindow, FaultInjector, FaultPlan
from repro.workload import WorkloadSpec, run_workload

RETRY = dict(retry_timeout_ns=10_000.0, retry_backoff=2.0, retry_limit=4)

BASE = WorkloadSpec(n_nodes=3, threads_per_node=2, n_locks=12,
                    locality_pct=90.0, warmup_ns=50_000.0,
                    measure_ns=300_000.0, audit="off")


class TestFaultPlan:
    def test_defaults_are_inactive(self):
        assert not FaultPlan().active

    @pytest.mark.parametrize("kwargs", [
        dict(verb_loss_rate=0.01),
        dict(spike_rate=0.1, spike_ns=500.0),
        dict(crash_windows=(CrashWindow(0, 10.0, 20.0),)),
        dict(holder_stall_rate=0.1, holder_stall_ns=100.0),
        dict(lease_ns=1000.0),
    ])
    def test_any_knob_activates(self, kwargs):
        assert FaultPlan(**kwargs).active

    @pytest.mark.parametrize("kwargs", [
        dict(verb_loss_rate=-0.1),
        dict(verb_loss_rate=1.5),
        dict(spike_rate=0.1),                 # spike without duration
        dict(holder_stall_rate=0.1),          # stall without duration
        dict(retry_timeout_ns=0.0),
        dict(retry_backoff=0.5),
        dict(retry_limit=0),
    ])
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FaultPlan(**kwargs)

    def test_crash_window_validation(self):
        with pytest.raises(ConfigError):
            CrashWindow(0, 20.0, 10.0)
        with pytest.raises(ConfigError):
            CrashWindow(-1, 0.0, 10.0)

    def test_crashed_lookup(self):
        plan = FaultPlan(crash_windows=[CrashWindow(1, 100.0, 200.0)])
        assert isinstance(plan.crash_windows, tuple)  # list coerced
        assert plan.crashed(1, 150.0)
        assert not plan.crashed(1, 200.0)   # half-open interval
        assert not plan.crashed(0, 150.0)

    def test_plan_is_hashable(self):
        # must ride on the frozen WorkloadSpec
        hash(FaultPlan(crash_windows=(CrashWindow(0, 1.0, 2.0),)))


class TestFaultInjector:
    def make(self, plan, seed=0):
        return FaultInjector(plan, RngStreams(seed).fork("faults"))

    def test_decisions_replay_for_fixed_seed(self):
        plan = FaultPlan(verb_loss_rate=0.3, spike_rate=0.2, spike_ns=100.0)

        def draw():
            inj = self.make(plan)
            return [inj.decide_verb("rCAS", 0, 1, 0.0) for _ in range(200)]

        assert draw() == draw()

    def test_loss_rate_roughly_respected(self):
        inj = self.make(FaultPlan(verb_loss_rate=0.25))
        drops = sum(inj.decide_verb("rRead", 0, 1, 0.0).dropped
                    for _ in range(2000))
        assert 400 < drops < 600

    def test_crash_window_drops_everything(self):
        inj = self.make(FaultPlan(crash_windows=(CrashWindow(1, 0.0, 100.0),)))
        inside = inj.decide_verb("rCAS", 0, 1, 50.0)
        after = inj.decide_verb("rCAS", 0, 1, 100.0)
        assert inside.dropped and inside.cause == "crash"
        assert not after.dropped
        assert inj.crash_drops == 1

    def test_holder_stall_stream_is_per_thread(self):
        plan = FaultPlan(holder_stall_rate=0.5, holder_stall_ns=42.0)
        a = self.make(plan)
        b = self.make(plan)
        # thread (0,0)'s schedule is unaffected by other threads' draws
        for _ in range(50):
            b.holder_stall(1, 3)
        seq_a = [a.holder_stall(0, 0) for _ in range(50)]
        seq_b = [b.holder_stall(0, 0) for _ in range(50)]
        assert seq_a == seq_b
        assert 42.0 in seq_a


class TestZeroFaultGuarantee:
    def test_inactive_plan_matches_no_plan_exactly(self):
        plain = run_workload(BASE)
        zero = run_workload(BASE.with_(faults=FaultPlan()))
        assert plain.completed_ops == zero.completed_ops
        assert plain.measured_ops == zero.measured_ops
        assert (plain.latencies_ns == zero.latencies_ns).all()
        assert plain.per_thread_ops == zero.per_thread_ops
        assert not zero.fault_stats
        assert zero.retry_count == 0 and zero.recovery_count == 0

    def test_inactive_plan_builds_no_injector(self):
        cluster = Cluster(2, faults=FaultPlan(), audit="off")
        assert cluster.fault_injector is None
        assert "faults" not in cluster.network.stats()


class TestLossAndRetries:
    def test_lossy_run_completes_with_retries(self):
        res = run_workload(BASE.with_(
            faults=FaultPlan(verb_loss_rate=0.02, **RETRY)))
        assert res.measured_ops > 0
        assert res.retry_count > 0
        assert res.fault_stats["injected_losses"] > 0
        assert res.fault_stats["aborted_clients"] == 0
        assert set(res.fault_stats["retries_by_verb"]) <= {
            "rRead", "rWrite", "rCAS", "rFAA"}

    def test_faulty_run_is_deterministic(self):
        spec = BASE.with_(faults=FaultPlan(
            verb_loss_rate=0.02, spike_rate=0.01, spike_ns=2_000.0,
            holder_stall_rate=0.05, holder_stall_ns=20_000.0,
            lease_ns=15_000.0, **RETRY))
        a = run_workload(spec)
        b = run_workload(spec)
        assert a.completed_ops == b.completed_ops
        assert a.measured_ops == b.measured_ops
        assert (a.latencies_ns == b.latencies_ns).all()
        assert a.fault_stats == b.fault_stats

    def test_loss_degrades_throughput(self):
        healthy = run_workload(BASE)
        lossy = run_workload(BASE.with_(
            faults=FaultPlan(verb_loss_rate=0.05, **RETRY)))
        assert 0 < lossy.throughput_ops_per_sec < healthy.throughput_ops_per_sec

    def test_retry_budget_exhaustion_surfaces_verb_timeout(self):
        """On a dead fabric every client aborts with VerbTimeout instead
        of hanging the run."""
        res = run_workload(BASE.with_(
            ops_per_thread=0,
            faults=FaultPlan(verb_loss_rate=1.0, retry_timeout_ns=5_000.0,
                             retry_backoff=1.0, retry_limit=2)))
        assert res.fault_stats["verb_timeouts"] > 0
        assert res.fault_stats["aborted_clients"] > 0
        assert res.recovery_count > 0

    def test_verb_timeout_carries_context(self):
        cluster = Cluster(2, seed=3, audit="off",
                          faults=FaultPlan(verb_loss_rate=1.0,
                                           retry_timeout_ns=5_000.0,
                                           retry_backoff=1.0, retry_limit=3))
        ctx = cluster.thread_ctx(0, 0)
        from repro.memory import pack_ptr

        def proc():
            yield from ctx.r_read(pack_ptr(1, 64))

        p = cluster.env.process(proc())
        cluster.run()
        assert not p.ok
        exc = p.value
        assert isinstance(exc, VerbTimeout)
        assert exc.verb == "rRead"
        assert exc.target_node == 1
        assert exc.attempts == 3
        assert cluster.fault_injector.verb_timeouts == 1


class TestLeaseRecovery:
    def test_stalled_holders_detected_not_deadlocked(self):
        res = run_workload(BASE.with_(faults=FaultPlan(
            holder_stall_rate=0.05, holder_stall_ns=40_000.0,
            lease_ns=10_000.0, **RETRY)))
        assert res.measured_ops > 0
        assert res.fault_stats["injected_cs_stalls"] > 0
        assert res.fault_stats["lease_expirations"] > 0
        assert res.fault_stats["degraded_locks"] > 0
        assert res.recovery_count >= res.fault_stats["lease_expirations"]

    def test_no_expirations_without_stalls(self):
        res = run_workload(BASE.with_(faults=FaultPlan(
            lease_ns=50_000.0, verb_loss_rate=0.005, **RETRY)))
        assert res.fault_stats["lease_expirations"] == 0

    def test_expiry_freezes_a_postmortem(self):
        """A lease expiry snapshots the table state even though the run
        continues degraded (tentpole: every failure carries evidence)."""
        import json

        from repro.locktable import DistributedLockTable
        from repro.obs.postmortem import SCHEMA

        cluster = Cluster(1, audit="off")
        table = DistributedLockTable(cluster, 1, "spinlock",
                                     lease_ns=1_000.0)
        env = cluster.env
        holder, waiter = cluster.thread_ctx(0, 0), cluster.thread_ctx(0, 1)

        def stalled_holder():
            yield from table.acquire(holder, 0)
            yield env.timeout(5_000.0)  # sit on the lock past the lease
            yield from table.release(holder, 0)

        def blocked_waiter():
            yield from table.acquire(waiter, 0)
            yield from table.release(waiter, 0)

        env.process(stalled_holder())
        env.process(blocked_waiter())
        cluster.run()
        assert table.lease_expirations > 0
        dump = json.loads(table.last_postmortem)
        assert dump["schema"] == SCHEMA
        assert dump["reason"] == "lease-expiry"
        assert "spinlock[0]@n0" in dump["detail"]
        assert dump["locks"][0]["holder"] == "t0@n0"
        assert any(e.kind == "lease.expired"
                   for e in cluster.flight.window())


@pytest.mark.faults
def test_ext_faults_experiment_smoke():
    """Tier-1 smoke of the full fault sweep: every shape check holds."""
    from repro.experiments.registry import run_experiment
    result = run_experiment("ext-faults", scale="smoke", seed=0)
    assert result.all_shapes_hold, result.shape_checks
    assert len(result.rows) == 10
