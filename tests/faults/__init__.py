"""Fault-injection layer tests."""
