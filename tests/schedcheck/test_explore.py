"""Explorer mechanics: enumeration, failure taxonomy, reports, scenarios."""

import pytest

from repro.cluster import Cluster
from repro.common.errors import ConfigError
from repro.schedcheck import (
    BuiltRun,
    LockScenario,
    ScheduleResult,
    ExplorationReport,
    enumerate_schedules,
    explore_random,
    run_schedule,
)

TINY = LockScenario(lock_kind="spinlock", n_nodes=1, threads_per_node=2,
                    ops_per_thread=1, seed=0)


class TestEnumeration:
    def test_first_schedule_is_the_default(self):
        report = enumerate_schedules(TINY, max_schedules=1)
        assert report.schedules_run == 1
        # a single default run: no non-default decisions were forced

    def test_bounded_enumeration_terminates_and_diversifies(self):
        report = enumerate_schedules(TINY, max_schedules=40,
                                     max_choice_points=3)
        assert report.schedules_run <= 40
        assert report.distinct_executions > 1
        assert report.ok_count == report.schedules_run  # spinlock is correct

    def test_choice_point_bound_limits_the_tree(self):
        shallow = enumerate_schedules(TINY, max_schedules=200,
                                      max_choice_points=1)
        deeper = enumerate_schedules(TINY, max_schedules=200,
                                     max_choice_points=2)
        assert shallow.schedules_run <= deeper.schedules_run

    def test_exhausts_small_trees_before_the_budget(self):
        report = enumerate_schedules(TINY, max_schedules=10_000,
                                     max_choice_points=2)
        assert report.schedules_run < 10_000  # ran out of tree, not budget


class _CustomScenario:
    """Anything with build() -> BuiltRun is a scenario; exercise that
    contract with hand-rolled process soups."""

    def __init__(self, behaviour: str):
        self.behaviour = behaviour

    def build(self) -> BuiltRun:
        cluster = Cluster(1, seed=0, audit="off", trace=True)
        env = cluster.env

        def crasher():
            yield env.timeout(10)
            raise RuntimeError("seeded crash")

        def parked():
            yield env.event()  # never triggered -> deadlock

        def spinner():
            while True:
                yield env.timeout(100)  # alive at any deadline -> stall

        def finisher():
            yield env.timeout(10)

        body = {"exception": crasher, "deadlock": parked,
                "stall": spinner, "ok": finisher}[self.behaviour]
        procs = [env.process(body(), name=f"client-{self.behaviour}"),
                 env.process(finisher(), name="client-bystander")]
        return BuiltRun(cluster=cluster, processes=procs, deadline_ns=5_000)


class TestFailureTaxonomy:
    def test_clean_run_is_ok(self):
        result = run_schedule(_CustomScenario("ok"), None)
        assert result.ok and result.failure_kind is None

    def test_client_exception_classified(self):
        result = run_schedule(_CustomScenario("exception"), None)
        assert result.failure_kind == "exception"
        assert "RuntimeError" in result.detail
        assert "seeded crash" in result.detail

    def test_drained_heap_with_parked_clients_is_deadlock(self):
        result = run_schedule(_CustomScenario("deadlock"), None)
        assert result.failure_kind == "deadlock"
        assert "client-deadlock" in result.detail
        assert "last resumed at" in result.detail

    def test_live_clients_at_deadline_is_stall(self):
        result = run_schedule(_CustomScenario("stall"), None)
        assert result.failure_kind == "stall"
        assert "deadline" in result.detail

    def test_summary_mentions_decisions(self):
        result = run_schedule(_CustomScenario("deadlock"), None)
        assert "(default)" in result.summary()


class TestExplorationReport:
    def _failure(self, i):
        return ScheduleResult(ok=False, failure_kind="deadlock",
                              schedule_index=i)

    def test_counts_and_caps(self):
        report = ExplorationReport(max_kept=2)
        report.record(ScheduleResult(ok=True))
        for i in range(5):
            report.record(self._failure(i))
        assert report.schedules_run == 6
        assert report.ok_count == 1
        assert report.failure_counts == {"deadlock": 5}  # all counted
        assert len(report.failures) == 2                 # storage capped
        assert report.first_failure.schedule_index == 0

    def test_stop_on_failure_stops_early(self):
        sc = _CustomScenario("exception")
        report = explore_random(sc, 30, seed=0, stop_on_failure=True)
        assert report.schedules_run == 1
        report = explore_random(sc, 5, seed=0)
        assert report.schedules_run == 5


class TestLockScenarioValidation:
    def test_unknown_picker_rejected(self):
        with pytest.raises(ConfigError):
            LockScenario(pick="round-robin")

    def test_zero_ops_rejected(self):
        with pytest.raises(ConfigError):
            LockScenario(ops_per_thread=0)

    def test_scenarios_are_hashable_recipes(self):
        a = LockScenario(seed=1, lock_options=(("bug", "lost_wakeup"),))
        b = LockScenario(seed=1, lock_options=(("bug", "lost_wakeup"),))
        assert a == b and hash(a) == hash(b)

    @pytest.mark.parametrize("pick", ["single", "local", "remote", "mixed"])
    def test_every_picker_builds_and_runs(self, pick):
        sc = LockScenario(lock_kind="alock", n_nodes=2, threads_per_node=1,
                          ops_per_thread=2, n_locks=4, pick=pick, seed=1)
        assert run_schedule(sc, None).ok

    def test_budgets_extracted_for_alock(self):
        run = LockScenario(lock_kind="alock", n_locks=2).build()
        assert run.budgets
        for home, local_b, remote_b in run.budgets.values():
            assert local_b >= 1 and remote_b >= 1

    def test_stagger_delays_later_clients(self):
        sc = LockScenario(lock_kind="spinlock", n_nodes=1,
                          threads_per_node=2, ops_per_thread=1,
                          stagger_ns=5_000.0, seed=0, record_history=False)
        base = LockScenario(**{**sc.__dict__, "stagger_ns": 0.0})
        assert run_schedule(sc, None).sim_time_ns > \
            run_schedule(base, None).sim_time_ns
