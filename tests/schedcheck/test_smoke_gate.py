"""Tier-1 schedule-exploration smoke gate.

A fixed-seed random exploration of the correct ALock (4 threads) that
must stay clean *and* fast: N=50 schedules under 30 s wall-clock.  The
gate catches three regressions at once — a real interleaving bug
reaching the lock, a determinism leak in the policy machinery (the
digest set is pinned by replaying one schedule), and an exploration
slowdown that would make the harness too expensive for CI.
"""

import time

from repro.schedcheck import LockScenario, explore_random, replay, run_schedule

GATE_SCENARIO = LockScenario(lock_kind="alock", n_nodes=2,
                             threads_per_node=2, ops_per_thread=3, seed=7)
GATE_SEED = 2026
GATE_SCHEDULES = 50


class TestSmokeGate:
    def test_fifty_random_schedules_all_clean_under_30s(self):
        # Wall-clock guards the gate's own cost; it never feeds results.
        start = time.monotonic()  # simlint: ignore[nondet-source]
        report = explore_random(GATE_SCENARIO, GATE_SCHEDULES,
                                seed=GATE_SEED)
        elapsed = time.monotonic() - start  # simlint: ignore[nondet-source]
        assert report.schedules_run == GATE_SCHEDULES
        assert report.ok_count == GATE_SCHEDULES, report.summary()
        # ties must actually be getting explored, not skipped
        assert report.distinct_executions > GATE_SCHEDULES // 2
        assert elapsed < 30.0, f"smoke gate too slow: {elapsed:.1f}s"

    def test_gate_schedule_replays_byte_identical(self):
        from repro.common.rng import derive_seed
        from repro.schedcheck.policies import RandomWalkPolicy

        pseed = derive_seed(GATE_SEED, "schedcheck", "explore", 0)
        recorded = run_schedule(GATE_SCENARIO, RandomWalkPolicy(pseed))
        assert replay(GATE_SCENARIO, recorded.decisions).digest == \
            recorded.digest
