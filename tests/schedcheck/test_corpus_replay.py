"""The committed counterexample corpus is a tier-1 regression suite.

Every entry under ``tests/schedcheck/corpus/`` is a shrunk, frozen
failure found by the exploration fleet.  Each must still *reproduce* —
strict replay lands on the recorded failure kind and execution digest,
byte for byte — and its correct twin (same scenario, seeded bug off)
must survive the same schedule, proving the entry captures the defect
and not a harness artifact.

On a reproduction failure the test renders the committed post-mortem
dump into the assertion message, so CI shows the wait-for graph and
timeline of what the entry *used to* catch.  A ``"stale"`` status means
the scenario drifted under the recording (different choice-point
count): re-find and re-shrink the entry, e.g. ::

    alock-experiments fleet --budget 200 --seed 1 --expect-find \\
        --write-corpus --corpus-dir tests/schedcheck/corpus
"""

import json
import os

import pytest

from repro.obs.report import render_report
from repro.schedcheck.corpus import (
    check_entry,
    entry_json,
    load_corpus,
    load_dump,
)
from repro.schedcheck.fleet import SEEDED_BUGS, correct_twin
from repro.schedcheck.explore import replay

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

CORPUS = load_corpus(CORPUS_DIR)
CORPUS_IDS = [os.path.basename(path) for path, _e in CORPUS]


def _rendered_dump(entry) -> str:
    dump_text = load_dump(CORPUS_DIR, entry)
    if dump_text is None:
        return "(no committed dump)"
    return render_report(json.loads(dump_text))


class TestCorpusIsSeeded:
    def test_every_seeded_bug_has_an_entry(self):
        names = {e.name for _p, e in CORPUS}
        assert names >= {name for name, _sc, _b in SEEDED_BUGS}, (
            "the committed corpus must cover all three seeded bugs")


@pytest.mark.parametrize("path,entry", CORPUS, ids=CORPUS_IDS)
class TestCommittedCorpusReplays:
    def test_entry_reproduces_byte_identical(self, path, entry):
        status, result = check_entry(entry)
        assert status == "reproduced", (
            f"{os.path.basename(path)}: strict replay -> {status!r} "
            f"({result.summary()}).\n"
            f"What this entry used to catch:\n{_rendered_dump(entry)}")
        assert result.failure_kind == entry.failure_kind
        assert result.digest == entry.digest
        # ...and twice in a row (replay is a pure function)
        again = replay(entry.scenario, entry.decisions, strict=True)
        assert again.digest == result.digest

    def test_correct_twin_survives_the_same_schedule(self, path, entry):
        result = replay(correct_twin(entry.scenario), entry.decisions)
        assert result.ok, (
            f"{entry.name}: the bug-free twin fails the recorded "
            f"schedule too — the entry captures a harness artifact, "
            f"not the defect: {result.summary()}")

    def test_committed_bytes_are_canonical(self, path, entry):
        with open(path, encoding="utf-8") as fh:
            on_disk = fh.read()
        assert on_disk == entry_json(entry), (
            f"{os.path.basename(path)} was hand-edited: bytes differ "
            f"from the canonical serialization")
        assert entry.entry_digest() in os.path.basename(path), (
            "filename no longer matches the entry's content address")

    def test_referenced_dump_exists_and_parses(self, path, entry):
        assert entry.dump_ref, f"{entry.name}: entry has no dump_ref"
        dump_text = load_dump(CORPUS_DIR, entry)
        assert dump_text is not None, (
            f"{entry.name}: {entry.dump_ref} missing from the corpus dir")
        dump = json.loads(dump_text)
        assert dump.get("schema") == "alock-postmortem/1"
        assert dump.get("reason") == entry.failure_kind
        # the dump must render without the original process around
        assert "== post-mortem:" in render_report(dump)
