"""Schedule-exploration post-mortems: every failing ScheduleResult
carries a dump, and the shrinker (satellite 6) always reports the dump
of the *shrunk* failure — not a stale one from the original schedule."""

import json

from repro.obs.postmortem import SCHEMA
from repro.schedcheck.explore import explore_random, replay, run_schedule
from repro.schedcheck.scenario import LockScenario
from repro.schedcheck.shrink import shrink_failure

LOST_WAKEUP = LockScenario(
    lock_kind="mcs", n_nodes=1, threads_per_node=3, ops_per_thread=3,
    seed=0, lock_options=(("bug", "lost_wakeup"),
                          ("poll_interval_ns", 200.0)))

CORRECT = LockScenario(
    lock_kind="mcs", n_nodes=1, threads_per_node=2, ops_per_thread=2,
    seed=0)


def first_failure():
    report = explore_random(LOST_WAKEUP, 50, seed=1, stop_on_failure=True)
    assert report.first_failure is not None
    return report.first_failure


class TestScheduleResultDump:
    def test_failures_carry_a_dump(self):
        failure = first_failure()
        dump = json.loads(failure.dump)
        assert dump["schema"] == SCHEMA
        assert dump["reason"] == failure.failure_kind
        # the dump's decision string is the failing schedule's — replayable
        assert dump["sched"]["decisions"] == failure.decisions.to_string()

    def test_ok_results_carry_none(self):
        result = run_schedule(CORRECT, None)
        assert result.ok and result.dump is None

    def test_replaying_the_dumped_decisions_reproduces_the_failure(self):
        failure = first_failure()
        decisions = json.loads(failure.dump)["sched"]["decisions"]
        rerun = replay(LOST_WAKEUP, decisions)
        assert rerun.failure_kind == failure.failure_kind
        assert rerun.dump == failure.dump


class TestShrinkerPreservesDump:
    def test_shrunk_result_dump_matches_shrunk_decisions(self):
        failure = first_failure()
        shrunk = shrink_failure(LOST_WAKEUP, failure, max_replays=120)
        assert shrunk.result.failure_kind == failure.failure_kind
        dump = json.loads(shrunk.result.dump)
        # the invariant: the reported dump is the snapshot of the final
        # (shrunk) failing replay, so its stored decision string is the
        # shrunk one, byte for byte
        assert dump["sched"]["decisions"] == shrunk.decisions.to_string()
        assert dump["sched"]["decisions"] == \
            shrunk.result.decisions.to_string()
        assert len(shrunk.decisions) <= len(failure.decisions)
