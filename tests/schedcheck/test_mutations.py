"""Mutation tests: the explorer must catch seeded interleaving bugs.

Three opt-in defects live in the real lock implementations:

* ``no_victim_check`` (ALock's Peterson competition) — the local leader
  skips the not-victim clause and waits for a fully-drained remote tail.
* ``skip_budget_wait`` (ALock's MCS release) — the holder reads ``next``
  once instead of waiting for the successor link; a late link write
  orphans the successor.
* ``lost_wakeup`` (MCS baseline) — check-then-park wait: the handoff
  write can land after the poll sampled the flag but before the watcher
  is armed.

For each, the same scenario must (a) complete cleanly under the default
schedule — the bug hides from plain testing; (b) be found by seeded
exploration within a bounded schedule budget; (c) shrink to a
counterexample of at most 25 decisions that still fails.  The seeds and
budgets below are the documented reproduction constants.
"""

import pytest

from repro.common.errors import ConfigError
from repro.locks import make_lock
from repro.schedcheck import (
    explore_random,
    replay,
    run_schedule,
    shrink_failure,
)
# The bug table and its budgets are the documented reproduction
# constants; they live in the fleet module (single source for this
# suite, the CI fleet gate and the quality baselines).
from repro.schedcheck.fleet import SEEDED_BUGS, correct_twin

EXPLORE_SEED = 1

BUG_IDS = [name for name, _sc, _n in SEEDED_BUGS]


@pytest.mark.parametrize("name,scenario,budget", SEEDED_BUGS, ids=BUG_IDS)
class TestSeededBugs:
    def test_default_schedule_does_not_catch_it(self, name, scenario, budget):
        """The bug survives the insertion-order schedule — the reason the
        plain test suite can't see these defects."""
        result = run_schedule(scenario, None)
        assert result.ok, f"{name} fails even by default: {result.summary()}"

    def test_exploration_finds_it_within_budget(self, name, scenario, budget):
        report = explore_random(scenario, budget, seed=EXPLORE_SEED,
                                stop_on_failure=True)
        failure = report.first_failure
        assert failure is not None, (
            f"{name} not found in {budget} schedules (seed {EXPLORE_SEED})")
        assert failure.failure_kind in ("deadlock", "stall")
        # the failure names the stuck clients with their last-resumed times
        assert "client-" in failure.detail
        assert "last resumed at" in failure.detail

    def test_counterexample_shrinks_small_and_still_fails(
            self, name, scenario, budget):
        report = explore_random(scenario, budget, seed=EXPLORE_SEED,
                                stop_on_failure=True)
        failure = report.first_failure
        shrunk = shrink_failure(scenario, failure)
        assert shrunk.size <= 25, shrunk.summary()
        assert shrunk.size <= len(failure.decisions)
        confirmed = replay(scenario, shrunk.decisions)
        assert not confirmed.ok
        assert confirmed.failure_kind == failure.failure_kind

    def test_correct_lock_survives_the_same_exploration(
            self, name, scenario, budget):
        """Identical scenario, bug off: every explored schedule passes —
        the detections above are the defects, not the harness."""
        report = explore_random(correct_twin(scenario), budget,
                                seed=EXPLORE_SEED)
        assert report.ok_count == report.schedules_run, report.summary()


class TestBugOptValidation:
    def test_unknown_bug_rejected(self):
        from repro.cluster import Cluster

        cluster = Cluster(2, seed=0)
        with pytest.raises(ConfigError):
            make_lock("alock", cluster, 0, bug="typo_bug")
        with pytest.raises(ConfigError):
            make_lock("mcs", cluster, 0, bug="typo_bug")

    def test_bugs_are_off_by_default(self):
        from repro.cluster import Cluster

        cluster = Cluster(2, seed=0)
        assert make_lock("alock", cluster, 0).bug == ""
        assert make_lock("mcs", cluster, 0).bug == ""
