"""Unit tests for sparse decision strings."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigError
from repro.schedcheck import Decisions


class TestConstruction:
    def test_default_picks_are_dropped(self):
        d = Decisions([(3, 0), (7, 2), (9, 0)])
        assert len(d) == 1
        assert d.get(7) == 2
        assert d.get(3) == 0 and d.get(9) == 0

    def test_from_dense_log(self):
        d = Decisions.from_dense([0, 0, 2, 0, 1])
        assert dict(d.items()) == {2: 2, 4: 1}

    def test_negative_entries_rejected(self):
        with pytest.raises(ConfigError):
            Decisions([(-1, 2)])
        with pytest.raises(ConfigError):
            Decisions([(1, -2)])

    def test_parse_render_roundtrip(self):
        d = Decisions.parse("17:2,45:1")
        assert d.to_string() == "17:2,45:1"
        assert Decisions.parse("") == Decisions()

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigError):
            Decisions.parse("17-2")
        with pytest.raises(ConfigError):
            Decisions.parse("17:2,oops")

    def test_entries_sorted_regardless_of_input_order(self):
        assert Decisions([(9, 1), (2, 3)]).to_string() == "2:3,9:1"


class TestEditing:
    def test_without(self):
        d = Decisions.parse("1:1,5:2,9:3")
        assert d.without([5]).to_string() == "1:1,9:3"
        assert d.without([1, 5, 9]) == Decisions()

    def test_replace(self):
        d = Decisions.parse("5:2")
        assert d.replace(5, 1).to_string() == "5:1"
        assert d.replace(5, 0) == Decisions()  # default pick vanishes

    def test_last_index(self):
        assert Decisions.parse("3:1,11:2").last_index == 11
        assert Decisions().last_index == -1

    def test_equality_and_hash(self):
        a, b = Decisions.parse("4:1"), Decisions([(4, 1)])
        assert a == b and hash(a) == hash(b)
        assert a != Decisions.parse("4:2")


@given(st.dictionaries(st.integers(0, 300), st.integers(1, 7), max_size=12))
def test_roundtrip_property(mapping):
    d = Decisions.from_mapping(mapping)
    assert Decisions.parse(d.to_string()) == d
    assert len(d) == len(mapping)
