"""Fleet determinism: worker count must never change a byte.

The canonical fleet report (and every corpus entry frozen from it) is a
pure function of the :class:`FleetConfig` — sharding cells over 1, 2 or
4 processes, chunk completion order, and crashed cells must all wash
out.  ``PYTHONHASHSEED`` immunity rides on the selftest transcript gate
(``test_replay.py``), which now includes a fleet run and its report
digest.
"""

import os

import pytest

from repro.schedcheck import LockScenario
from repro.schedcheck.explore import explore_random
from repro.schedcheck.fleet import (
    SEEDED_BUGS,
    FleetConfig,
    run_fleet,
    write_fleet_corpus,
)

NVC_HARD = LockScenario(lock_kind="alock", n_nodes=2, threads_per_node=2,
                        ops_per_thread=2, think_ns=200.0, stagger_ns=600.0,
                        seed=0, lock_options=(("bug", "no_victim_check"),))

CONFIG = FleetConfig(
    scenarios=tuple((name, sc) for name, sc, _b in SEEDED_BUGS),
    budget=48, seed=1, cell_size=8, cells_per_round=2)


def tree_bytes(root: str) -> dict:
    out = {}
    for dirpath, _dirs, files in os.walk(root):
        for fname in files:
            path = os.path.join(dirpath, fname)
            with open(path, "rb") as fh:
                out[os.path.relpath(path, root)] = fh.read()
    return out


class TestWorkerCountInvariance:
    @pytest.fixture(scope="class")
    def serial(self, tmp_path_factory):
        report = run_fleet(CONFIG, workers=0)
        corpus = str(tmp_path_factory.mktemp("corpus-serial"))
        write_fleet_corpus(report, corpus)
        return report, corpus

    @pytest.mark.parametrize("workers", [2, 4])
    def test_report_and_corpus_bytes_identical(self, serial, workers,
                                               tmp_path):
        ref_report, ref_corpus = serial
        report = run_fleet(CONFIG, workers=workers)
        assert report.to_json_bytes() == ref_report.to_json_bytes(), (
            f"workers={workers} changed the canonical fleet report")
        corpus = str(tmp_path / "corpus")
        write_fleet_corpus(report, corpus)
        assert tree_bytes(corpus) == tree_bytes(ref_corpus), (
            f"workers={workers} changed the written corpus tree")

    def test_failure_digests_match_across_worker_counts(self, serial):
        ref_report, _ = serial
        report = run_fleet(CONFIG, workers=2)
        for name in ("no_victim_check", "skip_budget_wait", "lost_wakeup"):
            a = [k["digest"] for k in ref_report.scenario(name).kept]
            b = [k["digest"] for k in report.scenario(name).kept]
            assert a == b and a, name

    def test_rerun_is_identical(self, serial):
        ref_report, _ = serial
        assert run_fleet(CONFIG).to_json_bytes() == ref_report.to_json_bytes()


class TestRandomModeParity:
    """With steering off, the fleet walks exactly explore_random's
    schedule stream — the property that makes steered-vs-random a fair
    comparison and the worker-count tests meaningful."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_first_find_matches_explore_random(self, seed):
        budget = 60
        config = FleetConfig(scenarios=(("nvc", NVC_HARD),), budget=budget,
                             seed=seed, coverage=False, cell_size=4,
                             cells_per_round=1, shrink=False)
        fleet_find = run_fleet(config).scenarios[0].first_find
        serial = explore_random(NVC_HARD, budget, seed=seed,
                                stop_on_failure=True).first_failure
        serial_find = None if serial is None else serial.schedule_index
        if fleet_find is None or serial_find is None:
            assert fleet_find == serial_find
        else:
            # stop_on_find is round-granular: the fleet may overshoot
            # within its final round but lands on the same first find.
            assert fleet_find == serial_find


class TestCrashIsolation:
    def test_crashing_scenario_does_not_sink_the_fleet(self):
        # unknown lock kind: every build in those cells raises
        broken = LockScenario(lock_kind="nosuch", n_nodes=1,
                              threads_per_node=2, ops_per_thread=2, seed=0)
        config = FleetConfig(
            scenarios=(("broken", broken), ("nvc", NVC_HARD)),
            budget=16, seed=1, cell_size=4, cells_per_round=2, shrink=False)
        report = run_fleet(config, workers=2)
        crashed = report.scenario("broken")
        assert crashed.crashed_cells > 0
        assert crashed.schedules_run == 0
        healthy = report.scenario("nvc")
        assert healthy.crashed_cells == 0
        assert healthy.schedules_run > 0

    def test_crashes_do_not_change_healthy_bytes(self):
        broken = LockScenario(lock_kind="nosuch", n_nodes=1,
                              threads_per_node=2, ops_per_thread=2, seed=0)
        with_broken = FleetConfig(
            scenarios=(("broken", broken), ("nvc", NVC_HARD)),
            budget=16, seed=1, cell_size=4, cells_per_round=2, shrink=False)
        alone = FleetConfig(scenarios=(("nvc", NVC_HARD),), budget=16,
                            seed=1, cell_size=4, cells_per_round=2,
                            shrink=False)
        a = run_fleet(with_broken, workers=2).scenario("nvc")
        b = run_fleet(alone).scenario("nvc")
        assert a.payload() == b.payload()


class TestConfigValidation:
    def test_duplicate_names_rejected(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            FleetConfig(scenarios=(("x", NVC_HARD), ("x", NVC_HARD)))

    def test_bad_mutation_fraction_rejected(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            FleetConfig(scenarios=(("x", NVC_HARD),), mutation_num=5,
                        mutation_den=4)
