"""Corpus mechanics: round-trips, content addressing, strict staleness.

The staleness tests pin the ``ReplayPolicy`` contract that makes a
committed corpus trustworthy: the forgiving replay behaviours (clamping
out-of-range picks, playing index 0 past the end of the recording) are
*detected* and surfaced as a distinct ``"stale"`` failure — with a
re-shrink hint — instead of silently executing a schedule the recording
never described.
"""

import json
import os

import pytest

from repro.common.errors import ConfigError
from repro.faults import CrashWindow, FaultPlan
from repro.schedcheck import LockScenario, ReplayPolicy, run_schedule
from repro.schedcheck.corpus import (
    CorpusEntry,
    check_entry,
    entry_from_payload,
    entry_json,
    load_corpus,
    load_dump,
    load_entry,
    scenario_digest,
    scenario_from_payload,
    scenario_payload,
    write_entry,
)
from repro.schedcheck.explore import explore_random, replay

BUG_SC = LockScenario(lock_kind="alock", n_nodes=1, threads_per_node=2,
                      ops_per_thread=4, think_ns=100.0, seed=2,
                      lock_options=(("bug", "skip_budget_wait"),))

FAULTY_SC = LockScenario(
    lock_kind="mcs", n_nodes=2, threads_per_node=2, ops_per_thread=2, seed=3,
    lock_options=(("poll_interval_ns", 200.0),),
    faults=FaultPlan(verb_loss_rate=0.05, spike_rate=0.1, spike_ns=500.0,
                     crash_windows=(CrashWindow(node=1, start_ns=100.0,
                                                end_ns=900.0),)))


def find_entry(scenario: LockScenario, name: str = "probe") -> CorpusEntry:
    """A real (unshrunk) entry from seeded exploration of ``scenario``."""
    failure = explore_random(scenario, 50, seed=1,
                             stop_on_failure=True).first_failure
    assert failure is not None
    return CorpusEntry(name=name, failure_kind=failure.failure_kind,
                       scenario=scenario,
                       decisions=failure.decisions.to_string(),
                       digest=failure.digest, detail=failure.detail)


class TestScenarioRoundTrip:
    @pytest.mark.parametrize("scenario", [BUG_SC, FAULTY_SC],
                             ids=["bug", "faults"])
    def test_payload_round_trips(self, scenario):
        assert scenario_from_payload(scenario_payload(scenario)) == scenario

    def test_payload_survives_json(self):
        blob = json.dumps(scenario_payload(FAULTY_SC), sort_keys=True)
        assert scenario_from_payload(json.loads(blob)) == FAULTY_SC

    def test_digest_tracks_content(self):
        assert scenario_digest(BUG_SC) == scenario_digest(BUG_SC)
        assert scenario_digest(BUG_SC) != scenario_digest(FAULTY_SC)
        bumped = LockScenario(**{**BUG_SC.__dict__, "seed": 3})
        assert scenario_digest(bumped) != scenario_digest(BUG_SC)


class TestEntryStore:
    def test_entry_round_trips_through_disk(self, tmp_path):
        entry = find_entry(BUG_SC)
        path = write_entry(entry, str(tmp_path), dump="{\"x\": 1}")
        loaded = load_entry(path)
        assert loaded.decisions == entry.decisions
        assert loaded.digest == entry.digest
        assert loaded.scenario == entry.scenario
        assert loaded.dump_ref is not None
        assert load_dump(str(tmp_path), loaded) == "{\"x\": 1}\n"
        # the filename embeds the content address
        assert loaded.entry_digest() in os.path.basename(path)

    def test_write_is_idempotent(self, tmp_path):
        entry = find_entry(BUG_SC)
        a = write_entry(entry, str(tmp_path))
        b = write_entry(entry, str(tmp_path))
        assert a == b
        assert [p for p, _e in load_corpus(str(tmp_path))] == [a]

    def test_provenance_outside_identity(self):
        entry = find_entry(BUG_SC)
        tagged = CorpusEntry(name=entry.name,
                             failure_kind=entry.failure_kind,
                             scenario=entry.scenario,
                             decisions=entry.decisions, digest=entry.digest,
                             detail=entry.detail,
                             provenance=(("fleet_seed", 7),))
        assert tagged.entry_digest() == entry.entry_digest()

    def test_unknown_schema_rejected(self):
        entry = find_entry(BUG_SC)
        payload = json.loads(entry_json(entry))
        payload["schema"] = "alock-corpus/999"
        with pytest.raises(ConfigError):
            entry_from_payload(payload)

    def test_missing_corpus_dir_is_empty(self, tmp_path):
        assert load_corpus(str(tmp_path / "nope")) == []


class TestReplayDrift:
    """The ReplayPolicy-level staleness signal."""

    def test_faithful_replay_has_no_drift(self):
        recorded = explore_random(BUG_SC, 50, seed=1,
                                  stop_on_failure=True).first_failure
        policy = ReplayPolicy(recorded.decisions)
        run_schedule(BUG_SC, policy)
        assert policy.drift() == []
        assert policy.clamped == []

    def test_unreached_decisions_reported(self):
        policy = ReplayPolicy({10_000: 1})
        run_schedule(BUG_SC, policy)
        problems = policy.drift()
        assert any("before recorded decision" in p for p in problems)
        assert "10000:1" in " ".join(problems)

    def test_clamped_picks_reported(self):
        policy = ReplayPolicy({0: 99})
        run_schedule(BUG_SC, policy)
        assert policy.clamped and policy.clamped[0][0] == 0
        assert any("clamped" in p for p in policy.drift())


class TestStrictReplay:
    def test_strict_flags_unreached_decisions_as_stale(self):
        result = replay(BUG_SC, {10_000: 1}, strict=True)
        assert not result.ok
        assert result.failure_kind == "stale"
        assert "stale corpus entry" in result.detail
        assert "re-find and re-shrink" in result.detail

    def test_strict_flags_clamped_picks_as_stale(self):
        result = replay(BUG_SC, {0: 99}, strict=True)
        assert result.failure_kind == "stale"

    def test_non_strict_stays_forgiving(self):
        assert replay(BUG_SC, {10_000: 1}).failure_kind != "stale"


class TestCheckEntry:
    def test_real_entry_reproduces(self):
        entry = find_entry(BUG_SC)
        status, result = check_entry(entry)
        assert status == "reproduced"
        assert result.digest == entry.digest

    def test_stale_entry_detected(self):
        entry = find_entry(BUG_SC)
        stale = CorpusEntry(name=entry.name, failure_kind=entry.failure_kind,
                            scenario=entry.scenario, decisions="10000:1",
                            digest=entry.digest)
        status, result = check_entry(stale)
        assert status == "stale"
        assert result.failure_kind == "stale"

    def test_digest_drift_is_a_mismatch(self):
        entry = find_entry(BUG_SC)
        tampered = CorpusEntry(name=entry.name,
                               failure_kind=entry.failure_kind,
                               scenario=entry.scenario,
                               decisions=entry.decisions,
                               digest="0" * len(entry.digest))
        status, _result = check_entry(tampered)
        assert status == "mismatch"

    def test_fixed_code_passes(self):
        # same recording, bug switched off: the defect was the failure
        from repro.schedcheck.fleet import correct_twin

        entry = find_entry(BUG_SC)
        fixed = CorpusEntry(name=entry.name, failure_kind=entry.failure_kind,
                            scenario=correct_twin(entry.scenario),
                            decisions=entry.decisions, digest=entry.digest)
        status, result = check_entry(fixed)
        assert status == "passed"
        assert result.ok
