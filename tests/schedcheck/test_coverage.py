"""Interleaving-prefix coverage: unit behaviour and steering quality.

The second half is the mutation-test of the coverage signal itself: on
the hardened seeded bugs (client staggers thin the time-0 tie cluster,
so random stops tripping over the defects immediately) both pure-random
and novelty-steered fleets must still find every bug within the
documented budget.  CI gates on *found at all*; the random-vs-steered
median comparison (where steering must win on at least 2 of 3) is
recorded informationally by ``scripts/schedcheck_quality.py`` into
``benchmarks/baselines/QUALITY_schedcheck.json``.
"""

import pytest

from repro.schedcheck.coverage import (
    DEFAULT_DEPTH,
    CoverageMap,
    MutationCandidate,
    iter_prefix_hashes,
    prefix_hash,
)
from repro.schedcheck.fleet import HARDENED_BUGS, first_find

HARD_IDS = [name for name, _sc, _n in HARDENED_BUGS]


class TestPrefixHashes:
    def test_incremental_matches_full(self):
        dense, fanouts = (1, 0, 2, 1), (3, 2, 4, 2)
        hashes = list(iter_prefix_hashes(dense, fanouts))
        assert len(hashes) == 4
        for k, h in enumerate(hashes):
            assert h == prefix_hash(dense[:k + 1], fanouts[:k + 1])

    def test_prefixes_are_distinct_and_order_sensitive(self):
        a = prefix_hash((0, 1), (2, 2))
        b = prefix_hash((1, 0), (2, 2))
        assert a != b
        # fanout is part of the identity: same picks, different tree
        assert prefix_hash((0,), (2,)) != prefix_hash((0,), (3,))

    def test_depth_cap(self):
        dense = tuple(range(100))
        fanouts = tuple(101 for _ in dense)
        assert len(list(iter_prefix_hashes(dense, fanouts))) == DEFAULT_DEPTH
        assert len(list(iter_prefix_hashes(dense, fanouts, depth=7))) == 7


class TestCoverageMap:
    def test_observe_reports_novel_points_once(self):
        cov = CoverageMap()
        novel = cov.observe((0, 1, 0), (2, 2, 2))
        assert novel == (0, 1, 2)
        # the same run again: nothing new
        assert cov.observe((0, 1, 0), (2, 2, 2)) == ()
        # shared prefix, divergent tail: only the divergence is novel
        assert cov.observe((0, 1, 1), (2, 2, 2)) == (2,)
        assert cov.runs_observed == 3
        assert cov.novel_runs == 2
        assert cov.prefixes_seen == 4

    def test_breed_generates_unseen_siblings(self):
        cov = CoverageMap()
        novel = cov.observe((1, 0), (3, 2))
        added = cov.breed((1, 0), (3, 2), novel)
        # point 0 has fanout 3 -> siblings 0 and 2; point 1 fanout 2 ->
        # sibling (1, 1)
        assert added == 3
        cov.rerank()
        taken = cov.take(3)
        assert [c.prefix for c in taken] == [(0,), (2,), (1, 1)]
        assert all(isinstance(c, MutationCandidate) for c in taken)
        # issued candidates leave the pool
        assert cov.pool_size == 0
        assert cov.candidates_issued == 3

    def test_breed_dedups_against_seen_and_queued(self):
        cov = CoverageMap()
        novel = cov.observe((0,), (2,))
        assert cov.breed((0,), (2,), novel) == 1      # sibling (1,)
        assert cov.breed((0,), (2,), novel) == 0      # already queued
        cov.observe((1,), (2,))                       # sibling executed
        cov2 = CoverageMap()
        n2 = cov2.observe((0,), (2,))
        cov2.observe((1,), (2,))
        assert cov2.breed((0,), (2,), n2) == 0        # already seen

    def test_rerank_prefers_high_novelty_then_order(self):
        cov = CoverageMap()
        # low-novelty source first (1 novel point), then a richer one
        cov.breed((0,), (2,), (0,))
        cov.breed((0, 0, 1), (2, 3, 2), (1, 2))
        cov._seen.update(h for h in iter_prefix_hashes((0,), (2,)))
        cov.rerank()
        weights = [c.weight for c in cov._pool]
        assert weights == sorted(weights, reverse=True)

    def test_pool_caps(self):
        cov = CoverageMap(pool_high=4, pool_low=2)
        dense = tuple(0 for _ in range(10))
        fanouts = tuple(9 for _ in range(10))
        novel = cov.observe(dense, fanouts)
        assert cov.breed(dense, fanouts, novel) == 4   # stops at pool_high
        cov.rerank()
        assert cov.pool_size == 2                      # clipped to pool_low
        # clipped candidates free their queued-hash slots for later breeding
        assert cov.breed(dense, fanouts, novel) == 2

    def test_summary_is_primitive_counts(self):
        cov = CoverageMap()
        cov.observe((0,), (2,))
        s = cov.summary()
        assert s["prefixes_seen"] == 1
        assert s["runs_observed"] == 1
        assert all(isinstance(v, int) for v in s.values())


@pytest.mark.parametrize("name,scenario,budget", HARDENED_BUGS, ids=HARD_IDS)
class TestSteeringQuality:
    """Both steering modes must find every hardened bug within budget —
    the found-at-all CI gate behind the quality medians."""

    def test_steered_finds_it_within_budget(self, name, scenario, budget):
        found = first_find(scenario, budget, seed=0, coverage=True)
        assert found is not None, (
            f"novelty-steered fleet missed {name} in {budget} schedules")

    def test_random_baseline_finds_it_within_budget(self, name, scenario,
                                                    budget):
        found = first_find(scenario, budget, seed=0, coverage=False)
        assert found is not None, (
            f"random baseline missed {name} in {budget} schedules")
