"""Replay fidelity: decision strings reproduce executions byte for byte.

Includes the cross-process gate: the selftest transcript (digests,
decision strings, exploration summary) must be byte-identical under
different ``PYTHONHASHSEED`` values, or recorded counterexamples would
not be portable between machines and CI runs.
"""

import os
import subprocess
import sys

import pytest

from repro.common.rng import derive_seed
from repro.schedcheck import (
    Decisions,
    LockScenario,
    PctPolicy,
    RandomWalkPolicy,
    explore_random,
    replay,
    run_schedule,
)

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

SC = LockScenario(lock_kind="alock", n_nodes=2, threads_per_node=2,
                  ops_per_thread=2, seed=5)


class TestReplayFidelity:
    @pytest.mark.parametrize("policy_seed", [0, 1, 2, 3])
    def test_random_schedule_replays_byte_identical(self, policy_seed):
        recorded = run_schedule(SC, RandomWalkPolicy(policy_seed))
        replayed = replay(SC, recorded.decisions)
        assert replayed.digest == recorded.digest
        assert replayed.events == recorded.events
        assert replayed.sim_time_ns == recorded.sim_time_ns
        assert replayed.decisions == recorded.decisions

    def test_pct_schedule_replays_byte_identical(self):
        recorded = run_schedule(SC, PctPolicy(11, change_points=4))
        assert replay(SC, recorded.decisions).digest == recorded.digest

    def test_replay_accepts_rendered_strings(self):
        recorded = run_schedule(SC, RandomWalkPolicy(3))
        text = recorded.decisions.to_string()
        assert replay(SC, text).digest == recorded.digest

    def test_empty_string_is_default_schedule(self):
        assert replay(SC, "").digest == run_schedule(SC, None).digest
        assert replay(SC, Decisions()).digest == run_schedule(SC, None).digest

    def test_replay_clamps_out_of_range_choices(self):
        """Edited strings with too-large picks stay runnable (choices
        clamp to the last ready index)."""
        result = replay(SC, {0: 99})
        assert result.digest  # ran to a classified end, whatever it was


class TestExplorationDeterminism:
    def test_same_exploration_seed_same_report(self):
        a = explore_random(SC, 8, seed=23)
        b = explore_random(SC, 8, seed=23)
        assert a.summary() == b.summary()

    def test_per_schedule_seeds_derive_from_root(self):
        # the derivation contract the docs promise
        assert derive_seed(23, "schedcheck", "explore", 0) != \
            derive_seed(23, "schedcheck", "explore", 1)


def run_selftest(hashseed: str) -> bytes:
    env = dict(os.environ, PYTHONHASHSEED=hashseed,
               PYTHONPATH=os.path.abspath(SRC))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.schedcheck.selftest"],
        capture_output=True, env=env, timeout=300)
    assert proc.returncode == 0, proc.stderr.decode()
    return proc.stdout


class TestHashSeedDeterminism:
    def test_selftest_byte_identical_across_hash_seeds(self):
        out0 = run_selftest("0")
        out1 = run_selftest("54321")
        assert out0 == out1, "schedule exploration depends on PYTHONHASHSEED"
        # sanity: replay matched on every transcript line that claims it
        assert b"replay_match=True" in out0
        assert b"replay_match=False" not in out0
        assert b"match=True" in out0
