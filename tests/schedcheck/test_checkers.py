"""Checker tests: CS overlap, budget bounds, linearizability.

Unit cases drive the checkers with hand-built traces/histories (including
the required non-linearizable rejection); the integration cases run real
scenarios and cross-check the trace-level verdict against the memory-level
RaceAuditor — independent observers that must agree.
"""

import pytest

from repro.common.trace import TraceEvent
from repro.schedcheck import (
    CounterModel,
    KvModel,
    LockScenario,
    Op,
    check_budget_bounds,
    check_cs_overlap,
    run_schedule,
)
from repro.schedcheck.linearize import check_linearizable


def ev(time, actor, kind, detail=""):
    return TraceEvent(time, actor, kind, detail)


class TestCsOverlap:
    def test_clean_trace_accepted(self):
        trace = [ev(0, "t0@n0", "cs.enter", "L"),
                 ev(10, "t0@n0", "cs.exit", "L"),
                 ev(20, "t1@n1", "cs.enter", "L"),
                 ev(30, "t1@n1", "cs.exit", "L")]
        assert check_cs_overlap(trace) == []

    def test_two_holders_flagged(self):
        trace = [ev(0, "t0@n0", "cs.enter", "L"),
                 ev(5, "t1@n1", "cs.enter", "L"),
                 ev(10, "t0@n0", "cs.exit", "L")]
        violations = check_cs_overlap(trace)
        assert len(violations) == 1
        assert "t1@n1" in violations[0] and "t0@n0" in violations[0]

    def test_disjoint_locks_may_interleave(self):
        trace = [ev(0, "t0@n0", "cs.enter", "A"),
                 ev(1, "t1@n1", "cs.enter", "B"),
                 ev(2, "t0@n0", "cs.exit", "A"),
                 ev(3, "t1@n1", "cs.exit", "B")]
        assert check_cs_overlap(trace) == []

    def test_exit_by_non_holder_flagged(self):
        trace = [ev(0, "t0@n0", "cs.enter", "L"),
                 ev(5, "t1@n1", "cs.exit", "L")]
        assert len(check_cs_overlap(trace)) == 1


class TestBudgetBounds:
    BUDGETS = {"L": (0, 2, 4)}  # home node 0, local budget 2, remote 4

    def test_within_budget_accepted(self):
        trace = [ev(0, "t0@n0", "peterson.acquired", "L cohort=LOCAL via x"),
                 ev(1, "t0@n0", "cs.enter", "L"),
                 ev(2, "t1@n0", "cs.enter", "L")]
        assert check_budget_bounds(trace, self.BUDGETS) == []

    def test_local_overrun_flagged(self):
        trace = [ev(0, "t0@n0", "peterson.acquired", "L cohort=LOCAL via x"),
                 ev(1, "t0@n0", "cs.enter", "L"),
                 ev(2, "t1@n0", "cs.enter", "L"),
                 ev(3, "t0@n0", "cs.enter", "L")]  # 3rd local CS, budget 2
        violations = check_budget_bounds(trace, self.BUDGETS)
        assert len(violations) == 1
        assert "budget 2" in violations[0]

    def test_rewinning_resets_the_streak(self):
        trace = [ev(0, "t0@n0", "peterson.acquired", "L cohort=LOCAL via x"),
                 ev(1, "t0@n0", "cs.enter", "L"),
                 ev(2, "t1@n0", "cs.enter", "L"),
                 ev(3, "t0@n0", "peterson.acquired", "L cohort=LOCAL via x"),
                 ev(4, "t0@n0", "cs.enter", "L")]
        assert check_budget_bounds(trace, self.BUDGETS) == []

    def test_remote_cohort_uses_remote_budget(self):
        trace = [ev(0, "t0@n1", "peterson.acquired", "L cohort=REMOTE via x")]
        trace += [ev(i + 1, f"t{i % 2}@n1", "cs.enter", "L")
                  for i in range(4)]
        assert check_budget_bounds(trace, self.BUDGETS) == []
        trace.append(ev(9, "t0@n1", "cs.enter", "L"))  # 5th > budget 4
        assert len(check_budget_bounds(trace, self.BUDGETS)) == 1

    def test_non_budgeted_locks_ignored(self):
        trace = [ev(i, "t0@n0", "cs.enter", "other") for i in range(10)]
        assert check_budget_bounds(trace, self.BUDGETS) == []


def op(opid, action, result, invoke, response, obj="counter[0]", args=()):
    return Op(opid, f"t{opid}@n0", obj, action, args, result, invoke, response)


class TestLinearizability:
    def test_sequential_counter_history_accepted(self):
        ops = [op(1, "inc", 0, 0, 10), op(2, "inc", 1, 20, 30)]
        assert check_linearizable(ops, CounterModel()) is None

    def test_concurrent_history_with_reordered_results_accepted(self):
        # overlapping ops whose results only fit in the *other* order —
        # exactly what linearizability permits
        ops = [op(1, "inc", 1, 0, 50), op(2, "inc", 0, 5, 45)]
        assert check_linearizable(ops, CounterModel()) is None

    def test_hand_built_non_linearizable_history_rejected(self):
        # two sequential incs both observing 0: the second op's interval
        # starts after the first responded, so no order can explain it
        ops = [op(1, "inc", 0, 0, 10), op(2, "inc", 0, 20, 30)]
        msg = check_linearizable(ops, CounterModel())
        assert msg is not None and "NOT linearizable" in msg

    def test_lost_update_shape_rejected(self):
        # three incs, results 0, 0, 1 with disjoint intervals — the
        # classic lost-update signature a broken lock produces
        ops = [op(1, "inc", 0, 0, 10), op(2, "inc", 0, 20, 30),
               op(3, "inc", 1, 40, 50)]
        assert check_linearizable(ops, CounterModel()) is not None

    def test_kv_register_semantics(self):
        good = [op(1, "put", None, 0, 10, obj="kv[3]", args=(7,)),
                op(2, "get", 7, 20, 30, obj="kv[3]")]
        assert check_linearizable(good, KvModel(missing=0)) is None
        stale = [op(1, "put", None, 0, 10, obj="kv[3]", args=(7,)),
                 op(2, "get", 0, 20, 30, obj="kv[3]")]
        assert check_linearizable(stale, KvModel(missing=0)) is not None

    def test_empty_history_accepted(self):
        assert check_linearizable([], CounterModel()) is None

    def test_memoization_handles_wide_histories(self):
        # 18 pairwise-overlapping ops with results 0..17: plain Wing-Gong
        # would branch factorially; the memoized search must finish fast
        ops = [op(i + 1, "inc", i, 0 + i * 0.001, 1000 + i) for i in range(18)]
        assert check_linearizable(ops, CounterModel()) is None


class TestCheckersAgreeOnRealRuns:
    def test_clean_run_passes_all_observers(self):
        """Trace checker, race auditor, holder oracle, and the recorded
        history all validate one real ALock run."""
        sc = LockScenario(lock_kind="alock", n_nodes=2, threads_per_node=2,
                          ops_per_thread=2, seed=5)
        run = sc.build()
        run.cluster.env.run(until=run.deadline_ns)
        assert check_cs_overlap(run.cluster.tracer) == []
        assert run.cluster.auditor.violation_count == 0
        assert run.validate() == []
        assert run.history is not None and run.history.ops
        assert run.history.pending_count == 0

    def test_run_schedule_validates_history_of_every_lock_kind(self):
        for kind in ("alock", "mcs", "spinlock"):
            result = run_schedule(
                LockScenario(lock_kind=kind, n_nodes=2, threads_per_node=2,
                             ops_per_thread=2, seed=3), None)
            assert result.ok, f"{kind}: {result.summary()}"


class TestKvStoreHistory:
    def test_kv_history_records_and_linearizes(self):
        """The KV store's opt-in history hook feeds the checker: a
        contended get/put workload over shared keys validates clean."""
        from repro.kvstore import KVConfig, ShardedKVStore
        from repro.schedcheck import HistoryRecorder, check_linearizability
        from repro.cluster import Cluster

        cluster = Cluster(2, seed=11, audit="off")
        store = ShardedKVStore(cluster, KVConfig(n_buckets=4))
        history = HistoryRecorder(cluster.env)
        store.attach_history(history)

        def client(node, thread):
            ctx = cluster.thread_ctx(node, thread)
            for op in range(4):
                key = op % 2  # two hot keys, all clients collide
                if (node + thread + op) % 2:
                    yield from store.put(ctx, key, node * 100 + op)
                else:
                    yield from store.get(ctx, key)

        procs = [cluster.env.process(client(n, t))
                 for n in range(2) for t in range(2)]
        cluster.run()
        assert all(p.ok for p in procs)
        assert history.ops and history.pending_count == 0
        assert {o.action for o in history.ops} == {"get", "put"}
        assert all(o.obj.startswith("kv[") for o in history.ops)
        assert check_linearizability(history) == []
