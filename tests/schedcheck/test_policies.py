"""Policy tests: the default-schedule regression and policy determinism.

The FifoPolicy regression is the load-bearing guarantee of the whole
harness: installing the policy machinery with the always-default policy
must reproduce a policy-less run *bit for bit* (same trace, same stats,
same digest) — otherwise recorded decision strings would not mean
anything.
"""

import pytest

from repro.common.errors import ConfigError
from repro.schedcheck import (
    FifoPolicy,
    LockScenario,
    PctPolicy,
    RandomWalkPolicy,
    execution_digest,
    make_policy,
    run_schedule,
)

SCENARIOS = [
    LockScenario(lock_kind="alock", n_nodes=2, threads_per_node=2,
                 ops_per_thread=2, seed=5),
    LockScenario(lock_kind="mcs", n_nodes=1, threads_per_node=2,
                 ops_per_thread=3, seed=9),
    LockScenario(lock_kind="spinlock", n_nodes=2, threads_per_node=1,
                 ops_per_thread=2, seed=0, pick="remote"),
]


class TestFifoRegression:
    @pytest.mark.parametrize("scenario", SCENARIOS,
                             ids=lambda s: s.lock_kind)
    def test_fifo_policy_reproduces_default_schedule(self, scenario):
        base = run_schedule(scenario, None)
        fifo = run_schedule(scenario, FifoPolicy())
        assert base.ok and fifo.ok
        assert fifo.digest == base.digest
        assert fifo.events == base.events
        assert fifo.sim_time_ns == base.sim_time_ns
        # every recorded decision is the default pick -> empty string
        assert not fifo.decisions

    def test_calibrated_cost_model_also_reproduces(self):
        """The regression holds on the real (non-coarse) cost model too."""
        sc = LockScenario(lock_kind="alock", n_nodes=2, threads_per_node=2,
                          ops_per_thread=2, seed=5, coarse_time=False)
        assert run_schedule(sc, FifoPolicy()).digest == \
            run_schedule(sc, None).digest


class TestPolicyDeterminism:
    def test_same_seed_same_schedule(self):
        sc = SCENARIOS[0]
        a = run_schedule(sc, RandomWalkPolicy(42))
        b = run_schedule(sc, RandomWalkPolicy(42))
        assert a.digest == b.digest
        assert a.decisions == b.decisions

    def test_different_seeds_diverge(self):
        sc = SCENARIOS[0]
        digests = {run_schedule(sc, RandomWalkPolicy(s)).digest
                   for s in range(8)}
        assert len(digests) > 1

    def test_pct_same_seed_same_schedule(self):
        sc = SCENARIOS[0]
        a = run_schedule(sc, PctPolicy(7, change_points=3))
        b = run_schedule(sc, PctPolicy(7, change_points=3))
        assert a.digest == b.digest

    def test_policies_preserve_correctness_witnesses(self):
        """Reordering ties must never break a correct lock: every policy
        run completes with clean checkers (that's what makes a failure
        under exploration a real bug)."""
        sc = SCENARIOS[0]
        for seed in range(5):
            assert run_schedule(sc, RandomWalkPolicy(seed)).ok
            assert run_schedule(sc, PctPolicy(seed)).ok


class TestMakePolicy:
    def test_known_kinds(self):
        assert isinstance(make_policy("fifo", 0), FifoPolicy)
        assert isinstance(make_policy("random", 0), RandomWalkPolicy)
        assert isinstance(make_policy("pct", 0), PctPolicy)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            make_policy("chaos-monkey", 0)

    def test_pct_validates_arguments(self):
        with pytest.raises(ConfigError):
            PctPolicy(0, change_points=-1)
        with pytest.raises(ConfigError):
            PctPolicy(0, horizon=0)


class TestDigest:
    def test_digest_covers_trace_and_stats(self):
        run = SCENARIOS[0].build()
        run.cluster.env.run(until=run.deadline_ns)
        d1 = execution_digest(run.cluster)
        assert d1 == execution_digest(run.cluster)  # pure
        assert len(d1) == 32  # blake2b-128 hex
