"""The bounded CI fleet gate: a real fleet must re-find the seeded bugs.

This is the end-to-end smoke of the whole loop — parallel cells over
the process pool, coverage folding, shrinking, corpus freezing — at a
budget small enough for every CI run (2 workers, well under a minute)
but large enough that all three seeded defects fall out
deterministically.  The CI workflow runs this file in the schedcheck
tier with ``ALOCK_POSTMORTEM_DIR`` set and uploads the written corpus
and dumps as artifacts when it fails.
"""

from repro.schedcheck.corpus import check_entry
from repro.schedcheck.fleet import (
    SEEDED_BUGS,
    FleetConfig,
    run_fleet,
    write_fleet_corpus,
)

GATE_CONFIG = FleetConfig(
    scenarios=tuple((name, sc) for name, sc, _b in SEEDED_BUGS),
    budget=200, seed=1)

BUG_NAMES = [name for name, _sc, _b in SEEDED_BUGS]


class TestFleetGate:
    def test_fleet_refinds_shrinks_and_freezes_every_seeded_bug(
            self, tmp_path):
        report = run_fleet(GATE_CONFIG, workers=2)
        assert report.elapsed_s < 60, (
            f"fleet gate exceeded its CI time box ({report.elapsed_s:.0f}s)")
        found = {s.name for s in report.found}
        assert found == set(BUG_NAMES), (
            f"fleet missed {set(BUG_NAMES) - found} within "
            f"{GATE_CONFIG.budget} schedules: {report.summary()}")
        for s in report.scenarios:
            assert s.shrink is not None, s.name
            assert s.shrink["size"] <= 25, (s.name, s.shrink)
            assert s.entry is not None, s.name
            assert s.entry_dump is not None, s.name
            # the frozen entry reproduces immediately, pre-commit
            status, result = check_entry(s.entry)
            assert status == "reproduced", (s.name, status, result.summary())
        paths = write_fleet_corpus(report, str(tmp_path))
        assert len(paths) == len(BUG_NAMES)

    def test_gate_reports_meaningful_rates(self):
        report = run_fleet(FleetConfig(
            scenarios=(("nvc", SEEDED_BUGS[0][1]),), budget=16, seed=1,
            cell_size=8, cells_per_round=2, shrink=False))
        assert report.total_schedules > 0
        assert report.schedules_per_sec > 0
        s = report.scenarios[0]
        assert s.coverage["prefixes_seen"] > 0
        assert s.coverage["runs_observed"] == s.schedules_run
