"""The deep pass: CFG/dataflow core, effect summaries, and the three
project-wide rules, each proven against its seeded-bad-lock fixture.

Fixtures live in ``fixtures/deep/`` (excluded from the repo gate); each
models one of the PR 4 ``bug=`` mutations or a lifecycle defect the
per-file rules cannot see, plus ``clean_lock.py`` as the
false-positive regression net.
"""

import ast
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.dataflow import (
    EXC, FALSE, TRUE, ForwardAnalysis, build_cfg, run_forward,
)
from repro.lint.deep import run_deep_rules
from repro.lint.effects import (
    BLOCK_BOUNDED, BLOCK_UNBOUNDED, EffectEngine, INTRINSICS,
)
from repro.lint.ir import ProjectIndex
from repro.lint.source import SourceFile

FIXTURES = Path(__file__).parent / "fixtures" / "deep"

#: fixture stem → the one deep rule it must trip
EXPECTED_RULE = {
    "no_victim_check": "deep-protocol",
    "skip_budget_wait": "deep-protocol",
    "use_after_release": "deep-protocol",
    "lost_wakeup": "deep-blocking",
    "blocking_handover": "deep-blocking",
    "leaked_descriptor": "deep-lockset",
    "missing_note": "deep-lockset",
}


def deep_fixture(name: str):
    path = FIXTURES / f"{name}.py"
    sf = SourceFile.parse(path, display=f"fixtures/deep/{name}.py",
                          module=f"fixtures.deep.{name}")
    return run_deep_rules([sf])


def parse_snippet(source: str, module: str = "repro.locks.snippet"):
    sf = SourceFile.from_source(source, path=Path("/snippet.py"),
                                display="snippet.py", module=module)
    return ProjectIndex.build([sf])


# ---------------------------------------------------------------------------
# fixture-driven rule checks


class TestSeededFixtures:
    @pytest.mark.parametrize("name,rule", sorted(EXPECTED_RULE.items()))
    def test_each_seeded_bug_trips_its_rule(self, name, rule):
        findings = deep_fixture(name)
        assert findings, f"{name}: no findings"
        assert {f.rule for f in findings} == {rule}, findings

    def test_clean_lock_is_clean(self):
        assert deep_fixture("clean_lock") == []

    def test_no_victim_check_names_the_unread_word(self):
        (finding,) = deep_fixture("no_victim_check")
        assert "self.victim_ptr" in finding.message
        assert "check()" in finding.message

    def test_skip_budget_wait_anchors_the_abandoning_return(self):
        (finding,) = deep_fixture("skip_budget_wait")
        assert "self.tail_ptr" in finding.message
        assert "successor" in finding.message
        # anchored at the `return`, so one inline suppression can bless it
        src = (FIXTURES / "skip_budget_wait.py").read_text()
        assert "return" in src.splitlines()[finding.line - 1]

    def test_use_after_release_flags_the_stale_read(self):
        (finding,) = deep_fixture("use_after_release")
        assert "after the CAS that relinquished it" in finding.message
        src = (FIXTURES / "use_after_release.py").read_text()
        assert "r_read" in src.splitlines()[finding.line - 1]

    def test_lost_wakeup_flags_the_raw_park(self):
        (finding,) = deep_fixture("lost_wakeup")
        assert "watcher is armed at yield time" in finding.message
        src = (FIXTURES / "lost_wakeup.py").read_text()
        assert "watch" in src.splitlines()[finding.line - 1]

    def test_blocking_handover_names_the_open_window(self):
        (finding,) = deep_fixture("blocking_handover")
        assert "self.tail_ptr" in finding.message
        assert "failed CAS at line" in finding.message

    def test_leaked_descriptor_reports_every_raising_verb(self):
        findings = deep_fixture("leaked_descriptor")
        assert len(findings) == 2  # r_write and r_cas, both unguarded
        assert all("descriptor" in f.message for f in findings)

    def test_missing_note_covers_lock_and_unlock(self):
        findings = deep_fixture("missing_note")
        messages = " | ".join(f.message for f in findings)
        assert "MissingNoteLock.lock() can return without recording" in messages
        assert "MissingReleaseLock.unlock() can return without recording" \
            in messages

    def test_deep_runs_are_deterministic(self):
        sfs = [SourceFile.parse(p, display=f"fixtures/deep/{p.name}",
                                module=f"fixtures.deep.{p.stem}")
               for p in sorted(FIXTURES.glob("*.py"))]
        first = run_deep_rules(sfs)
        second = run_deep_rules(list(reversed(sfs)))
        assert first == second


# ---------------------------------------------------------------------------
# scope


class TestDeepScope:
    def test_machinery_modules_are_never_reported(self):
        path = FIXTURES / "lost_wakeup.py"
        sf = SourceFile.parse(path, display="fixtures/deep/lost_wakeup.py",
                              module="repro.sim.fixture")
        assert run_deep_rules([sf]) == []

    def test_subclass_by_name_without_import_is_in_scope(self):
        index = parse_snippet(
            "class MyLock(DistributedLock):\n"
            "    def lock(self, ctx):\n"
            "        yield from ctx.r_write(self.word_ptr, 1)\n")
        names = [c.name for c in index.subclasses_of("DistributedLock")]
        assert names == ["MyLock"]

    def test_nested_class_is_not_indexed(self):
        index = parse_snippet(
            "def make():\n"
            "    class HiddenLock(DistributedLock):\n"
            "        def lock(self, ctx):\n"
            "            yield\n"
            "    return HiddenLock\n")
        assert index.subclasses_of("DistributedLock") == []


# ---------------------------------------------------------------------------
# CFG / dataflow core


def _fn_node(source: str) -> ast.AST:
    tree = ast.parse(source)
    return tree.body[0]


class _ReachedLines(ForwardAnalysis):
    """Toy analysis: the set of statement lines on some path to a node."""

    def initial(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, node, state):
        if node.heads:
            state = state | {node.heads[0].lineno}
        return state


class TestCfg:
    def test_if_has_true_and_false_edges(self):
        cfg = build_cfg(_fn_node(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"))
        kinds = {kind for _, _, kind in cfg.edges()}
        assert TRUE in kinds and FALSE in kinds

    def test_while_true_has_no_normal_exit(self):
        cfg = build_cfg(_fn_node(
            "def f():\n"
            "    while True:\n"
            "        pass\n"))
        assert not [e for e in cfg.edges() if e[1] == cfg.exit]

    def test_break_escapes_while_true(self):
        cfg = build_cfg(_fn_node(
            "def f(x):\n"
            "    while True:\n"
            "        if x:\n"
            "            break\n"
            "    return 1\n"))
        assert [e for e in cfg.edges() if e[1] == cfg.exit]

    def test_cond_node_heads_carry_only_the_test(self):
        cfg = build_cfg(_fn_node(
            "def f(x):\n"
            "    if x > 0:\n"
            "        helper()\n"))
        cond = next(n for n in cfg.nodes if n.kind == "cond")
        # the branch *body* must not be walked at the condition node,
        # or its effects get applied before the branch is taken
        assert len(cond.heads) == 1
        assert isinstance(cond.heads[0], ast.Compare)

    def test_raising_statement_gets_exc_edge(self):
        cfg = build_cfg(_fn_node(
            "def f():\n"
            "    risky()\n"), raises=lambda stmt: True)
        assert any(kind == EXC and dst == cfg.raise_exit
                   for _, dst, kind in cfg.edges())

    def test_bare_except_catches_everything(self):
        cfg = build_cfg(_fn_node(
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "    except BaseException:\n"
            "        pass\n"),
            raises=lambda s: isinstance(s, ast.Expr))
        exc_edges = [(s, d) for s, d, k in cfg.edges() if k == EXC]
        assert exc_edges
        assert all(d != cfg.raise_exit for s, d in exc_edges
                   if cfg.node(s).kind == "stmt" and cfg.node(s).heads)

    def test_finally_runs_on_both_paths(self):
        fn = _fn_node(
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "    finally:\n"
            "        cleanup()\n")
        cfg = build_cfg(fn, raises=lambda s: isinstance(s, ast.Expr)
                        and isinstance(s.value, ast.Call)
                        and s.value.func.id == "risky")
        before = run_forward(cfg, _ReachedLines())
        cleanup = next(idx for idx in before
                       if cfg.node(idx).heads
                       and cfg.node(idx).heads[0].lineno == 5)
        assert 3 in before[cleanup]  # reachable from the risky() body

    def test_solver_reaches_fixpoint_on_loops(self):
        cfg = build_cfg(_fn_node(
            "def f(n):\n"
            "    x = 0\n"
            "    while n:\n"
            "        x = 1\n"
            "    return x\n"))
        before = run_forward(cfg, _ReachedLines())
        ret = next(idx for idx in before
                   if cfg.node(idx).heads
                   and cfg.node(idx).heads[0].lineno == 5)
        assert {2, 3, 4} <= before[ret]


# ---------------------------------------------------------------------------
# effect summaries


class TestEffects:
    def test_intrinsics_cover_the_verbs_contract(self):
        assert INTRINSICS["wait_local"].blocking == BLOCK_UNBOUNDED
        assert INTRINSICS["r_read"].blocking == BLOCK_BOUNDED
        assert INTRINSICS["r_write"].writes and INTRINSICS["r_write"].raises
        assert INTRINSICS["write"].writes and not INTRINSICS["write"].raises
        assert not INTRINSICS["read"].writes

    def test_effects_propagate_through_helpers(self):
        index = parse_snippet(
            "class L(DistributedLock):\n"
            "    def unlock(self, ctx):\n"
            "        yield from self._pass(ctx)\n"
            "    def _pass(self, ctx):\n"
            "        yield from ctx.r_write(self.word_ptr, 0)\n")
        engine = EffectEngine(index)
        unlock = index.functions["repro.locks.snippet:L.unlock"]
        eff = engine.function_effects(unlock)
        assert eff.writes and eff.raises

    def test_recursive_helpers_converge(self):
        index = parse_snippet(
            "class L(DistributedLock):\n"
            "    def lock(self, ctx):\n"
            "        yield from self._spin(ctx)\n"
            "    def _spin(self, ctx):\n"
            "        yield from ctx.r_read(self.word_ptr)\n"
            "        yield from self._spin(ctx)\n")
        engine = EffectEngine(index)
        lock = index.functions["repro.locks.snippet:L.lock"]
        assert engine.function_effects(lock).blocking == BLOCK_BOUNDED

    def test_unresolved_acquire_is_assumed_blocking(self):
        index = parse_snippet(
            "class L(DistributedLock):\n"
            "    def lock(self, ctx):\n"
            "        yield from self.gate.acquire(ctx)\n")
        engine = EffectEngine(index)
        lock = index.functions["repro.locks.snippet:L.lock"]
        assert engine.function_effects(lock).blocking == BLOCK_UNBOUNDED

    def test_unresolved_helpers_default_inert(self):
        index = parse_snippet(
            "class L(DistributedLock):\n"
            "    def lock(self, ctx):\n"
            "        self.stats.bump('x')\n"
            "        yield\n")
        engine = EffectEngine(index)
        lock = index.functions["repro.locks.snippet:L.lock"]
        assert engine.function_effects(lock).blocking == 0


# ---------------------------------------------------------------------------
# interprocedural reach: the rules see through helpers


class TestInterprocedural:
    def test_lock_delegating_to_helper_checks_out(self):
        index_src = (
            "class L(DistributedLock):\n"
            "    def lock(self, ctx):\n"
            "        yield from self._do_lock(ctx)\n"
            "    def _do_lock(self, ctx):\n"
            "        yield from ctx.wait_local(self.w, lambda v: v == 0)\n"
            "        self._note_acquired(ctx)\n"
            "    def unlock(self, ctx):\n"
            "        self._note_released(ctx)\n"
            "        yield from ctx.r_write(self.w, 0)\n")
        sf = SourceFile.from_source(index_src, path=Path("/l.py"),
                                    display="l.py",
                                    module="repro.locks.snippet")
        assert run_deep_rules([sf]) == []

    def test_helper_that_forgets_the_note_is_still_caught(self):
        index_src = (
            "class L(DistributedLock):\n"
            "    def lock(self, ctx):\n"
            "        yield from self._do_lock(ctx)\n"
            "    def _do_lock(self, ctx):\n"
            "        yield from ctx.wait_local(self.w, lambda v: v == 0)\n"
            "    def unlock(self, ctx):\n"
            "        self._note_released(ctx)\n"
            "        yield from ctx.r_write(self.w, 0)\n")
        sf = SourceFile.from_source(index_src, path=Path("/l.py"),
                                    display="l.py",
                                    module="repro.locks.snippet")
        findings = run_deep_rules([sf])
        assert [f.rule for f in findings] == ["deep-lockset"]
        assert "without recording the acquisition" in findings[0].message


# ---------------------------------------------------------------------------
# engine integration: deep findings flow through suppressions/baseline


class TestDeepThroughEngine:
    def _project(self, tmp_path, body: str):
        (tmp_path / "badlock.py").write_text(body)
        return tmp_path

    BAD = ("class BadLock(DistributedLock):\n"
           "    def lock(self, ctx):\n"
           "        yield from ctx.wait_local(self.w, lambda v: v == 0)\n")

    def test_deep_findings_reach_the_report(self, tmp_path):
        root = self._project(tmp_path, self.BAD)
        report = run_lint(["badlock.py"], root=root, deep=True)
        assert [f.rule for f in report.findings] == ["deep-lockset"]

    def test_deep_off_by_default(self, tmp_path):
        root = self._project(tmp_path, self.BAD)
        report = run_lint(["badlock.py"], root=root)
        assert report.findings == []

    def test_inline_suppression_scopes_to_the_one_path(self, tmp_path):
        root = self._project(
            tmp_path,
            "class BadLock(DistributedLock):\n"
            "    def lock(self, ctx):\n"
            "        # simlint: ignore[deep-lockset] -- measured fast path\n"
            "        yield from ctx.wait_local(self.w, lambda v: v == 0)\n")
        report = run_lint(["badlock.py"], root=root, deep=True)
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["deep-lockset"]

    def test_strict_without_deep_tolerates_deep_pragmas(self, tmp_path):
        # a deep-* suppression isn't "unused" on a run where the deep
        # rules never executed — `--strict` alone must not flag the
        # annotated seeded-bug sites in the real tree
        root = self._project(
            tmp_path,
            "class BadLock(DistributedLock):\n"
            "    def lock(self, ctx):\n"
            "        # simlint: ignore[deep-lockset]\n"
            "        yield from ctx.wait_local(self.w, lambda v: v == 0)\n")
        report = run_lint(["badlock.py"], root=root, strict=True)
        assert report.findings == []

    def test_strict_with_deep_flags_truly_unused_deep_pragma(self, tmp_path):
        root = self._project(
            tmp_path,
            "class FineLock(DistributedLock):\n"
            "    def lock(self, ctx):\n"
            "        yield from ctx.wait_local(self.w, lambda v: v == 0)\n"
            "        # simlint: ignore[deep-lockset]\n"
            "        self._note_acquired(ctx)\n")
        report = run_lint(["badlock.py"], root=root, strict=True, deep=True)
        assert [f.rule for f in report.findings] == ["unused-suppression"]

    def test_baseline_absorbs_deep_findings(self, tmp_path):
        from repro.lint import Baseline
        root = self._project(tmp_path, self.BAD)
        first = run_lint(["badlock.py"], root=root, deep=True)
        baseline = Baseline.from_findings(first.findings)
        second = run_lint(["badlock.py"], root=root, deep=True,
                          baseline=baseline)
        assert second.clean
        assert len(second.baselined) == 1
