"""The typing gate: strict mypy over the analyzer (``repro.lint``) and
the simulator core, as configured in ``[tool.mypy]``.

CI's lint tier always runs mypy; locally the run is optional (the
toolchain image may not ship it), but the config's shape — scope,
strictness, the ``py.typed`` marker — is asserted unconditionally so a
drive-by edit can't silently unscope the gate.
"""

import subprocess
import sys
import tomllib
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.mark.lint
class TestTypingGate:
    def test_py_typed_marker_is_shipped(self):
        assert (REPO_ROOT / "src" / "repro" / "py.typed").is_file()
        data = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
        assert "py.typed" in data["tool"]["setuptools"]["package-data"]["repro"]

    def test_config_scopes_strict_to_analyzer_and_core(self):
        data = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
        mypy = data["tool"]["mypy"]
        assert mypy["strict"] is True
        assert set(mypy["files"]) == {"src/repro/lint", "src/repro/sim/core.py"}
        assert "mypy>=1.8" in data["project"]["optional-dependencies"]["ci"]

    def test_mypy_clean_when_available(self):
        pytest.importorskip("mypy")
        proc = subprocess.run(
            [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
            capture_output=True, text=True, cwd=REPO_ROOT)
        assert proc.returncode == 0, proc.stdout + proc.stderr
