"""CLI seams added with the deep pass: rule selection, severity
overrides, the baseline ratchet (stale warnings, ``--fail-stale``,
``--prune-baseline``) and the exit-code contract.

Exit codes: 0 clean, 1 findings, 2 usage error, 3 stale baseline under
``--fail-stale``.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import Baseline, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]

#: trips frozen-setattr (per-file) — one finding, stable message
DIRTY = ("from dataclasses import dataclass\n"
         "def f(r):\n"
         "    object.__setattr__(r, 'x', 1)\n")
CLEAN = "def f(r):\n    return r\n"


def run_cli(*args, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True, text=True, cwd=cwd,
        env={"PYTHONPATH": str(REPO_ROOT / "src"),
             "PYTHONHASHSEED": "random"})


@pytest.fixture
def project(tmp_path):
    (tmp_path / "mod.py").write_text(DIRTY)
    (tmp_path / "pyproject.toml").write_text(
        '[tool.simlint]\npaths = ["mod.py"]\nbaseline = "baseline.json"\n')
    return tmp_path


class TestSelection:
    def test_select_runs_only_named_rules(self, project):
        proc = run_cli("--select", "nondet-source", cwd=project)
        assert proc.returncode == 0, proc.stdout  # frozen-setattr filtered out

    def test_ignore_skips_named_rules(self, project):
        proc = run_cli("--ignore", "frozen-setattr", cwd=project)
        assert proc.returncode == 0, proc.stdout

    def test_unknown_id_in_either_flag_is_usage_error(self, project):
        assert run_cli("--select", "nope", cwd=project).returncode == 2
        assert run_cli("--ignore", "nope", cwd=project).returncode == 2

    def test_selecting_a_deep_rule_implies_deep(self, project):
        (project / "mod.py").write_text(
            "class BadLock(DistributedLock):\n"
            "    def lock(self, ctx):\n"
            "        yield from ctx.wait_local(self.w, lambda v: v == 0)\n")
        proc = run_cli("--select", "deep-lockset", "--json", cwd=project)
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert {f["rule"] for f in payload["findings"]} == {"deep-lockset"}


class TestSeverityOverride:
    def test_override_changes_reported_severity(self, project):
        proc = run_cli("--severity", "frozen-setattr=warning", "--json",
                       cwd=project)
        assert proc.returncode == 1  # still a finding, just demoted
        payload = json.loads(proc.stdout)
        assert {f["severity"] for f in payload["findings"]} == {"warning"}

    def test_bad_severity_spec_is_usage_error(self, project):
        assert run_cli("--severity", "frozen-setattr=fatal",
                       cwd=project).returncode == 2
        assert run_cli("--severity", "no-such-rule=error",
                       cwd=project).returncode == 2
        assert run_cli("--severity", "frozen-setattr",
                       cwd=project).returncode == 2


class TestBaselineRatchet:
    def _baseline(self, project) -> Path:
        assert run_cli("--write-baseline", cwd=project).returncode == 0
        return project / "baseline.json"

    def test_exit_codes_clean_findings_stale(self, project):
        assert run_cli(cwd=project).returncode == 1          # findings
        self._baseline(project)
        assert run_cli(cwd=project).returncode == 0          # baselined
        (project / "mod.py").write_text(CLEAN)               # entry now stale
        assert run_cli(cwd=project).returncode == 0          # warn only
        assert run_cli("--fail-stale", cwd=project).returncode == 3

    def test_stale_entries_warn_on_stderr(self, project):
        self._baseline(project)
        (project / "mod.py").write_text(CLEAN)
        proc = run_cli(cwd=project)
        assert "stale baseline entry" in proc.stderr
        assert "--prune-baseline" in proc.stderr
        assert "1 stale baseline entry" in proc.stdout

    def test_prune_drops_only_stale_entries(self, project):
        (project / "other.py").write_text(DIRTY)
        (project / "pyproject.toml").write_text(
            '[tool.simlint]\npaths = ["mod.py", "other.py"]\n'
            'baseline = "baseline.json"\n')
        path = self._baseline(project)
        assert len(Baseline.load(path)) == 2
        (project / "mod.py").write_text(CLEAN)
        proc = run_cli("--prune-baseline", cwd=project)
        assert proc.returncode == 0
        assert "pruned 1 stale baseline finding(s)" in proc.stdout
        pruned = Baseline.load(path)
        assert len(pruned) == 1
        assert run_cli("--fail-stale", cwd=project).returncode == 0

    def test_prune_without_baseline_is_usage_error(self, tmp_path):
        (tmp_path / "mod.py").write_text(CLEAN)
        (tmp_path / "pyproject.toml").write_text(
            '[tool.simlint]\npaths = ["mod.py"]\n')
        assert run_cli("--prune-baseline", cwd=tmp_path).returncode == 2

    def test_prune_of_fresh_baseline_is_byte_identical(self, project):
        path = self._baseline(project)
        before = path.read_bytes()
        proc = run_cli("--prune-baseline", cwd=project)
        assert proc.returncode == 0
        assert path.read_bytes() == before

    def test_counts_ratchet_down_not_up(self, project):
        # two occurrences baselined, one fixed: prune keeps min(count, fired)
        (project / "mod.py").write_text(DIRTY + "    object.__setattr__(r, 'y', 2)\n")
        path = self._baseline(project)
        (project / "mod.py").write_text(DIRTY)
        run_cli("--prune-baseline", cwd=project)
        report = run_lint(["mod.py"], root=project,
                          baseline=Baseline.load(path))
        assert report.clean and not report.stale_baseline


class TestStaleApi:
    def test_stale_after_counts_unmatched_entries(self, tmp_path):
        (tmp_path / "mod.py").write_text(DIRTY)
        report = run_lint(["mod.py"], root=tmp_path)
        baseline = Baseline.from_findings(report.findings)
        assert baseline.stale_after(report.findings) == []
        stale = baseline.stale_after([])
        assert len(stale) == 1
        (_key, unused) = stale[0]
        assert unused == 1
