"""Fixture: region-buffer writes that bypass the RaceAuditor."""


def poke(region, addr, value):
    region._store(addr, value)             # internal store
    region._words[addr // 8] = value       # raw buffer write
    region.remote_write(addr, value)       # NIC landing API outside verbs
    region.remote_rmw_commit(addr, value)  # NIC landing API outside verbs


def fine(region, addr, value, actor):
    region.write(addr, value, actor)       # audited accessor
    return region.peek(addr)               # oracle read: allowed
