"""Fixture: set iteration in an (assumed) event-ordering-sensitive module."""

from collections import deque


class Tracker:
    def __init__(self):
        self.pending: set[int] = set()

    def drain(self):
        for item in self.pending:          # self-attr set, other method
            yield item


def schedule(ready, waiting: frozenset):
    ready_set = set(ready)
    for node in ready_set:                 # name bound to set()
        print(node)
    for node in {1, 2, 3}:                 # set literal
        print(node)
    order = list({w for w in waiting})     # list() materialises a set comp
    first = deque(ready_set)               # deque() materialises a set
    return order, first


def fine(ready):
    ready_set = set(ready)
    ordered = sorted(ready_set)            # sorted(): allowed
    if 3 in ready_set:                     # membership: allowed
        return ordered
    return []
