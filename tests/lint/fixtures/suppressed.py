"""Fixture: suppression-comment handling."""

import time


def timed():
    a = time.time()  # simlint: ignore[nondet-source]
    # justification on its own line applies to the next line:
    # simlint: ignore[nondet-source]
    b = time.time()
    c = time.time()  # simlint: ignore[*]
    d = time.time()  # simlint: ignore[unordered-iter]  (wrong id: still fires)
    e = time.time()  # unsuppressed: fires
    return a, b, c, d, e
