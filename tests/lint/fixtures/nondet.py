"""Fixture: every nondet-source hazard class (linted as repro.sim code).

This file is excluded from the repo gate via [tool.simlint] exclude; the
rule tests lint it with an explicit module override.
"""

import random
import time
from datetime import datetime
from random import shuffle

import numpy as np


def draw():
    a = random.random()            # global random module
    b = time.time()                # wall clock
    c = time.perf_counter()        # wall clock
    d = datetime.now()             # wall clock
    e = np.random.default_rng()    # un-seeded generator
    f = np.random.randint(0, 10)   # numpy global RNG state
    g = id(object())               # process address (warning)
    h = hash("key")                # PYTHONHASHSEED (warning)
    shuffle([1, 2, 3])
    return a, b, c, d, e, f, g, h


def fine(streams, derive_seed):
    ok = np.random.default_rng(derive_seed(0, "fixture"))  # seeded: allowed
    also_ok = streams.get("fixture", 0)
    return ok, also_ok
