"""Fixture: frozen-dataclass mutation in and out of __post_init__."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Record:
    value: int
    doubled: int = 0

    def __post_init__(self):
        object.__setattr__(self, "doubled", self.value * 2)  # allowed

    def bump(self):
        object.__setattr__(self, "value", self.value + 1)    # mutation


def patch(record):
    object.__setattr__(record, "value", 0)                   # mutation
