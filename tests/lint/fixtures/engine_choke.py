"""Fixture for the engine-chokepoint rule.

Linted as if it were ``repro.sim.fixture`` — inside the sensitive tree
but NOT one of the engine modules, so scheduler-structure imports and
direct event-core imports here must fire.
"""

import heapq  # finding: scheduler structure outside the engine
from bisect import insort  # finding: scheduler structure outside the engine
from repro.sim import _engine  # finding: pins the pure core
from repro.sim import _compiled  # finding: pins the compiled core
import repro.sim._ccore  # finding: pins the compiled extension
from repro.sim._engine import CalendarQueue  # finding: pins the pure core


# -- fine -----------------------------------------------------------------
from repro.sim.core import Environment  # selector import: the sanctioned path
from repro.sim import Event  # package re-export: also selector-mediated


def uses_selector() -> Environment:
    return Environment()
