"""Fixture: flight-recorder call sites, guarded and bare."""


class Hot:
    def __init__(self, cluster):
        self._flight = cluster.flight
        self.flight = cluster.flight

    def bare_attr(self, actor):
        self._flight.note(actor, "lock.acquired", "l0")      # unguarded

    def bare_local(self, actor):
        fl = self._flight
        fl.note(actor, "lock.wait", "l0", "budget")          # unguarded

    def wrong_guard(self, actor, ready):
        fl = self._flight
        if ready:                                            # guards the wrong thing
            fl.note(actor, "verb.issue", "rCAS", 1)


def bare_module_level(ctx, actor):
    ctx._flight.note(actor, "desc.begin", "d0")              # unguarded


# -- fine ------------------------------------------------------------------

class Fine:
    def __init__(self, cluster):
        self._flight = cluster.flight

    def idiom(self, actor):
        fl = self._flight
        if fl is not None:
            fl.note(actor, "lock.released", "l0")

    def direct(self, actor):
        if self._flight is not None:
            self._flight.note(actor, "lock.acquired", "l0")

    def conjoined(self, actor, ready):
        fl = self._flight
        if ready and fl is not None:
            fl.note(actor, "sched.tiebreak", 0, 2)

    def nested(self, actor):
        fl = self._flight
        if fl is not None:
            for _ in range(2):
                fl.note(actor, "lock.wait", "l0", "next")

    def not_a_recorder(self, actor):
        journal = object()
        journal.note(actor)  # receiver is not flight-ish: out of scope
