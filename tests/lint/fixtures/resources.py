"""Fixture: guarded and unguarded admission calls (the PR 1 leak class)."""


def leaky(resource, env):
    req = resource.request()               # no cancel on the failure path
    yield req
    yield env.timeout(10)
    resource.release()


def leaky_acquire(resource, env):
    yield from resource.acquire()          # no release at all
    yield env.timeout(10)


def guarded_finally(resource, env):
    yield from resource.acquire()
    try:
        yield env.timeout(10)
    finally:
        resource.release()


def guarded_handler(resource, env):
    req = resource.request()
    try:
        yield req
        yield env.timeout(10)
    except BaseException:
        resource.cancel(req)
        raise
    resource.release()
