"""Fixture for the process-boundary rule.

Linted as if it were ``repro.parallel.fixture`` — inside the sensitive
tree but NOT the engine chokepoint, so pool imports here must fire.
"""

from concurrent.futures import ProcessPoolExecutor  # finding: pool import
import multiprocessing  # finding: multiprocessing import
import pickle  # finding: serialization outside the store chokepoint
from marshal import dumps  # finding: serialization outside the store


def worker_entry(fn):  # stand-in for repro.parallel.cells.worker_entry
    fn.__is_worker_entry__ = True
    return fn


@worker_entry
def good_entry(chunk):
    return list(chunk)


def bare_function(chunk):
    return list(chunk)


def outer():
    @worker_entry
    def nested_entry(chunk):  # finding: nested worker entry
        return chunk

    return nested_entry


def submit_sites(executor):
    executor.submit(good_entry, ())  # fine: marked
    executor.submit(bare_function, ())  # finding: unmarked submit


# -- fine section ---------------------------------------------------------

def fine_uses(executor, items):
    # submitting a name this module does not define is out of scope for a
    # module-local rule (cross-module resolution is the runtime audit's job)
    executor.submit(items.pop)
    futures = [executor.submit(good_entry, (i,)) for i in items]
    return futures
