"""Fixture: a correct minimal queue lock — zero deep findings.

Exercises every shape the deep rules police (descriptor lifecycle,
acquisition markers, relinquish CAS with handover, successor wait) the
*right* way, so it doubles as a regression net against false positives.
"""

from repro.locks.base import DistributedLock

OFF_LOCKED = 8


class CleanLock(DistributedLock):
    def lock(self, ctx):
        desc = self._descriptor(ctx)
        desc.in_use = True
        try:
            yield from ctx.r_write(desc.locked_ptr, 1)
            yield from ctx.r_write(desc.next_ptr, 0)
            old = yield from ctx.r_cas(self.tail_ptr, 0, desc.ptr)
            if old != 0:
                yield from ctx.wait_local(desc.locked_ptr, lambda v: v == 0)
        except BaseException:
            desc.in_use = False
            raise
        self._note_acquired(ctx)

    def unlock(self, ctx):
        desc = self._descriptor(ctx)
        self._note_released(ctx)
        old = yield from ctx.r_cas(self.tail_ptr, desc.ptr, 0)
        if old != desc.ptr:
            nxt = yield from ctx.wait_local(desc.next_ptr, lambda p: p != 0)
            yield from ctx.r_write(nxt + OFF_LOCKED, 0)
        desc.in_use = False
