"""Fixture: the PR 4 ``no_victim_check`` mutation shape — the Peterson
waiter watches the victim word its predicate never reads.

Expected: deep-protocol (P1) at the ``wait_local_cond`` call.
"""

from repro.locks.base import DistributedLock

COHORT_LOCAL = 1


class NoVictimCheckLock(DistributedLock):
    def lock(self, ctx):
        yield from ctx.write(self.victim_ptr, COHORT_LOCAL)

        def check():
            tail = ctx.read(self.tail_ptr)
            return tail == 0  # never consults victim_ptr

        yield from ctx.wait_local_cond(
            [self.tail_ptr, self.victim_ptr], check)
        self._note_acquired(ctx)

    def unlock(self, ctx):
        self._note_released(ctx)
        yield from ctx.write(self.tail_ptr, 0)
