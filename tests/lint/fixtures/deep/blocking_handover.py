"""Fixture: between the failed relinquish CAS and the discharging
write, unlock acquires an unrelated gate — unbounded blocking while the
successor spins on a word only this thread will write.

Expected: deep-blocking (B3) at the gate acquisition.
"""

from repro.locks.base import DistributedLock

OFF_LOCKED = 8


class BlockingHandoverLock(DistributedLock):
    def lock(self, ctx):
        yield from ctx.wait_local(self.flag_ptr, lambda v: v == 0)
        self._note_acquired(ctx)

    def unlock(self, ctx):
        desc = self._descriptor(ctx)
        self._note_released(ctx)
        old = yield from ctx.r_cas(self.tail_ptr, desc.ptr, 0)
        if old != desc.ptr:
            yield from self.fairness_gate.acquire(ctx)  # blocks mid-handover
            yield from ctx.r_write(old + OFF_LOCKED, 0)
            yield from self.fairness_gate.release(ctx)
