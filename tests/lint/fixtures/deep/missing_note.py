"""Fixture: exits that skip the acquisition/release oracle markers.

Expected: deep-lockset at the fast-path ``return`` in lock() (no
``_note_acquired`` on that path) and at the end of
``MissingReleaseLock.unlock()`` (no ``_note_released`` at all).
"""

from repro.locks.base import DistributedLock


class MissingNoteLock(DistributedLock):
    def lock(self, ctx):
        won = yield from ctx.r_cas(self.word_ptr, 0, ctx.gid)
        if won == 0:
            return  # fast path: forgot to record the acquisition
        yield from ctx.wait_local(self.word_ptr, lambda v: v == 0)
        self._note_acquired(ctx)

    def unlock(self, ctx):
        self._note_released(ctx)
        yield from ctx.r_write(self.word_ptr, 0)


class MissingReleaseLock(DistributedLock):
    def lock(self, ctx):
        yield from ctx.wait_local(self.word_ptr, lambda v: v == 0)
        self._note_acquired(ctx)

    def unlock(self, ctx):
        yield from ctx.r_write(self.word_ptr, 0)
