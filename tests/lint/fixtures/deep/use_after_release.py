"""Fixture: after the *successful* relinquish CAS, unlock reads the
tail word again — racing the next enqueuer's swap.

Expected: deep-protocol (P3) at the post-relinquish ``r_read``.
"""

from repro.locks.base import DistributedLock

OFF_LOCKED = 8


class UseAfterReleaseLock(DistributedLock):
    def lock(self, ctx):
        yield from ctx.wait_local(self.word_ptr, lambda v: v == 0)
        self._note_acquired(ctx)

    def unlock(self, ctx):
        self._note_released(ctx)
        old = yield from ctx.r_cas(self.tail_ptr, self.desc_ptr, 0)
        if old == self.desc_ptr:
            stale = yield from ctx.r_read(self.tail_ptr)  # word is gone
            return stale
        nxt = yield from ctx.wait_local(self.next_ptr, lambda p: p != 0)
        yield from ctx.r_write(nxt + OFF_LOCKED, 0)
