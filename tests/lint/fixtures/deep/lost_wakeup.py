"""Fixture: the PR 4 ``lost_wakeup`` mutation shape — poll the flag,
then park on a watcher armed only after the poll returned.

Expected: deep-blocking (B1) at the raw ``yield region.watch(...)``.
"""

from repro.locks.base import DistributedLock


class LostWakeupLock(DistributedLock):
    def lock(self, ctx):
        region = ctx.cluster.regions[ctx.node_id]
        while True:
            flag = yield from ctx.r_read(self.flag_ptr)
            if flag == 0:
                break
            yield region.watch(self.flag_ptr)  # armed after the check
        self._note_acquired(ctx)

    def unlock(self, ctx):
        self._note_released(ctx)
        yield from ctx.r_write(self.flag_ptr, 0)
