"""Fixture: the PR 4 ``skip_budget_wait`` mutation shape — after a
failed relinquish CAS the releaser samples the link once and bails,
leaving the enqueued successor spinning on a word nobody will write.

Expected: deep-protocol (P2) at the abandoning ``return``.
"""

from repro.locks.base import DistributedLock

OFF_LOCKED = 8


class SkipBudgetWaitLock(DistributedLock):
    def lock(self, ctx):
        yield from ctx.wait_local(self.word_ptr, lambda v: v == 0)
        self._note_acquired(ctx)

    def unlock(self, ctx):
        desc = self._descriptor(ctx)
        self._note_released(ctx)
        old = yield from ctx.r_cas(self.tail_ptr, desc.ptr, 0)
        if old != desc.ptr:
            nxt = yield from ctx.read(desc.next_ptr)
            if nxt == 0:
                return  # handoff abandoned: successor is mid-link
            yield from ctx.r_write(nxt + OFF_LOCKED, 0)
