"""Fixture: lock() publishes the descriptor, then runs raising verbs
with no cleanup — a fault-injected VerbTimeout leaks it for good.

Expected: deep-lockset at each raise-capable verb after ``in_use = True``.
"""

from repro.locks.base import DistributedLock


class LeakedDescriptorLock(DistributedLock):
    def lock(self, ctx):
        desc = self._descriptor(ctx)
        desc.in_use = True
        yield from ctx.r_write(desc.locked_ptr, 1)   # raises: desc published
        yield from ctx.r_cas(self.tail_ptr, 0, desc.ptr)
        self._note_acquired(ctx)

    def unlock(self, ctx):
        desc = self._descriptor(ctx)
        self._note_released(ctx)
        yield from ctx.r_cas(self.tail_ptr, desc.ptr, 0)
        desc.in_use = False
