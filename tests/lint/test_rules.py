"""Per-rule fixture tests: every shipped rule must fire on its seeded
fixture file and stay quiet on that fixture's ``fine`` section."""

from pathlib import Path

import pytest

from repro.lint import default_rules, lint_file
from repro.lint.engine import lint_source_file
from repro.lint.findings import ERROR, WARNING
from repro.lint.source import SourceFile

FIXTURES = Path(__file__).parent / "fixtures"

#: fixtures are linted as if they lived inside the simulation tree, so
#: package-scoped rules apply.
SIM_MODULE = "repro.sim.fixture"


def lint_fixture(name: str, module: str = SIM_MODULE):
    return lint_file(FIXTURES / name, module=module)


def rules_fired(findings) -> set[str]:
    return {f.rule for f in findings}


class TestNondetSourceRule:
    def test_fires_on_every_hazard_class(self):
        findings = [f for f in lint_fixture("nondet.py")
                    if f.rule == "nondet-source"]
        messages = " | ".join(f.message for f in findings)
        assert "'random.random()'" in messages
        assert "'time.time()'" in messages
        assert "'time.perf_counter()'" in messages
        assert "'datetime.now()'" in messages
        assert "un-seeded np.random.default_rng()" in messages
        assert "'np.random.randint()'" in messages
        assert "'id()'" in messages
        assert "'hash()'" in messages
        assert "import of the global 'random' module" in messages
        assert "import from the global 'random' module" in messages

    def test_seeded_default_rng_and_streams_are_clean(self):
        findings = lint_fixture("nondet.py")
        fine_lines = {f.line for f in findings if f.line >= 28}
        assert not fine_lines, findings

    def test_id_and_hash_are_warnings(self):
        findings = lint_fixture("nondet.py")
        by_sev = {f.severity for f in findings
                  if "'id()'" in f.message or "'hash()'" in f.message}
        assert by_sev == {WARNING}
        assert all(f.severity == ERROR for f in findings
                   if "wall clock" in f.message)

    def test_silent_outside_sim_packages(self):
        assert lint_file(FIXTURES / "nondet.py",
                         module="tests.lint.fixture") == []


class TestUnorderedIterRule:
    def test_fires_on_iteration_forms(self):
        findings = [f for f in lint_fixture("unordered.py")
                    if f.rule == "unordered-iter"]
        lines = sorted(f.line for f in findings)
        # self-attr in another method, set() name, set literal,
        # list(set-comp), deque(set-name)
        assert lines == [11, 17, 19, 21, 22]

    def test_sorted_and_membership_are_clean(self):
        findings = lint_fixture("unordered.py")
        assert not [f for f in findings if f.line >= 26], findings

    def test_silent_outside_sensitive_packages(self):
        assert lint_file(FIXTURES / "unordered.py",
                         module="repro.analysis.fixture") == []


class TestResourceGuardRule:
    def test_fires_on_unguarded_admissions(self):
        findings = [f for f in lint_fixture("resources.py",
                                            module="repro.rdma.fixture")
                    if f.rule == "resource-guard"]
        assert sorted(f.line for f in findings) == [5, 12]
        assert all(".request()" in f.message or ".acquire()" in f.message
                   for f in findings)

    def test_try_finally_and_except_guards_are_clean(self):
        findings = lint_fixture("resources.py", module="repro.rdma.fixture")
        assert not [f for f in findings if f.line >= 16], findings

    def test_resources_module_itself_is_exempt(self):
        assert lint_file(FIXTURES / "resources.py",
                         module="repro.sim.resources") == []


class TestRegionBypassRule:
    def test_fires_on_raw_writes_and_remote_api(self):
        findings = [f for f in lint_fixture("region.py",
                                            module="repro.locks.fixture")
                    if f.rule == "region-bypass"]
        messages = " | ".join(f.message for f in findings)
        assert len(findings) == 4
        assert "'._store()'" in messages
        assert "'._words'" in messages
        assert "'.remote_write()'" in messages
        assert "'.remote_rmw_commit()'" in messages

    def test_audited_accessors_and_peek_are_clean(self):
        findings = lint_fixture("region.py", module="repro.locks.fixture")
        assert not [f for f in findings if f.line >= 11], findings

    def test_verbs_layer_may_use_remote_api(self):
        findings = lint_file(FIXTURES / "region.py",
                             module="repro.rdma.network")
        messages = " | ".join(f.message for f in findings)
        assert "remote_write" not in messages
        # _store/_words stay region-internal even inside the verbs layer
        assert "'._store()'" in messages


class TestFrozenSetattrRule:
    def test_fires_outside_post_init(self):
        findings = [f for f in lint_fixture("frozen.py")
                    if f.rule == "frozen-setattr"]
        contexts = " | ".join(f.message for f in findings)
        assert len(findings) == 2
        assert "'bump'" in contexts
        assert "'patch'" in contexts

    def test_post_init_is_allowed(self):
        findings = lint_fixture("frozen.py")
        assert not [f for f in findings if f.line == 12], findings

    def test_applies_even_outside_repro_packages(self):
        findings = lint_file(FIXTURES / "frozen.py", module="tests.fixture")
        assert rules_fired(findings) == {"frozen-setattr"}


class TestProcessBoundaryRule:
    MODULE = "repro.parallel.fixture"

    def findings(self, module=MODULE):
        return [f for f in lint_file(FIXTURES / "boundary.py", module=module)
                if f.rule == "process-boundary"]

    def test_fires_on_every_hazard_class(self):
        messages = " | ".join(f.message for f in self.findings())
        assert "process-pool import" in messages
        assert "direct multiprocessing use" in messages
        assert "'nested_entry' is nested" in messages
        assert "'bare_function' is submitted" in messages
        assert "blob (de)serialization outside the store" in messages
        assert len(self.findings()) == 6

    def test_marked_and_foreign_submits_are_fine(self):
        lines = {f.line for f in self.findings()}
        src = (FIXTURES / "boundary.py").read_text().splitlines()
        fine_start = next(i for i, line in enumerate(src, start=1)
                          if "fine section" in line)
        assert not {ln for ln in lines if ln > fine_start}

    def test_engine_chokepoint_may_import_pools(self):
        findings = self.findings(module="repro.parallel.engine")
        messages = " | ".join(f.message for f in findings)
        assert "process-pool import" not in messages
        assert "direct multiprocessing use" not in messages
        # ... but even the engine may not (de)serialize blobs itself.
        assert "blob (de)serialization" in messages

    def test_store_chokepoint_may_serialize_but_not_spawn(self):
        findings = self.findings(module="repro.parallel.store")
        messages = " | ".join(f.message for f in findings)
        assert "blob (de)serialization" not in messages
        assert "process-pool import" in messages

    def test_silent_outside_sensitive_packages(self):
        assert not self.findings(module="benchmarks.fixture")

    def test_repro_parallel_is_sensitive(self):
        from repro.lint.rules import DEFAULT_SENSITIVE_PACKAGES
        assert "repro.parallel" in DEFAULT_SENSITIVE_PACKAGES


class TestEngineChokepointRule:
    MODULE = "repro.sim.fixture"

    def findings(self, module=MODULE):
        return [f for f in lint_file(FIXTURES / "engine_choke.py",
                                     module=module)
                if f.rule == "engine-chokepoint"]

    def test_fires_on_every_hazard_class(self):
        messages = " | ".join(f.message for f in self.findings())
        assert "'heapq' import outside the engine chokepoint" in messages
        assert "'bisect' import outside the engine chokepoint" in messages
        assert "pins an event core" in messages or \
            "pins a core" in messages
        assert len(self.findings()) == 6

    def test_selector_imports_are_fine(self):
        lines = {f.line for f in self.findings()}
        src = (FIXTURES / "engine_choke.py").read_text().splitlines()
        fine_start = next(i for i, line in enumerate(src, start=1)
                          if "fine --" in line)
        assert not {ln for ln in lines if ln > fine_start}

    def test_engine_modules_may_import_scheduler_structures(self):
        for engine_module in ("repro.sim._engine", "repro.sim._compiled",
                              "repro.sim.core"):
            assert not self.findings(module=engine_module)

    def test_silent_outside_sensitive_packages(self):
        assert not self.findings(module="benchmarks.fixture")

    def test_compiled_core_modules_are_sensitive(self):
        # the registry additions, pinned by name: a split of repro.sim
        # must not silently drop the cores from the sensitive set
        from repro.lint.rules import DEFAULT_SENSITIVE_PACKAGES
        assert "repro.sim._engine" in DEFAULT_SENSITIVE_PACKAGES
        assert "repro.sim._compiled" in DEFAULT_SENSITIVE_PACKAGES
        assert "repro.sim._ccore" in DEFAULT_SENSITIVE_PACKAGES


class TestGuardedTraceSiteRule:
    def test_fires_on_every_bare_site(self):
        findings = [f for f in lint_fixture("trace.py")
                    if f.rule == "guarded-trace-site"]
        messages = " | ".join(f.message for f in findings)
        assert len(findings) == 4, findings
        assert "'self._flight.note()'" in messages
        assert "'fl.note()'" in messages
        assert "'ctx._flight.note()'" in messages

    def test_guarded_idioms_are_clean(self):
        findings = [f for f in lint_fixture("trace.py")
                    if f.rule == "guarded-trace-site"]
        fine_start = 27  # the fixture's "fine" section
        assert not [f for f in findings if f.line >= fine_start], findings

    def test_silent_outside_sim_packages(self):
        findings = lint_file(FIXTURES / "trace.py", module="tests.fixture")
        assert "guarded-trace-site" not in rules_fired(findings)

    def test_recorder_module_is_exempt_and_registered(self):
        from repro.lint.rules import (DEFAULT_SENSITIVE_PACKAGES,
                                      FLIGHT_MODULE, GuardedTraceSiteRule)
        assert FLIGHT_MODULE in DEFAULT_SENSITIVE_PACKAGES
        assert FLIGHT_MODULE in GuardedTraceSiteRule.exempt_modules

    def test_real_call_sites_are_all_guarded(self):
        """The shipped tree must satisfy its own rule (lock hot paths,
        faults, network, scheduler)."""
        import repro.locks.alock.alock as _  # anchor: src layout on path
        root = Path(_.__file__).resolve().parents[3]
        bad = []
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root.parent)
            module = ".".join(rel.with_suffix("").parts)
            bad += [f for f in lint_file(path, module=module)
                    if f.rule == "guarded-trace-site"]
        assert not bad, bad


class TestRuleFrameworkContracts:
    def test_every_shipped_rule_has_a_distinct_id(self):
        ids = [r.rule_id for r in default_rules()]
        assert len(ids) == len(set(ids))
        assert all(ids), "every rule needs a non-empty id"

    @pytest.mark.parametrize("name,module", [
        ("nondet.py", SIM_MODULE),
        ("unordered.py", SIM_MODULE),
        ("resources.py", "repro.rdma.fixture"),
        ("region.py", "repro.locks.fixture"),
        ("frozen.py", SIM_MODULE),
    ])
    def test_finding_order_is_canonical(self, name, module):
        findings = lint_file(FIXTURES / name, module=module)
        assert findings == sorted(findings)
        assert all(f.line >= 1 and f.col >= 0 for f in findings)

    def test_rules_never_execute_the_target(self, tmp_path):
        """Parsing only: a file whose import would explode lints fine."""
        bad = tmp_path / "explosive.py"
        bad.write_text("raise SystemExit('linting must not import me')\n")
        sf = SourceFile.parse(bad, module="repro.sim.explosive")
        assert lint_source_file(sf, default_rules()) == []
