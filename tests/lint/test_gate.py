"""The CI gate: the committed tree must lint clean against the committed
baseline, exactly as ``python -m repro.lint`` runs it."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import Baseline, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.mark.lint
class TestRepoIsClean:
    def test_api_gate_zero_findings(self):
        """src + tests + benchmarks lint clean with the committed baseline."""
        baseline = Baseline.load(REPO_ROOT / "simlint-baseline.json")
        report = run_lint(
            ["src", "tests", "benchmarks"], root=REPO_ROOT,
            baseline=baseline, exclude=["tests/lint/fixtures"])
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.clean, f"simlint findings:\n{rendered}"
        assert report.files_scanned > 100  # the walk really covered the tree

    def test_cli_gate_exits_zero(self):
        """The exact command documented in README/tutorial passes."""
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src", "tests", "benchmarks"],
            capture_output=True, text=True, cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"),
                 "PYTHONHASHSEED": "random"})
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_deep_gate_zero_findings_within_budget(self):
        """The full tree passes the deep pass (lockset, protocol,
        blocking) well inside the CI timing budget of 60 s."""
        import time
        baseline = Baseline.load(REPO_ROOT / "simlint-baseline.json")
        start = time.monotonic()
        report = run_lint(
            ["src", "tests", "benchmarks"], root=REPO_ROOT,
            baseline=baseline, exclude=["tests/lint/fixtures"], deep=True)
        elapsed = time.monotonic() - start
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.clean, f"deep findings:\n{rendered}"
        assert not report.stale_baseline
        assert elapsed < 60, f"deep pass took {elapsed:.1f}s (budget 60s)"

    def test_committed_baseline_parses_and_is_empty(self):
        """Nothing is grandfathered right now; new findings must be fixed
        or explicitly suppressed, not silently absorbed."""
        baseline = Baseline.load(REPO_ROOT / "simlint-baseline.json")
        assert len(baseline) == 0
