"""Engine-level behaviour: suppressions, baseline round-trip, strict
mode, deterministic ordering, and the CLI surface."""

import json
import subprocess
import sys
from pathlib import Path

from repro.lint import Baseline, Finding, default_rules, lint_file, run_lint
from repro.lint.engine import (
    PARSE_ERROR_RULE,
    UNUSED_SUPPRESSION_RULE,
    iter_source_files,
)

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]
SIM_MODULE = "repro.sim.fixture"


class TestSuppressions:
    def test_inline_own_line_and_wildcard(self):
        findings = lint_file(FIXTURES / "suppressed.py", module=SIM_MODULE)
        # only the wrong-id line and the bare line survive
        assert sorted(f.line for f in findings) == [12, 13]

    def test_wrong_rule_id_does_not_suppress(self):
        findings = lint_file(FIXTURES / "suppressed.py", module=SIM_MODULE)
        assert any(f.line == 12 and f.rule == "nondet-source"
                   for f in findings)

    def test_suppressed_findings_are_reported_as_suppressed(self):
        report = run_lint([FIXTURES / "suppressed.py"], root=REPO_ROOT)
        # module inference puts the fixture outside repro.*, so scoped
        # rules skip it entirely — no suppression matches anything here.
        assert report.findings == []

    def test_strict_flags_unused_suppressions(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text(
            "x = 1  # simlint: ignore[nondet-source]\n"
            "y = 2\n")
        report = run_lint([src], root=tmp_path, strict=True)
        assert [f.rule for f in report.findings] == [UNUSED_SUPPRESSION_RULE]
        assert report.findings[0].line == 1

    def test_pragma_quoted_in_string_is_not_a_suppression(self, tmp_path):
        """Docstrings/strings *describing* the pragma must neither
        suppress findings nor show up as unused suppressions."""
        src = tmp_path / "mod.py"
        src.write_text(
            '"""Use `# simlint: ignore[frozen-setattr]` to suppress."""\n'
            "def f(r):\n"
            "    object.__setattr__(r, 'x', 1)\n")
        report = run_lint([src], root=tmp_path, strict=True)
        assert [f.rule for f in report.findings] == ["frozen-setattr"]

    def test_used_suppression_not_flagged_in_strict(self, tmp_path):
        src = tmp_path / "src" / "repro" / "sim" / "mod.py"
        src.parent.mkdir(parents=True)
        for pkg in (tmp_path / "src" / "repro",
                    tmp_path / "src" / "repro" / "sim"):
            (pkg / "__init__.py").write_text("")
        src.write_text(
            "import time\n"
            "t = time.time()  # simlint: ignore[nondet-source]\n")
        report = run_lint([src], root=tmp_path, strict=True)
        assert report.findings == []
        assert len(report.suppressed) == 1


class TestBaseline:
    def _one_finding(self):
        return Finding("src/x.py", 10, 4, "nondet-source", "error",
                       "'time.time()' reads the wall clock")

    def test_round_trip(self, tmp_path):
        findings = [self._one_finding(), self._one_finding(),
                    Finding("src/y.py", 2, 0, "unordered-iter", "error",
                            "iteration materialises set order")]
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 3
        new, old = loaded.split(findings)
        assert new == [] and len(old) == 3

    def test_counts_gate_extra_occurrences(self):
        baseline = Baseline.from_findings([self._one_finding()])
        # a second occurrence of the same (file, rule, message) is NEW
        new, old = baseline.split([self._one_finding(), self._one_finding()])
        assert len(old) == 1 and len(new) == 1

    def test_line_drift_still_matches(self):
        baseline = Baseline.from_findings([self._one_finding()])
        drifted = Finding("src/x.py", 99, 4, "nondet-source", "error",
                          "'time.time()' reads the wall clock")
        new, old = baseline.split([drifted])
        assert new == [] and old == [drifted]

    def test_save_is_stable(self, tmp_path):
        findings = [self._one_finding()]
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        Baseline.from_findings(findings).save(a)
        Baseline.from_findings(findings).save(b)
        assert a.read_text() == b.read_text()

    def test_run_lint_applies_baseline(self, tmp_path):
        src = tmp_path / "src" / "repro" / "sim" / "mod.py"
        src.parent.mkdir(parents=True)
        for pkg in (tmp_path / "src" / "repro",
                    tmp_path / "src" / "repro" / "sim"):
            (pkg / "__init__.py").write_text("")
        src.write_text("import time\nt = time.time()\n")
        dirty = run_lint([src], root=tmp_path)
        assert len(dirty.findings) == 1
        baseline = Baseline.from_findings(dirty.findings)
        clean = run_lint([src], root=tmp_path, baseline=baseline)
        assert clean.findings == [] and len(clean.baselined) == 1
        # strict ignores the baseline
        strict = run_lint([src], root=tmp_path, baseline=baseline,
                          strict=True)
        assert len(strict.findings) == 1


class TestDeterminism:
    def test_repeated_runs_are_identical(self):
        a = run_lint([FIXTURES], root=REPO_ROOT)
        b = run_lint([FIXTURES], root=REPO_ROOT)
        assert a.findings == b.findings
        assert a.suppressed == b.suppressed

    def test_path_order_does_not_matter(self):
        fwd = run_lint([FIXTURES / "frozen.py", FIXTURES / "region.py"],
                       root=REPO_ROOT)
        rev = run_lint([FIXTURES / "region.py", FIXTURES / "frozen.py"],
                       root=REPO_ROOT)
        assert fwd.findings == rev.findings

    def test_order_is_stable_across_hash_seeds(self):
        """The report must not depend on PYTHONHASHSEED — the exact
        property simlint polices in the simulator."""
        script = (
            "import json, sys\n"
            "from pathlib import Path\n"
            "from repro.lint import run_lint\n"
            f"r = run_lint([Path({str(FIXTURES)!r})], "
            f"root=Path({str(REPO_ROOT)!r}))\n"
            "print(json.dumps([f.render() for f in r.findings]))\n")
        outs = []
        for seed in ("0", "1", "31337"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True,
                env={"PYTHONHASHSEED": seed,
                     "PYTHONPATH": str(REPO_ROOT / "src")})
            assert proc.returncode == 0, proc.stderr
            outs.append(proc.stdout)
        assert outs[0] == outs[1] == outs[2]

    def test_file_discovery_sorted_and_deduplicated(self):
        files = iter_source_files(
            [FIXTURES, FIXTURES / "frozen.py"], root=REPO_ROOT)
        rels = [f.relative_to(FIXTURES).as_posix() for f in files]
        assert rels == sorted(rels)
        assert rels.count("frozen.py") == 1
        assert "deep/clean_lock.py" in rels  # subdirectories are walked


class TestParseErrors:
    def test_syntax_error_becomes_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n    pass\n")
        report = run_lint([bad], root=tmp_path)
        assert [f.rule for f in report.findings] == [PARSE_ERROR_RULE]
        assert not report.clean


class TestCli:
    def _run(self, *args, cwd=REPO_ROOT):
        return subprocess.run(
            [sys.executable, "-m", "repro.lint", *args],
            capture_output=True, text=True, cwd=cwd,
            env={"PYTHONPATH": str(REPO_ROOT / "src"),
                 "PYTHONHASHSEED": "random"})

    def test_list_rules(self):
        proc = self._run("--list-rules")
        assert proc.returncode == 0
        for rule in default_rules():
            assert rule.rule_id in proc.stdout

    def test_json_output_on_fixtures(self):
        proc = self._run("tests/lint/fixtures/frozen.py",
                         "--json", "--no-baseline")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["clean"] is False
        assert {f["rule"] for f in payload["findings"]} == {"frozen-setattr"}

    def test_unknown_rule_id_is_usage_error(self):
        proc = self._run("--rules", "no-such-rule")
        assert proc.returncode == 2

    def test_write_baseline_round_trip(self, tmp_path):
        root = tmp_path
        (root / "mod.py").write_text(
            "from dataclasses import dataclass\n"
            "def f(r):\n"
            "    object.__setattr__(r, 'x', 1)\n")
        (root / "pyproject.toml").write_text(
            '[tool.simlint]\npaths = ["mod.py"]\n'
            'baseline = "baseline.json"\n')
        dirty = self._run("--root", str(root), cwd=root)
        assert dirty.returncode == 1
        wrote = self._run("--root", str(root), "--write-baseline", cwd=root)
        assert wrote.returncode == 0, wrote.stderr
        clean = self._run("--root", str(root), cwd=root)
        assert clean.returncode == 0, clean.stdout
