"""Tier-1 observability gates.

1. **Byte determinism across hash seeds** — the full exported output
   (trace JSON + metrics JSON + phase summary) of an instrumented run
   must be byte-identical under different ``PYTHONHASHSEED`` values.
   Any set/dict-ordering leak in the obs layer fails this immediately.
2. **Non-perturbation** — enabling observability must not change what
   the simulation *measures*: same ops, same latency samples, same
   final sim time, with spans on, metrics on, or everything off.
"""

import hashlib
import os
import subprocess
import sys

import numpy as np

from repro.obs import ObsConfig
from repro.obs.selftest import selftest_output
from repro.workload.runner import run_workload
from repro.workload.spec import WorkloadSpec

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def run_selftest(hashseed: str) -> bytes:
    env = dict(os.environ, PYTHONHASHSEED=hashseed,
               PYTHONPATH=os.path.abspath(SRC))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.obs.selftest"],
        capture_output=True, env=env, timeout=120)
    assert proc.returncode == 0, proc.stderr.decode()
    return proc.stdout


class TestHashSeedDeterminism:
    def test_selftest_byte_identical_across_hash_seeds(self):
        out0 = run_selftest("0")
        out1 = run_selftest("12345")
        h0 = hashlib.sha256(out0).hexdigest()
        h1 = hashlib.sha256(out1).hexdigest()
        assert h0 == h1, "obs output depends on PYTHONHASHSEED"
        # Sanity: the output is substantive, not an empty trace.
        assert b'"ph":"X"' in out0 and b"phase_summary" in out0

    def test_selftest_stable_in_process(self):
        assert selftest_output(seed=3) == selftest_output(seed=3)


class TestNonPerturbation:
    def run(self, obs):
        spec = WorkloadSpec(
            n_nodes=3, threads_per_node=2, n_locks=5, locality_pct=85.0,
            ops_per_thread=10, cs_ns=350.0, seed=7, lock_kind="alock",
            audit="off")
        return run_workload(spec, obs=obs)

    def test_observability_does_not_change_measurements(self):
        base = self.run(None)
        spans_on = self.run(ObsConfig(spans=True))
        full = self.run(ObsConfig(spans=True, metrics=True))
        for res in (spans_on, full):
            assert res.measured_ops == base.measured_ops
            assert res.window_ns == base.window_ns
            assert np.array_equal(
                np.asarray(res.latencies_ns), np.asarray(base.latencies_ns))
        assert not base.spans and full.spans  # obs captured only when on
