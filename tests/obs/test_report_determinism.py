"""Satellite 3: post-mortem dumps are byte-deterministic.

``python -m repro.obs.report --selftest`` explores the seeded
``lost_wakeup`` bug, then prints the failure's dump JSON, its Perfetto
trace slice, and the rendered report.  Same seed + same schedule must
produce byte-identical output regardless of ``PYTHONHASHSEED`` — any
set/dict-ordering leak in the snapshot path fails here."""

import os
import subprocess
import sys

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def run_report_selftest(hashseed: str) -> bytes:
    env = dict(os.environ, PYTHONHASHSEED=hashseed,
               PYTHONPATH=os.path.abspath(SRC))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.obs.report", "--selftest"],
        capture_output=True, env=env, timeout=300)
    assert proc.returncode == 0, proc.stderr.decode()
    return proc.stdout


class TestDumpDeterminism:
    def test_byte_identical_across_hash_seeds(self):
        out0 = run_report_selftest("0")
        out1 = run_report_selftest("424242")
        assert out0 == out1, "post-mortem output depends on PYTHONHASHSEED"
        # sanity: the canary actually produced a substantive post-mortem
        assert b'"schema": "alock-postmortem/1"' in out0.replace(b'":"', b'": "')
        assert b"wait_for" in out0
        assert b"suspected rule:" in out0
        assert b"replay: decisions" in out0
        assert b"traceEvents" in out0  # the Perfetto slice
