"""Exporter tests: Chrome trace-event structure and metrics JSON."""

import json

from repro.obs.capture import CapturedRun
from repro.obs.export import (
    metrics_json,
    span_table,
    trace_events,
    trace_json,
    write_metrics,
    write_trace,
)
from repro.obs.spans import LOCK_ACQUIRE, VERB_RTT, Span


def span(sid, parent, name, actor, t0, t1, **attrs):
    return Span(span_id=sid, parent_id=parent, name=name, actor=actor,
                start_ns=float(t0), end_ns=float(t1), attrs=attrs)


def make_run(label="r1"):
    spans = [
        span(1, 0, LOCK_ACQUIRE, "t0@n0", 1000, 3000, lock="l0"),
        span(2, 1, VERB_RTT, "t0@n0", 1200, 1800, verb="rCAS"),
        span(3, 0, LOCK_ACQUIRE, "t0@n1", 500, 900, lock="l0"),
        Span(span_id=4, parent_id=0, name=VERB_RTT, actor="t0@n0",
             start_ns=4000.0, end_ns=None, attrs={}),  # open: must be skipped
    ]
    return CapturedRun(label, spans, {"network": {"verbs": {"rCAS": 1}}})


class TestTraceEvents:
    def test_metadata_events(self):
        events = trace_events([make_run()])
        meta = [e for e in events if e["ph"] == "M"]
        names = {(e["name"], e["args"]["name"]) for e in meta}
        assert ("process_name", "r1") in names
        assert ("thread_name", "t0@n0") in names
        assert ("thread_name", "t0@n1") in names

    def test_complete_events_microseconds(self):
        events = trace_events([make_run()])
        ev = next(e for e in events
                  if e["ph"] == "X" and e["args"]["span_id"] == 1)
        assert ev["ts"] == 1.0       # 1000 ns -> 1 us
        assert ev["dur"] == 2.0      # 2000 ns -> 2 us
        assert ev["name"] == LOCK_ACQUIRE
        assert ev["cat"] == "lock"
        assert ev["args"]["lock"] == "l0"
        assert ev["args"]["parent_id"] == 0

    def test_open_spans_skipped(self):
        events = trace_events([make_run()])
        assert all(e["args"]["span_id"] != 4
                   for e in events if e["ph"] == "X")

    def test_tids_from_sorted_actors(self):
        events = trace_events([make_run()])
        meta = {e["args"]["name"]: e["tid"]
                for e in events if e["name"] == "thread_name"}
        assert meta == {"t0@n0": 1, "t0@n1": 2}

    def test_pids_per_run(self):
        events = trace_events([make_run("a"), make_run("b")])
        pids = {e["args"]["name"]: e["pid"]
                for e in events if e["name"] == "process_name"}
        assert pids == {"a": 1, "b": 2}

    def test_event_order_deterministic(self):
        xs = [e for e in trace_events([make_run()]) if e["ph"] == "X"]
        keys = [(e["tid"], e["ts"], e["args"]["span_id"]) for e in xs]
        assert keys == sorted(keys)


class TestJsonDocs:
    def test_trace_json_loads_and_has_wrapper(self):
        doc = json.loads(trace_json([make_run()]))
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"]["clock"] == "simulated"
        assert len(doc["traceEvents"]) == 6  # 3 meta + 3 complete

    def test_metrics_json_flattened(self):
        doc = json.loads(metrics_json([make_run()]))
        (entry,) = doc["runs"]
        assert entry["label"] == "r1"
        assert entry["metrics"] == {"network.verbs.rCAS": 1}

    def test_byte_determinism_across_calls(self):
        assert trace_json([make_run()]) == trace_json([make_run()])
        assert metrics_json([make_run()]) == metrics_json([make_run()])

    def test_writers_round_trip(self, tmp_path):
        tp, mp = tmp_path / "t.json", tmp_path / "m.json"
        write_trace(str(tp), [make_run()])
        write_metrics(str(mp), [make_run()])
        assert json.loads(tp.read_text())["traceEvents"]
        assert json.loads(mp.read_text())["runs"]


class TestSpanTable:
    def test_indents_children_and_marks_open(self):
        out = span_table(make_run().spans)
        lines = out.splitlines()
        acquire = next(l for l in lines if LOCK_ACQUIRE in l
                       and "t0@n0" in l)
        child = next(l for l in lines if "verb=rCAS" in l)
        assert child.index(VERB_RTT) > acquire.index(LOCK_ACQUIRE)
        assert any("open" in l for l in lines)

    def test_limit_elides(self):
        spans = [span(i, 0, VERB_RTT, "a", i * 10, i * 10 + 5)
                 for i in range(1, 10)]
        out = span_table(spans, limit=3)
        assert "... 6 more spans" in out
