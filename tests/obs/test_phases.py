"""Phase decomposition: synthetic span streams + real-run exactness."""

import numpy as np

from repro.obs import ObsConfig
from repro.obs.phases import by_kind, extract_operations, phase_summary
from repro.obs.spans import (
    LOCK_ACQUIRE,
    LOCK_RELEASE,
    MCS_QUEUE_WAIT,
    PETERSON_COMPETE,
    Span,
)
from repro.workload.runner import run_workload
from repro.workload.spec import WorkloadSpec


def span(sid, parent, name, actor, t0, t1, **attrs):
    return Span(span_id=sid, parent_id=parent, name=name, actor=actor,
                start_ns=float(t0), end_ns=float(t1), attrs=attrs)


def one_op(actor="t0@n0", lock="l0"):
    """acquire [0,100] with peterson child [40,70] and mcs child [10,30];
    CS [100,180]; release [180,200]."""
    return [
        span(1, 0, LOCK_ACQUIRE, actor, 0, 100,
             lock=lock, kind="alock", outcome="ok", cohort="local"),
        span(2, 1, MCS_QUEUE_WAIT, actor, 10, 30, cohort="local"),
        span(3, 1, PETERSON_COMPETE, actor, 40, 70),
        span(4, 0, LOCK_RELEASE, actor, 180, 200,
             lock=lock, kind="alock", outcome="ok"),
    ]


class TestSynthetic:
    def test_single_op_decomposition(self):
        (op,) = extract_operations(one_op())
        assert op.cross_cohort_ns == 30.0       # peterson child
        assert op.queue_wait_ns == 70.0         # 100 - 30
        assert op.mcs_blocked_ns == 20.0        # mcs child
        assert op.critical_section_ns == 80.0   # 180 - 100
        assert op.release_ns == 20.0
        assert op.end_to_end_ns == 200.0        # tiles [0, 200] exactly
        assert op.acquire_ns == 100.0
        assert op.cohort == "local"
        assert op.kind == "alock"

    def test_failed_acquire_skipped(self):
        spans = one_op()
        spans[0] = span(1, 0, LOCK_ACQUIRE, "t0@n0", 0, 100,
                        lock="l0", kind="alock", outcome="error")
        assert extract_operations(spans) == []

    def test_unpaired_acquire_skipped(self):
        spans = [s for s in one_op() if s.name != LOCK_RELEASE]
        assert extract_operations(spans) == []

    def test_streams_keyed_by_actor_and_lock(self):
        # A release by another actor (or on another lock) must not pair
        # with this acquire.
        spans = one_op()
        spans[-1] = span(4, 0, LOCK_RELEASE, "t1@n0", 180, 200,
                         lock="l0", kind="alock")
        assert extract_operations(spans) == []

    def test_ops_sorted_by_start_time(self):
        spans = one_op(actor="t1@n0")
        late = [
            span(11, 0, LOCK_ACQUIRE, "t0@n0", 500, 600,
                 lock="l0", kind="alock", outcome="ok"),
            span(12, 0, LOCK_RELEASE, "t0@n0", 650, 660,
                 lock="l0", kind="alock"),
        ]
        ops = extract_operations(spans + late)
        assert [op.start_ns for op in ops] == [0.0, 500.0]

    def test_phase_summary_shares_sum_to_one(self):
        ops = extract_operations(one_op())
        s = phase_summary(ops)
        assert s["count"] == 1
        shares = (s["share_queue_wait"] + s["share_cross_cohort"]
                  + s["share_critical_section"] + s["share_release"])
        assert abs(shares - 1.0) < 1e-12
        assert s["mean_end_to_end_ns"] == 200.0

    def test_phase_summary_empty(self):
        assert phase_summary([]) == {"count": 0}

    def test_by_kind_groups(self):
        spans = one_op()
        spans += [
            span(21, 0, LOCK_ACQUIRE, "t0@n0", 300, 310,
                 lock="m0", kind="mcs", outcome="ok"),
            span(22, 0, LOCK_RELEASE, "t0@n0", 320, 330,
                 lock="m0", kind="mcs"),
        ]
        groups = by_kind(extract_operations(spans))
        assert set(groups) == {"alock", "mcs"}
        assert len(groups["alock"]) == 1 and len(groups["mcs"]) == 1


class TestRealRun:
    """The decomposition must reproduce the runner's independently
    measured latencies exactly — the core ext_phases invariant."""

    def run(self, lock_kind):
        spec = WorkloadSpec(
            n_nodes=3, threads_per_node=2, n_locks=4, locality_pct=80.0,
            ops_per_thread=6, cs_ns=400.0, seed=11, lock_kind=lock_kind,
            audit="off")
        return run_workload(spec, obs=ObsConfig(spans=True))

    def test_alock_sums_match_runner_latencies(self):
        res = self.run("alock")
        ops = extract_operations(res.spans)
        assert len(ops) == res.measured_ops
        got = np.sort(np.array([op.end_to_end_ns for op in ops]))
        want = np.sort(np.asarray(res.latencies_ns, dtype=float))
        assert np.allclose(got, want, rtol=1e-9, atol=1e-6)

    def test_mcs_has_no_cross_cohort_phase(self):
        res = self.run("mcs")
        ops = extract_operations(res.spans)
        assert ops and all(op.cross_cohort_ns == 0.0 for op in ops)
        got = np.sort(np.array([op.end_to_end_ns for op in ops]))
        want = np.sort(np.asarray(res.latencies_ns, dtype=float))
        assert np.allclose(got, want, rtol=1e-9, atol=1e-6)

    def test_alock_cohort_annotation_present(self):
        res = self.run("alock")
        ops = extract_operations(res.spans)
        assert set(op.cohort for op in ops) <= {"local", "remote"}
        assert any(op.cohort == "local" for op in ops)
