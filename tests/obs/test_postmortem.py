"""Post-mortem engine tests: wait-for graph + cycle naming, snapshot
determinism, dump persistence, failure-site plumbing, and the ISSUE's
acceptance bar — each seeded lock bug's dump must name the faulty
client and the lock word it is stuck on."""

import json

import pytest

from repro.cluster import Cluster
from repro.common.errors import SimulationError
from repro.locks import LOCK_TYPES, register_lock_type
from repro.locks.base import DistributedLock
from repro.memory.pointer import ptr_addr
from repro.obs.postmortem import (SCHEMA, attach, dump_json, maybe_write_dump,
                                  render_cycle, snapshot, wait_for_graph)
from repro.obs.report import render_report, suspect_rule
from repro.schedcheck.explore import explore_random
from repro.schedcheck.scenario import LockScenario
from repro.workload.runner import run_workload
from repro.workload.spec import WorkloadSpec

#: the PR's acceptance scenarios: seeded bug -> (scenario, faulty
#: clients the dump must name, lock-word substring it must blame)
SEEDED_BUGS = {
    "no_victim_check": (
        LockScenario(lock_kind="alock", n_nodes=2, threads_per_node=2,
                     ops_per_thread=2, think_ns=200.0, seed=0,
                     lock_options=(("bug", "no_victim_check"),)),
        "alock[0]@n0."),
    "skip_budget_wait": (
        LockScenario(lock_kind="alock", n_nodes=1, threads_per_node=2,
                     ops_per_thread=4, think_ns=100.0, seed=2,
                     lock_options=(("bug", "skip_budget_wait"),)),
        "alock[0]@n0.budget"),
    "lost_wakeup": (
        LockScenario(lock_kind="mcs", n_nodes=1, threads_per_node=3,
                     ops_per_thread=3, seed=0,
                     lock_options=(("bug", "lost_wakeup"),
                                   ("poll_interval_ns", 200.0))),
        "mcs[0]@n0.locked"),
}


def first_failure_dump(name: str) -> dict:
    scenario, _ = SEEDED_BUGS[name]
    report = explore_random(scenario, 50, seed=1, stop_on_failure=True)
    failure = report.first_failure
    assert failure is not None, f"{name}: no failure in 50 schedules"
    assert failure.dump is not None, f"{name}: failure carried no dump"
    return json.loads(failure.dump)


class TestWaitForGraph:
    def test_cycle_detected_and_canonical(self):
        events = [
            (1.0, "A", "lock.wait", ("L1", "budget")),
            (2.0, "B", "lock.wait", ("L2", "next")),
        ]
        graph = wait_for_graph(events, {"L1": "B", "L2": "A"})
        assert graph["edges"] == [["A", "L1.budget"], ["B", "L2.next"],
                                  ["L1.budget", "B"], ["L2.next", "A"]]
        assert graph["cycles"] == [["A", "L1.budget", "B", "L2.next"]]
        assert render_cycle(graph["cycles"][0]) == \
            "A → L1.budget → B → L2.next → A"

    def test_acquired_discharges_the_wait(self):
        events = [
            (1.0, "A", "lock.wait", ("L1", "budget")),
            (2.0, "A", "lock.acquired", ("L1",)),
        ]
        graph = wait_for_graph(events, {"L1": "A"})
        assert graph == {"edges": [], "cycles": []}

    def test_acquired_on_other_lock_does_not_discharge(self):
        events = [
            (1.0, "A", "lock.wait", ("L1", "budget")),
            (2.0, "A", "lock.acquired", ("L2",)),
        ]
        graph = wait_for_graph(events, {"L1": None, "L2": "A"})
        assert graph["edges"] == [["A", "L1.budget"]]

    def test_no_self_edge_for_own_lock(self):
        events = [(1.0, "A", "lock.wait", ("L1", "next"))]
        graph = wait_for_graph(events, {"L1": "A"})
        assert graph["edges"] == [["A", "L1.next"]]
        assert graph["cycles"] == []


class TestSeededBugAcceptance:
    """The dump of each seeded bug names the stuck clients and the lock
    word they are parked on — the bar from the ISSUE."""

    @pytest.mark.parametrize("bug", sorted(SEEDED_BUGS))
    def test_dump_names_client_and_lock_word(self, bug):
        scenario, word = SEEDED_BUGS[bug]
        dump = first_failure_dump(bug)
        assert dump["schema"] == SCHEMA
        # the faulty clients appear in the parked-process table...
        parked = {p["name"] for p in dump["processes"]}
        assert any(name.startswith("client-n") for name in parked), parked
        # ...and the wait-for graph blames a word of the bugged lock
        edges = dump["wait_for"]["edges"]
        assert any(dst.startswith(word) for _src, dst in edges), (word, edges)
        # every waiting edge source is an actor the last-action table knows
        actors = set(dump["last_action"])
        assert {src for src, _ in edges if "@" in src} <= actors
        # the rendered report names the same word
        assert word.split(".")[0] in render_report(dump)

    def test_replayable_decisions_stored(self):
        dump = first_failure_dump("lost_wakeup")
        assert dump["sched"]["decision_count"] >= 0
        assert isinstance(dump["sched"]["decisions"], str)

    def test_suspect_rule_speaks_deep_pass_vocabulary(self):
        dump = first_failure_dump("skip_budget_wait")
        assert "deep-" in suspect_rule(dump)


class TestSnapshotDeterminism:
    def test_same_seed_same_schedule_byte_identical(self):
        a = first_failure_dump("lost_wakeup")
        b = first_failure_dump("lost_wakeup")
        assert dump_json(a) == dump_json(b)


class TestDumpPersistence:
    def test_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv("ALOCK_POSTMORTEM_DIR", raising=False)
        assert maybe_write_dump('{"x":1}', "deadlock") is None

    def test_writes_content_addressed_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv("ALOCK_POSTMORTEM_DIR", str(tmp_path))
        path = maybe_write_dump('{"x":1}', "deadlock")
        assert path is not None
        (written,) = tmp_path.iterdir()
        assert written.name.startswith("postmortem-deadlock-")
        assert written.read_text() == '{"x":1}'
        # same dump twice: same name, still exactly one file
        maybe_write_dump('{"x":1}', "deadlock")
        assert len(list(tmp_path.iterdir())) == 1


class TestAttach:
    def test_attach_hangs_dump_on_exception(self):
        cluster = Cluster(1, audit="off")
        exc = attach(SimulationError("boom"), cluster,
                     reason="deadlock", detail="d")
        assert exc._postmortem is not None
        dump = json.loads(exc._postmortem)
        assert (dump["reason"], dump["detail"]) == ("deadlock", "d")


# -- runner integration: a deterministically deadlocking lock ------------

class HangLock(DistributedLock):
    """Parks every acquirer on a word nobody ever writes."""

    kind = "hang"

    def __init__(self, cluster, home_node, name=""):
        super().__init__(cluster, home_node, name)
        region = cluster.regions[home_node]
        self._ptr = region.alloc_ptr(8)
        region.label_word(ptr_addr(self._ptr), f"{self.name}.never")

    def lock(self, ctx):
        fl = self._flight
        if fl is not None:
            fl.note(ctx.actor, "lock.wait", self.name, "never")
        yield from ctx.wait_local(self._ptr, lambda v: v == 1)
        self._note_acquired(ctx)  # pragma: no cover

    def unlock(self, ctx):  # pragma: no cover - never reached
        self._note_released(ctx)
        yield from ctx.fence()


@pytest.fixture
def hang_lock_kind():
    register_lock_type("hang", HangLock)
    yield "hang"
    del LOCK_TYPES["hang"]


class TestRunnerDeadlockPostmortem:
    def test_deadlock_error_names_the_word_and_carries_a_dump(
            self, hang_lock_kind):
        spec = WorkloadSpec(n_nodes=1, threads_per_node=2, n_locks=1,
                            ops_per_thread=1, lock_kind=hang_lock_kind,
                            audit="off")
        with pytest.raises(SimulationError) as err:
            run_workload(spec)
        # satellite 1: the error itself names the watched word per client
        assert "deadlocked" in str(err.value)
        assert "hang[0]@n0.never" in str(err.value)
        # the tentpole: the exception carries the full post-mortem
        dump = json.loads(err.value._postmortem)
        assert dump["reason"] == "deadlock"
        waiting = {p["name"]: p["waiting_on"] for p in dump["processes"]}
        assert len(waiting) == 2
        assert all("hang[0]@n0.never" in w for w in waiting.values())
        assert [s for s, _d in dump["wait_for"]["edges"]] == \
            ["t0@n0", "t1@n0"]

    def test_snapshot_survives_flightless_cluster(self, hang_lock_kind):
        spec = WorkloadSpec(n_nodes=1, threads_per_node=1, n_locks=1,
                            ops_per_thread=1, lock_kind=hang_lock_kind,
                            audit="off")
        with pytest.raises(SimulationError) as err:
            run_workload(spec, flight=False)
        dump = json.loads(err.value._postmortem)
        assert dump["events"] == [] and dump["wait_for"]["edges"] == []
        assert dump["processes"][0]["waiting_on"].count("never") == 1
