"""Unit tests for the typed span recorder."""

import pytest

from repro.obs import SpanRecorder
from repro.obs.spans import LOCK_ACQUIRE, VERB_RTT
from repro.sim import Environment


def make_recorder(**kw):
    env = Environment()
    return env, SpanRecorder(env, **kw)


class TestDisabled:
    def test_start_returns_none(self):
        _, rec = make_recorder(enabled=False)
        assert rec.start("t0@n0", LOCK_ACQUIRE) is None
        assert len(rec) == 0

    def test_end_of_none_is_noop(self):
        _, rec = make_recorder(enabled=False)
        rec.end(None)  # must not raise
        rec.end(None, outcome="ok")

    def test_annotate_is_noop(self):
        _, rec = make_recorder(enabled=False)
        rec.annotate("t0@n0", cohort="local")
        assert len(rec) == 0

    def test_default_is_disabled(self):
        _, rec = make_recorder()
        assert not rec.enabled


class TestRecording:
    def test_span_times_from_sim_clock(self):
        env, rec = make_recorder(enabled=True)
        sp = rec.start("a", LOCK_ACQUIRE)
        env._now = 150.0
        rec.end(sp)
        assert sp.start_ns == 0.0
        assert sp.end_ns == 150.0
        assert sp.duration_ns == 150.0

    def test_nesting_assigns_parent(self):
        _, rec = make_recorder(enabled=True)
        outer = rec.start("a", LOCK_ACQUIRE)
        inner = rec.start("a", VERB_RTT)
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == 0
        rec.end(inner)
        rec.end(outer)
        sibling = rec.start("a", VERB_RTT)
        assert sibling.parent_id == 0

    def test_actors_have_independent_stacks(self):
        _, rec = make_recorder(enabled=True)
        a = rec.start("a", LOCK_ACQUIRE)
        b = rec.start("b", LOCK_ACQUIRE)
        assert a.parent_id == 0 and b.parent_id == 0

    def test_span_ids_monotonic_and_unique(self):
        _, rec = make_recorder(enabled=True)
        ids = [rec.start("a", VERB_RTT).span_id for _ in range(5)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_end_attrs_merge(self):
        _, rec = make_recorder(enabled=True)
        sp = rec.start("a", LOCK_ACQUIRE, lock="l1")
        rec.end(sp, outcome="ok")
        assert sp.attrs == {"lock": "l1", "outcome": "ok"}

    def test_annotate_hits_innermost_open(self):
        _, rec = make_recorder(enabled=True)
        outer = rec.start("a", LOCK_ACQUIRE)
        inner = rec.start("a", VERB_RTT)
        rec.annotate("a", verb="rCAS")
        assert "verb" in inner.attrs and "verb" not in outer.attrs

    def test_ending_outer_closes_abandoned_inner(self):
        """An exception may unwind past an open child; ending the parent
        must close the child too (marked abandoned) so the stack stays
        consistent."""
        _, rec = make_recorder(enabled=True)
        outer = rec.start("a", LOCK_ACQUIRE)
        inner = rec.start("a", VERB_RTT)
        rec.end(outer, outcome="error")
        assert inner.finished
        assert inner.attrs["outcome"] == "abandoned"
        assert rec.open_spans() == []

    def test_duration_of_open_span_raises(self):
        _, rec = make_recorder(enabled=True)
        sp = rec.start("a", LOCK_ACQUIRE)
        with pytest.raises(ValueError):
            _ = sp.duration_ns

    def test_capacity_evicts_oldest(self):
        _, rec = make_recorder(enabled=True, capacity=3)
        for i in range(5):
            rec.end(rec.start("a", VERB_RTT, i=i))
        kept = [s.attrs["i"] for s in rec.spans()]
        assert kept == [2, 3, 4]
        assert rec.dropped == 2

    def test_clear(self):
        _, rec = make_recorder(enabled=True)
        rec.end(rec.start("a", VERB_RTT))
        rec.start("a", VERB_RTT)  # left open
        rec.clear()
        assert len(rec) == 0 and rec.open_spans() == []
