"""Unit tests for the metrics registry."""

import pytest

from repro.obs.metrics import MetricsRegistry, _BUCKET_BOUNDS


class TestDisabled:
    def test_factories_return_shared_null(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("x")
        g = reg.gauge("y")
        h = reg.histogram("z")
        assert c is g is h  # one shared no-op handle, zero allocation
        c.inc()
        g.set(5)
        h.observe(100.0)
        assert reg.collect() == {}

    def test_collectors_work_while_disabled(self):
        reg = MetricsRegistry(enabled=False)
        reg.add_collector("sub", lambda: {"n": 3})
        assert reg.collect() == {"sub": {"n": 3}}


class TestPush:
    def test_counter_accumulates(self):
        reg = MetricsRegistry(enabled=True)
        c = reg.counter("ops", node=0)
        c.inc()
        c.inc(4)
        assert reg.collect()["app"]["ops"]["node=0"] == 5

    def test_handles_cached_by_name_and_labels(self):
        reg = MetricsRegistry(enabled=True)
        assert reg.counter("ops", node=0) is reg.counter("ops", node=0)
        assert reg.counter("ops", node=0) is not reg.counter("ops", node=1)

    def test_label_order_irrelevant(self):
        reg = MetricsRegistry(enabled=True)
        assert reg.counter("v", a=1, b=2) is reg.counter("v", b=2, a=1)

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("m")
        with pytest.raises(TypeError):
            reg.gauge("m")

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry(enabled=True)
        g = reg.gauge("depth")
        g.set(3)
        g.add(2)
        assert reg.collect()["app"]["depth"]["_"] == 5

    def test_histogram_summary(self):
        reg = MetricsRegistry(enabled=True)
        h = reg.histogram("lat")
        for v in (100.0, 200.0, 300.0):
            h.observe(v)
        snap = reg.collect()["app"]["lat"]["_"]
        assert snap["count"] == 3
        assert snap["sum_ns"] == 600.0
        assert snap["mean_ns"] == 200.0
        assert snap["min_ns"] == 100.0
        assert snap["max_ns"] == 300.0
        assert sum(snap["buckets"].values()) == 3

    def test_histogram_bucket_assignment(self):
        reg = MetricsRegistry(enabled=True)
        h = reg.histogram("lat")
        h.observe(64.0)    # boundary: le_64
        h.observe(65.0)    # next bucket: le_128
        h.observe(1e12)    # beyond the largest finite bound: +inf
        buckets = reg.collect()["app"]["lat"]["_"]["buckets"]
        assert buckets["le_64"] == 1
        assert buckets["le_128"] == 1
        assert buckets["+inf"] == 1

    def test_bucket_bounds_sorted(self):
        assert list(_BUCKET_BOUNDS) == sorted(_BUCKET_BOUNDS)


class TestTree:
    def make(self):
        reg = MetricsRegistry(enabled=True)
        reg.add_collector("network", lambda: {"verbs": {"rCAS": 7},
                                              "nics": [{"tx": 1}, {"tx": 2}]})
        reg.counter("retries", verb="rCAS").inc(3)
        return reg

    def test_collect_merges_collectors_and_app(self):
        tree = self.make().collect()
        assert tree["network"]["verbs"]["rCAS"] == 7
        assert tree["app"]["retries"]["verb=rCAS"] == 3

    def test_flat_dotted_paths(self):
        flat = self.make().flat()
        assert flat["network.verbs.rCAS"] == 7
        assert flat["network.nics.1.tx"] == 2
        assert flat["app.retries.verb=rCAS"] == 3
        assert list(flat) == sorted(flat)

    def test_query_path(self):
        reg = self.make()
        assert reg.query("network.verbs.rCAS") == 7
        assert reg.query("network.nics.0") == {"tx": 1}
        with pytest.raises(KeyError):
            reg.query("network.verbs.nope")

    def test_collector_reregistration_wins(self):
        reg = MetricsRegistry()
        reg.add_collector("s", lambda: 1)
        reg.add_collector("s", lambda: 2)
        assert reg.collect() == {"s": 2}
