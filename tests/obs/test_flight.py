"""Flight-recorder unit tests: the ring's bounded-eviction, windowing,
and read-side contracts, plus its wiring into Cluster."""

import pytest

from repro.cluster import Cluster
from repro.locks import make_lock
from repro.obs.flight import DEFAULT_CAPACITY, FlightEvent, FlightRecorder
from repro.sim import Environment


def recorder(capacity=8):
    return FlightRecorder(Environment(), capacity=capacity)


class TestRing:
    def test_capacity_evicts_oldest_in_order(self):
        fl = recorder(capacity=4)
        for i in range(10):
            fl.note("a", "k", i)
        assert len(fl) == 4
        assert [e.detail[0] for e in fl.window()] == [6, 7, 8, 9]

    def test_window_last_n_oldest_first(self):
        fl = recorder()
        for i in range(5):
            fl.note("a", "k", i)
        assert [e.detail[0] for e in fl.window(2)] == [3, 4]
        # last=None and last >= len both return the whole ring
        assert len(fl.window()) == len(fl.window(99)) == 5

    def test_events_are_timestamped_from_the_sim_clock(self):
        env = Environment()
        fl = FlightRecorder(env)

        def proc():
            fl.note("p", "before")
            yield env.timeout(150.0)
            fl.note("p", "after")

        env.process(proc())
        env.run()
        (before, after) = fl.window()
        assert (before.t_ns, after.t_ns) == (0.0, 150.0)

    def test_last_actions_sorted_by_actor(self):
        fl = recorder()
        fl.note("b", "k1")
        fl.note("a", "k2")
        fl.note("b", "k3", "x")
        last = fl.last_actions()
        assert list(last) == ["a", "b"]
        assert last["b"].kind == "k3"

    def test_filtered_by_kind_prefix(self):
        fl = recorder()
        fl.note("a", "lock.wait", "l0")
        fl.note("a", "verb.issue", "rCAS")
        fl.note("a", "lock.acquired", "l0")
        assert [e.kind for e in fl.filtered("lock.")] == \
            ["lock.wait", "lock.acquired"]

    def test_clear(self):
        fl = recorder()
        fl.note("a", "k")
        fl.clear()
        assert len(fl) == 0 and fl.window() == []

    def test_event_accessors(self):
        fl = recorder()
        fl.note("actor", "kind", "d0", 1)
        (e,) = fl.window()
        assert isinstance(e, FlightEvent)
        assert (e.actor, e.kind, e.detail) == ("actor", "kind", ("d0", 1))

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            recorder(capacity=0)


class TestClusterWiring:
    def test_on_by_default_off_by_request(self):
        assert Cluster(1, audit="off").flight is not None
        assert Cluster(1, audit="off", flight=False).flight is None

    def test_capacity_plumbed_through(self):
        cluster = Cluster(1, audit="off", flight_capacity=16)
        assert cluster.flight.capacity == 16
        assert Cluster(1, audit="off").flight.capacity == DEFAULT_CAPACITY

    def test_protocol_chokepoints_recorded(self):
        cluster = Cluster(2, audit="off")
        lock = make_lock("alock", cluster, 0)
        ctx = cluster.thread_ctx(1, 0)  # remote cohort: issues verbs

        def proc():
            yield from lock.lock(ctx)
            yield from lock.unlock(ctx)

        cluster.env.process(proc())
        cluster.run()
        kinds = [e.kind for e in cluster.flight.window()]
        for expected in ("verb.issue", "desc.begin", "lock.acquired",
                         "lock.released"):
            assert expected in kinds, kinds
        # acquire precedes release in ring order
        assert kinds.index("lock.acquired") < kinds.index("lock.released")

    def test_poll_verbs_stay_unrecorded(self):
        """r_read/r_write are the spin verbs; recording them would blow
        the <3% budget and flood the ring (see ThreadContext.r_read)."""
        cluster = Cluster(2, audit="off")
        ctx = cluster.thread_ctx(0, 0)
        ptr = cluster.alloc_on(1, 8)

        def proc():
            yield from ctx.r_write(ptr, 7)
            value = yield from ctx.r_read(ptr)
            assert value == 7

        cluster.env.process(proc())
        cluster.run()
        assert cluster.flight.filtered("verb.") == []
