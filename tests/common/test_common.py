"""Tests for ids, RNG streams, and the trace buffer."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigError
from repro.common.ids import (
    _THREADS_PER_NODE_MAX,
    make_global_thread_id,
    split_global_thread_id,
)
from repro.common.rng import RngStreams, derive_seed
from repro.common.trace import TraceBuffer, TraceEvent


class TestGlobalThreadIds:
    def test_never_zero(self):
        assert make_global_thread_id(0, 0) == 1

    @given(node=st.integers(0, 31), thread=st.integers(0, 100))
    def test_round_trip(self, node, thread):
        gid = make_global_thread_id(node, thread)
        assert split_global_thread_id(gid) == (node, thread)

    @given(a=st.tuples(st.integers(0, 31), st.integers(0, 100)),
           b=st.tuples(st.integers(0, 31), st.integers(0, 100)))
    def test_injective(self, a, b):
        if a != b:
            assert make_global_thread_id(*a) != make_global_thread_id(*b)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            make_global_thread_id(-1, 0)

    def test_packing_bound_enforced(self):
        with pytest.raises(ValueError):
            make_global_thread_id(0, _THREADS_PER_NODE_MAX)

    def test_split_rejects_zero(self):
        with pytest.raises(ValueError):
            split_global_thread_id(0)


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(42, "workload", 0, 3) == derive_seed(42, "workload", 0, 3)

    def test_key_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_key_parts_not_concatenated(self):
        """("ab", "c") and ("a", "bc") must differ (separator byte)."""
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")

    def test_64_bit_range(self):
        s = derive_seed(7, "x")
        assert 0 <= s < 2**64

    def test_non_primitive_key_part_rejected(self):
        """repr() of arbitrary objects can embed memory addresses
        (`<object object at 0x7f...>`), which would silently break
        cross-process seed stability — reject them loudly instead."""
        class Opaque:
            pass

        for bad in (object(), Opaque(), [1, 2], {"a": 1}, {1, 2},
                    np.zeros(2)):
            with pytest.raises(ConfigError, match="non-primitive"):
                derive_seed(0, bad)

    def test_non_primitive_inside_tuple_rejected(self):
        with pytest.raises(ConfigError, match="non-primitive"):
            derive_seed(0, ("outer", (1, object())))

    def test_primitives_and_nested_tuples_accepted(self):
        s = derive_seed(3, "a", 1, 2.5, b"raw", True, None, ("x", (4, 5)))
        assert 0 <= s < 2**64

    def test_numpy_scalars_normalise_to_python(self):
        """numpy's scalar reprs changed between 1.x and 2.x; seeds must
        not depend on the numpy version, so np scalars hash like their
        Python equivalents."""
        assert derive_seed(0, np.int64(7)) == derive_seed(0, 7)
        assert derive_seed(0, np.float64(2.5)) == derive_seed(0, 2.5)

    def test_rejection_is_stable_not_address_dependent(self):
        """Two distinct instances fail identically — nothing about the
        object (like its address) leaks into behaviour."""
        with pytest.raises(ConfigError):
            derive_seed(1, object())
        with pytest.raises(ConfigError):
            derive_seed(1, object())


class TestRngStreams:
    def test_cached_per_key(self):
        streams = RngStreams(1)
        assert streams.get("a", 1) is streams.get("a", 1)
        assert streams.get("a", 1) is not streams.get("a", 2)

    def test_independent_streams(self):
        streams = RngStreams(1)
        a = streams.get("x").integers(0, 1 << 30, 20).tolist()
        b = streams.get("y").integers(0, 1 << 30, 20).tolist()
        assert a != b

    def test_reproducible_across_instances(self):
        a = RngStreams(9).get("w", 0).integers(0, 1 << 30, 10).tolist()
        b = RngStreams(9).get("w", 0).integers(0, 1 << 30, 10).tolist()
        assert a == b

    def test_fork_independence(self):
        parent = RngStreams(5)
        child = parent.fork("sub")
        a = parent.get("k").integers(0, 1 << 30, 10).tolist()
        b = child.get("k").integers(0, 1 << 30, 10).tolist()
        assert a != b


class TestTraceBuffer:
    def test_disabled_by_default(self):
        buf = TraceBuffer()
        buf.emit(1.0, "t", "kind")
        assert len(buf) == 0

    def test_emit_and_iterate(self):
        buf = TraceBuffer(enabled=True)
        buf.emit(1.0, "t0", "lock", "detail")
        buf.emit(2.0, "t1", "unlock")
        events = list(buf)
        assert [e.kind for e in events] == ["lock", "unlock"]

    def test_capacity_ring(self):
        buf = TraceBuffer(capacity=3, enabled=True)
        for i in range(5):
            buf.emit(float(i), "t", f"k{i}")
        assert [e.kind for e in buf] == ["k2", "k3", "k4"]

    def test_filtered_by_actor_and_kind(self):
        buf = TraceBuffer(enabled=True)
        buf.emit(1.0, "a", "mcs.swap")
        buf.emit(2.0, "b", "mcs.pass")
        buf.emit(3.0, "a", "peterson.enter")
        assert len(buf.filtered(actor="a")) == 2
        assert len(buf.filtered(kind="mcs")) == 2
        assert len(buf.filtered(actor="a", kind="mcs")) == 1

    def test_filtered_actor_prefix_match(self):
        buf = TraceBuffer(enabled=True)
        buf.emit(1.0, "t0@n0", "lock")
        buf.emit(2.0, "t0@n1", "lock")
        buf.emit(3.0, "t1@n0", "lock")
        # prefix semantics: all of node-thread t0's events, any node
        assert len(buf.filtered(actor="t0")) == 2
        assert len(buf.filtered(actor="t0@n1")) == 1
        assert len(buf.filtered(actor="t9")) == 0

    def test_capacity_enforced_by_deque(self):
        # the ring is a bounded deque, not a manually trimmed list
        buf = TraceBuffer(capacity=2, enabled=True)
        assert buf._events.maxlen == 2
        for i in range(4):
            buf.emit(float(i), "t", f"k{i}")
        assert [e.kind for e in buf] == ["k2", "k3"]
        assert len(buf) == 2

    def test_clear(self):
        buf = TraceBuffer(enabled=True)
        buf.emit(1.0, "t", "k")
        buf.clear()
        assert len(buf) == 0

    def test_event_is_frozen(self):
        ev = TraceEvent(1.0, "t", "k")
        with pytest.raises(AttributeError):
            ev.time = 2.0
