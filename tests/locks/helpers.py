"""Shared stress harness for lock correctness tests.

Runs a fixed schedule of (node, thread, lock index, repetitions) clients
against a lock table, with the guarded-counter critical section, then
checks the mutual-exclusion witnesses:

* guarded counters sum to the number of completed critical sections
  (no lost updates);
* the base-class holder oracle raised no ProtocolError;
* the Table-1 race auditor recorded zero violations.

The generic rig (cluster construction, client loop, lock pickers) lives
in :mod:`tests.conftest` so the integration and schedcheck suites share
it; this module keeps the lock-suite entry point and witness checks.
"""

from __future__ import annotations

from tests.conftest import (  # noqa: F401  (re-exported for lock tests)
    always_local,
    always_remote,
    make_cluster_and_table,
    mixed_locality,
    run_lock_clients,
    single_lock,
)


def stress(lock_kind: str, *, n_nodes: int, threads_per_node: int,
           n_locks: int, ops_per_thread: int, pick_lock,
           lock_options: dict | None = None, seed: int = 1234,
           audit: str = "record") -> dict:
    """Run the stress schedule; returns summary stats.

    Args:
        pick_lock: callable ``(node, thread, op_index, table) -> lock index``
            — deterministic lock choice per operation.
    """
    cluster, table = make_cluster_and_table(
        lock_kind, n_nodes=n_nodes, n_locks=n_locks,
        lock_options=lock_options, seed=seed, audit=audit)
    ops = run_lock_clients(cluster, table, threads_per_node=threads_per_node,
                           ops_per_thread=ops_per_thread, pick_lock=pick_lock)
    expected = n_nodes * threads_per_node * ops_per_thread
    assert ops == expected
    table.check_counters(expected)
    cluster.auditor.assert_clean()
    return {
        "cluster": cluster,
        "table": table,
        "ops": ops,
        "duration_ns": cluster.env.now,
    }
