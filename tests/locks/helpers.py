"""Shared stress harness for lock correctness tests.

Runs a fixed schedule of (node, thread, lock index, repetitions) clients
against a lock table, with the guarded-counter critical section, then
checks the mutual-exclusion witnesses:

* guarded counters sum to the number of completed critical sections
  (no lost updates);
* the base-class holder oracle raised no ProtocolError;
* the Table-1 race auditor recorded zero violations.
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.locktable import DistributedLockTable


def stress(lock_kind: str, *, n_nodes: int, threads_per_node: int,
           n_locks: int, ops_per_thread: int, pick_lock,
           lock_options: dict | None = None, seed: int = 1234,
           audit: str = "record") -> dict:
    """Run the stress schedule; returns summary stats.

    Args:
        pick_lock: callable ``(node, thread, op_index, table) -> lock index``
            — deterministic lock choice per operation.
    """
    cluster = Cluster(n_nodes, seed=seed, audit=audit)
    table = DistributedLockTable(cluster, n_locks, lock_kind,
                                 lock_options=lock_options)
    completed = {"ops": 0}

    def client(node: int, thread: int):
        ctx = cluster.thread_ctx(node, thread)
        for op in range(ops_per_thread):
            idx = pick_lock(node, thread, op, table)
            yield from table.acquire(ctx, idx)
            yield from table.guarded_increment(ctx, idx)
            yield from table.release(ctx, idx)
            completed["ops"] += 1

    procs = []
    for node in range(n_nodes):
        for thread in range(threads_per_node):
            procs.append(cluster.env.process(client(node, thread),
                                             name=f"client-n{node}t{thread}"))
    cluster.run()
    for p in procs:
        assert p.ok, f"client failed: {p.value!r}"
    expected = n_nodes * threads_per_node * ops_per_thread
    assert completed["ops"] == expected
    table.check_counters(expected)
    cluster.auditor.assert_clean()
    return {
        "cluster": cluster,
        "table": table,
        "ops": completed["ops"],
        "duration_ns": cluster.env.now,
    }


def always_local(node, thread, op, table):
    """Pick a lock homed on the caller's node (round-robins its partition)."""
    indices = table.local_indices(node)
    return indices[op % len(indices)]


def always_remote(node, thread, op, table):
    """Pick a lock homed on some other node."""
    indices = table.remote_indices(node)
    return indices[(op + thread) % len(indices)]


def single_lock(node, thread, op, table):
    """Everyone hammers lock 0 — maximum logical contention."""
    return 0


def mixed_locality(node, thread, op, table):
    """Alternate local and remote targets deterministically."""
    if op % 2 == 0:
        return always_local(node, thread, op, table)
    return always_remote(node, thread, op, table)
