"""Experiment `fig3`: the 64-byte ALock record layout (paper Fig. 3).

Structural reproduction: 8B remote-tail and local-tail pointers plus the
victim word, padded to a 64B cache line, and the atomicity discipline
(which API family touches which word) enforced by construction.
"""

from repro.cluster import Cluster
from repro.locks.layout import (
    ALOCK_LAYOUT,
    COHORT_LOCAL,
    COHORT_REMOTE,
    DESCRIPTOR_LAYOUT,
    MCS_DESCRIPTOR_LAYOUT,
    MCS_LAYOUT,
    SPINLOCK_LAYOUT,
)
from repro.memory.pointer import ptr_addr


class TestFig3ALockLayout:
    def test_size_is_one_cache_line(self):
        assert ALOCK_LAYOUT.size == 64
        assert not ALOCK_LAYOUT.spans_cache_lines()

    def test_field_order_matches_figure(self):
        assert ALOCK_LAYOUT.offset_of("tail_r") == 0
        assert ALOCK_LAYOUT.offset_of("tail_l") == 8
        assert ALOCK_LAYOUT.offset_of("victim") == 16

    def test_pointers_are_eight_bytes(self):
        """rdma_ptr stays 8B 'to be friendly to RDMA atomic operations':
        a packed pointer must round-trip through a 64-bit word."""
        cluster = Cluster(2)
        ptr = cluster.alloc_on(1, 64)
        assert 0 <= ptr < (1 << 64)

    def test_cohort_constants_distinct(self):
        assert COHORT_LOCAL != COHORT_REMOTE


class TestAllRecordsPadded:
    def test_every_lock_record_is_cache_line_padded(self):
        for layout in (ALOCK_LAYOUT, DESCRIPTOR_LAYOUT, SPINLOCK_LAYOUT,
                       MCS_LAYOUT, MCS_DESCRIPTOR_LAYOUT):
            assert layout.size % 64 == 0, layout.name

    def test_descriptor_budget_signed(self):
        assert DESCRIPTOR_LAYOUT.field_named("budget").signed

    def test_no_two_locks_share_a_cache_line(self):
        """Allocation discipline: consecutive lock records land on
        distinct cache lines."""
        cluster = Cluster(1)
        a = cluster.alloc_on(0, ALOCK_LAYOUT.size)
        b = cluster.alloc_on(0, ALOCK_LAYOUT.size)
        assert ptr_addr(a) // 64 != ptr_addr(b) // 64
