"""Tests for the lock base class and registry."""

import pytest

from repro.cluster import Cluster
from repro.common.errors import ConfigError, ProtocolError
from repro.locks import LOCK_TYPES, make_lock, register_lock_type
from repro.locks.base import DistributedLock


@pytest.fixture()
def cluster():
    return Cluster(2, seed=0)


class TestRegistry:
    def test_builtin_types_registered(self):
        assert {"alock", "spinlock", "mcs"} <= set(LOCK_TYPES)

    def test_make_lock_unknown_kind(self, cluster):
        with pytest.raises(ConfigError):
            make_lock("nope", cluster, 0)

    def test_make_lock_builds_each_kind(self, cluster):
        for kind in ("alock", "spinlock", "mcs"):
            lock = make_lock(kind, cluster, 1)
            assert lock.home_node == 1
            assert lock.kind == kind

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError):
            register_lock_type("alock", lambda *a, **k: None)

    def test_options_forwarded(self, cluster):
        lock = make_lock("alock", cluster, 0, local_budget=3, remote_budget=7)
        assert lock.local_budget == 3
        assert lock.remote_budget == 7


class TestHolderOracle:
    def test_home_node_validated(self, cluster):
        with pytest.raises(ConfigError):
            make_lock("spinlock", cluster, 5)

    def test_double_acquire_detected(self, cluster):
        lock = make_lock("spinlock", cluster, 0)
        a = cluster.thread_ctx(0, 0)
        b = cluster.thread_ctx(0, 1)
        lock._note_acquired(a)
        with pytest.raises(ProtocolError):
            lock._note_acquired(b)

    def test_release_by_non_holder_detected(self, cluster):
        lock = make_lock("spinlock", cluster, 0)
        a = cluster.thread_ctx(0, 0)
        b = cluster.thread_ctx(0, 1)
        lock._note_acquired(a)
        with pytest.raises(ProtocolError):
            lock._note_released(b)

    def test_acquisition_counter(self, cluster):
        lock = make_lock("spinlock", cluster, 0)
        a = cluster.thread_ctx(0, 0)
        lock._note_acquired(a)
        lock._note_released(a)
        lock._note_acquired(a)
        assert lock.acquisitions == 2

    def test_abstract_base_not_instantiable(self, cluster):
        with pytest.raises(TypeError):
            DistributedLock(cluster, 0)
