"""Tests for the related-work lock alternatives (§1 / §7)."""

import pytest

from repro.cluster import Cluster
from repro.common.errors import ConfigError, ProtocolError
from repro.locks import (
    BakeryLock,
    FilterLock,
    MixedAtomicLock,
    RpcLock,
)
from repro.locks.extensions.coherent import cxl_config
from repro.locks.extensions.rpc_lock import RpcLockService

from tests.locks.helpers import mixed_locality, single_lock, stress


@pytest.fixture()
def cluster():
    return Cluster(3, seed=17)


def drive(cluster, *gens):
    procs = [cluster.env.process(g) for g in gens]
    cluster.run()
    for p in procs:
        assert p.ok, p.value
    return procs


def contend(cluster, lock, nodes, cs_ns=2_000):
    """Run one client per node, recording CS intervals."""
    intervals = []

    def client(node):
        ctx = cluster.thread_ctx(node, 0)
        yield from lock.lock(ctx)
        start = cluster.env.now
        yield cluster.env.timeout(cs_ns)
        intervals.append((start, cluster.env.now, node))
        yield from lock.unlock(ctx)

    drive(cluster, *(client(n) for n in nodes))
    intervals.sort()
    for (s1, e1, _), (s2, e2, _) in zip(intervals, intervals[1:]):
        assert s2 >= e1, f"critical sections overlap: {intervals}"
    return intervals


class TestFilterLock:
    def test_validation(self, cluster):
        with pytest.raises(ConfigError):
            FilterLock(cluster, 0, max_slots=1)

    def test_single_thread_acquire_release(self, cluster):
        lock = FilterLock(cluster, 1, max_slots=4)
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from lock.lock(ctx)
            yield from lock.unlock(ctx)

        drive(cluster, proc())
        assert lock.acquisitions == 1

    def test_mutual_exclusion_three_threads(self, cluster):
        lock = FilterLock(cluster, 0, max_slots=4)
        contend(cluster, lock, nodes=(0, 1, 2))

    def test_lone_thread_pays_for_absent_contenders(self, cluster):
        """The paper's complaint: remote ops proportional to n even when
        running alone — provisioning more slots costs more verbs."""
        def verbs_for(slots):
            c = Cluster(2, seed=1)
            lock = FilterLock(c, 1, max_slots=slots)
            ctx = c.thread_ctx(0, 0)

            def proc():
                yield from lock.lock(ctx)
                yield from lock.unlock(ctx)

            p = c.env.process(proc())
            c.run()
            assert p.ok, p.value
            return ctx.remote_op_count

        assert verbs_for(8) > 2 * verbs_for(3)
        # even the small config is far above ALock's 4 uncontended verbs
        assert verbs_for(3) > 4

    def test_slot_exhaustion(self, cluster):
        lock = FilterLock(cluster, 0, max_slots=2)

        def toucher(node, tid):
            ctx = cluster.thread_ctx(node, tid)
            yield from lock.lock(ctx)
            yield from lock.unlock(ctx)

        drive(cluster, toucher(0, 0), toucher(0, 1))
        p = cluster.env.process(toucher(1, 0))
        cluster.run()
        assert not p.ok
        assert isinstance(p.value, ConfigError)

    def test_unlock_without_holding(self, cluster):
        lock = FilterLock(cluster, 0)
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from lock.unlock(ctx)

        p = cluster.env.process(proc())
        cluster.run()
        assert not p.ok

    def test_stress_table(self):
        stress("filter", n_nodes=2, threads_per_node=2, n_locks=2,
               ops_per_thread=4, pick_lock=single_lock,
               lock_options={"max_slots": 4})


class TestBakeryLock:
    def test_validation(self, cluster):
        with pytest.raises(ConfigError):
            BakeryLock(cluster, 0, max_slots=1)

    def test_mutual_exclusion_three_threads(self, cluster):
        lock = BakeryLock(cluster, 0, max_slots=4)
        contend(cluster, lock, nodes=(0, 1, 2))

    def test_fifo_by_ticket_order(self, cluster):
        """The bakery's FCFS property: arrival order == entry order."""
        lock = BakeryLock(cluster, 2, max_slots=4)
        order = []

        def client(node, delay):
            ctx = cluster.thread_ctx(node, 0)
            yield cluster.env.timeout(delay)
            yield from lock.lock(ctx)
            order.append(node)
            yield cluster.env.timeout(30_000)
            yield from lock.unlock(ctx)

        drive(cluster, client(0, 0), client(1, 40_000), client(2, 80_000))
        assert order == [0, 1, 2]

    def test_ticket_counter(self, cluster):
        lock = BakeryLock(cluster, 0, max_slots=4)
        ctx = cluster.thread_ctx(1, 0)

        def proc():
            for _ in range(3):
                yield from lock.lock(ctx)
                yield from lock.unlock(ctx)

        drive(cluster, proc())
        assert lock.tickets_issued == 3

    def test_stress_table(self):
        stress("bakery", n_nodes=2, threads_per_node=2, n_locks=2,
               ops_per_thread=4, pick_lock=single_lock,
               lock_options={"max_slots": 4})


class TestRpcLock:
    def test_acquire_release(self, cluster):
        lock = RpcLock(cluster, 1)
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from lock.lock(ctx)
            assert lock.holder_gid == ctx.gid
            yield from lock.unlock(ctx)

        drive(cluster, proc())
        assert lock.holder_gid == 0

    def test_service_shared_across_locks(self, cluster):
        a = RpcLock(cluster, 0)
        b = RpcLock(cluster, 1)
        assert a.service is b.service
        assert a.lock_id != b.lock_id

    def test_fifo_grants_under_contention(self, cluster):
        lock = RpcLock(cluster, 2)
        order = []

        def client(node, delay):
            ctx = cluster.thread_ctx(node, 0)
            yield cluster.env.timeout(delay)
            yield from lock.lock(ctx)
            order.append(node)
            yield cluster.env.timeout(20_000)
            yield from lock.unlock(ctx)

        drive(cluster, client(0, 0), client(1, 5_000), client(2, 10_000))
        assert order == [0, 1, 2]
        assert lock.service.deferred_grants == 2

    def test_mutual_exclusion(self, cluster):
        lock = RpcLock(cluster, 0)
        contend(cluster, lock, nodes=(0, 1, 2))

    def test_local_client_skips_nic(self, cluster):
        lock = RpcLock(cluster, 1)
        ctx = cluster.thread_ctx(1, 0)  # co-located with the server

        def proc():
            yield from lock.lock(ctx)
            yield from lock.unlock(ctx)

        drive(cluster, proc())
        assert lock.service.transport.local_ipc_messages == 4  # 2 calls x 2 hops
        assert cluster.network.loopback_verbs == 0

    def test_no_table1_exposure(self, cluster):
        """RPC synchronization never touches shared memory directly, so
        the auditor has nothing to flag by construction."""
        lock = RpcLock(cluster, 0)
        contend(cluster, lock, nodes=(0, 1, 2))
        cluster.auditor.assert_clean()

    def test_stress_table(self):
        stress("rpc", n_nodes=3, threads_per_node=2, n_locks=3,
               ops_per_thread=6, pick_lock=mixed_locality)


class TestMixedAtomicLock:
    def test_correct_on_coherent_fabric(self):
        """Under the CXL config the remote RMW window is zero: the naive
        lock is sound and the auditor stays clean."""
        cluster = Cluster(2, seed=3, config=cxl_config(), audit="strict")
        lock = MixedAtomicLock(cluster, 1)

        def client(node):
            ctx = cluster.thread_ctx(node, 0)
            for _ in range(50):
                yield from lock.lock(ctx)
                yield cluster.env.timeout(40)
                yield from lock.unlock(ctx)
                yield cluster.env.timeout(200)

        procs = [cluster.env.process(client(n)) for n in (0, 1)]
        cluster.run()
        assert all(p.ok for p in procs)
        assert lock.overlap_oracle == 0
        cluster.auditor.assert_clean()

    def test_unsafe_on_rdma_fabric(self):
        """Under the default RDMA model the same lock races (auditor
        violations, and usually observable double-grants)."""
        cluster = Cluster(2, seed=7, audit="record")
        lock = MixedAtomicLock(cluster, 1)

        def client(node):
            ctx = cluster.thread_ctx(node, 0)
            # CS longer than the remote round trip so a double grant
            # (local CAS landing inside the rCAS window) is observable
            # as a temporal overlap, not just an auditor record.
            for _ in range(600):
                yield from lock.lock(ctx)
                yield cluster.env.timeout(2_000)
                yield from lock.unlock(ctx)
                yield cluster.env.timeout(500)

        procs = [cluster.env.process(client(n)) for n in (0, 1)]
        cluster.run()
        assert all(p.ok for p in procs)
        assert cluster.auditor.violation_count > 0
        assert lock.overlap_oracle > 0

    def test_cxl_local_op_still_fast(self):
        """On CXL, the naive lock's local path is a single CAS — in the
        same cost class as ALock's local fast path."""
        cluster = Cluster(2, config=cxl_config(), audit="off")
        lock = MixedAtomicLock(cluster, 0)
        ctx = cluster.thread_ctx(0, 0)
        env = cluster.env

        def proc():
            start = env.now
            yield from lock.lock(ctx)
            yield from lock.unlock(ctx)
            return env.now - start

        p = env.process(proc())
        cluster.run()
        assert p.value < 1_000
