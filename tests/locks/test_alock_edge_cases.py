"""ALock edge cases: descriptor discipline, dual-cohort holding,
fine-grained Peterson interleavings, and trace output."""

import pytest

from repro.cluster import Cluster
from repro.common.errors import ProtocolError
from repro.locks import ALock
from repro.locks.layout import COHORT_LOCAL, COHORT_REMOTE
from repro.memory.pointer import ptr_addr


@pytest.fixture()
def cluster():
    return Cluster(3, seed=21)


def drive(cluster, *gens):
    procs = [cluster.env.process(g) for g in gens]
    cluster.run()
    for p in procs:
        assert p.ok, p.value
    return procs


class TestDescriptorDiscipline:
    def test_can_hold_one_local_and_one_remote_lock(self, cluster):
        """A thread owns two descriptors — one per cohort flavor — so it
        may simultaneously hold one lock it is local to and one it is
        remote to (Algorithm 1 allocates exactly this pair)."""
        local_lock = ALock(cluster, 0, name="local")
        remote_lock = ALock(cluster, 1, name="remote")
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from local_lock.lock(ctx)
            yield from remote_lock.lock(ctx)
            assert local_lock.holder_gid == ctx.gid
            assert remote_lock.holder_gid == ctx.gid
            yield from remote_lock.unlock(ctx)
            yield from local_lock.unlock(ctx)

        drive(cluster, proc())
        cluster.auditor.assert_clean()

    def test_two_local_locks_simultaneously_rejected(self, cluster):
        """Two locks of the *same* cohort flavor need the same descriptor
        — the pool must refuse instead of corrupting a queue."""
        a = ALock(cluster, 0, name="a")
        b = ALock(cluster, 0, name="b")
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from a.lock(ctx)
            yield from b.lock(ctx)

        p = cluster.env.process(proc())
        cluster.run()
        assert not p.ok
        assert isinstance(p.value, ProtocolError)

    def test_allow_nesting_permits_same_cohort_pair(self, cluster):
        """With the descriptor-pool extension, two locks of the same
        cohort flavor can be held at once (lock ordering is the
        caller's job)."""
        a = ALock(cluster, 0, name="a", allow_nesting=True)
        b = ALock(cluster, 0, name="b", allow_nesting=True)
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from a.lock(ctx)
            yield from b.lock(ctx)
            assert a.holder_gid == ctx.gid and b.holder_gid == ctx.gid
            yield from b.unlock(ctx)
            yield from a.unlock(ctx)

        drive(cluster, proc())
        cluster.auditor.assert_clean()

    def test_nesting_pool_reuses_descriptors(self, cluster):
        from repro.locks.alock.descriptors import descriptor_pools

        a = ALock(cluster, 0, name="a", allow_nesting=True)
        b = ALock(cluster, 0, name="b", allow_nesting=True)
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            for _ in range(5):
                yield from a.lock(ctx)
                yield from b.lock(ctx)
                yield from b.unlock(ctx)
                yield from a.unlock(ctx)

        drive(cluster, proc())
        local_pool, _ = descriptor_pools(ctx)
        assert local_pool.allocated == 2  # depth-2 nesting, reused 5x

    def test_two_remote_locks_simultaneously_rejected(self, cluster):
        a = ALock(cluster, 1, name="a")
        b = ALock(cluster, 2, name="b")
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from a.lock(ctx)
            yield from b.lock(ctx)

        p = cluster.env.process(proc())
        cluster.run()
        assert not p.ok
        assert isinstance(p.value, ProtocolError)

    def test_descriptor_released_after_unlock(self, cluster):
        from repro.locks.alock.descriptors import descriptor_pair

        lock = ALock(cluster, 0)
        ctx = cluster.thread_ctx(0, 0)
        local_desc, remote_desc = descriptor_pair(ctx)

        def proc():
            yield from lock.lock(ctx)
            assert local_desc.in_use
            yield from lock.unlock(ctx)
            assert not local_desc.in_use
            assert not remote_desc.in_use

        drive(cluster, proc())


class TestVictimSemantics:
    def test_local_leader_sets_victim_local(self, cluster):
        lock = ALock(cluster, 0)
        region = cluster.regions[0]
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from lock.lock(ctx)
            assert region.peek(ptr_addr(lock.victim_ptr)) == COHORT_LOCAL
            yield from lock.unlock(ctx)

        drive(cluster, proc())

    def test_remote_leader_sets_victim_remote(self, cluster):
        lock = ALock(cluster, 1)
        region = cluster.regions[1]
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from lock.lock(ctx)
            assert region.peek(ptr_addr(lock.victim_ptr)) == COHORT_REMOTE
            yield from lock.unlock(ctx)

        drive(cluster, proc())

    def test_victim_not_reset_on_unlock(self, cluster):
        """Peterson needs no victim reset on release — the tail going
        NULL is the release (flag semantics)."""
        lock = ALock(cluster, 0)
        region = cluster.regions[0]
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from lock.lock(ctx)
            yield from lock.unlock(ctx)

        drive(cluster, proc())
        assert region.peek(ptr_addr(lock.victim_ptr)) == COHORT_LOCAL
        assert not lock.is_locked()


class TestPetersonInterleavings:
    @pytest.mark.parametrize("stagger_ns", [0, 100, 500, 2_000, 5_000])
    def test_simultaneous_cross_cohort_arrivals(self, stagger_ns):
        """Sweep arrival offsets through the Peterson race window: for
        every interleaving exactly one thread wins first and both
        eventually complete."""
        cluster = Cluster(2, seed=5, audit="strict")
        lock = ALock(cluster, 1)
        spans = []

        def local_client():
            ctx = cluster.thread_ctx(1, 0)
            yield from lock.lock(ctx)
            start = cluster.env.now
            yield cluster.env.timeout(1_000)
            spans.append((start, cluster.env.now, "local"))
            yield from lock.unlock(ctx)

        def remote_client():
            ctx = cluster.thread_ctx(0, 0)
            yield cluster.env.timeout(stagger_ns)
            yield from lock.lock(ctx)
            start = cluster.env.now
            yield cluster.env.timeout(1_000)
            spans.append((start, cluster.env.now, "remote"))
            yield from lock.unlock(ctx)

        procs = [cluster.env.process(local_client()),
                 cluster.env.process(remote_client())]
        cluster.run()
        assert all(p.ok for p in procs), [p.value for p in procs]
        spans.sort()
        assert spans[1][0] >= spans[0][1], f"CS overlap: {spans}"
        cluster.auditor.assert_clean()

    def test_three_way_cross_cohort_storm(self):
        """Locals and remotes pounding one lock with tiny budgets: every
        acquisition returns, oracle and auditor stay clean."""
        cluster = Cluster(3, seed=9, audit="strict")
        lock = ALock(cluster, 0, local_budget=1, remote_budget=1)
        completed = []

        def client(node, tid, n_ops):
            ctx = cluster.thread_ctx(node, tid)
            for _ in range(n_ops):
                yield from lock.lock(ctx)
                yield from lock.unlock(ctx)
            completed.append((node, tid))

        procs = [cluster.env.process(client(0, 0, 20)),
                 cluster.env.process(client(0, 1, 20)),
                 cluster.env.process(client(1, 0, 10)),
                 cluster.env.process(client(2, 0, 10))]
        cluster.run()
        assert all(p.ok for p in procs)
        assert lock.acquisitions == 60
        assert lock.reacquires["local"] + lock.reacquires["remote"] > 0
        cluster.auditor.assert_clean()


class TestTraceOutput:
    def test_trace_records_protocol_events(self):
        cluster = Cluster(2, seed=1, trace=True)
        lock = ALock(cluster, 1)
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from lock.lock(ctx)
            yield from lock.unlock(ctx)

        p = cluster.env.process(proc())
        cluster.run()
        assert p.ok
        kinds = [ev.kind for ev in cluster.tracer]
        assert "mcs.swap" in kinds
        assert "peterson.enter" in kinds
        assert "cs.enter" in kinds
        assert "cs.exit" in kinds
        assert "mcs.release" in kinds

    def test_trace_disabled_records_nothing(self):
        cluster = Cluster(2, seed=1, trace=False)
        lock = ALock(cluster, 1)
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from lock.lock(ctx)
            yield from lock.unlock(ctx)

        cluster.env.process(proc())
        cluster.run()
        assert len(cluster.tracer) == 0
