"""Tests for the RDMA spinlock and RDMA MCS baselines."""

import pytest

from repro.cluster import Cluster
from repro.common.errors import ConfigError, ProtocolError
from repro.locks import RdmaMcsLock, RdmaSpinlock

from tests.locks.helpers import (
    always_local,
    always_remote,
    mixed_locality,
    single_lock,
    stress,
)


@pytest.fixture()
def cluster():
    return Cluster(3, seed=9)


def drive(cluster, *gens):
    procs = [cluster.env.process(g) for g in gens]
    cluster.run()
    for p in procs:
        assert p.ok, p.value
    return procs


class TestSpinlock:
    def test_acquire_release(self, cluster):
        lock = RdmaSpinlock(cluster, 1)
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from lock.lock(ctx)
            assert lock.holder_gid == ctx.gid
            yield from lock.unlock(ctx)

        drive(cluster, proc())
        assert lock.holder_gid == 0

    def test_local_access_goes_through_loopback(self, cluster):
        """The defining difference from ALock: the baseline uses RDMA for
        local memory too."""
        lock = RdmaSpinlock(cluster, 0)
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from lock.lock(ctx)
            yield from lock.unlock(ctx)

        drive(cluster, proc())
        assert cluster.network.loopback_verbs == 2  # rCAS + rWrite

    def test_contention_retries_counted(self, cluster):
        lock = RdmaSpinlock(cluster, 2)

        def client(node):
            ctx = cluster.thread_ctx(node, 0)
            yield from lock.lock(ctx)
            yield cluster.env.timeout(10_000)
            yield from lock.unlock(ctx)

        drive(cluster, client(0), client(1))
        # The waiter spun: more CAS attempts than acquisitions.
        assert lock.cas_attempts > 2

    def test_backoff_reduces_cas_attempts(self):
        def attempts(backoff):
            cluster = Cluster(2, seed=3)
            lock = RdmaSpinlock(cluster, 0, backoff_ns=backoff)

            def client(node, tid):
                ctx = cluster.thread_ctx(node, tid)
                for _ in range(5):
                    yield from lock.lock(ctx)
                    yield cluster.env.timeout(5_000)
                    yield from lock.unlock(ctx)

            procs = [cluster.env.process(client(n, t))
                     for n in range(2) for t in range(2)]
            cluster.run()
            assert all(p.ok for p in procs)
            return lock.cas_attempts

        assert attempts(backoff=2_000.0) < attempts(backoff=0.0)

    def test_backoff_validation(self, cluster):
        with pytest.raises(ConfigError):
            RdmaSpinlock(cluster, 0, backoff_ns=-1)

    def test_reentrant_rejected(self, cluster):
        lock = RdmaSpinlock(cluster, 0)
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from lock.lock(ctx)
            yield from lock.lock(ctx)

        p = cluster.env.process(proc())
        cluster.run()
        assert not p.ok
        assert isinstance(p.value, ProtocolError)

    def test_unlock_without_holding_rejected(self, cluster):
        lock = RdmaSpinlock(cluster, 0)
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from lock.unlock(ctx)

        p = cluster.env.process(proc())
        cluster.run()
        assert not p.ok

    def test_stress_mixed(self):
        stress("spinlock", n_nodes=3, threads_per_node=2, n_locks=6,
               ops_per_thread=8, pick_lock=mixed_locality)

    def test_stress_single_lock(self):
        stress("spinlock", n_nodes=2, threads_per_node=2, n_locks=2,
               ops_per_thread=6, pick_lock=single_lock)


class TestMcsLock:
    def test_acquire_release(self, cluster):
        lock = RdmaMcsLock(cluster, 1)
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from lock.lock(ctx)
            assert lock.holder_gid == ctx.gid
            yield from lock.unlock(ctx)

        drive(cluster, proc())
        assert lock.holder_gid == 0

    def test_local_access_goes_through_loopback(self, cluster):
        lock = RdmaMcsLock(cluster, 0)
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from lock.lock(ctx)
            yield from lock.unlock(ctx)

        drive(cluster, proc())
        # desc init (2 rWrites) + swap rCAS + unlock rCAS, all loopback.
        assert cluster.network.loopback_verbs == 4

    def test_fifo_handoff(self, cluster):
        """MCS is a FIFO queue: entry order == arrival order."""
        lock = RdmaMcsLock(cluster, 2)
        order = []

        def client(node, delay):
            ctx = cluster.thread_ctx(node, 0)
            yield cluster.env.timeout(delay)
            yield from lock.lock(ctx)
            order.append(node)
            yield cluster.env.timeout(20_000)
            yield from lock.unlock(ctx)

        drive(cluster, client(0, 0), client(1, 4_000), client(2, 8_000))
        assert order == [0, 1, 2]

    def test_passing_counted(self, cluster):
        lock = RdmaMcsLock(cluster, 2)

        def client(node):
            ctx = cluster.thread_ctx(node, 0)
            yield from lock.lock(ctx)
            yield cluster.env.timeout(10_000)
            yield from lock.unlock(ctx)

        drive(cluster, client(0), client(1))
        assert lock.passes == 1
        assert lock.spin_polls >= 1

    def test_poll_interval_validation(self, cluster):
        with pytest.raises(ConfigError):
            RdmaMcsLock(cluster, 0, poll_interval_ns=-5)

    def test_poll_interval_reduces_polls(self):
        def polls(interval):
            cluster = Cluster(2, seed=5)
            lock = RdmaMcsLock(cluster, 0, poll_interval_ns=interval)

            def client(node):
                ctx = cluster.thread_ctx(node, 0)
                yield from lock.lock(ctx)
                yield cluster.env.timeout(30_000)
                yield from lock.unlock(ctx)

            procs = [cluster.env.process(client(n)) for n in range(2)]
            cluster.run()
            assert all(p.ok for p in procs)
            return lock.spin_polls

        assert polls(10_000.0) < polls(0.0)

    def test_descriptor_reuse_guard(self, cluster):
        lock_a = RdmaMcsLock(cluster, 0)
        lock_b = RdmaMcsLock(cluster, 1)
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from lock_a.lock(ctx)
            yield from lock_b.lock(ctx)  # same descriptor, still in use

        p = cluster.env.process(proc())
        cluster.run()
        assert not p.ok
        assert isinstance(p.value, ProtocolError)

    def test_stress_mixed(self):
        stress("mcs", n_nodes=3, threads_per_node=2, n_locks=6,
               ops_per_thread=8, pick_lock=mixed_locality)

    def test_stress_local_only(self):
        stress("mcs", n_nodes=2, threads_per_node=3, n_locks=4,
               ops_per_thread=8, pick_lock=always_local)

    def test_stress_remote_only(self):
        stress("mcs", n_nodes=3, threads_per_node=2, n_locks=3,
               ops_per_thread=6, pick_lock=always_remote)
