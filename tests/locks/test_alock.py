"""ALock correctness tests: single-thread paths, cohort contention,
cross-cohort Peterson interaction, budget fairness, atomicity audit."""

import pytest

from repro.cluster import Cluster
from repro.common.errors import ConfigError, ProtocolError
from repro.locks import ALock
from repro.memory.pointer import ptr_addr

from tests.locks.helpers import (
    always_local,
    always_remote,
    mixed_locality,
    single_lock,
    stress,
)


@pytest.fixture()
def cluster():
    return Cluster(3, seed=42)


def drive(cluster, *gens):
    procs = [cluster.env.process(g) for g in gens]
    cluster.run()
    for p in procs:
        assert p.ok, p.value
    return procs


class TestConstruction:
    def test_budget_validation(self, cluster):
        with pytest.raises(ConfigError):
            ALock(cluster, 0, local_budget=0)
        with pytest.raises(ConfigError):
            ALock(cluster, 0, remote_budget=0)

    def test_record_is_cache_line_aligned(self, cluster):
        lock = ALock(cluster, 1)
        assert ptr_addr(lock.base_ptr) % 64 == 0

    def test_field_pointers(self, cluster):
        lock = ALock(cluster, 1)
        assert lock.tail_l_ptr == lock.base_ptr + 8
        assert lock.victim_ptr == lock.base_ptr + 16


class TestSingleThread:
    def test_local_acquire_release(self, cluster):
        lock = ALock(cluster, 0)
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from lock.lock(ctx)
            assert lock.holder_gid == ctx.gid
            assert lock.is_locked()
            yield from lock.unlock(ctx)

        drive(cluster, proc())
        assert lock.holder_gid == 0
        assert not lock.is_locked()
        assert lock.leader_acquires["local"] == 1
        cluster.auditor.assert_clean()

    def test_remote_acquire_release(self, cluster):
        lock = ALock(cluster, 1)
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from lock.lock(ctx)
            assert lock.is_locked()
            yield from lock.unlock(ctx)

        drive(cluster, proc())
        assert not lock.is_locked()
        assert lock.leader_acquires["remote"] == 1
        cluster.auditor.assert_clean()

    def test_local_lock_uses_zero_rdma_ops(self, cluster):
        """The headline property: a local acquisition issues no verbs at
        all — no loopback, no RPC."""
        lock = ALock(cluster, 0)
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from lock.lock(ctx)
            yield from lock.unlock(ctx)

        drive(cluster, proc())
        assert ctx.remote_op_count == 0
        assert cluster.network.loopback_verbs == 0

    def test_remote_uncontended_op_count(self, cluster):
        """Uncontended remote path: 1 rCAS (swap) + 1 rRead (Peterson
        check of tail_l) + 1 rWrite (victim) to lock, 1 rCAS to unlock."""
        lock = ALock(cluster, 1)
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from lock.lock(ctx)
            yield from lock.unlock(ctx)

        drive(cluster, proc())
        counts = cluster.network.verb_counts
        assert counts["rCAS"] == 2
        assert counts["rWrite"] == 1
        assert counts["rRead"] == 1

    def test_relock_after_unlock(self, cluster):
        lock = ALock(cluster, 0)
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            for _ in range(5):
                yield from lock.lock(ctx)
                yield from lock.unlock(ctx)

        drive(cluster, proc())
        assert lock.acquisitions == 5

    def test_reentrant_lock_rejected(self, cluster):
        lock = ALock(cluster, 0)
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from lock.lock(ctx)
            yield from lock.lock(ctx)

        p = cluster.env.process(proc())
        cluster.run()
        assert not p.ok
        assert isinstance(p.value, ProtocolError)

    def test_unlock_without_holding_rejected(self, cluster):
        lock = ALock(cluster, 0)
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from lock.unlock(ctx)

        p = cluster.env.process(proc())
        cluster.run()
        assert not p.ok
        assert isinstance(p.value, ProtocolError)


class TestLocalCohortContention:
    def test_two_local_threads_serialize(self, cluster):
        lock = ALock(cluster, 0)
        order = []

        def client(tid):
            ctx = cluster.thread_ctx(0, tid)
            yield from lock.lock(ctx)
            order.append(("enter", tid, cluster.env.now))
            yield cluster.env.timeout(500)
            order.append(("exit", tid, cluster.env.now))
            yield from lock.unlock(ctx)

        drive(cluster, client(0), client(1))
        # Critical sections must not overlap.
        events = sorted(order, key=lambda e: e[2])
        assert [e[0] for e in events] == ["enter", "exit", "enter", "exit"]
        cluster.auditor.assert_clean()

    def test_mcs_pass_used_within_budget(self, cluster):
        lock = ALock(cluster, 0, local_budget=10)

        def client(tid):
            ctx = cluster.thread_ctx(0, tid)
            for _ in range(3):
                yield from lock.lock(ctx)
                yield from lock.unlock(ctx)

        drive(cluster, *(client(t) for t in range(4)))
        assert lock.passes["local"] > 0
        cluster.auditor.assert_clean()


class TestRemoteCohortContention:
    def test_two_remote_threads_serialize(self, cluster):
        lock = ALock(cluster, 2)
        overlap = {"in_cs": 0, "max": 0}

        def client(node):
            ctx = cluster.thread_ctx(node, 0)
            yield from lock.lock(ctx)
            overlap["in_cs"] += 1
            overlap["max"] = max(overlap["max"], overlap["in_cs"])
            yield cluster.env.timeout(1000)
            overlap["in_cs"] -= 1
            yield from lock.unlock(ctx)

        drive(cluster, client(0), client(1))
        assert overlap["max"] == 1
        cluster.auditor.assert_clean()

    def test_remote_pass_spins_locally_not_remotely(self, cluster):
        """While waiting for an MCS pass, a remote-cohort thread issues
        no verbs (it parks on its own descriptor)."""
        lock = ALock(cluster, 2)
        waiter_ops = {}

        def holder():
            ctx = cluster.thread_ctx(0, 0)
            yield from lock.lock(ctx)
            yield cluster.env.timeout(50_000)
            yield from lock.unlock(ctx)

        def waiter():
            ctx = cluster.thread_ctx(1, 0)
            yield cluster.env.timeout(10_000)  # enqueue while holder in CS
            before = None
            yield from lock.lock(ctx)
            waiter_ops["verbs"] = ctx.remote_op_count
            yield from lock.unlock(ctx)

        drive(cluster, holder(), waiter())
        # swap CAS(es) + link rWrite only; no spinning traffic.
        assert waiter_ops["verbs"] <= 4
        cluster.auditor.assert_clean()


class TestCrossCohort:
    def test_fig2_local_vs_remote(self, cluster):
        """The paper's Fig. 2 scenario: a remote holder, then a local
        requester that must wait in Peterson until the remote tail
        clears."""
        lock = ALock(cluster, 1)
        times = {}

        def remote_t1():
            ctx = cluster.thread_ctx(0, 0)
            yield from lock.lock(ctx)
            times["r_enter"] = cluster.env.now
            yield cluster.env.timeout(20_000)
            yield from lock.unlock(ctx)
            times["r_exit"] = cluster.env.now

        def local_t2():
            ctx = cluster.thread_ctx(1, 0)
            yield cluster.env.timeout(5_000)  # arrive while t1 holds
            yield from lock.lock(ctx)
            times["l_enter"] = cluster.env.now
            yield from lock.unlock(ctx)

        drive(cluster, remote_t1(), local_t2())
        assert times["r_enter"] < times["l_enter"]
        # local waits for remote release (rCAS landing precedes the
        # holder's generator resuming, so compare against r_exit window)
        assert times["l_enter"] > times["r_enter"] + 20_000
        cluster.auditor.assert_clean()

    def test_remote_waits_for_local_release(self, cluster):
        lock = ALock(cluster, 1)
        times = {}

        def local_holder():
            ctx = cluster.thread_ctx(1, 0)
            yield from lock.lock(ctx)
            times["l_enter"] = cluster.env.now
            yield cluster.env.timeout(30_000)
            yield from lock.unlock(ctx)

        def remote_waiter():
            ctx = cluster.thread_ctx(2, 0)
            yield cluster.env.timeout(2_000)
            yield from lock.lock(ctx)
            times["r_enter"] = cluster.env.now
            yield from lock.unlock(ctx)

        drive(cluster, local_holder(), remote_waiter())
        assert times["r_enter"] > times["l_enter"] + 30_000
        cluster.auditor.assert_clean()


class TestBudgetFairness:
    def test_remote_not_starved_by_local_stream(self, cluster):
        """A continuous stream of local acquisitions must not starve a
        remote requester: the local budget forces a reacquire that
        yields via the victim word (starvation freedom, §5)."""
        lock = ALock(cluster, 0, local_budget=3)
        progress = {}

        def local_stream(tid):
            ctx = cluster.thread_ctx(0, tid)
            for _ in range(30):
                yield from lock.lock(ctx)
                yield from lock.unlock(ctx)

        def remote_once():
            ctx = cluster.thread_ctx(1, 0)
            yield cluster.env.timeout(1_000)
            yield from lock.lock(ctx)
            progress["remote_at"] = cluster.env.now
            progress["local_done"] = sum(
                1 for _ in ()) if False else lock.acquisitions
            yield from lock.unlock(ctx)

        drive(cluster, local_stream(0), local_stream(1), local_stream(2),
              remote_once())
        assert "remote_at" in progress
        # The remote got in before the locals finished all 90 ops.
        assert progress["local_done"] < 91
        assert lock.reacquires["local"] >= 1
        cluster.auditor.assert_clean()

    def test_local_not_starved_by_remote_stream(self, cluster):
        lock = ALock(cluster, 0, remote_budget=4)
        progress = {}

        def remote_stream(node):
            ctx = cluster.thread_ctx(node, 0)
            for _ in range(20):
                yield from lock.lock(ctx)
                yield from lock.unlock(ctx)

        def local_once():
            ctx = cluster.thread_ctx(0, 0)
            yield cluster.env.timeout(10_000)
            yield from lock.lock(ctx)
            progress["local_done"] = lock.acquisitions
            yield from lock.unlock(ctx)

        drive(cluster, remote_stream(1), remote_stream(2), local_once())
        assert progress["local_done"] < 41
        cluster.auditor.assert_clean()

    def test_budget_resets_after_reacquire(self, cluster):
        """After a cohort yields at budget 0, passing resumes — total
        passes far exceed one budget's worth."""
        lock = ALock(cluster, 0, local_budget=2)

        def client(tid):
            ctx = cluster.thread_ctx(0, tid)
            for _ in range(10):
                yield from lock.lock(ctx)
                yield from lock.unlock(ctx)

        drive(cluster, *(client(t) for t in range(3)))
        assert lock.acquisitions == 30
        assert lock.reacquires["local"] >= 2
        cluster.auditor.assert_clean()


class TestStress:
    def test_local_only_stress(self):
        stress("alock", n_nodes=2, threads_per_node=3, n_locks=4,
               ops_per_thread=15, pick_lock=always_local)

    def test_remote_only_stress(self):
        stress("alock", n_nodes=3, threads_per_node=2, n_locks=3,
               ops_per_thread=8, pick_lock=always_remote)

    def test_single_lock_max_contention(self):
        result = stress("alock", n_nodes=3, threads_per_node=2, n_locks=3,
                        ops_per_thread=10, pick_lock=single_lock)
        assert result["table"].entry(0).lock.acquisitions == 60

    def test_mixed_locality_stress(self):
        stress("alock", n_nodes=3, threads_per_node=2, n_locks=6,
               ops_per_thread=12, pick_lock=mixed_locality)

    def test_non_strict_rdma_ablation(self):
        stress("alock", n_nodes=2, threads_per_node=2, n_locks=2,
               ops_per_thread=10, pick_lock=mixed_locality,
               lock_options={"strict_remote_rdma": False})

    def test_small_budgets_stress(self):
        stress("alock", n_nodes=2, threads_per_node=3, n_locks=2,
               ops_per_thread=10, pick_lock=mixed_locality,
               lock_options={"local_budget": 1, "remote_budget": 1})

    def test_strict_audit_mode_stays_clean(self):
        stress("alock", n_nodes=2, threads_per_node=2, n_locks=2,
               ops_per_thread=8, pick_lock=mixed_locality, audit="strict")
