"""Regression tests: failed acquisitions must return ALock descriptors.

Under fault injection a remote acquisition can die mid-protocol with
:class:`VerbTimeout`.  Before the fix, ``ALock.lock`` never released the
pooled descriptor on that path, so under ``allow_nesting`` every failure
allocated a fresh descriptor (unbounded growth) and without nesting the
pair descriptor stayed marked in-use, turning the *next* attempt into a
spurious :class:`ProtocolError`.
"""

import pytest

from repro.cluster import Cluster
from repro.common.errors import VerbTimeout
from repro.faults import CrashWindow, FaultPlan
from repro.locks import ALock
from repro.locks.alock.descriptors import descriptor_pair, descriptor_pools

#: Every verb drops and the retry budget is tiny: each remote
#: acquisition fails fast with VerbTimeout.
DEAD_FABRIC = FaultPlan(verb_loss_rate=1.0, retry_timeout_ns=5_000.0,
                        retry_backoff=1.0, retry_limit=2)


class TestDescriptorLeakOnFailure:
    def test_nesting_pool_does_not_grow_across_failures(self):
        cluster = Cluster(2, seed=7, faults=DEAD_FABRIC, audit="off")
        lock = ALock(cluster, 1, allow_nesting=True)
        ctx = cluster.thread_ctx(0, 0)
        failures = 0

        def proc():
            nonlocal failures
            for _ in range(4):
                try:
                    yield from lock.lock(ctx)
                except VerbTimeout:
                    failures += 1

        p = cluster.env.process(proc())
        cluster.run()
        assert p.ok, p.value
        assert failures == 4
        _, remote_pool = descriptor_pools(ctx)
        # regression: the pool grew by one descriptor per failure
        assert remote_pool.allocated == 1

    def test_pair_descriptor_reusable_after_failure(self):
        """Without nesting, a failed attempt must not leave the pair
        descriptor in-use — the retry would die with ProtocolError
        instead of reaching the network again."""
        cluster = Cluster(2, seed=7, faults=DEAD_FABRIC, audit="off")
        lock = ALock(cluster, 1)
        ctx = cluster.thread_ctx(0, 0)
        outcomes = []

        def proc():
            for _ in range(3):
                try:
                    yield from lock.lock(ctx)
                    outcomes.append("acquired")
                except VerbTimeout:
                    outcomes.append("timeout")

        p = cluster.env.process(proc())
        cluster.run()
        assert p.ok, p.value
        assert outcomes == ["timeout"] * 3
        local_desc, remote_desc = descriptor_pair(ctx)
        assert not remote_desc.in_use
        assert not local_desc.in_use

    def test_acquisition_succeeds_after_crash_window_ends(self):
        """End-to-end recovery: attempts during a crash window fail with
        VerbTimeout, and once the node restarts the *same* descriptor
        carries a successful acquisition."""
        plan = FaultPlan(crash_windows=(CrashWindow(1, 0.0, 50_000.0),),
                         retry_timeout_ns=5_000.0, retry_backoff=1.0,
                         retry_limit=2)
        cluster = Cluster(2, seed=7, faults=plan, audit="off")
        lock = ALock(cluster, 1)
        ctx = cluster.thread_ctx(0, 0)
        env = cluster.env
        log = []

        def proc():
            with pytest.raises(VerbTimeout):
                yield from lock.lock(ctx)
            log.append("crashed")
            yield env.timeout(60_000.0 - env.now)   # node 1 restarts
            yield from lock.lock(ctx)
            log.append(("acquired", lock.holder_gid == ctx.gid))
            yield from lock.unlock(ctx)

        p = env.process(proc())
        cluster.run()
        assert p.ok, p.value
        assert log == ["crashed", ("acquired", True)]
        assert cluster.fault_injector.crash_drops > 0
