"""Property-based lock tests (hypothesis).

For every lock kind, arbitrary deterministic schedules of (thread, lock
index, op count) must preserve the three mutual-exclusion witnesses:
guarded-counter conservation, the holder oracle, and a clean Table-1
audit.  Schedules are small — the value is in the *variety* of
interleavings hypothesis finds, not volume.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import Cluster
from repro.locktable import DistributedLockTable

#: (node, thread, [lock indices]) per client; 2 nodes x up to 2 threads.
client_schedules = st.lists(
    st.tuples(st.integers(0, 1), st.integers(0, 1),
              st.lists(st.integers(0, 3), min_size=1, max_size=6)),
    min_size=1, max_size=4, unique_by=lambda c: (c[0], c[1]))

FAST_KINDS = ("alock", "spinlock", "mcs", "rpc")

_SETTINGS = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


def run_schedule(kind, schedule, lock_options=None, seed=0):
    cluster = Cluster(2, seed=seed, audit="record")
    table = DistributedLockTable(cluster, 4, kind, lock_options=lock_options)
    total_ops = sum(len(ops) for _, _, ops in schedule)

    def client(node, thread, ops):
        ctx = cluster.thread_ctx(node, thread)
        for idx in ops:
            yield from table.acquire(ctx, idx)
            yield from table.guarded_increment(ctx, idx)
            yield from table.release(ctx, idx)

    procs = [cluster.env.process(client(*c)) for c in schedule]
    cluster.run()
    for p in procs:
        assert p.ok, p.value
    table.check_counters(total_ops)
    cluster.auditor.assert_clean()
    return table


class TestScheduleProperties:
    @given(schedule=client_schedules)
    @_SETTINGS
    def test_alock_preserves_counters(self, schedule):
        run_schedule("alock", schedule)

    @given(schedule=client_schedules)
    @_SETTINGS
    def test_alock_tiny_budgets(self, schedule):
        run_schedule("alock", schedule,
                     lock_options={"local_budget": 1, "remote_budget": 1})

    @given(schedule=client_schedules)
    @_SETTINGS
    def test_spinlock_preserves_counters(self, schedule):
        run_schedule("spinlock", schedule)

    @given(schedule=client_schedules)
    @_SETTINGS
    def test_mcs_preserves_counters(self, schedule):
        run_schedule("mcs", schedule)

    @given(schedule=client_schedules)
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_rpc_preserves_counters(self, schedule):
        run_schedule("rpc", schedule)

    @given(schedule=client_schedules, seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_alock_any_seed(self, schedule, seed):
        run_schedule("alock", schedule, seed=seed)


class TestAcquisitionConservation:
    @given(schedule=client_schedules)
    @_SETTINGS
    def test_acquisitions_equal_operations(self, schedule):
        table = run_schedule("alock", schedule)
        total_ops = sum(len(ops) for _, _, ops in schedule)
        assert table.total_acquisitions() == total_ops

    @given(schedule=client_schedules)
    @_SETTINGS
    def test_all_locks_free_at_end(self, schedule):
        table = run_schedule("alock", schedule)
        for entry in table.entries:
            assert entry.lock.holder_gid == 0
            assert not entry.lock.is_locked()
