"""Executable checks of the docs/tutorial.md flows.

The tutorial promises that a user-defined lock registered via
``register_lock_type`` becomes a first-class citizen of the lock table,
workload runner, and witnesses.  This test implements the tutorial's
TAS lock verbatim (modulo a unique registry name) and holds the library
to that promise.
"""

import pytest

from repro.cluster import Cluster
from repro.locks.base import LOCK_TYPES, DistributedLock, register_lock_type
from repro.locks.layout import SPINLOCK_LAYOUT
from repro.workload import FairnessReport, WorkloadSpec, run_workload


class TutorialTasLock(DistributedLock):
    """The tutorial's minimal test-and-set lock."""

    kind = "tutorial-tas"

    def __init__(self, cluster, home_node, name=""):
        super().__init__(cluster, home_node, name)
        self.word = cluster.alloc_on(home_node, SPINLOCK_LAYOUT.size)

    def lock(self, ctx):
        while (yield from ctx.r_cas(self.word, 0, ctx.gid)) != 0:
            pass
        self._note_acquired(ctx)

    def unlock(self, ctx):
        self._note_released(ctx)
        yield from ctx.r_write(self.word, 0)


def _ensure_registered():
    if "tutorial-tas" not in LOCK_TYPES:
        register_lock_type(
            "tutorial-tas",
            lambda cluster, home_node, **kw: TutorialTasLock(cluster, home_node, **kw))


class TestTutorialCustomLock:
    def test_direct_use(self):
        cluster = Cluster(2, audit="strict")
        lock = TutorialTasLock(cluster, 1)
        ctx = cluster.thread_ctx(0, 0)

        def proc():
            yield from lock.lock(ctx)
            yield from lock.unlock(ctx)

        p = cluster.env.process(proc())
        cluster.run()
        assert p.ok, p.value
        assert lock.acquisitions == 1
        cluster.auditor.assert_clean()

    def test_first_class_in_workload_runner(self):
        _ensure_registered()
        result = run_workload(WorkloadSpec(
            n_nodes=2, threads_per_node=2, n_locks=6, locality_pct=90.0,
            lock_kind="tutorial-tas", ops_per_thread=8, cs_counter=True,
            audit="record"))
        assert result.completed_ops == 32
        assert result.atomicity_violations == 0
        report = FairnessReport.from_per_thread_ops(result.per_thread_ops)
        assert report.jain == pytest.approx(1.0)

    def test_tutorial_spinner_flow(self):
        """The watcher example from §2 of the tutorial."""
        cluster = Cluster(n_nodes=2)
        ptr = cluster.alloc_on(0, 64)
        ctx0 = cluster.thread_ctx(0, 0)
        ctx1 = cluster.thread_ctx(1, 0)
        got = {}

        def spinner():
            got["value"] = yield from ctx0.wait_local(ptr, lambda v: v == 7)
            got["time"] = cluster.env.now

        def writer():
            yield cluster.env.timeout(1_000)
            yield from ctx1.r_write(ptr, 7)

        cluster.env.process(spinner())
        cluster.env.process(writer())
        cluster.run()
        assert got["value"] == 7
        assert got["time"] > 1_000
