"""Unit tests for Resource, Store and WaitQueue."""

import pytest

from repro.common.errors import SimulationError
from repro.sim import Environment, Resource, Store
from repro.sim.resources import WaitQueue


@pytest.fixture()
def env():
    return Environment()


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_immediate_grant_below_capacity(self, env):
        res = Resource(env, capacity=2)
        granted = []

        def proc(i):
            yield res.request()
            granted.append((i, env.now))

        env.process(proc(0))
        env.process(proc(1))
        env.run()
        assert [g[1] for g in granted] == [0, 0]
        assert res.in_use == 2

    def test_fifo_queueing(self, env):
        res = Resource(env, capacity=1)
        order = []

        def proc(i, hold):
            yield res.request()
            order.append((i, env.now))
            yield env.timeout(hold)
            res.release()

        for i in range(3):
            env.process(proc(i, 10))
        env.run()
        assert order == [(0, 0), (1, 10), (2, 20)]

    def test_release_idle_raises(self, env):
        res = Resource(env)
        with pytest.raises(SimulationError):
            res.release()

    def test_serve_helper(self, env):
        res = Resource(env, capacity=1)
        finish = []

        def proc(i):
            yield from res.serve(100)
            finish.append((i, env.now))

        env.process(proc(0))
        env.process(proc(1))
        env.run()
        assert finish == [(0, 100), (1, 200)]
        assert res.in_use == 0

    def test_utilization_full_server(self, env):
        res = Resource(env, capacity=1)

        def proc():
            yield from res.serve(100)

        env.process(proc())
        env.run()
        assert res.utilization() == pytest.approx(1.0)

    def test_utilization_half_busy(self, env):
        res = Resource(env, capacity=2)

        def proc():
            yield from res.serve(100)

        env.process(proc())
        env.run()
        assert res.utilization() == pytest.approx(0.5)

    def test_peak_queue_tracks_backlog(self, env):
        res = Resource(env, capacity=1)

        def proc():
            yield from res.serve(10)

        for _ in range(5):
            env.process(proc())
        env.run()
        assert res.peak_queue == 4
        assert res.total_served == 5

    def test_queue_length_live(self, env):
        res = Resource(env, capacity=1)
        observed = {}

        def holder():
            yield res.request()
            yield env.timeout(50)
            res.release()

        def waiter():
            yield res.request()
            res.release()

        def observer():
            yield env.timeout(10)
            observed["qlen"] = res.queue_length

        env.process(holder())
        env.process(waiter())
        env.process(observer())
        env.run()
        assert observed["qlen"] == 1


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        store.put("a")
        got = {}

        def proc():
            got["v"] = yield store.get()

        env.process(proc())
        env.run()
        assert got["v"] == "a"

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        got = {}

        def consumer():
            got["v"] = yield store.get()
            got["t"] = env.now

        def producer():
            yield env.timeout(30)
            store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == {"v": "late", "t": 30}

    def test_fifo_ordering(self, env):
        store = Store(env)
        got = []

        def consumer():
            for _ in range(3):
                v = yield store.get()
                got.append(v)

        env.process(consumer())
        for v in (1, 2, 3):
            store.put(v)
        env.run()
        assert got == [1, 2, 3]

    def test_len_and_waiting(self, env):
        store = Store(env)
        assert len(store) == 0
        store.put(1)
        assert len(store) == 1

        def consumer():
            yield store.get()
            yield store.get()  # blocks

        env.process(consumer())
        env.run()
        assert store.waiting_getters == 1


class TestWaitQueue:
    def test_wake_one(self, env):
        wq = WaitQueue(env)
        woken = []

        def sleeper(i):
            v = yield wq.wait()
            woken.append((i, v))

        for i in range(3):
            env.process(sleeper(i))
        env.run(until=0)
        assert len(wq) == 3
        assert wq.wake_one("go")
        env.run()
        assert woken == [(0, "go")]

    def test_wake_all(self, env):
        wq = WaitQueue(env)
        woken = []

        def sleeper(i):
            yield wq.wait()
            woken.append(i)

        for i in range(4):
            env.process(sleeper(i))
        env.run(until=0)
        assert wq.wake_all() == 4
        env.run()
        assert woken == [0, 1, 2, 3]

    def test_wake_one_empty_returns_false(self, env):
        assert not WaitQueue(env).wake_one()
