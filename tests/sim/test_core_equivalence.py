"""Randomized equivalence: calendar queue vs reference heapq, pure vs
compiled core.

Two layers:

* **Queue stream** — a ``CalendarQueue`` driven through adversarial
  push/pop interleavings must emit the exact ``(time, seq)`` batch
  stream of a reference ``heapq`` model (the pre-calendar scheduler's
  semantics: ascending ``(time, seq)``, same-time entries batched).
  Mixes cover dense same-tick bursts, tight clusters, uniform spreads,
  and far-future (ladder-spill) timestamps.

* **Environment trace** — the same randomized process workload (sleeps,
  bursts, succeed/fail wakeups, interrupts/cancellations) run on the
  pure and compiled ``Environment`` must produce byte-identical event
  traces.  Skipped when the compiled extension is not built.

The direct `_engine`/`_compiled` imports below are the *point* of this
suite — it pins one core against the other, bypassing the selector on
purpose (tests are outside simlint's engine-chokepoint scope).
"""

import heapq
import random

import pytest

from repro.sim import _engine

try:
    from repro.sim import _compiled
except ImportError:
    _compiled = None

needs_compiled = pytest.mark.skipif(
    _compiled is None, reason="compiled core not built")

CORES = [pytest.param(_engine, id="pure")]
if _compiled is not None:
    CORES.append(pytest.param(_compiled, id="compiled"))


# -- reference model -------------------------------------------------------
class HeapqReference:
    """The old scheduler's exact contract: a heap of (time, seq) with
    pop_batch returning every entry at the minimum time in seq order."""

    def __init__(self):
        self._heap = []

    def push(self, time, seq, payload):
        heapq.heappush(self._heap, (time, seq, payload))

    def __len__(self):
        return len(self._heap)

    def pop_batch(self):
        t = self._heap[0][0]
        batch = []
        while self._heap and self._heap[0][0] == t:
            batch.append(heapq.heappop(self._heap))
        return (t, batch)


def _time_mixes(rng):
    """Generators of inter-push times, one per adversarial shape."""
    return {
        "dense_ticks": lambda now: now + rng.choice([0.0, 0.0, 0.0, 1000.0]),
        "clustered": lambda now: now + abs(rng.gauss(50.0, 10.0)),
        "uniform": lambda now: now + rng.uniform(0.001, 1e6),
        "bimodal": lambda now: now + (rng.uniform(0.5, 2.0) if rng.random() < 0.9
                                      else rng.uniform(1e7, 1e9)),
        "far_future": lambda now: (now + rng.uniform(1.0, 100.0)
                                   if rng.random() < 0.7 else 1e308),
    }


class TestQueueStreamEquivalence:
    @pytest.mark.parametrize("core", CORES)
    @pytest.mark.parametrize("mix", list(_time_mixes(random.Random(0))))
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_pop_stream_matches_heapq(self, core, mix, seed):
        rng = random.Random(seed * 1000 + hash(mix) % 997)
        make_time = _time_mixes(rng)[mix]
        cal = core.CalendarQueue()
        ref = HeapqReference()
        env = core.Environment()  # events are just payloads here
        seq = 0
        now = 0.0
        for _round in range(60):
            for _ in range(rng.randrange(1, 25)):
                seq += 1
                t = make_time(now)
                if t <= now:
                    t = now  # same-tick burst
                ev = core.Event(env)
                cal.push(t, seq, ev)
                ref.push(t, seq, ev)
            pops = rng.randrange(1, 4)
            for _ in range(pops):
                if not len(ref):
                    break
                t_ref, batch_ref = ref.pop_batch()
                t_cal, batch_cal = cal.pop_batch()
                assert t_cal == t_ref
                assert [(e[0], e[1]) for e in batch_cal] \
                    == [(e[0], e[1]) for e in batch_ref]
                assert [e[2] for e in batch_cal] == [e[2] for e in batch_ref]
                now = t_ref
        # drain both to empty
        while len(ref):
            t_ref, batch_ref = ref.pop_batch()
            t_cal, batch_cal = cal.pop_batch()
            assert t_cal == t_ref
            assert [(e[0], e[1]) for e in batch_cal] \
                == [(e[0], e[1]) for e in batch_ref]
        assert len(cal) == 0

    @pytest.mark.parametrize("core", CORES)
    def test_empty_pop_raises(self, core):
        from repro.common.errors import SimulationError
        with pytest.raises(SimulationError, match="empty calendar"):
            core.CalendarQueue().pop_batch()


# -- environment-level trace equivalence -----------------------------------
def _run_random_workload(core, seed: int) -> list:
    """A randomized mix of sleeps, same-tick bursts, wakeup events,
    failures, and interrupts (cancellations); returns the full trace."""
    rng = random.Random(0xA10C ^ seed)
    env = core.Environment()
    trace = []
    gates = [core.Event(env) for _ in range(4)]

    def sleeper(pid, rounds):
        for i in range(rounds):
            delay = rng.choice([0.0, 1.0, 1.0, 7.5, 1000.0, 1e308])
            try:
                yield env.timeout(delay, value=(pid, i))
                trace.append(("tick", pid, i, env.now))
            except core.Interrupt as intr:
                trace.append(("intr", pid, i, env.now, str(intr.cause)))
                return

    def waiter(pid, gate):
        try:
            value = yield gate
            trace.append(("woke", pid, value, env.now))
        except RuntimeError as exc:
            trace.append(("failed", pid, str(exc), env.now))

    def driver():
        procs = [env.process(sleeper(pid, rng.randrange(2, 6)), name=f"s{pid}")
                 for pid in range(6)]
        for pid, gate in enumerate(gates):
            env.process(waiter(pid, gate), name=f"w{pid}")
        yield env.timeout(3.0)
        gates[0].succeed("early")
        gates[1].fail(RuntimeError("boom"))
        yield env.timeout(2.0)
        procs[0].interrupt("cancelled")
        procs[1].interrupt("cancelled")
        gates[2].succeed("mid")
        yield env.timeout(10.0)
        gates[3].succeed("late")
        trace.append(("driver-done", env.now))

    env.process(driver(), name="driver")
    env.run()
    trace.append(("final", env.now, env.event_count))
    return trace


@needs_compiled
class TestEnvironmentTraceEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_traces_identical(self, seed):
        assert _run_random_workload(_engine, seed) \
            == _run_random_workload(_compiled, seed)

    def test_condition_combinators_identical(self):
        def scenario(core):
            env = core.Environment()
            out = []

            def worker(i):
                yield env.timeout(i * 2.0)
                return i * 10

            def main():
                procs = [env.process(worker(i)) for i in range(4)]
                got = yield env.all_of(procs)
                out.append(("all", sorted(got.values()), env.now))
                fast = env.timeout(1.0, value="t")
                slow = env.timeout(9.0, value="s")
                first = yield env.any_of([fast, slow])
                out.append(("any", sorted(map(str, first.values())), env.now))

            env.process(main())
            env.run()
            return out

        assert scenario(_engine) == scenario(_compiled)
