"""Interrupt-safety of resource admission.

Regression suite for the slot-leak the fault layer exposed: a process
interrupted while waiting in ``Resource.request`` left its request event
in the queue (or, worse, kept a granted slot), so capacity drained away
with every verb timeout until the NIC pipeline wedged.
"""

import pytest

from repro.sim import Environment, Interrupt, Resource


@pytest.fixture()
def env():
    return Environment()


class TestCancel:
    def test_cancel_queued_request_removes_it(self, env):
        res = Resource(env, capacity=1)
        holder = res.request()          # granted immediately
        assert holder.triggered
        waiting = res.request()
        assert not waiting.triggered
        assert res.cancel(waiting) is False
        assert res.queue_length == 0
        # the slot was never ours, so nothing was released
        assert res.in_use == 1

    def test_cancel_granted_request_releases_slot(self, env):
        res = Resource(env, capacity=1)
        req = res.request()
        assert req.triggered
        assert res.cancel(req) is True
        assert res.in_use == 0

    def test_interrupted_waiter_does_not_leak_slot(self, env):
        """A waiter interrupted mid-request must leave capacity intact
        for everyone behind it."""
        res = Resource(env, capacity=1)
        order = []

        def holder():
            yield from res.acquire()
            yield env.timeout(100)
            res.release()

        def doomed():
            try:
                yield from res.acquire()
            except Interrupt:
                order.append(("interrupted", env.now))
                return
            res.release()  # pragma: no cover - must not get the slot

        def patient():
            yield from res.acquire()
            order.append(("granted", env.now))
            res.release()

        env.process(holder())
        victim = env.process(doomed())

        def assassin():
            yield env.timeout(50)
            victim.interrupt("stop waiting")

        env.process(assassin())
        env.process(patient())
        env.run()
        assert order == [("interrupted", 50), ("granted", 100)]
        assert res.in_use == 0
        assert res.queue_length == 0

    def test_interrupt_racing_same_timestep_grant(self, env):
        """The nasty case: release() hands the slot to the waiter and the
        interrupt lands in the same timestep, before the waiter resumes.
        The waiter's cleanup must give the already-granted slot back."""
        res = Resource(env, capacity=1)

        def holder():
            yield from res.acquire()
            yield env.timeout(50)
            res.release()               # grant hands off to victim at t=50

        def doomed():
            try:
                yield from res.acquire()
            except Interrupt:
                return
            res.release()  # pragma: no cover

        env.process(holder())
        victim = env.process(doomed())

        def assassin():
            yield env.timeout(50)       # same timestep as the handoff
            victim.interrupt("too late")

        env.process(assassin())
        env.run()
        assert res.in_use == 0
        assert res.queue_length == 0

    def test_serve_releases_only_when_granted(self, env):
        """serve() interrupted during its service phase releases the slot;
        interrupted during admission it must NOT release someone else's."""
        res = Resource(env, capacity=1)

        def served():
            try:
                yield from res.serve(100)
            except Interrupt:
                pass

        p = env.process(served())

        def interrupt_mid_service():
            yield env.timeout(40)       # inside the service timeout
            p.interrupt("abort")

        env.process(interrupt_mid_service())
        env.run()
        assert res.in_use == 0
        assert res.total_served == 1


class TestInterruptedVerbPipeline:
    def test_nic_pipeline_survives_interrupted_receives(self, env):
        """Drive many interrupted waits through one capacity-1 resource
        (the NIC RX model): capacity must never drift."""
        res = Resource(env, capacity=1)
        completed = []

        def worker(i):
            try:
                yield from res.serve(10)
            except Interrupt:
                return
            completed.append(i)

        procs = [env.process(worker(i)) for i in range(10)]

        def chaos():
            # kill every odd worker while it queues or serves
            for i in range(1, 10, 2):
                yield env.timeout(7)
                if procs[i].is_alive:
                    procs[i].interrupt("drop")

        env.process(chaos())
        env.run()
        assert res.in_use == 0
        assert res.queue_length == 0
        # the survivors all got through
        assert completed and all(i % 2 == 0 for i in completed)
