"""Unit tests for the calendar queue's mechanics (pure core).

The equivalence suite (``test_core_equivalence.py``) proves the *what*
— identical ``(time, seq, event)`` streams vs a reference heapq on both
cores.  This file pins the *how* of the pure implementation: bucket-
shell reuse, lazy order-heap cleanup, far-future ladder spill, width
auto-tuning (window retune + emergency shrink), and in-place rebuilds
that preserve container identity for the drain loop's aliases.
"""

import math

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.sim._engine import _FAR_TIME, CalendarQueue, Environment, Event


def _ev(env):
    return Event(env)


@pytest.fixture
def env():
    return Environment()


class TestBasics:
    def test_nonpositive_width_rejected(self):
        with pytest.raises(ConfigError, match="must be positive"):
            CalendarQueue(width=0.0)
        with pytest.raises(ConfigError, match="must be positive"):
            CalendarQueue(width=-5.0)
        with pytest.raises(ConfigError, match="must be positive"):
            CalendarQueue(width=float("nan"))

    def test_len_and_min_time_track_contents(self, env):
        cal = CalendarQueue(width=10.0)
        assert len(cal) == 0
        assert cal.min_time() == math.inf
        cal.push(25.0, 1, _ev(env))
        cal.push(5.0, 2, _ev(env))
        assert len(cal) == 2
        assert cal.min_time() == 5.0
        t, batch = cal.pop_batch()
        assert (t, len(batch)) == (5.0, 1)
        assert cal.min_time() == 25.0
        assert len(cal) == 1

    def test_same_tick_batch_in_seq_order(self, env):
        cal = CalendarQueue(width=10.0)
        events = [_ev(env) for _ in range(5)]
        # push out of seq order at one tick; batch must come back sorted
        for seq in (3, 1, 5, 2, 4):
            cal.push(7.0, seq, events[seq - 1])
        t, batch = cal.pop_batch()
        assert t == 7.0
        assert [e[1] for e in batch] == [1, 2, 3, 4, 5]
        assert [e[2] for e in batch] == events

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError, match="empty calendar"):
            CalendarQueue().pop_batch()


class TestBucketShells:
    def test_drained_bucket_left_as_shell_and_rearmed(self, env):
        cal = CalendarQueue(width=10.0)
        cal.push(5.0, 1, _ev(env))
        cal.pop_batch()
        # the drained bucket stays behind: same dict key, still on the
        # order heap, so a re-push into its range is a plain append
        assert 0 in cal._buckets and cal._buckets[0] == []
        assert cal._order == [0]
        cal.push(8.0, 2, _ev(env))
        assert len(cal._buckets[0]) == 1
        assert cal.pop_batch()[0] == 8.0

    def test_stale_shell_discarded_at_heap_top(self, env):
        cal = CalendarQueue(width=10.0)
        cal.push(5.0, 1, _ev(env))
        cal.push(25.0, 2, _ev(env))
        cal.pop_batch()  # drains bucket 0, leaves its shell
        assert 0 in cal._buckets
        # next pop resurfaces the empty shell at the heap top and must
        # drop it (dict + heap) before serving bucket 2
        t, _batch = cal.pop_batch()
        assert t == 25.0
        assert 0 not in cal._buckets
        assert 0 not in cal._order

    def test_min_time_also_prunes_shells(self, env):
        cal = CalendarQueue(width=10.0)
        cal.push(5.0, 1, _ev(env))
        cal.push(25.0, 2, _ev(env))
        cal.pop_batch()
        assert cal.min_time() == 25.0
        assert 0 not in cal._buckets


class TestFarLadder:
    def test_far_entries_skip_buckets(self, env):
        cal = CalendarQueue(width=10.0)
        cal.push(_FAR_TIME, 1, _ev(env))
        cal.push(float("inf"), 2, _ev(env))
        assert len(cal) == 2
        assert cal._buckets == {}  # nothing bucketed
        assert len(cal._far) == 2

    def test_far_pops_after_all_buckets(self, env):
        cal = CalendarQueue(width=10.0)
        far_ev = _ev(env)
        cal.push(1e308, 1, far_ev)
        cal.push(3.0, 2, _ev(env))
        assert cal.min_time() == 3.0
        assert cal.pop_batch()[0] == 3.0
        t, batch = cal.pop_batch()
        assert t == 1e308
        assert batch == [(1e308, 1, far_ev)]
        assert len(cal) == 0

    def test_far_same_time_batch_sorted_by_seq(self, env):
        cal = CalendarQueue(width=10.0)
        for seq in (9, 3, 6):
            cal.push(1e308, seq, _ev(env))
        cal.push(float("inf"), 1, _ev(env))
        t, batch = cal.pop_batch()
        assert t == 1e308
        assert [e[1] for e in batch] == [3, 6, 9]
        # the non-matching far entry survives for the next pop
        assert cal.pop_batch()[0] == math.inf


class TestWidthTuning:
    def test_window_retune_widens_for_sparse_schedule(self, env):
        cal = CalendarQueue(width=1.0)
        # ~100-apart singleton batches: avg gap 100 => target 800,
        # >2x the current width, so the first full window rebuilds
        n = CalendarQueue.GAP_WINDOW * 2 + 8
        for seq in range(n):
            cal.push(100.0 * (seq + 1), seq, _ev(env))
        for _ in range(n):
            cal.pop_batch()
        assert cal.width > 1.0
        assert cal.width <= CalendarQueue.MAX_WIDTH

    def test_window_retune_narrows_for_dense_schedule(self, env):
        cal = CalendarQueue(width=50000.0)
        n = CalendarQueue.GAP_WINDOW * 2 + 8
        for seq in range(n):
            cal.push(0.25 * (seq + 1), seq, _ev(env))
        for _ in range(n):
            cal.pop_batch()
        assert cal.width < 50000.0
        assert cal.width >= CalendarQueue.MIN_WIDTH

    def test_spill_shrinks_immediately(self, env):
        cal = CalendarQueue(width=CalendarQueue.MAX_WIDTH)
        n = CalendarQueue.SPILL_LIMIT + 2
        for seq in range(n):
            cal.push(1.0 + seq, seq, _ev(env))  # spread, all one bucket
        assert cal.width < CalendarQueue.MAX_WIDTH
        assert max(len(b) for b in cal._buckets.values()) <= n // 2
        # stream intact after the rebuild
        times = [cal.pop_batch()[0] for _ in range(n)]
        assert times == sorted(times)

    def test_same_tick_burst_does_not_thrash_width(self, env):
        cal = CalendarQueue(width=128.0)
        n = CalendarQueue.SPILL_LIMIT + 50
        for seq in range(n):
            cal.push(42.0, seq, _ev(env))  # zero span: width can't help
        assert cal.width == 128.0
        t, batch = cal.pop_batch()
        assert (t, len(batch)) == (42.0, n)

    def test_rebuild_preserves_container_identity(self, env):
        cal = CalendarQueue(width=1.0)
        for seq in range(20):
            cal.push(float(seq), seq, _ev(env))
        buckets, order = cal._buckets, cal._order
        cal._rebuild(8.0)
        # the drain loop holds local aliases of both containers across
        # dispatches; rebuilds must mutate, never replace, them
        assert cal._buckets is buckets
        assert cal._order is order
        assert len(cal) == 20
        times = [cal.pop_batch()[0] for _ in range(20)]
        assert times == [float(s) for s in range(20)]
