"""Core selection via ``ALOCK_SIM_CORE``: env-var plumbing, fallback
warning, invalid values, ``core_info()`` shape, and the negative-delay
``schedule()`` guard on whichever core is serving this process.

Selection happens at first import of ``repro.sim.core``, so every
selection test runs a fresh interpreter via subprocess.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.common.errors import ConfigError
from repro.sim import Environment, core_info

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

try:
    from repro.sim import _compiled  # noqa: F401 - availability probe
    HAVE_COMPILED = True
except ImportError:
    HAVE_COMPILED = False


def _probe(core_value, extra_code=""):
    """Run core_info() in a fresh interpreter with ALOCK_SIM_CORE set."""
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    if core_value is None:
        env.pop("ALOCK_SIM_CORE", None)
    else:
        env["ALOCK_SIM_CORE"] = core_value
    code = (
        "import json, warnings\n"
        "warnings.simplefilter('always')\n"
        "with warnings.catch_warnings(record=True) as caught:\n"
        "    from repro.sim import core_info\n"
        "    info = core_info()\n"
        "info['warnings'] = [str(w.message) for w in caught]\n"
        + extra_code +
        "print(json.dumps(info))\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code], env=env,
        capture_output=True, text=True, timeout=120)
    return proc


class TestSelection:
    def test_pure_always_available(self):
        proc = _probe("pure")
        assert proc.returncode == 0, proc.stderr
        info = json.loads(proc.stdout)
        assert info["requested"] == "pure"
        assert info["kind"] == "pure"
        assert info["fallback_reason"] is None
        assert info["warnings"] == []

    def test_default_is_auto(self):
        proc = _probe(None)
        assert proc.returncode == 0, proc.stderr
        info = json.loads(proc.stdout)
        assert info["requested"] == "auto"
        assert info["kind"] in ("pure", "compiled")
        assert info["warnings"] == []  # auto fallback is silent by design

    def test_empty_and_mixed_case_normalize(self):
        for raw in ("", "  PURE  ", "Auto"):
            proc = _probe(raw)
            assert proc.returncode == 0, proc.stderr
            info = json.loads(proc.stdout)
            assert info["requested"] == (raw.strip().lower() or "auto")

    def test_invalid_value_raises_config_error(self):
        proc = _probe("turbo")
        assert proc.returncode != 0
        assert "ConfigError" in proc.stderr
        assert "ALOCK_SIM_CORE='turbo'" in proc.stderr
        assert "auto/pure/compiled" in proc.stderr

    @pytest.mark.skipif(not HAVE_COMPILED, reason="compiled core not built")
    def test_compiled_selected_when_built(self):
        proc = _probe(
            "compiled",
            "env_mod = __import__('repro.sim', fromlist=['Environment'])\n"
            "info['env_module'] = env_mod.Environment.__module__\n")
        assert proc.returncode == 0, proc.stderr
        info = json.loads(proc.stdout)
        assert info["kind"] == "compiled"
        assert info["fallback_reason"] is None
        assert info["warnings"] == []
        assert info["env_module"] == "repro.sim._compiled"

    def test_compiled_request_warns_on_fallback(self):
        # simulate an unbuilt extension: a None entry in sys.modules
        # makes `import repro.sim._ccore` raise ImportError
        proc = subprocess.run(
            [sys.executable, "-c", (
                "import json, sys, warnings\n"
                "sys.modules['repro.sim._ccore'] = None  # force ImportError\n"
                "with warnings.catch_warnings(record=True) as caught:\n"
                "    warnings.simplefilter('always')\n"
                "    from repro.sim import core_info\n"
                "    info = core_info()\n"
                "info['warnings'] = [str(w.message) for w in caught]\n"
                "print(json.dumps(info))\n")],
            env=dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"),
                     ALOCK_SIM_CORE="compiled"),
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        info = json.loads(proc.stdout)
        assert info["requested"] == "compiled"
        assert info["kind"] == "pure"
        assert info["fallback_reason"]
        warning_blob = "\n".join(info["warnings"])
        assert "falling back to the pure-Python engine" in warning_blob

    def test_core_info_shape(self):
        info = core_info()
        assert set(info) == {"requested", "kind", "fallback_reason"}
        assert info["kind"] in ("pure", "compiled")


class TestNegativeDelayGuard:
    """Satellite bugfix: ``schedule()`` must reject negative delays on
    every core instead of silently corrupting calendar state."""

    def test_schedule_rejects_negative_delay(self):
        env = Environment()
        with pytest.raises(ConfigError, match="negative delay"):
            env.schedule(env.event(), delay=-1.0)

    def test_message_names_delay_and_now(self):
        env = Environment()
        ev = env.event()
        with pytest.raises(ConfigError, match=r"-0\.5.*in the past"):
            env.schedule(ev, delay=-0.5)

    def test_zero_and_positive_still_fine(self):
        env = Environment()
        env.schedule(env.event(), delay=0.0)
        env.schedule(env.event(), delay=2.5)
        assert env._has_work()

    def test_timeout_rejects_negative_delay(self):
        from repro.common.errors import SimulationError
        env = Environment()
        with pytest.raises(SimulationError, match="negative timeout delay"):
            env.timeout(-3)
