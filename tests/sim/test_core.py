"""Unit tests for the discrete-event engine core."""

import pytest

from repro.common.errors import SimulationError
from repro.sim import AllOf, AnyOf, Environment, Interrupt, Timeout


@pytest.fixture()
def env():
    return Environment()


class TestClock:
    def test_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_custom_initial_time(self):
        assert Environment(100.0).now == 100.0

    def test_timeout_advances_clock(self, env):
        done = {}

        def proc():
            yield env.timeout(50)
            done["t"] = env.now

        env.process(proc())
        env.run()
        assert done["t"] == 50

    def test_run_until_time_sets_now(self, env):
        def noop():
            yield env.timeout(1)

        env.process(noop())
        env.run(until=1000)
        assert env.now == 1000

    def test_non_generator_process_rejected(self, env):
        with pytest.raises(SimulationError):
            env.process(iter(()))  # plain iterators have no send()

    def test_run_until_past_raises(self, env):
        env.run(until=10)
        with pytest.raises(SimulationError):
            env.run(until=5)

    def test_peek_empty_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_step_empty_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()


class TestTimeout:
    def test_negative_delay_rejected(self, env):
        with pytest.raises(SimulationError):
            Timeout(env, -1)

    def test_timeout_value_passthrough(self, env):
        got = {}

        def proc():
            got["v"] = yield env.timeout(5, value="payload")

        env.process(proc())
        env.run()
        assert got["v"] == "payload"

    def test_simultaneous_timeouts_fifo(self, env):
        order = []

        def proc(tag):
            yield env.timeout(10)
            order.append(tag)

        for tag in "abc":
            env.process(proc(tag))
        env.run()
        assert order == ["a", "b", "c"]


class TestEvent:
    def test_succeed_delivers_value(self, env):
        ev = env.event()
        got = {}

        def proc():
            got["v"] = yield ev

        env.process(proc())
        ev.succeed(42)
        env.run()
        assert got["v"] == 42

    def test_double_trigger_raises(self, env):
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_raises_in_waiter(self, env):
        ev = env.event()
        caught = {}

        def proc():
            try:
                yield ev
            except ValueError as exc:
                caught["e"] = exc

        env.process(proc())
        ev.fail(ValueError("boom"))
        env.run()
        assert isinstance(caught["e"], ValueError)

    def test_fail_requires_exception(self, env):
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")  # type: ignore[arg-type]

    def test_wait_on_processed_event_resumes(self, env):
        """A process that yields an already-processed event continues."""
        ev = env.event()
        ev.succeed("early")
        env.run()
        got = {}

        def proc():
            got["v"] = yield ev

        env.process(proc())
        env.run()
        assert got["v"] == "early"

    def test_value_before_trigger_raises(self, env):
        ev = env.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_multiple_waiters_all_resumed(self, env):
        ev = env.event()
        got = []

        def proc(i):
            v = yield ev
            got.append((i, v))

        for i in range(3):
            env.process(proc(i))
        ev.succeed("x")
        env.run()
        assert got == [(0, "x"), (1, "x"), (2, "x")]


class TestProcess:
    def test_return_value_is_event_value(self, env):
        def inner():
            yield env.timeout(1)
            return 99

        def outer():
            v = yield env.process(inner())
            return v + 1

        p = env.process(outer())
        env.run()
        assert p.value == 100

    def test_yield_non_event_fails_process(self, env):
        def bad():
            yield 42

        p = env.process(bad())
        env.run()
        assert not p.ok
        assert isinstance(p.value, SimulationError)

    def test_exception_propagates_to_parent(self, env):
        def inner():
            yield env.timeout(1)
            raise RuntimeError("inner failed")

        caught = {}

        def outer():
            try:
                yield env.process(inner())
            except RuntimeError as exc:
                caught["e"] = exc

        env.process(outer())
        env.run()
        assert str(caught["e"]) == "inner failed"

    def test_is_alive_lifecycle(self, env):
        def proc():
            yield env.timeout(10)

        p = env.process(proc())
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_interrupt_delivers_cause(self, env):
        caught = {}

        def victim():
            try:
                yield env.timeout(1000)
            except Interrupt as intr:
                caught["cause"] = intr.cause
                caught["time"] = env.now

        def attacker(p):
            yield env.timeout(10)
            p.interrupt("stop it")

        p = env.process(victim())
        env.process(attacker(p))
        env.run()
        assert caught["cause"] == "stop it"
        assert caught["time"] == 10

    def test_interrupt_finished_process_noop(self, env):
        def quick():
            yield env.timeout(1)

        p = env.process(quick())
        env.run()
        p.interrupt()  # must not raise

    def test_unhandled_interrupt_fails_process(self, env):
        def victim():
            yield env.timeout(1000)

        def attacker(p):
            yield env.timeout(1)
            p.interrupt("kill")

        p = env.process(victim())
        env.process(attacker(p))
        env.run()
        assert not p.ok
        assert isinstance(p.value, Interrupt)

    def test_run_until_event(self, env):
        def proc():
            yield env.timeout(7)
            return "done"

        p = env.process(proc())
        assert env.run(until=p) == "done"
        assert env.now == 7

    def test_run_until_event_deadlock_detected(self, env):
        ev = env.event()  # never triggered

        def proc():
            yield ev

        p = env.process(proc())
        with pytest.raises(SimulationError):
            env.run(until=p)

    def test_deadlock_error_names_alive_processes(self, env):
        """The deadlock diagnostic must say *who* is stuck: process
        names, pids, last-resumed times, and what they wait on."""
        ev = env.event()  # never triggered

        def early():
            yield ev

        def late():
            yield env.timeout(42)
            yield ev

        env.process(early(), name="early-waiter")
        p_late = env.process(late(), name="late-waiter")
        with pytest.raises(SimulationError) as exc_info:
            env.run(until=p_late)
        msg = str(exc_info.value)
        assert "early-waiter" in msg and "late-waiter" in msg
        assert "last resumed at 0.0 ns" in msg      # early never re-ran
        assert "last resumed at 42.0 ns" in msg     # late ran once
        assert "waiting on" in msg

    def test_describe_alive_caps_output(self, env):
        ev = env.event()

        def proc():
            yield ev

        for i in range(12):
            env.process(proc(), name=f"w{i}")
        env.run()  # drains the (empty) schedule; all 12 still alive
        desc = env.describe_alive(limit=8)
        assert "w0" in desc and "w7" in desc
        assert "... and 4 more" in desc

    def test_nested_processes_three_deep(self, env):
        def level(n):
            if n == 0:
                yield env.timeout(5)
                return 1
            v = yield env.process(level(n - 1))
            return v + 1

        p = env.process(level(3))
        env.run()
        assert p.value == 4
        assert env.now == 5


class TestConditions:
    def test_any_of_first_wins(self, env):
        t1 = env.timeout(10, value="fast")
        t2 = env.timeout(20, value="slow")
        got = {}

        def proc():
            got["r"] = yield AnyOf(env, [t1, t2])

        env.process(proc())
        env.run()
        assert got["r"] == {t1: "fast"}
        # env.run() drains t2 as well

    def test_all_of_waits_for_all(self, env):
        t1 = env.timeout(10, value=1)
        t2 = env.timeout(20, value=2)
        got = {}

        def proc():
            got["r"] = yield AllOf(env, [t1, t2])
            got["t"] = env.now

        env.process(proc())
        env.run()
        assert got["r"] == {t1: 1, t2: 2}
        assert got["t"] == 20

    def test_empty_condition_triggers_immediately(self, env):
        got = {}

        def proc():
            got["r"] = yield env.all_of([])

        env.process(proc())
        env.run()
        assert got["r"] == {}

    def test_any_of_failure_propagates(self, env):
        ev = env.event()
        caught = {}

        def proc():
            try:
                yield env.any_of([ev, env.timeout(100)])
            except KeyError as exc:
                caught["e"] = exc

        env.process(proc())
        ev.fail(KeyError("bad"))
        env.run()
        assert isinstance(caught["e"], KeyError)

    def test_cross_environment_condition_rejected(self, env):
        other = Environment()
        ev = other.event()
        with pytest.raises(SimulationError):
            env.any_of([ev])


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def build_and_run():
            env = Environment()
            log = []

            def worker(i, delay):
                yield env.timeout(delay)
                log.append((i, env.now))
                yield env.timeout(delay * 2)
                log.append((i, env.now))

            for i in range(5):
                env.process(worker(i, 10 + i * 3))
            env.run()
            return log, env.event_count

        a = build_and_run()
        b = build_and_run()
        assert a == b

    def test_event_count_increments(self, env):
        def proc():
            for _ in range(10):
                yield env.timeout(1)

        env.process(proc())
        env.run()
        assert env.event_count >= 10


class TestSchedulePolicyHook:
    """The same-time tie-break hook (exercised end to end by
    ``tests/schedcheck``; these are the engine-level contracts)."""

    def build(self, policy):
        env = Environment()
        log = []

        def worker(i):
            yield env.timeout(10)        # all three tie at t=10
            log.append(i)
            yield env.timeout(5)         # and again at t=15
            log.append(i)

        for i in range(3):
            env.process(worker(i))
        env.set_schedule_policy(policy)
        env.run()
        return env, log

    def test_index_zero_policy_matches_default(self):
        class AlwaysDefault:
            def choose(self, ready):
                return 0

        _, unpoliced = self.build(None)
        _, policied = self.build(AlwaysDefault())
        assert policied == unpoliced

    def test_choices_and_fanouts_are_recorded(self):
        class AlwaysSecond:
            def choose(self, ready):
                return min(1, len(ready) - 1)

        _, default_log = self.build(None)
        env, log = self.build(AlwaysSecond())
        assert log != default_log        # the ties really were reordered
        assert sorted(log) == sorted(default_log)  # same work, other order
        assert env.schedule_decisions
        assert all(f >= 2 for f in env.schedule_fanouts)
        assert len(env.schedule_decisions) == len(env.schedule_fanouts)

    def test_singleton_ready_list_skips_policy(self):
        calls = []

        class Spy:
            def choose(self, ready):
                calls.append(len(ready))
                return 0

        env = Environment()

        def lone():
            for _ in range(4):
                yield env.timeout(3)

        env.process(lone())
        env.set_schedule_policy(Spy())
        env.run()
        assert calls == []               # no ties -> policy never consulted
        assert env.schedule_decisions == []

    def test_out_of_range_choice_raises(self):
        class Bad:
            def choose(self, ready):
                return len(ready)

        with pytest.raises(SimulationError):
            self.build(Bad())
