"""Property-based tests of the simulation engine (hypothesis).

Invariants under arbitrary schedules of timeouts, events, and resource
usage: the clock never runs backwards, event ordering is deterministic,
resources conserve slots, and stores conserve items.
"""

from hypothesis import given, settings, strategies as st

from repro.sim import Environment, Resource, Store

# Keep generated schedules small; the invariants are about *ordering*,
# not volume.
delays = st.lists(st.floats(min_value=0.0, max_value=1000.0,
                            allow_nan=False, allow_infinity=False),
                  min_size=1, max_size=30)


class TestClockInvariants:
    @given(delays)
    @settings(max_examples=60)
    def test_time_is_monotone_across_callbacks(self, ds):
        env = Environment()
        observed = []

        def proc(d):
            yield env.timeout(d)
            observed.append(env.now)

        for d in ds:
            env.process(proc(d))
        env.run()
        assert observed == sorted(observed)
        assert len(observed) == len(ds)

    @given(delays)
    @settings(max_examples=60)
    def test_completion_times_equal_delays(self, ds):
        env = Environment()
        done = {}

        def proc(i, d):
            yield env.timeout(d)
            done[i] = env.now

        for i, d in enumerate(ds):
            env.process(proc(i, d))
        env.run()
        assert all(done[i] == d for i, d in enumerate(ds))

    @given(delays)
    @settings(max_examples=40)
    def test_determinism_under_replay(self, ds):
        def trace():
            env = Environment()
            log = []

            def proc(i, d):
                yield env.timeout(d)
                log.append((i, env.now))
                yield env.timeout(d / 2 + 1)
                log.append((i, env.now))

            for i, d in enumerate(ds):
                env.process(proc(i, d))
            env.run()
            return log

        assert trace() == trace()


class TestResourceInvariants:
    @given(st.integers(1, 5), st.lists(st.floats(1.0, 50.0), min_size=1,
                                       max_size=25))
    @settings(max_examples=50)
    def test_slots_conserved(self, capacity, holds):
        env = Environment()
        res = Resource(env, capacity=capacity)
        max_seen = [0]

        def proc(hold):
            yield res.request()
            max_seen[0] = max(max_seen[0], res.in_use)
            assert res.in_use <= capacity
            yield env.timeout(hold)
            res.release()

        for hold in holds:
            env.process(proc(hold))
        env.run()
        assert res.in_use == 0
        assert res.total_served == len(holds)
        assert max_seen[0] <= capacity

    @given(st.lists(st.floats(1.0, 20.0), min_size=2, max_size=15))
    @settings(max_examples=50)
    def test_fifo_grant_order(self, holds):
        env = Environment()
        res = Resource(env, capacity=1)
        grants = []

        def proc(i, hold):
            yield res.request()
            grants.append(i)
            yield env.timeout(hold)
            res.release()

        for i, hold in enumerate(holds):
            env.process(proc(i, hold))
        env.run()
        assert grants == list(range(len(holds)))

    @given(st.integers(1, 4), st.lists(st.floats(1.0, 30.0), min_size=1,
                                       max_size=20))
    @settings(max_examples=40)
    def test_utilization_bounded(self, capacity, holds):
        env = Environment()
        res = Resource(env, capacity=capacity)

        def proc(hold):
            yield from res.serve(hold)

        for hold in holds:
            env.process(proc(hold))
        env.run()
        assert 0.0 <= res.utilization() <= 1.0 + 1e-9


class TestStoreInvariants:
    @given(st.lists(st.integers(), min_size=1, max_size=40))
    @settings(max_examples=50)
    def test_items_conserved_in_order(self, items):
        env = Environment()
        store = Store(env)
        received = []

        def consumer():
            for _ in items:
                v = yield store.get()
                received.append(v)

        env.process(consumer())
        for item in items:
            store.put(item)
        env.run()
        assert received == items

    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=30)
    def test_many_producers_consumers_conserve(self, n_prod, n_cons):
        env = Environment()
        store = Store(env)
        per_prod = 6
        total = n_prod * per_prod
        received = []

        def producer(i):
            for j in range(per_prod):
                yield env.timeout(j + 1)
                store.put((i, j))

        def consumer(quota):
            for _ in range(quota):
                v = yield store.get()
                received.append(v)

        quotas = [total // n_cons] * n_cons
        quotas[0] += total - sum(quotas)
        for i in range(n_prod):
            env.process(producer(i))
        for q in quotas:
            env.process(consumer(q))
        env.run()
        assert sorted(received) == sorted(
            (i, j) for i in range(n_prod) for j in range(per_prod))
