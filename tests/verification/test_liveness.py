"""Tests of StarvationFree under weak fairness (appendix liveness)."""

import pytest

from repro.common.errors import ConfigError
from repro.verification import ALockSpec, check_starvation_freedom
from repro.verification.liveness import _sccs, _reachable_graph


class TestStarvationFreedomHolds:
    def test_two_processes(self):
        result = check_starvation_freedom(ALockSpec(2, 1))
        assert result.holds
        assert result.states_explored == 730

    def test_two_processes_budget_three(self):
        assert check_starvation_freedom(ALockSpec(2, 3)).holds

    def test_three_processes_with_passing(self):
        """NP=3: intra-cohort passing + budgets + Peterson, all fair."""
        result = check_starvation_freedom(ALockSpec(3, 2))
        assert result.holds
        assert result.states_explored > 50_000

    def test_single_process(self):
        assert check_starvation_freedom(ALockSpec(1, 1)).holds


class TestStarvationDetected:
    def test_no_victim_check_starves_a_leader(self):
        """Without the victim yield, both cohort leaders spin forever in
        gwait/g2/g3 — a *fair* cycle (both keep stepping) in which
        neither reaches cs.  This is the livelock the victim word
        prevents, now caught as a liveness violation rather than by the
        weaker possibility check."""
        result = check_starvation_freedom(ALockSpec(2, 1, bug="no_victim_check"))
        assert not result.holds
        assert "starves" in result.counterexample.violation
        # the witness state has the starving pid in the Peterson wait
        witness = result.counterexample.states[0]
        assert any(label in ("gwait", "g2", "g3") for label in witness.pc)

    def test_detected_cycle_is_fair(self):
        """The reported SCC must actually satisfy weak fairness: every
        process steps inside it or is disabled somewhere in it."""
        spec = ALockSpec(2, 1, bug="no_victim_check")
        result = check_starvation_freedom(spec)
        assert "stepping pids" in result.detail


class TestMechanics:
    def test_max_states_guard(self):
        with pytest.raises(ConfigError):
            check_starvation_freedom(ALockSpec(3, 2), max_states=1_000)

    def test_scc_decomposition_covers_graph(self):
        spec = ALockSpec(2, 1)
        graph = _reachable_graph(spec, 10_000)
        components = _sccs(graph)
        assert sum(len(c) for c in components) == len(graph)
        seen = set()
        for c in components:
            for s in c:
                assert s not in seen  # components are disjoint
                seen.add(s)

    def test_scc_nontrivial_components_exist(self):
        """The protocol loops forever (p1 -> ... -> p1), so the graph
        must contain at least one big SCC."""
        spec = ALockSpec(2, 1)
        components = _sccs(_reachable_graph(spec, 10_000))
        assert max(len(c) for c in components) > 100
