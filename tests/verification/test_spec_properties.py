"""Property-based invariants of the PlusCal transition system.

Random walks through the state graph must preserve structural
invariants TLC would check as type/state invariants: budgets stay in
[-1, B], cohort tails are valid pids, return stacks stay shallow, and
the walk never wedges (deadlock freedom along arbitrary paths).
"""

from hypothesis import given, settings, strategies as st

from repro.verification import ALockSpec
from repro.verification.spec import us


def random_walk(spec, choices, steps):
    """Walk the graph following `choices` (wrapping indices over the
    enabled successors); returns the visited states."""
    state = spec.initial_states()[choices[0] % 2]
    visited = [state]
    for i in range(steps):
        succs = list(spec.successors(state))
        assert succs, f"deadlock at {state}"
        _pid, state = succs[choices[(i + 1) % len(choices)] % len(succs)]
        visited.append(state)
    return visited


walks = st.lists(st.integers(0, 10_000), min_size=1, max_size=40)


class TestStructuralInvariants:
    @given(choices=walks, np_=st.integers(1, 4), budget=st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_random_walk_invariants(self, choices, np_, budget):
        spec = ALockSpec(np_, budget)
        for state in random_walk(spec, choices, steps=60):
            # budgets within [-1, B]
            assert all(-1 <= b <= budget for b in state.budget), state
            # cohort tails are 0 or a live pid of the right parity
            for idx in (1, 2):
                tail = state.cohort[idx - 1]
                assert tail == 0 or (1 <= tail <= np_ and us(tail) == idx)
            # next pointers reference live pids
            assert all(0 <= n <= np_ for n in state.next_)
            # victim is an initial cohort id or a pid
            assert 1 <= state.victim <= max(np_, 2)
            # call stacks never exceed one frame (procedures don't nest
            # beyond AcquireCohort -> AcquireGlobal)
            assert all(len(s) <= 2 for s in state.retstack)
            # at most one process in cs (spot-check of the invariant)
            assert len(spec.processes_in_cs(state)) <= 1

    @given(choices=walks)
    @settings(max_examples=40, deadline=None)
    def test_walks_are_deterministic(self, choices):
        spec = ALockSpec(3, 2)
        a = random_walk(spec, choices, steps=40)
        b = random_walk(spec, choices, steps=40)
        assert a == b

    @given(choices=walks, np_=st.integers(2, 3))
    @settings(max_examples=40, deadline=None)
    def test_step_is_pure(self, choices, np_):
        """step() must not mutate its input state."""
        spec = ALockSpec(np_, 2)
        state = spec.initial_states()[0]
        for i in range(30):
            snapshot = state
            succs = list(spec.successors(state))
            assert state == snapshot  # unchanged by enumeration
            _pid, state = succs[choices[i % len(choices)] % len(succs)]
