"""Unit tests for the PlusCal-translation transition system."""

import pytest

from repro.common.errors import ConfigError
from repro.verification import ALockSpec
from repro.verification.spec import them, us


class TestCohortAssignment:
    def test_parity_split(self):
        assert us(1) == 2 and us(2) == 1 and us(3) == 2 and us(4) == 1

    def test_them_is_other_cohort(self):
        for pid in range(1, 6):
            assert {us(pid), them(pid)} == {1, 2}


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ALockSpec(0, 1)
        with pytest.raises(ConfigError):
            ALockSpec(2, 0)
        with pytest.raises(ConfigError):
            ALockSpec(2, 1, bug="nonsense")

    def test_two_initial_states(self):
        inits = ALockSpec(2, 1).initial_states()
        assert len(inits) == 2
        assert {s.victim for s in inits} == {1, 2}

    def test_initial_descriptors(self):
        init = ALockSpec(3, 2).initial_states()[0]
        assert init.budget == (-1, -1, -1)
        assert init.next_ == (0, 0, 0)
        assert init.cohort == (0, 0)
        assert all(label == "p1" for label in init.pc)


class TestSingleProcessWalk:
    """Drive one process through an entire acquire/release cycle."""

    def walk(self, spec, state, pid, labels):
        seen = []
        for _ in range(50):
            seen.append(state.pc[pid - 1])
            if seen[-1] == labels[-1] and len(seen) >= len(labels):
                break
            state = spec.step(state, pid)
            assert state is not None
        return seen, state

    def test_empty_queue_leader_path(self):
        spec = ALockSpec(1, 2)
        state = spec.initial_states()[0]
        path = []
        for _ in range(30):
            path.append(state.pc[0])
            if state.pc[0] == "cs":
                break
            state = spec.step(state, 1)
        # leader path: swap sees empty, sets budget, not passed, competes
        # in AcquireGlobal, reaches cs
        assert "swap" in path and "c8" in path and "g1" in path
        assert path[-1] == "cs"
        assert state.passed[0] is False
        assert state.budget[0] == 2
        assert state.cohort[us(1) - 1] == 1

    def test_full_cycle_returns_to_p1(self):
        spec = ALockSpec(1, 1)
        state = spec.initial_states()[0]
        for _ in range(40):
            nxt = spec.step(state, 1)
            assert nxt is not None
            state = nxt
            if state.pc[0] == "p1" and state.cohort == (0, 0):
                break
        assert state.pc[0] == "p1"
        assert state.retstack[0] == ()

    def test_waiter_blocks_on_budget(self):
        """With two same-cohort processes, the second blocks at c3 until
        the first passes the budget."""
        spec = ALockSpec(3, 2)  # pids 1 and 3 share cohort 2
        state = spec.initial_states()[0]
        # advance pid 1 to cs
        for _ in range(30):
            if state.pc[0] == "cs":
                break
            state = spec.step(state, 1)
        assert state.pc[0] == "cs"
        # advance pid 3 until it blocks
        for _ in range(30):
            nxt = spec.step(state, 3)
            if nxt is None:
                break
            state = nxt
        assert state.pc[2] == "c3"
        assert state.pred[2] == 1
        assert state.next_[0] == 3
        # release pid 1: it must take the r1/r2 passing path
        for _ in range(30):
            nxt = spec.step(state, 1)
            if nxt is None:
                break
            state = nxt
        # after release, pid 3's budget was passed as B-1 = 1
        assert state.budget[2] == 1
        # pid 3 can now proceed to cs without the global lock
        for _ in range(30):
            if state.pc[2] == "cs":
                break
            state = spec.step(state, 3)
        assert state.pc[2] == "cs"
        assert state.passed[2] is True

    def test_budget_zero_forces_reacquire(self):
        """With B=1, a passed waiter receives budget 0 and must run
        AcquireGlobal (label c5) before entering."""
        spec = ALockSpec(3, 1)
        state = spec.initial_states()[0]
        for _ in range(30):
            if state.pc[0] == "cs":
                break
            state = spec.step(state, 1)
        for _ in range(30):
            nxt = spec.step(state, 3)
            if nxt is None:
                break
            state = nxt
        for _ in range(30):  # pid 1 releases, passing budget 0
            nxt = spec.step(state, 1)
            if nxt is None:
                break
            state = nxt
        assert state.budget[2] == 0
        path = []
        for _ in range(40):
            path.append(state.pc[2])
            if state.pc[2] == "cs":
                break
            nxt = spec.step(state, 3)
            if nxt is None:
                break
            state = nxt
        assert "c5" in path  # went through pReacquire
        assert state.budget[2] == 1  # reset to B

    def test_victim_written_by_global_acquirer(self):
        spec = ALockSpec(2, 1)
        state = spec.initial_states()[0]
        for _ in range(10):
            if state.pc[0] == "g1":
                break
            state = spec.step(state, 1)
        state = spec.step(state, 1)  # execute g1
        assert state.victim == 1


class TestSuccessors:
    def test_all_processes_enabled_initially(self):
        spec = ALockSpec(4, 1)
        init = spec.initial_states()[0]
        assert len(list(spec.successors(init))) == 4

    def test_processes_in_cs_helper(self):
        spec = ALockSpec(2, 1)
        state = spec.initial_states()[0]
        assert spec.processes_in_cs(state) == []
