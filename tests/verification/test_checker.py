"""Model-checking the appendix properties (and confirming the checker
has teeth against injected bugs)."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.common.errors import ConfigError
from repro.verification import (
    ALockSpec,
    check_deadlock_freedom,
    check_mutual_exclusion,
    check_progress_possibility,
    explore,
)


class TestMutualExclusion:
    def test_holds_two_processes(self):
        result = check_mutual_exclusion(ALockSpec(2, 1))
        assert result.holds
        assert result.states_explored > 100

    def test_holds_two_processes_budget_three(self):
        assert check_mutual_exclusion(ALockSpec(2, 3)).holds

    def test_holds_three_processes(self):
        """NP=3 exercises intra-cohort passing (pids 1 and 3 share a
        cohort) on top of the Peterson competition."""
        result = check_mutual_exclusion(ALockSpec(3, 2))
        assert result.holds
        assert result.states_explored > 50_000

    def test_single_process_trivially_holds(self):
        assert check_mutual_exclusion(ALockSpec(1, 1)).holds


class TestDeadlockFreedom:
    def test_holds_two_processes(self):
        assert check_deadlock_freedom(ALockSpec(2, 2)).holds

    def test_holds_three_processes_budget_one(self):
        assert check_deadlock_freedom(ALockSpec(3, 1)).holds


class TestProgressPossibility:
    def test_holds_two_processes(self):
        result = check_progress_possibility(ALockSpec(2, 2))
        assert result.holds

    def test_holds_three_processes_budget_one(self):
        result = check_progress_possibility(ALockSpec(3, 1))
        assert result.holds


class TestCheckerHasTeeth:
    def test_skip_handoff_wait_breaks_mutual_exclusion(self):
        """Skipping the budget await lets a waiter enter alongside its
        predecessor — the checker must find it and produce a trace."""
        result = check_mutual_exclusion(ALockSpec(3, 2, bug="skip_handoff_wait"))
        assert not result.holds
        cex = result.counterexample
        assert cex is not None
        # trace ends in a state with two processes in cs
        final = cex.states[-1]
        assert len([l for l in final.pc if l == "cs"]) > 1
        # trace is a valid run: starts at an initial state
        assert cex.states[0] in ALockSpec(3, 2, bug="skip_handoff_wait").initial_states()
        assert len(cex.actions) == len(cex.states) - 1

    def test_counterexample_trace_is_executable(self):
        """Replaying the counterexample's actions reproduces its states."""
        spec = ALockSpec(3, 2, bug="skip_handoff_wait")
        cex = check_mutual_exclusion(spec).counterexample
        state = cex.states[0]
        for pid, expected in zip(cex.actions, cex.states[1:]):
            state = spec.step(state, pid)
            assert state == expected

    def test_no_victim_check_livelocks(self):
        """Without the victim yield, two cohort leaders block each other
        forever: still deadlock-'free' (they keep spinning) but progress
        becomes impossible — exactly a livelock."""
        spec = ALockSpec(2, 1, bug="no_victim_check")
        assert check_deadlock_freedom(spec).holds  # spinning is 'enabled'
        result = check_progress_possibility(spec)
        assert not result.holds

    def test_buggy_spec_reaches_double_cs_states(self):
        """The buggy reachable space contains states the invariant
        forbids; the correct one does not."""
        spec = ALockSpec(3, 2, bug="skip_handoff_wait")
        assert not check_mutual_exclusion(spec).holds
        assert check_mutual_exclusion(ALockSpec(3, 2)).holds


class TestCounterexampleRendering:
    """str(Counterexample) is what lands in failure reports — it has to
    carry the violation, the trace, and who moved at each step."""

    @pytest.fixture(scope="class")
    def cex(self):
        spec = ALockSpec(3, 2, bug="skip_handoff_wait")
        return check_mutual_exclusion(spec).counterexample

    def test_header_lines(self, cex):
        text = str(cex)
        lines = text.splitlines()
        assert lines[0] == f"violation: {cex.violation}"
        assert lines[1] == f"trace length: {len(cex.states)}"

    def test_one_line_per_step_with_state_fields(self, cex):
        lines = str(cex).splitlines()
        assert len(lines) == 2 + len(cex.states)
        for i, state in enumerate(cex.states):
            line = lines[2 + i]
            assert line.startswith(f"  step {i}")
            assert f"pc={state.pc}" in line
            assert f"victim={state.victim}" in line
            assert f"budget={state.budget}" in line

    def test_movers_annotated_after_initial_step(self, cex):
        lines = str(cex).splitlines()
        assert "moved" not in lines[2]  # initial state has no mover
        for i, pid in enumerate(cex.actions, start=1):
            assert f"(pid {pid} moved)" in lines[2 + i]

    def test_progress_counterexample_renders(self):
        """Livelock traces (progress violation) render the same way."""
        result = check_progress_possibility(ALockSpec(2, 1, bug="no_victim_check"))
        assert not result.holds
        text = str(result.counterexample)
        assert text.startswith("violation: ")
        assert "step 0" in text


class TestWitnessDeterminism:
    def test_progress_witness_stable_across_hash_seeds(self):
        """The livelock witness picked by check_progress_possibility must
        not depend on PYTHONHASHSEED (BFS over insertion-ordered lists,
        not set iteration)."""
        script = (
            "from repro.verification import ALockSpec, "
            "check_progress_possibility\n"
            "r = check_progress_possibility("
            "ALockSpec(2, 1, bug='no_victim_check'))\n"
            "print(str(r.counterexample))\n")
        repo_root = Path(__file__).resolve().parents[2]
        outs = []
        for seed in ("0", "1", "31337"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True,
                env={"PYTHONHASHSEED": seed,
                     "PYTHONPATH": str(repo_root / "src")})
            assert proc.returncode == 0, proc.stderr
            outs.append(proc.stdout)
        assert outs[0] == outs[1] == outs[2]


class TestExploreBounds:
    def test_max_states_raises_not_truncates(self):
        with pytest.raises(ConfigError):
            explore(ALockSpec(3, 1), max_states=100)

    def test_reachability_counts_deterministic(self):
        a = explore(ALockSpec(2, 2)).states_explored
        b = explore(ALockSpec(2, 2)).states_explored
        assert a == b == 730
