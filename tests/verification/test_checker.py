"""Model-checking the appendix properties (and confirming the checker
has teeth against injected bugs)."""

import pytest

from repro.common.errors import ConfigError
from repro.verification import (
    ALockSpec,
    check_deadlock_freedom,
    check_mutual_exclusion,
    check_progress_possibility,
    explore,
)


class TestMutualExclusion:
    def test_holds_two_processes(self):
        result = check_mutual_exclusion(ALockSpec(2, 1))
        assert result.holds
        assert result.states_explored > 100

    def test_holds_two_processes_budget_three(self):
        assert check_mutual_exclusion(ALockSpec(2, 3)).holds

    def test_holds_three_processes(self):
        """NP=3 exercises intra-cohort passing (pids 1 and 3 share a
        cohort) on top of the Peterson competition."""
        result = check_mutual_exclusion(ALockSpec(3, 2))
        assert result.holds
        assert result.states_explored > 50_000

    def test_single_process_trivially_holds(self):
        assert check_mutual_exclusion(ALockSpec(1, 1)).holds


class TestDeadlockFreedom:
    def test_holds_two_processes(self):
        assert check_deadlock_freedom(ALockSpec(2, 2)).holds

    def test_holds_three_processes_budget_one(self):
        assert check_deadlock_freedom(ALockSpec(3, 1)).holds


class TestProgressPossibility:
    def test_holds_two_processes(self):
        result = check_progress_possibility(ALockSpec(2, 2))
        assert result.holds

    def test_holds_three_processes_budget_one(self):
        result = check_progress_possibility(ALockSpec(3, 1))
        assert result.holds


class TestCheckerHasTeeth:
    def test_skip_handoff_wait_breaks_mutual_exclusion(self):
        """Skipping the budget await lets a waiter enter alongside its
        predecessor — the checker must find it and produce a trace."""
        result = check_mutual_exclusion(ALockSpec(3, 2, bug="skip_handoff_wait"))
        assert not result.holds
        cex = result.counterexample
        assert cex is not None
        # trace ends in a state with two processes in cs
        final = cex.states[-1]
        assert len([l for l in final.pc if l == "cs"]) > 1
        # trace is a valid run: starts at an initial state
        assert cex.states[0] in ALockSpec(3, 2, bug="skip_handoff_wait").initial_states()
        assert len(cex.actions) == len(cex.states) - 1

    def test_counterexample_trace_is_executable(self):
        """Replaying the counterexample's actions reproduces its states."""
        spec = ALockSpec(3, 2, bug="skip_handoff_wait")
        cex = check_mutual_exclusion(spec).counterexample
        state = cex.states[0]
        for pid, expected in zip(cex.actions, cex.states[1:]):
            state = spec.step(state, pid)
            assert state == expected

    def test_no_victim_check_livelocks(self):
        """Without the victim yield, two cohort leaders block each other
        forever: still deadlock-'free' (they keep spinning) but progress
        becomes impossible — exactly a livelock."""
        spec = ALockSpec(2, 1, bug="no_victim_check")
        assert check_deadlock_freedom(spec).holds  # spinning is 'enabled'
        result = check_progress_possibility(spec)
        assert not result.holds

    def test_buggy_spec_reaches_double_cs_states(self):
        """The buggy reachable space contains states the invariant
        forbids; the correct one does not."""
        spec = ALockSpec(3, 2, bug="skip_handoff_wait")
        assert not check_mutual_exclusion(spec).holds
        assert check_mutual_exclusion(ALockSpec(3, 2)).holds


class TestExploreBounds:
    def test_max_states_raises_not_truncates(self):
        with pytest.raises(ConfigError):
            explore(ALockSpec(3, 1), max_states=100)

    def test_reachability_counts_deterministic(self):
        a = explore(ALockSpec(2, 2)).states_explored
        b = explore(ALockSpec(2, 2)).states_explored
        assert a == b == 730
