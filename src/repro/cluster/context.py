"""Per-thread execution context: the operation families of the paper's
system model (§4).

Every method that costs simulated time is a generator to be driven with
``yield from`` inside a simulation process.  Local operations charge the
CPU cost model and act directly on the node's memory region; remote
operations are one-sided verbs through the NIC/fabric.  The context
enforces Definition 4.1: the local family refuses pointers whose home
node differs from the thread's node.
"""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

from repro.common.errors import MemoryError_, VerbTimeout
from repro.common.ids import make_global_thread_id
from repro.memory.pointer import ADDR_BITS, _ADDR_MASK, ptr_addr, ptr_node
from repro.memory.region import to_signed
from repro.sim.core import Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster


class ThreadContext:
    """Thread ``t_i^j``: node ``i``, local thread index ``j``.

    Not constructed directly — use :meth:`Cluster.thread_ctx`.
    """

    # The trailing slots are lazily-attached per-lock descriptor caches
    # (see repro.locks.alock.descriptors / repro.locks.baselines.mcs).
    __slots__ = ("cluster", "env", "node_id", "thread_id", "gid", "actor",
                 "_region", "_net", "_cpu", "tracer", "spans", "_flight",
                 "local_op_count", "remote_op_count", "verb_timeouts",
                 "_alock_descriptors", "_alock_descriptor_pools",
                 "_mcs_descriptor")

    def __init__(self, cluster: "Cluster", node_id: int, thread_id: int):
        self.cluster = cluster
        self.env = cluster.env
        self.node_id = node_id
        self.thread_id = thread_id
        self.gid = make_global_thread_id(node_id, thread_id)
        self.actor = f"t{thread_id}@n{node_id}"
        self._region = cluster.regions[node_id]
        self._net = cluster.network
        self._cpu = cluster.config.cpu
        self.tracer = cluster.tracer
        self.spans = cluster.obs.spans  # typed span recorder (obs layer)
        self._flight = cluster.flight  # always-on flight ring (or None)
        # statistics
        self.local_op_count = 0
        self.remote_op_count = 0
        self.verb_timeouts = 0

    # -- locality ----------------------------------------------------------
    def is_local(self, ptr: int) -> bool:
        """Definition 4.1/4.2: does ``ptr`` live on this thread's node?
        (The ALock's ``Lock()`` uses this to pick the cohort.)"""
        return ptr_node(ptr) == self.node_id

    def _local_addr(self, ptr: int) -> int:
        # ptr_node/ptr_addr inlined: this guard runs on every local op.
        if (ptr >> ADDR_BITS) != self.node_id:
            raise MemoryError_(
                f"{self.actor} attempted a LOCAL operation on node "
                f"{ptr_node(ptr)} memory — local ops require loopback or "
                f"verbs (this is the bug class ALock exists to prevent)")
        return ptr & _ADDR_MASK

    def trace(self, kind: str, detail: str = "") -> None:
        self.tracer.emit(self.env.now, self.actor, kind, detail)

    # -- local (shared-memory) operations ------------------------------
    def read(self, ptr: int, *, signed: bool = False):
        """Local atomic 8-byte load."""
        addr = self._local_addr(ptr)
        self.local_op_count += 1
        yield Timeout(self.env, self._cpu.local_read_ns)
        value = self._region.read(addr, self.actor)
        return to_signed(value) if signed else value

    def write(self, ptr: int, value: int):
        """Local atomic 8-byte store."""
        addr = self._local_addr(ptr)
        self.local_op_count += 1
        yield Timeout(self.env, self._cpu.local_write_ns)
        self._region.write(addr, value, self.actor)

    def cas(self, ptr: int, expected: int, desired: int, *, signed: bool = False):
        """Local compare-and-swap; returns the previous value."""
        addr = self._local_addr(ptr)
        self.local_op_count += 1
        yield Timeout(self.env, self._cpu.local_cas_ns)
        old = self._region.cas(addr, expected, desired, self.actor)
        return to_signed(old) if signed else old

    def faa(self, ptr: int, delta: int, *, signed: bool = False):
        """Local fetch-and-add; returns the previous value."""
        addr = self._local_addr(ptr)
        self.local_op_count += 1
        yield Timeout(self.env, self._cpu.local_cas_ns)
        old = self._region.faa(addr, delta, self.actor)
        return to_signed(old) if signed else old

    def fence(self):
        """atomic_thread_fence — required by §5.2 after locking and before
        unlocking (RDMA memory semantics are not sequentially consistent)."""
        yield Timeout(self.env, self._cpu.fence_ns)

    def wait_local(self, ptr: int, predicate: Callable[[int], bool],
                   *, signed: bool = False):
        """Spin on a local word until ``predicate(value)`` holds.

        Event-driven: parks on a memory watcher, so the spin generates no
        simulated traffic (the MCS local-spin property).  The watcher is
        registered *before* each check read — a write landing between the
        check and the park would otherwise be lost forever.  Returns the
        satisfying value.
        """
        addr = self._local_addr(ptr)
        while True:
            ev = self._region.watch(addr)  # register first (synchronous)
            self.local_op_count += 1
            yield Timeout(self.env, self._cpu.local_read_ns)
            raw = self._region.read(addr, self.actor)
            value = to_signed(raw) if signed else raw
            if predicate(value):
                return value
            yield ev
            yield Timeout(self.env, self._cpu.spin_recheck_ns)

    def wait_local_cond(self, ptrs: list[int], check):
        """Park until a compound condition over several *local* words holds.

        ``check`` is a generator function (driven with ``yield from``)
        returning truthy to stop; it is re-evaluated after every write to
        any of ``ptrs``.  The watcher-before-check ordering makes the wait
        lost-wakeup free.  Used by the local cohort's Peterson wait, which
        involves both the victim word and the other cohort's tail.
        Returns the truthy check result.
        """
        addrs = [self._local_addr(p) for p in ptrs]
        while True:
            ev = self._region.watch_any(addrs)  # register first
            result = yield from check()
            if result:
                return result
            yield ev
            yield Timeout(self.env, self._cpu.spin_recheck_ns)

    def wait_local_any(self, ptrs: list[int]):
        """Park until any of several *local* words is written; returns
        ``(ptr, raw_value)`` of the write that woke us.  Used by the local
        cohort's Peterson wait, which watches both the victim word and the
        other cohort's tail."""
        addrs = [self._local_addr(p) for p in ptrs]
        ev = self._region.watch_any(addrs)
        addr, raw = yield ev
        yield Timeout(self.env, self._cpu.spin_recheck_ns)
        # map the byte address back to the caller's pointer
        for p, a in zip(ptrs, addrs):
            if a == addr:
                return p, raw
        raise MemoryError_("watcher woke for an unexpected address")  # pragma: no cover

    # -- remote (RDMA) operations ------------------------------------------
    def _remote(self, fragment):
        """Drive one verb fragment, attributing any retry-budget
        exhaustion to this thread (fault layer: the typed
        :class:`VerbTimeout` gains the actor, and the per-thread counter
        feeds degraded-mode metrics)."""
        self.remote_op_count += 1
        try:
            return (yield from fragment)
        except VerbTimeout as exc:
            self.verb_timeouts += 1
            exc.actor = self.actor
            fl = self._flight
            if fl is not None:
                fl.note(self.actor, "verb.timeout", exc.verb, exc.target_node)
            raise

    def r_read(self, ptr: int, *, signed: bool = False):
        """One-sided RDMA read (loopback if ``ptr`` is local — only the
        baseline locks do that deliberately).

        No ``verb.issue`` flight note here or in :meth:`r_write`: reads
        and writes are the poll-loop verbs — recording each one both
        blows the <3% recorder budget and floods the ring with spin
        noise that evicts the protocol events a post-mortem needs.  The
        atomics below are the protocol chokepoints and are recorded;
        timeouts are recorded for every verb kind in :meth:`_remote`.
        """
        value = yield from self._remote(self._net.r_read(
            self.node_id, self.thread_id, ptr, signed=signed))
        return value

    def r_write(self, ptr: int, value: int):
        """One-sided RDMA write (unrecorded, see :meth:`r_read`)."""
        yield from self._remote(self._net.r_write(
            self.node_id, self.thread_id, ptr, value))

    def r_cas(self, ptr: int, expected: int, desired: int, *, signed: bool = False):
        """One-sided RDMA compare-and-swap; returns the previous value."""
        fl = self._flight
        if fl is not None:
            fl.note(self.actor, "verb.issue", "rCAS", ptr >> ADDR_BITS)
        old = yield from self._remote(self._net.r_cas(
            self.node_id, self.thread_id, ptr, expected, desired,
            signed=signed, actor=self.actor))
        return old

    def r_faa(self, ptr: int, delta: int, *, signed: bool = False):
        """One-sided RDMA fetch-and-add; returns the previous value."""
        fl = self._flight
        if fl is not None:
            fl.note(self.actor, "verb.issue", "rFAA", ptr >> ADDR_BITS)
        old = yield from self._remote(self._net.r_faa(
            self.node_id, self.thread_id, ptr, delta, signed=signed,
            actor=self.actor))
        return old

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ThreadContext {self.actor}>"
