"""Cluster model: nodes, application-thread contexts, builder.

A :class:`Cluster` owns the simulation environment, one memory region
and NIC per node, the fabric, and (optionally) a race auditor and a
trace buffer.  :class:`ThreadContext` is the execution context the
paper's system model gives a thread ``t_i^j``: the *local* operation
family (``Read``/``Write``/``CAS`` + fences, valid only against memory
on the thread's own node) and the *remote* verb family
(``rRead``/``rWrite``/``rCAS``), plus the locality check on RDMA
pointers that the ALock's ``Lock()`` entry point performs.
"""

from repro.cluster.cluster import Cluster, Node
from repro.cluster.context import ThreadContext

__all__ = ["Cluster", "Node", "ThreadContext"]
