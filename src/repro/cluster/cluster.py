"""Cluster construction: nodes, regions, NICs, fabric, shared services.

The :class:`Cluster` is the root object every experiment builds first.
It mirrors the paper's testbed shape: ``n`` identical nodes, each with
one RNIC and one slab of RDMA-registered memory, connected by a uniform
fabric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigError
from repro.common.rng import RngStreams
from repro.common.trace import TraceBuffer
from repro.faults import FaultInjector, FaultPlan
from repro.memory.pointer import MAX_NODES
from repro.memory.races import RaceAuditor
from repro.memory.region import MemoryRegion
from repro.obs import ObsConfig, Observability
from repro.obs.flight import DEFAULT_CAPACITY, FlightRecorder
from repro.rdma.config import RdmaConfig
from repro.rdma.network import RdmaNetwork
from repro.sim.core import Environment

#: Default per-node slab: enough for thousands of locks + descriptors.
DEFAULT_REGION_BYTES = 4 << 20


@dataclass
class Node:
    """One machine: id, its memory slab, and a view of its NIC."""

    node_id: int
    region: MemoryRegion

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Node {self.node_id}>"


class Cluster:
    """An ``n``-node RDMA cluster simulation.

    Args:
        n_nodes: number of machines (1..32 with the default pointer width).
        config: cost-model bundle; defaults to the CX-3 calibration.
        region_bytes: RDMA slab size per node.
        seed: root seed for all derived RNG streams.
        audit: Table-1 race auditing mode (``"off"``/``"record"``/``"strict"``).
        trace: enable the protocol trace buffer (quickstart walkthroughs).
        faults: optional :class:`~repro.faults.FaultPlan`; an *active*
            plan arms the verb-path retransmission harness and the fault
            injector (seeded from this cluster's RNG registry, so fault
            schedules replay exactly).  ``None`` or an inactive plan
            keeps the fault-free code path.
        obs: optional :class:`~repro.obs.ObsConfig` enabling typed trace
            spans and/or the metrics registry.  The registry's pull-model
            collectors (NIC/verb/fault counters) are wired regardless, so
            ``cluster.obs.metrics.collect()`` works even with recording
            off.
        flight: keep the always-on flight recorder (default).  ``False``
            is for overhead benchmarks only — without the ring, failures
            lose their post-mortem event window.
        flight_capacity: flight ring size (events retained).
    """

    def __init__(self, n_nodes: int, *, config: Optional[RdmaConfig] = None,
                 region_bytes: int = DEFAULT_REGION_BYTES, seed: int = 0,
                 audit: str = "record", trace: bool = False,
                 faults: Optional[FaultPlan] = None,
                 obs: Optional[ObsConfig] = None,
                 flight: bool = True, flight_capacity: int = DEFAULT_CAPACITY):
        if not 1 <= n_nodes <= MAX_NODES:
            raise ConfigError(f"n_nodes must be in [1, {MAX_NODES}], got {n_nodes}")
        if faults is not None and not isinstance(faults, FaultPlan):
            raise ConfigError(f"faults must be a FaultPlan, got {faults!r}")
        if obs is not None and not isinstance(obs, ObsConfig):
            raise ConfigError(f"obs must be an ObsConfig, got {obs!r}")
        self.env = Environment()
        self.config = config or RdmaConfig()
        self.rng = RngStreams(seed)
        self.auditor = RaceAuditor(mode=audit) if audit != "off" else RaceAuditor(mode="off")
        self.tracer = TraceBuffer(enabled=trace)
        self.obs = Observability(self.env, obs or ObsConfig())
        # Always-on flight recorder (the backward-looking half of obs):
        # the env hook feeds schedule tie-breaks, the network/injector
        # handles feed verb + fault lifecycle, locks note transitions.
        self.flight = FlightRecorder(self.env, flight_capacity) if flight else None
        self.env.flight = self.flight
        self.fault_plan = faults
        self.fault_injector = (
            FaultInjector(faults, self.rng.fork("faults"))
            if faults is not None and faults.active else None)
        if self.fault_injector is not None:
            self.fault_injector.flight = self.flight
        self.regions = [
            MemoryRegion(self.env, i, region_bytes, auditor=self.auditor)
            for i in range(n_nodes)
        ]
        self.network = RdmaNetwork(
            self.env, self.config, self.regions, auditor=self.auditor,
            jitter_rng=self.rng.get("fabric-jitter"),
            injector=self.fault_injector, obs=self.obs,
            flight=self.flight)
        self.nodes = [Node(i, self.regions[i]) for i in range(n_nodes)]
        self._contexts: dict[tuple[int, int], "ThreadContext"] = {}
        self._register_collectors()

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def thread_ctx(self, node_id: int, thread_id: int) -> "ThreadContext":
        """The (cached) execution context for thread ``t_node^thread``."""
        from repro.cluster.context import ThreadContext

        if not 0 <= node_id < self.n_nodes:
            raise ConfigError(f"node {node_id} out of range for {self.n_nodes}-node cluster")
        key = (node_id, thread_id)
        ctx = self._contexts.get(key)
        if ctx is None:
            ctx = ThreadContext(self, node_id, thread_id)
            self._contexts[key] = ctx
        return ctx

    def alloc_on(self, node_id: int, nbytes: int, align: int = 64) -> int:
        """Allocate RDMA memory on ``node_id``; returns a packed pointer."""
        return self.regions[node_id].alloc_ptr(nbytes, align)

    def run(self, until=None):
        """Advance the simulation (delegates to the environment)."""
        return self.env.run(until)

    def _register_collectors(self) -> None:
        """Consolidate the scattered subsystem counters into the metrics
        registry's pull side.  ``stats()`` and ``metrics.collect()`` are
        views of the same tree."""
        reg = self.obs.metrics
        reg.add_collector("network", self.network.stats)
        reg.add_collector("memory", lambda: [
            {
                "node": r.node_id,
                "local_reads": r.local_reads,
                "local_writes": r.local_writes,
                "local_rmws": r.local_rmws,
                "remote_ops_landed": r.remote_ops_landed,
                "bytes_allocated": r.bytes_allocated,
            }
            for r in self.regions
        ])
        reg.add_collector("atomicity_violations",
                          lambda: self.auditor.violation_count)
        reg.add_collector("threads", lambda: [
            {
                "node": node_id,
                "thread": thread_id,
                "local_ops": ctx.local_op_count,
                "remote_ops": ctx.remote_op_count,
                "verb_timeouts": ctx.verb_timeouts,
            }
            for (node_id, thread_id), ctx in sorted(self._contexts.items())
        ])

    def stats(self) -> dict:
        """Cluster-wide counters: verbs, NICs, memory, audit results.

        A subset view of :meth:`repro.obs.metrics.MetricsRegistry.collect`
        (kept for backwards compatibility — the registry tree adds
        per-thread counters and any pushed app metrics)."""
        tree = self.obs.metrics.collect()
        return {
            "network": tree["network"],
            "memory": tree["memory"],
            "atomicity_violations": tree["atomicity_violations"],
        }
