"""Experiment ``ext-related`` — the §1/§7 alternatives, measured.

Not a figure in the paper: the authors dismiss the filter lock, bakery
and RPC designs analytically.  This experiment runs them against ALock
on the same lock-table workload so the dismissals become data, plus the
CXL outlook (naive mixed-CAS lock on a coherent fabric).
"""

from __future__ import annotations

from repro.analysis import ratio
from repro.cluster import Cluster
from repro.experiments.base import ExperimentResult, is_strict, scale_params
from repro.locks import make_lock
from repro.locks.extensions.coherent import cxl_config
from repro.workload import WorkloadSpec, run_workload

CONTENDERS = (
    ("alock", {}),
    ("rpc", {}),
    ("filter", {"max_slots": 8}),
    ("bakery", {"max_slots": 8}),
)


def _uncontended_ns(kind: str, options: dict, cluster=None) -> float:
    cluster = cluster or Cluster(2, audit="off")
    lock = make_lock(kind, cluster, 1, **options)
    ctx = cluster.thread_ctx(0, 0)
    env = cluster.env

    def proc():
        yield from lock.lock(ctx)
        yield from lock.unlock(ctx)
        start = env.now
        yield from lock.lock(ctx)
        yield from lock.unlock(ctx)
        return env.now - start

    p = env.process(proc())
    cluster.run()
    assert p.ok, p.value
    return p.value


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    params = scale_params(scale)
    result = ExperimentResult(
        "ext-related",
        "Related-work alternatives (filter / bakery / RPC / CXL) vs ALock",
        scale)

    # -- uncontended remote op cost ---------------------------------------
    costs = {kind: _uncontended_ns(kind, options)
             for kind, options in CONTENDERS}
    costs["mixedcas@cxl"] = _uncontended_ns(
        "mixedcas", {}, Cluster(2, config=cxl_config(), audit="off"))
    for kind, cost in costs.items():
        result.rows.append({"metric": "uncontended_remote_op_ns",
                            "lock": kind, "value": round(cost),
                            "vs_alock": round(ratio(cost, costs["alock"]), 1)})

    # -- contended throughput ---------------------------------------------
    base = WorkloadSpec(n_nodes=3, threads_per_node=max(params["threads"]),
                        n_locks=12, locality_pct=95.0,
                        warmup_ns=params["warmup_ns"],
                        measure_ns=params["measure_ns"],
                        seed=seed, audit="off")
    tputs = {}
    for kind, options in CONTENDERS:
        tput = run_workload(base.with_(lock_kind=kind,
                                       lock_options=options)).throughput_ops_per_sec
        tputs[kind] = tput
        result.rows.append({"metric": "throughput_ops", "lock": kind,
                            "value": round(tput),
                            "vs_alock": round(ratio(tput, tputs["alock"]), 3)})

    result.check("filter lock pays O(n) verbs: slot growth raises cost",
                 _uncontended_ns("filter", {"max_slots": 8})
                 > 1.5 * _uncontended_ns("filter", {"max_slots": 3}))
    result.check("ALock beats filter and bakery by >= 10x",
                 tputs["alock"] >= 10 * tputs["filter"]
                 and tputs["alock"] >= 10 * tputs["bakery"])
    if is_strict(scale):
        result.check("ALock beats the RPC service at scale (server CPU bound)",
                     tputs["alock"] > 1.5 * tputs["rpc"])
    result.notes.append(
        "CXL outlook (§7): on a coherent fabric the naive one-word lock "
        f"costs {costs['mixedcas@cxl']:.0f} ns uncontended remote — within "
        "reach of ALock, while remaining incorrect on plain RDMA "
        "(see tests/locks/test_extensions.py).")
    return result
