"""Experiment ``ext-phases`` — lock-phase latency decomposition (beyond
the paper; quantifies the Fig. 6 narrative).

Fig. 6 explains *why* ALock wins on local accesses — no loopback verbs,
shared-memory MCS queue — but the paper supports the explanation only
with end-to-end CDFs.  With typed spans on, every operation splits into
an exact partition: queue-wait / cross-cohort-wait / critical-section /
release.  This experiment runs the three §6 locks under the same
contended workload and reports where each one's latency actually goes:

* for **ALock**, cross-cohort (Peterson) wait is visible and bounded,
  and local-cohort queue wait is cheap (shared-memory, event-driven);
* for **MCS**, all waiting is loopback-polled queue wait — same
  discipline as ALock's remote cohort, paid on *every* access;
* for the **spinlock**, there is no queue at all: the entire latency is
  "queue_wait" (rCAS retry storm) with nothing attributable.

Shape checks are quantitative, not narrative: the per-op phase sums must
equal the workload runner's independently-measured end-to-end samples to
float tolerance — the decomposition is proven against the ground truth
it claims to explain.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult, is_strict, scale_params
from repro.obs import ObsConfig
from repro.obs.phases import extract_operations, phase_summary
from repro.workload import WorkloadSpec, run_workload

LOCKS = ("alock", "mcs", "spinlock")


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    params = scale_params(scale)
    n_nodes = max(params["nodes"])
    threads = max(params["threads"])
    ops = max(10, params["measure_ns"] // 100_000)
    result = ExperimentResult(
        "ext-phases", "Lock-phase latency decomposition: queue-wait / "
        "cross-cohort / critical-section / release per lock kind", scale)
    base = WorkloadSpec(
        n_nodes=n_nodes, threads_per_node=threads, n_locks=20,
        locality_pct=90.0, ops_per_thread=int(ops), cs_ns=500.0,
        seed=seed, audit="off")
    obs = ObsConfig(spans=True, metrics=True)

    summaries: dict[str, dict] = {}
    sums_match = True
    counts_match = True
    for kind in LOCKS:
        res = run_workload(base.with_(lock_kind=kind), obs=obs)
        lock_ops = extract_operations(res.spans)
        # Ground truth: every span-derived operation latency must equal a
        # runner-measured sample (count mode measures all ops).
        span_e2e = np.sort(np.array([op.end_to_end_ns for op in lock_ops]))
        runner_e2e = np.sort(res.latencies_ns)
        counts_match &= len(span_e2e) == len(runner_e2e)
        sums_match &= counts_match and bool(
            np.allclose(span_e2e, runner_e2e, rtol=1e-9, atol=1e-6))
        summary = phase_summary(lock_ops)
        summaries[kind] = summary
        result.rows.append({
            "lock": kind,
            "ops": summary["count"],
            "e2e_ns": round(summary["mean_end_to_end_ns"]),
            "queue_wait_ns": round(summary["mean_queue_wait_ns"]),
            "cross_cohort_ns": round(summary["mean_cross_cohort_ns"]),
            "cs_ns": round(summary["mean_critical_section_ns"]),
            "release_ns": round(summary["mean_release_ns"]),
            "queue_share_pct": round(100 * summary["share_queue_wait"], 1),
            "cross_share_pct": round(100 * summary["share_cross_cohort"], 1),
        })
        # Locality split for the Fig. 6 narrative (ALock local vs remote).
        if kind == "alock":
            for cohort_name, cohort_ops in sorted(
                    _split_by_cohort(lock_ops).items()):
                s = phase_summary(cohort_ops)
                if s["count"]:
                    result.rows.append({
                        "lock": f"alock/{cohort_name}",
                        "ops": s["count"],
                        "e2e_ns": round(s["mean_end_to_end_ns"]),
                        "queue_wait_ns": round(s["mean_queue_wait_ns"]),
                        "cross_cohort_ns": round(s["mean_cross_cohort_ns"]),
                        "cs_ns": round(s["mean_critical_section_ns"]),
                        "release_ns": round(s["mean_release_ns"]),
                        "queue_share_pct": round(100 * s["share_queue_wait"], 1),
                        "cross_share_pct": round(100 * s["share_cross_cohort"], 1),
                    })
                    summaries[f"alock/{cohort_name}"] = s

    result.check(
        "span-derived operation count equals runner-measured sample count",
        counts_match)
    result.check(
        "phase sums equal end-to-end latency samples (float tolerance)",
        sums_match)
    result.check(
        "only ALock competes cross-cohort (Peterson spans exclusive to it)",
        summaries["alock"]["mean_cross_cohort_ns"] > 0
        and summaries["mcs"]["mean_cross_cohort_ns"] == 0
        and summaries["spinlock"]["mean_cross_cohort_ns"] == 0)
    result.check(
        "cross-cohort wait is a minority share of ALock latency (budget "
        "amortizes Peterson over the cohort)",
        summaries["alock"]["share_cross_cohort"] < 0.5)
    if is_strict(scale) and "alock/local" in summaries \
            and "alock/remote" in summaries:
        result.check(
            "ALock local-cohort acquire wait is below the remote cohort's "
            "(Fig. 6: shared-memory path vs verb path)",
            (summaries["alock/local"]["mean_queue_wait_ns"]
             + summaries["alock/local"]["mean_cross_cohort_ns"])
            < (summaries["alock/remote"]["mean_queue_wait_ns"]
               + summaries["alock/remote"]["mean_cross_cohort_ns"]))

    result.notes.append(
        "mean end-to-end: "
        + ", ".join(f"{k}: {summaries[k]['mean_end_to_end_ns']:.0f}ns"
                    for k in LOCKS))
    result.notes.append(
        "ALock phase shares: queue {:.0f}%, cross-cohort {:.0f}%, "
        "cs {:.0f}%, release {:.0f}%".format(
            100 * summaries["alock"]["share_queue_wait"],
            100 * summaries["alock"]["share_cross_cohort"],
            100 * summaries["alock"]["share_critical_section"],
            100 * summaries["alock"]["share_release"]))
    return result


def _split_by_cohort(lock_ops) -> dict[str, list]:
    """Partition ALock operations by the cohort annotated on the acquire
    span (local = the access hit the lock's home node)."""
    groups: dict[str, list] = {"local": [], "remote": []}
    for op in lock_ops:
        if op.cohort in groups:
            groups[op.cohort].append(op)
    return groups
