"""Experiment ``fig1`` — RDMA loopback saturation (paper Fig. 1, §2).

The paper's motivating microbenchmark: an RDMA CAS spinlock over 1000
locks (negligible logical contention) on a **single machine**, all
accesses through loopback.  Throughput peaks at a few threads, then
*declines* as loopback traffic drains PCIe bandwidth and the RX buffer
accumulates.

Paper shape: rise → peak at a small thread count → decline.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, prefetch_runs, scale_params
from repro.workload import WorkloadSpec, run_workload


def _spec(threads: int, *, params: dict, seed: int) -> WorkloadSpec:
    return WorkloadSpec(
        n_nodes=1, threads_per_node=threads, n_locks=1000,
        locality_pct=100.0, lock_kind="spinlock",
        warmup_ns=params["warmup_ns"], measure_ns=params["measure_ns"],
        seed=seed, audit="off")


def run(scale: str = "small", seed: int = 0,
        workers: int = 0) -> ExperimentResult:
    params = scale_params(scale)
    result = ExperimentResult(
        "fig1", "RDMA spinlock with 1k locks on 1 node (loopback saturation)",
        scale)
    threads_axis = params["fig1_threads"]
    prefetched = prefetch_runs(
        (_spec(threads, params=params, seed=seed) for threads in threads_axis),
        workers)
    throughputs = []
    for threads in threads_axis:
        spec = _spec(threads, params=params, seed=seed)
        run_result = prefetched.get(spec)
        if run_result is None:
            run_result = run_workload(spec)
        tput = run_result.throughput_ops_per_sec
        throughputs.append(tput)
        rx = run_result.nic_stats[0]
        result.rows.append({
            "threads": threads,
            "throughput_ops": round(tput),
            "p50_ns": round(run_result.latency.p50),
            "p99_ns": round(run_result.latency.p99),
            "rx_utilization": round(rx["rx_utilization"], 3),
            "rx_peak_queue": rx["rx_peak_queue"],
            "loopback_verbs": run_result.loopback_verbs,
        })
    result.series["fig1"] = (list(threads_axis),
                             {"spinlock": throughputs})
    peak_idx = max(range(len(throughputs)), key=throughputs.__getitem__)
    result.check("throughput peaks before the largest thread count",
                 peak_idx < len(throughputs) - 1)
    result.check("throughput declines past the peak (RX-buffer congestion)",
                 throughputs[-1] < 0.9 * throughputs[peak_idx])
    result.check("all traffic is loopback",
                 all(row["loopback_verbs"] > 0 for row in result.rows))
    result.notes.append(
        f"peak at {threads_axis[peak_idx]} threads "
        f"({throughputs[peak_idx]:.0f} op/s); paper observes the peak at a "
        f"few threads on a 8-core/16-thread Xeon with a CX-3 RNIC.")
    return result
