"""Experiment ``fig6`` — latency CDFs (paper Fig. 6, §6.3).

Twelve panels on a fixed cluster (paper: 10 nodes, 8 threads/node):
rows are locality (100 / 95 / 90 / 85%), columns are contention
(20 / 100 / 1000 locks); each panel holds one latency CDF per lock type.
Panels: (a)(b)(c) = 100% locality × {20,100,1000} locks, (d)(e)(f) = 95%,
(g)(h)(i) = 90%, (j)(k)(l) = 85%.

Paper shapes asserted:

* 100% locality: ALock's distribution sits far left of both baselines
  (medians ≥ ~8× faster at high contention);
* high contention: the spinlock has the fattest tail;
* medium contention, mixed locality: ALock and MCS tails converge
  (similar structure, both pass the lock and spin locally);
* low contention: ALock's advantage over MCS shrinks as locality drops
  from 95% to 85%.
"""

from __future__ import annotations

from repro.analysis import ratio
from repro.experiments.base import (CONTENTION_LOCKS, ExperimentResult,
                                    is_strict, prefetch_runs, scale_params)
from repro.workload import WorkloadSpec, run_workload

LOCKS = ("alock", "spinlock", "mcs")
LOCALITY_ROWS = (100.0, 95.0, 90.0, 85.0)
_PANEL_NAMES = "abcdefghijkl"


def _spec(lock_kind: str, locality: float, n_locks: int, *, n_nodes: int,
          threads: int, params: dict, seed: int) -> WorkloadSpec:
    return WorkloadSpec(
        n_nodes=n_nodes, threads_per_node=threads,
        n_locks=n_locks, locality_pct=locality, lock_kind=lock_kind,
        warmup_ns=params["warmup_ns"], measure_ns=params["measure_ns"],
        seed=seed, audit="off")


def run(scale: str = "small", seed: int = 0,
        workers: int = 0) -> ExperimentResult:
    params = scale_params(scale)
    # Paper caption: 10-node cluster with 8 threads.  Use the scale's
    # nearest equivalent.
    n_nodes = max(params["nodes"]) if scale != "paper" else 10
    threads = 8 if 8 in params["threads"] else max(params["threads"])
    prefetched = prefetch_runs(
        (_spec(lock_kind, locality, n_locks, n_nodes=n_nodes,
               threads=threads, params=params, seed=seed)
         for locality in LOCALITY_ROWS
         for n_locks in CONTENTION_LOCKS.values()
         for lock_kind in LOCKS),
        workers)
    result = ExperimentResult(
        "fig6",
        f"Latency CDFs on {n_nodes} nodes x {threads} threads "
        f"(locality rows x contention columns)",
        scale)

    summaries: dict[tuple[str, str, float], dict] = {}
    for row, locality in enumerate(LOCALITY_ROWS):
        for col, (level, n_locks) in enumerate(CONTENTION_LOCKS.items()):
            panel = _PANEL_NAMES[row * 3 + col]
            curves = {}
            for lock_kind in LOCKS:
                spec = _spec(lock_kind, locality, n_locks, n_nodes=n_nodes,
                             threads=threads, params=params, seed=seed)
                run_result = prefetched.get(spec)
                if run_result is None:
                    run_result = run_workload(spec)
                lat = run_result.latency
                values, probs = run_result.latency_cdf(points=50)
                curves[lock_kind] = (values.tolist(), probs.tolist())
                summaries[(level, lock_kind, locality)] = {
                    "mean": lat.mean, "p50": lat.p50, "p99": lat.p99,
                    "p999": lat.p999,
                }
                result.rows.append({
                    "panel": panel, "locality_pct": locality,
                    "contention": level, "locks": n_locks,
                    "lock": lock_kind,
                    "p50_ns": round(lat.p50),
                    "p90_ns": round(lat.p90),
                    "p99_ns": round(lat.p99),
                    "p999_ns": round(lat.p999),
                    "samples": lat.count,
                })
            result.series[panel] = ((), curves)

    # -- shape checks --------------------------------------------------
    for level in CONTENTION_LOCKS:
        a = summaries[(level, "alock", 100.0)]
        s = summaries[(level, "spinlock", 100.0)]
        m = summaries[(level, "mcs", 100.0)]
        # Paper: 17x/33x medians.  At extreme queueing (high contention,
        # many threads) waiting dominates both designs and medians
        # compress, so the floor is 4x rather than the paper's testbed
        # factors.
        result.check(
            f"100% locality / {level}: ALock median >= 4x faster than both",
            s["p50"] >= 4 * a["p50"] and m["p50"] >= 4 * a["p50"])
    if is_strict(scale):
        high_spin_tail = summaries[("high", "spinlock", 85.0)]["p999"]
        high_alock_tail = summaries[("high", "alock", 85.0)]["p999"]
        result.check(
            "high contention 85% locality: spinlock tail latency exceeds ALock's",
            high_spin_tail > high_alock_tail)
        med_alock = summaries[("medium", "alock", 90.0)]["p99"]
        med_mcs = summaries[("medium", "mcs", 90.0)]["p99"]
        result.check(
            "medium contention 90% locality: ALock and MCS p99 within ~4x "
            "(similar structure)",
            ratio(max(med_alock, med_mcs), min(med_alock, med_mcs)) <= 4.0)
    # The paper reports *average* gaps (means capture the remote
    # fraction; medians at >=85% locality are all local fast-path ops).
    gap95 = ratio(summaries[("low", "mcs", 95.0)]["mean"],
                  summaries[("low", "alock", 95.0)]["mean"])
    gap85 = ratio(summaries[("low", "mcs", 85.0)]["mean"],
                  summaries[("low", "alock", 85.0)]["mean"])
    result.check(
        "low contention: ALock-vs-MCS mean gap shrinks from 95% to 85% locality",
        gap85 < gap95)
    result.notes.append(
        f"low-contention mean-latency gap vs MCS: {gap95:.2f}x at 95% "
        f"locality, {gap85:.2f}x at 85% (paper: 2.1x and 1.35x averages).")
    return result
