"""Experiment ``ext-faults`` — throughput under injected faults (beyond
the paper).

The paper evaluates a failure-free cluster; a production lock service
sees lost packets, latency spikes and stalled holders.  This experiment
sweeps the injected verb-loss rate with retransmission enabled and
measures how each lock's throughput degrades, then runs a holder-stall
scenario to exercise the lease-based stall detection.  Two properties
matter:

* a *zero-fault* plan is free — the harness must produce bit-identical
  results to the fault-free code path; and
* under loss, every run still completes (retries mask the drops; the
  retry counters in ``RunResult`` say how hard the transport worked),
  with ALock degrading no worse than the verb-hungrier baselines.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, is_strict, scale_params
from repro.faults import FaultPlan
from repro.workload import WorkloadSpec, run_workload

LOSS_RATES = (0.0, 0.01, 0.03)
LOCKS = ("alock", "spinlock", "mcs")

#: Requester retry policy used throughout the sweep: timeout ~10× the
#: unloaded verb RTT, doubled per retransmission.
RETRY = dict(retry_timeout_ns=25_000.0, retry_backoff=2.0, retry_limit=8)


def _plan(loss_rate: float) -> FaultPlan:
    return FaultPlan(verb_loss_rate=loss_rate, **RETRY)


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    params = scale_params(scale)
    n_nodes = max(params["nodes"])
    threads = max(params["threads"])
    result = ExperimentResult(
        "ext-faults", "Fault injection: throughput vs verb-loss rate, "
        "plus lease-based stall detection", scale)
    base = WorkloadSpec(
        n_nodes=n_nodes, threads_per_node=threads, n_locks=100,
        locality_pct=90.0, warmup_ns=params["warmup_ns"],
        measure_ns=params["measure_ns"], seed=seed, audit="off")

    # -- zero-fault plan must be free --------------------------------------
    plain = run_workload(base.with_(lock_kind="alock"))
    zero = run_workload(base.with_(lock_kind="alock", faults=FaultPlan()))
    result.check(
        "zero-fault FaultPlan reproduces the fault-free run exactly",
        plain.completed_ops == zero.completed_ops
        and plain.measured_ops == zero.measured_ops
        and not zero.fault_stats)

    # -- loss sweep --------------------------------------------------------
    tput: dict[tuple[str, float], float] = {}
    retries: dict[tuple[str, float], int] = {}
    for rate in LOSS_RATES:
        for kind in LOCKS:
            spec = base.with_(lock_kind=kind,
                              faults=_plan(rate) if rate else None)
            res = run_workload(spec)
            tput[kind, rate] = res.throughput_ops_per_sec
            retries[kind, rate] = res.retry_count
            result.rows.append({
                "loss_pct": rate * 100, "lock": kind,
                "throughput_ops": round(res.throughput_ops_per_sec),
                "retries": res.retry_count,
                "recoveries": res.recovery_count,
                "aborted_clients": res.fault_stats.get("aborted_clients", 0),
            })

    worst = LOSS_RATES[-1]
    result.check(
        "every lossy run makes progress (retries mask the drops)",
        all(tput[k, r] > 0 for k in LOCKS for r in LOSS_RATES))
    result.check(
        "retransmissions are reported at nonzero loss",
        all(retries[k, worst] > 0 for k in LOCKS))
    result.check(
        "loss costs throughput",
        all(tput[k, worst] < tput[k, 0.0] for k in LOCKS))
    if is_strict(scale):
        result.check(
            "ALock still leads both baselines at the highest loss rate",
            tput["alock", worst] > max(tput["spinlock", worst],
                                       tput["mcs", worst]))

    # -- holder stalls + lease detection -----------------------------------
    stall_plan = FaultPlan(
        verb_loss_rate=0.005, holder_stall_rate=0.02,
        holder_stall_ns=10 * params["measure_ns"] / 100,
        lease_ns=params["measure_ns"] / 40, **RETRY)
    stalled = run_workload(base.with_(lock_kind="alock", faults=stall_plan))
    result.rows.append({
        "loss_pct": 0.5, "lock": "alock+stalls",
        "throughput_ops": round(stalled.throughput_ops_per_sec),
        "retries": stalled.retry_count,
        "recoveries": stalled.recovery_count,
        "aborted_clients": stalled.fault_stats.get("aborted_clients", 0),
    })
    result.check(
        "lease monitor detects injected holder stalls",
        stalled.fault_stats.get("injected_cs_stalls", 0) > 0
        and stalled.fault_stats.get("lease_expirations", 0) > 0)
    result.check(
        "stalled run degrades but does not deadlock",
        0 < stalled.throughput_ops_per_sec < tput["alock", 0.0])

    result.notes.append(
        "throughput retained at {:.0f}% loss: ".format(worst * 100)
        + ", ".join(f"{k}: {tput[k, worst] / tput[k, 0.0]:.2f}x"
                    for k in LOCKS))
    return result
