"""Experiment ``table1`` — the local/remote atomicity matrix (paper §4).

Reproduces Table 1 *behaviourally*: for each (local op, remote op) pair
we stress one shared word from a local thread and a remote thread
simultaneously and decide, from the race auditor and from lost-update
evidence, whether the pair is atomic.  The result must match the paper's
matrix:

=============  ======  =======  =====
local \\ remote rRead   rWrite   rCAS
=============  ======  =======  =====
Read           Yes     Yes      Yes
Write          Yes     Yes      **No**
RMW            Yes     Yes      **No**
=============  ======  =======  =====
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.experiments.base import ExperimentResult
from repro.memory.pointer import ptr_addr

LOCAL_OPS = ("Read", "Write", "RMW")
REMOTE_OPS = ("rRead", "rWrite", "rCAS")

EXPECTED = {
    ("Read", "rRead"): True, ("Read", "rWrite"): True, ("Read", "rCAS"): True,
    ("Write", "rRead"): True, ("Write", "rWrite"): True, ("Write", "rCAS"): False,
    ("RMW", "rRead"): True, ("RMW", "rWrite"): True, ("RMW", "rCAS"): False,
}


def _stress_pair(local_op: str, remote_op: str, *, rounds: int = 40,
                 seed: int = 0) -> bool:
    """Run the pair concurrently on one word; True if it behaved
    atomically (no auditor violation)."""
    cluster = Cluster(2, seed=seed, audit="record")
    ptr = cluster.alloc_on(1, 64)
    region = cluster.regions[1]
    addr = ptr_addr(ptr)
    local = cluster.thread_ctx(1, 0)
    remote = cluster.thread_ctx(0, 0)
    env = cluster.env

    def remote_proc():
        for i in range(rounds):
            if remote_op == "rRead":
                yield from remote.r_read(ptr)
            elif remote_op == "rWrite":
                yield from remote.r_write(ptr, i)
            else:  # rCAS: always-matching compare so it commits
                current = region.peek(addr)
                yield from remote.r_cas(ptr, current, i)

    def local_proc():
        # Tight loop so local ops land throughout the remote op windows.
        for i in range(rounds * 20):
            if local_op == "Read":
                yield from local.read(ptr)
            elif local_op == "Write":
                yield from local.write(ptr, 1000 + i)
            else:  # RMW
                current = region.peek(addr)
                yield from local.cas(ptr, current, 2000 + i)

    env.process(remote_proc())
    env.process(local_proc())
    cluster.run()
    return cluster.auditor.violation_count == 0


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    rounds = {"smoke": 15, "small": 40, "paper": 120}.get(scale, 40)
    result = ExperimentResult(
        "table1", "Atomicity between 8-byte local and remote accesses", scale)
    for local_op in LOCAL_OPS:
        for remote_op in REMOTE_OPS:
            atomic = _stress_pair(local_op, remote_op, rounds=rounds, seed=seed)
            expected = EXPECTED[(local_op, remote_op)]
            result.rows.append({
                "local_op": local_op,
                "remote_op": remote_op,
                "atomic": "Yes" if atomic else "No",
                "paper_says": "Yes" if expected else "No",
                "match": atomic == expected,
            })
            result.check(f"{local_op} vs {remote_op} matches Table 1",
                         atomic == expected)
    return result
