"""``alock-experiments`` command-line entry point.

::

    alock-experiments list
    alock-experiments run fig1 fig4 --scale small --out results.md
    alock-experiments run all --scale smoke --parallel
    alock-experiments run fig5 --scale paper --workers 8
    alock-experiments sweep --lock alock mcs --locality 85 95 \\
        --seeds 0 1 2 --workers 4 --json sweep.json --csv sweep.csv
    alock-experiments sweep ... --cache            # memoize cells on disk
    alock-experiments sweep ... --resume           # recompute only what the
                                                   # cache store is missing
    alock-experiments explore --lock alock --schedules 50 --shrink
    alock-experiments explore --lock mcs --lock-option bug=lost_wakeup \\
        --lock-option poll_interval_ns=200 --nodes 1 --threads 3 --ops 3
    alock-experiments explore --replay "9:1" --lock alock ...
    alock-experiments fleet --workers 4 --budget 2000 --expect-find \\
        --write-corpus --corpus-dir tests/schedcheck/corpus
    alock-experiments fleet --preset faults --budget 500 --workers 4
    alock-experiments fleet --preset bugs-hard --no-coverage   # baseline
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.obs import ObsConfig
from repro.obs.capture import ObsCapture, activate, deactivate
from repro.obs.export import write_metrics, write_trace


def _resolve_workers(args) -> int:
    """``--workers N`` wins; ``--parallel`` means one worker per CPU."""
    if args.workers is not None:
        if args.workers < 0:
            raise SystemExit(f"--workers must be >= 0, got {args.workers}")
        return args.workers
    if args.parallel:
        return os.cpu_count() or 1
    return 0


def _sweep(args) -> int:
    from repro.parallel import METRICS, ResultCache, run_sweep_parallel
    from repro.workload.spec import WorkloadSpec

    workers = _resolve_workers(args)
    # --resume implies the cache; an explicit --cache/--no-cache wins.
    cache_enabled = args.cache if args.cache is not None else args.resume
    cache = ResultCache(args.cache_dir) if cache_enabled else None
    # Multi-valued arguments become sweep axes; single values pin the
    # base spec.  Declared order fixes the enumeration (= output) order.
    axis_args = (("lock_kind", args.lock_kind), ("n_nodes", args.nodes),
                 ("threads_per_node", args.threads), ("n_locks", args.locks),
                 ("locality_pct", args.locality))
    base_kwargs = dict(warmup_ns=args.warmup_ns, measure_ns=args.measure_ns,
                       think_ns=args.think_ns, cs_ns=args.cs_ns,
                       ops_per_thread=args.ops, audit="off")
    axes: dict[str, list] = {}
    for field_name, values in axis_args:
        if len(values) == 1:
            base_kwargs[field_name] = values[0]
        else:
            axes[field_name] = list(values)
    base = WorkloadSpec(seed=args.seeds[0], **base_kwargs)
    if args.metric not in METRICS:
        raise SystemExit(f"unknown --metric {args.metric!r}; "
                         f"choose from {sorted(METRICS)}")

    done = {"n": 0}

    def _progress(res) -> None:
        done["n"] += 1
        status = "ok" if res.ok else "FAILED"
        print(f"  [{done['n']}] cell {res.key} {status}", file=sys.stderr)

    result = run_sweep_parallel(
        base, axes, seeds=args.seeds, workers=workers, metric=args.metric,
        on_result=_progress if args.progress else None, cache=cache)
    print(f"swept {len(result.results)} cells "
          f"({len(result.failures)} failed) with "
          f"{result.workers} worker(s) in {result.elapsed_s:.1f}s")
    if cache is not None:
        verb = "resumed" if args.resume else "served"
        print(f"cache: {verb} {result.cache_hits} cell(s) from "
              f"{args.cache_dir}, computed {result.cache_misses} "
              f"({cache.stats.writes} written back)")
    for res in result.results:
        if res.ok:
            axis_desc = " ".join(f"{k}={v}" for k, v in res.key[1:])
            print(f"  {axis_desc}: {args.metric}={res.row['metric']:.0f}")
    for res in result.failures:
        first_line = (res.error or "").splitlines()[0]
        print(f"  FAILED {res.key}: {first_line}", file=sys.stderr)
    result.write(json_path=args.json_out, csv_path=args.csv_out)
    if args.json_out:
        print(f"json: {args.json_out}")
    if args.csv_out:
        print(f"csv: {args.csv_out}")
    return 1 if result.failures else 0


def _parse_lock_options(pairs: list[str]) -> tuple:
    """``["bug=lost_wakeup", "poll_interval_ns=200"]`` -> option tuple,
    with numeric-looking values coerced."""
    options = []
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--lock-option wants KEY=VALUE, got {pair!r}")
        value: object = raw
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                pass
        options.append((key, value))
    return tuple(options)


def _explore(args) -> int:
    from repro.schedcheck import (
        LockScenario,
        enumerate_schedules,
        explore_random,
        replay,
        shrink_failure,
    )

    scenario = LockScenario(
        lock_kind=args.lock_kind, n_nodes=args.nodes,
        threads_per_node=args.threads, n_locks=args.locks,
        ops_per_thread=args.ops, pick=args.pick, cs_ns=args.cs_ns,
        think_ns=args.think_ns, stagger_ns=args.stagger_ns,
        lock_options=_parse_lock_options(args.lock_option),
        seed=args.scenario_seed)

    if args.replay is not None:
        decisions = "" if args.replay == "-" else args.replay
        result = replay(scenario, decisions)
        print(result.summary())
        return 0 if result.ok else 1

    if args.policy == "dfs":
        report = enumerate_schedules(
            scenario, max_schedules=args.schedules,
            max_choice_points=args.max_choice_points,
            stop_on_failure=not args.keep_going)
    else:
        report = explore_random(
            scenario, args.schedules, seed=args.seed, policy=args.policy,
            change_points=args.change_points,
            stop_on_failure=not args.keep_going)
    print(report.summary())
    failure = report.first_failure
    if failure is None:
        return 0
    print(f"\nfirst failure (schedule {failure.schedule_index}):")
    print(f"  {failure.summary()}")
    if args.shrink:
        shrunk = shrink_failure(scenario, failure)
        print(f"  {shrunk.summary()}")
        print(f"  replay with: --replay "
              f"{shrunk.decisions.to_string() or '-'!r}")
    return 1


def _fleet(args) -> int:
    from repro.schedcheck.fleet import (
        PRESETS,
        FleetConfig,
        run_fleet,
        write_fleet_corpus,
    )

    preset = PRESETS[args.preset]
    # The preset's per-bug budgets are the documented *serial* repro
    # constants; a fleet run explores all scenarios at one shared budget.
    budget = args.budget
    if budget is None:
        budget = max(b for _name, _sc, b in preset)
    config = FleetConfig(
        scenarios=tuple((name, sc) for name, sc, _b in preset),
        budget=budget, seed=args.seed, coverage=args.coverage,
        cell_size=args.cell_size, cells_per_round=args.cells_per_round,
        policy=args.policy, shrink=not args.no_shrink)
    workers = _resolve_workers(args)

    def _progress(report) -> None:
        print(f"  round {report.rounds}: {report.total_schedules} "
              f"schedules, {len(report.found)}/{len(report.scenarios)} "
              f"scenario(s) failing", file=sys.stderr)

    report = run_fleet(config, workers=workers,
                       on_round=_progress if args.progress else None)
    print(report.summary())
    if args.report_out:
        with open(args.report_out, "wb") as fh:
            fh.write(report.to_json_bytes())
        print(f"report: {args.report_out}")
    if args.write_corpus:
        for path in write_fleet_corpus(report, args.corpus_dir):
            print(f"corpus: {path}")
    if args.expect_find:
        missing = [s.name for s in report.scenarios if s.first_find is None]
        if missing:
            print(f"expected a failure in every scenario; none found for: "
                  f"{', '.join(missing)}", file=sys.stderr)
            return 1
        return 0
    return 1 if report.found else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="alock-experiments",
        description="Regenerate the ALock paper's tables and figures on "
                    "the RDMA-cluster simulator.")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_p = sub.add_parser("run", help="run experiments")
    run_p.add_argument("experiments", nargs="+",
                       help="experiment ids (or 'all')")
    run_p.add_argument("--scale", default="small",
                       choices=("smoke", "small", "paper"))
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--out", default=None,
                       help="also append markdown reports to this file")
    run_p.add_argument("--trace-out", default=None, metavar="FILE",
                       help="record typed spans for every workload run and "
                            "write a Chrome/Perfetto trace-event JSON "
                            "(open at ui.perfetto.dev)")
    run_p.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write the per-run metrics-registry snapshots "
                            "as flat JSON")
    run_p.add_argument("--workers", type=int, default=None, metavar="N",
                       help="shard experiment cells over N worker processes "
                            "(results are identical to a serial run; 0/1 = "
                            "serial)")
    run_p.add_argument("--parallel", action="store_true",
                       help="shorthand for --workers <cpu count>")
    sweep_p = sub.add_parser(
        "sweep",
        help="grid sweep over workload axes with the parallel engine; "
             "multi-valued options become axes, JSON/CSV output is "
             "byte-identical at any worker count")
    sweep_p.add_argument("--lock", nargs="+", default=["alock"],
                         dest="lock_kind", metavar="KIND")
    sweep_p.add_argument("--nodes", nargs="+", type=int, default=[2])
    sweep_p.add_argument("--threads", nargs="+", type=int, default=[2],
                         help="threads per node")
    sweep_p.add_argument("--locks", nargs="+", type=int, default=[100])
    sweep_p.add_argument("--locality", nargs="+", type=float, default=[90.0],
                         help="locality percentages")
    sweep_p.add_argument("--seeds", nargs="+", type=int, default=[0],
                         help="root seeds (outermost axis when several)")
    sweep_p.add_argument("--metric", default="throughput",
                         help="row metric: throughput, p50, p99, p999, "
                              "mean_latency")
    sweep_p.add_argument("--ops", type=int, default=0,
                         help="count mode: exact ops per thread "
                              "(0 = duration mode)")
    sweep_p.add_argument("--warmup-ns", type=float, default=200_000.0)
    sweep_p.add_argument("--measure-ns", type=float, default=1_000_000.0)
    sweep_p.add_argument("--think-ns", type=float, default=0.0)
    sweep_p.add_argument("--cs-ns", type=float, default=0.0)
    sweep_p.add_argument("--workers", type=int, default=None, metavar="N",
                         help="worker processes (0/1 = serial)")
    sweep_p.add_argument("--parallel", action="store_true",
                         help="shorthand for --workers <cpu count>")
    sweep_p.add_argument("--json", default=None, dest="json_out",
                         metavar="FILE", help="write canonical JSON here")
    sweep_p.add_argument("--csv", default=None, dest="csv_out",
                         metavar="FILE", help="write canonical CSV here")
    sweep_p.add_argument("--cache", action=argparse.BooleanOptionalAction,
                         default=None,
                         help="content-addressed result cache: unchanged "
                              "cells are served from the store instead of "
                              "recomputed; output bytes are identical either "
                              "way (--no-cache disables; default off unless "
                              "--resume)")
    sweep_p.add_argument("--cache-dir", default=".alock-cache", metavar="DIR",
                         help="cache store location (default .alock-cache)")
    sweep_p.add_argument("--resume", action="store_true",
                         help="resume an interrupted sweep: recompute only "
                              "the cells missing from the cache store "
                              "(implies --cache)")
    sweep_p.add_argument("--progress", action="store_true",
                         help="print each cell as it completes (stderr)")
    exp_p = sub.add_parser(
        "explore",
        help="schedule exploration: hunt interleaving bugs in the real "
             "lock implementations")
    exp_p.add_argument("--lock", default="alock", dest="lock_kind",
                       help="registered lock kind (alock, mcs, spinlock, ...)")
    exp_p.add_argument("--nodes", type=int, default=2)
    exp_p.add_argument("--threads", type=int, default=2,
                       help="threads per node")
    exp_p.add_argument("--ops", type=int, default=4, help="ops per thread")
    exp_p.add_argument("--locks", type=int, default=1)
    exp_p.add_argument("--pick", default="single",
                       choices=("single", "local", "remote", "mixed"))
    exp_p.add_argument("--cs-ns", type=float, default=0.0)
    exp_p.add_argument("--think-ns", type=float, default=0.0)
    exp_p.add_argument("--stagger-ns", type=float, default=0.0)
    exp_p.add_argument("--scenario-seed", type=int, default=0,
                       help="cluster/workload seed (fixed across schedules)")
    exp_p.add_argument("--lock-option", action="append", default=[],
                       metavar="KEY=VALUE",
                       help="extra lock-factory option; repeatable "
                            "(e.g. bug=no_victim_check)")
    exp_p.add_argument("--policy", default="random",
                       choices=("random", "pct", "dfs"),
                       help="random walk, PCT priorities, or bounded "
                            "exhaustive enumeration")
    exp_p.add_argument("--schedules", type=int, default=50,
                       help="schedule budget")
    exp_p.add_argument("--seed", type=int, default=1,
                       help="exploration seed (random/pct)")
    exp_p.add_argument("--change-points", type=int, default=3,
                       help="PCT priority change points")
    exp_p.add_argument("--max-choice-points", type=int, default=None,
                       help="dfs: only permute the first K choice points")
    exp_p.add_argument("--keep-going", action="store_true",
                       help="do not stop at the first failing schedule")
    exp_p.add_argument("--shrink", action="store_true",
                       help="delta-debug the first failure down to a "
                            "minimal decision string")
    exp_p.add_argument("--replay", default=None, metavar="DECISIONS",
                       help="skip exploration; replay this decision string "
                            "('-' for the default schedule)")
    fleet_p = sub.add_parser(
        "fleet",
        help="parallel coverage-steered exploration of a scenario preset; "
             "report and corpus bytes are identical at any worker count")
    fleet_p.add_argument("--preset", default="bugs",
                         choices=("bugs", "bugs-hard", "faults"),
                         help="scenario set: the seeded lock defects, their "
                              "hardened (staggered) variants, or correct "
                              "locks under fault injection")
    fleet_p.add_argument("--budget", type=int, default=None, metavar="N",
                         help="schedule budget per scenario (default: the "
                              "preset's largest documented repro budget)")
    fleet_p.add_argument("--seed", type=int, default=0,
                         help="master fleet seed")
    fleet_p.add_argument("--coverage", action=argparse.BooleanOptionalAction,
                         default=True,
                         help="novelty steering from interleaving-prefix "
                              "coverage (--no-coverage = pure seeded walks, "
                              "the quality-comparison baseline)")
    fleet_p.add_argument("--cell-size", type=int, default=16, metavar="N",
                         help="schedules per worker cell")
    fleet_p.add_argument("--cells-per-round", type=int, default=4, metavar="N",
                         help="cells each active scenario adds per round")
    fleet_p.add_argument("--policy", default="random",
                         choices=("random", "pct"),
                         help="base walk policy for fresh schedules")
    fleet_p.add_argument("--no-shrink", action="store_true",
                         help="skip ddmin of each scenario's first failure")
    fleet_p.add_argument("--workers", type=int, default=None, metavar="N",
                         help="worker processes (0/1 = serial)")
    fleet_p.add_argument("--parallel", action="store_true",
                         help="shorthand for --workers <cpu count>")
    fleet_p.add_argument("--corpus-dir", default=".alock-corpus",
                         metavar="DIR",
                         help="where --write-corpus puts entries "
                              "(default .alock-corpus)")
    fleet_p.add_argument("--write-corpus", action="store_true",
                         help="freeze each scenario's shrunk first failure "
                              "as a content-addressed corpus entry (plus "
                              "its post-mortem dump)")
    fleet_p.add_argument("--report", default=None, dest="report_out",
                         metavar="FILE",
                         help="write the canonical fleet report JSON here")
    fleet_p.add_argument("--expect-find", action="store_true",
                         help="exit 0 only if *every* scenario produced a "
                              "failure (bug-hunt/CI-gate mode; default "
                              "exit semantics match 'explore': finding a "
                              "failure exits 1)")
    fleet_p.add_argument("--progress", action="store_true",
                         help="print a line per round (stderr)")
    args = parser.parse_args(argv)

    if args.command == "fleet":
        return _fleet(args)

    if args.command == "explore":
        return _explore(args)

    if args.command == "sweep":
        return _sweep(args)

    if args.command == "list":
        for exp_id in EXPERIMENTS:
            print(exp_id)
        return 0

    ids = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    workers = _resolve_workers(args)
    capture = None
    if args.trace_out or args.metrics_out:
        if workers > 1:
            # Span/metric capture hooks the runner in *this* process;
            # pool workers would silently escape it.
            print("note: --trace-out/--metrics-out require in-process "
                  "runs; ignoring --workers/--parallel", file=sys.stderr)
            workers = 0
        capture = activate(ObsCapture(ObsConfig(
            spans=bool(args.trace_out), metrics=bool(args.metrics_out))))
    failed = []
    reports = []
    try:
        for exp_id in ids:
            # Wall-clock here times the *host* run for the operator's
            # progress line; it never feeds simulation state or results.
            start = time.perf_counter()  # simlint: ignore[nondet-source]
            result = run_experiment(exp_id, scale=args.scale, seed=args.seed,
                                    workers=workers)
            elapsed = time.perf_counter() - start  # simlint: ignore[nondet-source]
            report = result.to_markdown()
            reports.append(report)
            print(report)
            print(f"\n({exp_id} finished in {elapsed:.1f}s)\n")
            if not result.all_shapes_hold:
                failed.append(exp_id)
    finally:
        if capture is not None:
            deactivate(capture)
    if capture is not None:
        if args.trace_out:
            write_trace(args.trace_out, capture.runs)
            print(f"trace: {len(capture.runs)} runs -> {args.trace_out} "
                  f"(load at ui.perfetto.dev)")
        if args.metrics_out:
            write_metrics(args.metrics_out, capture.runs)
            print(f"metrics: {len(capture.runs)} runs -> {args.metrics_out}")
    if args.out:
        with open(args.out, "a", encoding="utf-8") as fh:
            fh.write("\n\n".join(reports) + "\n")
    if failed:
        print(f"shape checks FAILED for: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
