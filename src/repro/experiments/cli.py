"""``alock-experiments`` command-line entry point.

::

    alock-experiments list
    alock-experiments run fig1 fig4 --scale small --out results.md
    alock-experiments run all --scale smoke
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.obs import ObsConfig
from repro.obs.capture import ObsCapture, activate, deactivate
from repro.obs.export import write_metrics, write_trace


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="alock-experiments",
        description="Regenerate the ALock paper's tables and figures on "
                    "the RDMA-cluster simulator.")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_p = sub.add_parser("run", help="run experiments")
    run_p.add_argument("experiments", nargs="+",
                       help="experiment ids (or 'all')")
    run_p.add_argument("--scale", default="small",
                       choices=("smoke", "small", "paper"))
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--out", default=None,
                       help="also append markdown reports to this file")
    run_p.add_argument("--trace-out", default=None, metavar="FILE",
                       help="record typed spans for every workload run and "
                            "write a Chrome/Perfetto trace-event JSON "
                            "(open at ui.perfetto.dev)")
    run_p.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write the per-run metrics-registry snapshots "
                            "as flat JSON")
    args = parser.parse_args(argv)

    if args.command == "list":
        for exp_id in EXPERIMENTS:
            print(exp_id)
        return 0

    ids = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    capture = None
    if args.trace_out or args.metrics_out:
        capture = activate(ObsCapture(ObsConfig(
            spans=bool(args.trace_out), metrics=bool(args.metrics_out))))
    failed = []
    reports = []
    try:
        for exp_id in ids:
            # Wall-clock here times the *host* run for the operator's
            # progress line; it never feeds simulation state or results.
            start = time.perf_counter()  # simlint: ignore[nondet-source]
            result = run_experiment(exp_id, scale=args.scale, seed=args.seed)
            elapsed = time.perf_counter() - start  # simlint: ignore[nondet-source]
            report = result.to_markdown()
            reports.append(report)
            print(report)
            print(f"\n({exp_id} finished in {elapsed:.1f}s)\n")
            if not result.all_shapes_hold:
                failed.append(exp_id)
    finally:
        if capture is not None:
            deactivate(capture)
    if capture is not None:
        if args.trace_out:
            write_trace(args.trace_out, capture.runs)
            print(f"trace: {len(capture.runs)} runs -> {args.trace_out} "
                  f"(load at ui.perfetto.dev)")
        if args.metrics_out:
            write_metrics(args.metrics_out, capture.runs)
            print(f"metrics: {len(capture.runs)} runs -> {args.metrics_out}")
    if args.out:
        with open(args.out, "a", encoding="utf-8") as fh:
            fh.write("\n\n".join(reports) + "\n")
    if failed:
        print(f"shape checks FAILED for: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
