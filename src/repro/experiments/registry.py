"""Experiment registry: id → runner."""

from __future__ import annotations

from typing import Callable

from repro.common.errors import ConfigError
from repro.experiments import (
    ext_faults,
    ext_phases,
    ext_related_work,
    ext_skew,
    fig1_loopback,
    fig4_budget,
    fig5_throughput,
    fig6_latency,
    table1_atomicity,
)
from repro.experiments.base import ExperimentResult

#: Paper artifacts first, then beyond-the-paper extensions (ext-*).
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1_atomicity.run,
    "fig1": fig1_loopback.run,
    "fig4": fig4_budget.run,
    "fig5": fig5_throughput.run,
    "fig6": fig6_latency.run,
    "ext-related": ext_related_work.run,
    "ext-skew": ext_skew.run,
    "ext-faults": ext_faults.run,
    "ext-phases": ext_phases.run,
}


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(experiment_id: str, scale: str = "small",
                   seed: int = 0) -> ExperimentResult:
    return get_experiment(experiment_id)(scale=scale, seed=seed)
