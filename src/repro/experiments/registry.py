"""Experiment registry: id → runner."""

from __future__ import annotations

import inspect
from typing import Callable

from repro.common.errors import ConfigError
from repro.experiments import (
    ext_faults,
    ext_phases,
    ext_related_work,
    ext_skew,
    fig1_loopback,
    fig4_budget,
    fig5_throughput,
    fig6_latency,
    table1_atomicity,
)
from repro.experiments.base import ExperimentResult

#: Paper artifacts first, then beyond-the-paper extensions (ext-*).
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1_atomicity.run,
    "fig1": fig1_loopback.run,
    "fig4": fig4_budget.run,
    "fig5": fig5_throughput.run,
    "fig6": fig6_latency.run,
    "ext-related": ext_related_work.run,
    "ext-skew": ext_skew.run,
    "ext-faults": ext_faults.run,
    "ext-phases": ext_phases.run,
}


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None


def supports_workers(experiment_id: str) -> bool:
    """Whether the experiment's runner takes a ``workers`` argument
    (i.e. can shard its cells over a process pool)."""
    fn = get_experiment(experiment_id)
    return "workers" in inspect.signature(fn).parameters


def run_experiment(experiment_id: str, scale: str = "small", seed: int = 0,
                   workers: int = 0) -> ExperimentResult:
    """Run one experiment.  ``workers > 1`` fans the experiment's sealed
    cells out over a process pool where the experiment supports it
    (fig1/fig4/fig5/fig6); results are identical to a serial run —
    every cell is a sealed seeded simulation (see repro.parallel)."""
    fn = get_experiment(experiment_id)
    if workers > 1 and supports_workers(experiment_id):
        return fn(scale=scale, seed=seed, workers=workers)
    return fn(scale=scale, seed=seed)
