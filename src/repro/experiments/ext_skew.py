"""Experiment ``ext-skew`` — Zipfian lock popularity (beyond the paper).

The paper sweeps *uniform* lock choice at three table sizes.  Real lock
services see skewed popularity; a Zipfian workload concentrates traffic
on a few hot locks, which favors designs that pass the lock efficiently.
This experiment sweeps the skew parameter and checks that ALock's lead
*persists* under skew.  (Measured: the lead compresses slightly as skew
grows — deep queues on hot locks let the MCS-style baselines amortize
their loopback overhead through passing too — but never inverts.)
"""

from __future__ import annotations

from repro.analysis import ratio
from repro.experiments.base import ExperimentResult, is_strict, scale_params
from repro.workload import WorkloadSpec, run_workload

THETAS = (0.5, 0.99, 1.3)


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    params = scale_params(scale)
    n_nodes = max(params["nodes"])
    threads = max(params["threads"])
    result = ExperimentResult(
        "ext-skew", "Zipfian lock popularity: ALock advantage vs skew", scale)

    advantage = {}
    for theta in THETAS:
        tputs = {}
        for kind in ("alock", "spinlock", "mcs"):
            spec = WorkloadSpec(
                n_nodes=n_nodes, threads_per_node=threads, n_locks=100,
                locality_pct=90.0, lock_kind=kind,
                distribution="zipfian", zipf_theta=theta,
                warmup_ns=params["warmup_ns"],
                measure_ns=params["measure_ns"], seed=seed, audit="off")
            tputs[kind] = run_workload(spec).throughput_ops_per_sec
        advantage[theta] = ratio(tputs["alock"],
                                 max(tputs["spinlock"], tputs["mcs"]))
        for kind, tput in tputs.items():
            result.rows.append({
                "zipf_theta": theta, "lock": kind,
                "throughput_ops": round(tput),
                "alock_advantage": round(advantage[theta], 2),
            })

    result.check("ALock leads at every skew level",
                 all(a > 1.0 for a in advantage.values()))
    if is_strict(scale):
        result.check(
            "ALock's advantage does not shrink as skew concentrates load",
            advantage[THETAS[-1]] >= 0.8 * advantage[THETAS[0]])
    result.notes.append(
        "advantage over the best baseline by theta: "
        + ", ".join(f"{t}: {advantage[t]:.2f}x" for t in THETAS))
    return result
