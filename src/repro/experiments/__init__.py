"""Experiment harness: one module per paper artifact.

Every table and figure of the paper's evaluation has a module here that
regenerates it on the simulator:

========  ==========================================================
id        paper artifact
========  ==========================================================
table1    Table 1 — local/remote atomicity matrix
fig1      Fig. 1 — RDMA spinlock loopback saturation (1 node)
fig4      Fig. 4 — budget sensitivity (relative speedup vs (5,5))
fig5      Fig. 5 — throughput grid (nodes × contention × locality)
fig6      Fig. 6 — latency CDFs (contention × locality, 8 threads)
========  ==========================================================

Plus beyond-the-paper extensions: ``ext-related`` (the §1/§7
alternatives measured) and ``ext-skew`` (Zipfian lock popularity).

Each experiment accepts a ``scale``:

* ``smoke`` — seconds; used by the test suite and CI shape checks.
* ``small`` — the default; minutes; same grid shape, reduced extent.
* ``paper`` — the full §6 grid (5/10/20 nodes, up to 12 threads/node).

Run from the command line::

    alock-experiments run fig1 fig5 --scale small
    alock-experiments list
"""

from repro.experiments.base import ExperimentResult, SCALES
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = [
    "ExperimentResult",
    "SCALES",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
]
