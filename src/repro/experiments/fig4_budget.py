"""Experiment ``fig4`` — budget sensitivity (paper Fig. 4, §6.1).

Sweep the (remote_budget, local_budget) grid and report throughput
relative to the (5, 5) baseline, averaged over 95/90/85% locality —
exactly the paper's methodology (their cluster: 20 nodes, 100 locks,
medium contention).

Paper shape: raising the remote budget while keeping the local budget
low helps (up to ~23%), because the reacquire operation is much more
expensive for the remote cohort (remote spinning in Peterson's
algorithm) than for the local cohort.
"""

from __future__ import annotations

from statistics import mean

from repro.analysis import relative_speedup
from repro.experiments.base import (ExperimentResult, is_strict,
                                    prefetch_runs, scale_params)
from repro.workload import WorkloadSpec, run_workload

BASELINE_BUDGET = 5


def _spec(remote_budget: int, local_budget: int, locality: float, *,
          params: dict, n_nodes: int, n_locks: int, threads: int,
          seed: int) -> WorkloadSpec:
    return WorkloadSpec(
        n_nodes=n_nodes, threads_per_node=threads, n_locks=n_locks,
        locality_pct=locality, lock_kind="alock",
        lock_options={"remote_budget": remote_budget,
                      "local_budget": local_budget},
        warmup_ns=params["warmup_ns"], measure_ns=params["measure_ns"],
        seed=seed, audit="off")


def run(scale: str = "small", seed: int = 0,
        workers: int = 0) -> ExperimentResult:
    params = scale_params(scale)
    # The paper runs 20 nodes x 100 locks (~2.4 threads per lock).  The
    # budget only matters while cohort queues actually form, so smaller
    # scales keep the *threads-per-lock pressure* rather than the
    # absolute table size.
    n_nodes = max(params["nodes"])
    threads = max(params["threads"])
    # One lock per node at reduced scales keeps the cross-cohort queue
    # pressure of the paper's 240-thread/100-lock configuration.
    n_locks = 100 if scale == "paper" else n_nodes
    budgets = params["budgets"]

    prefetched = prefetch_runs(
        (_spec(rb, lb, locality, params=params, n_nodes=n_nodes,
               n_locks=n_locks, threads=threads, seed=seed)
         for rb in budgets for lb in budgets
         for locality in params["localities"]),
        workers)

    def _avg_throughput(remote_budget: int, local_budget: int) -> float:
        """Throughput averaged over the locality mix for one budget pair."""
        samples = []
        for locality in params["localities"]:
            spec = _spec(remote_budget, local_budget, locality,
                         params=params, n_nodes=n_nodes, n_locks=n_locks,
                         threads=threads, seed=seed)
            run_result = prefetched.get(spec)
            if run_result is None:
                run_result = run_workload(spec)
            samples.append(run_result.throughput_ops_per_sec)
        return mean(samples)

    result = ExperimentResult(
        "fig4",
        "Relative speedup vs (remote=5, local=5) budgets, averaged over "
        "95/90/85% locality",
        scale)

    baseline = _avg_throughput(BASELINE_BUDGET, BASELINE_BUDGET)
    speedups: dict[tuple[int, int], float] = {}
    for remote_budget in budgets:
        for local_budget in budgets:
            tput = (baseline if (remote_budget == BASELINE_BUDGET
                                 and local_budget == BASELINE_BUDGET)
                    else _avg_throughput(remote_budget, local_budget))
            speedup = relative_speedup(tput, baseline)
            speedups[(remote_budget, local_budget)] = speedup
            result.rows.append({
                "remote_budget": remote_budget,
                "local_budget": local_budget,
                "throughput_ops": round(tput),
                "speedup_vs_5_5_pct": round(speedup, 1),
            })

    max_budget = max(budgets)
    best = max(speedups, key=speedups.get)
    if is_strict(scale):
        result.check(
            "raising the remote budget (local fixed at 5) does not regress "
            "and trends positive",
            speedups[(max_budget, BASELINE_BUDGET)] >= -1.0)
        result.check(
            "remote budget is monotone-ish at local=5 (20 >= 5 within 1%)",
            speedups[(max_budget, BASELINE_BUDGET)]
            >= speedups[(BASELINE_BUDGET, BASELINE_BUDGET)] - 1.0)
    result.notes.append(
        f"best budget pair: remote={best[0]}, local={best[1]} "
        f"({speedups[best]:+.1f}%); the paper selects remote=20, local=5 "
        f"(up to +23%) and so do the library defaults.")
    result.notes.append(
        "DEVIATION: the paper finds *lowering* the local budget helps "
        "(+23% at remote=20/local=5) because long local chains make the "
        "remote leader's Peterson spinning flood the target RNIC.  In the "
        "simulator that spin traffic is too light to dominate, so larger "
        "local budgets mildly *raise* total throughput (cheap local passes "
        "weigh more) at the cost of remote-op latency.  The remote-budget "
        "direction (raising it helps) reproduces.")
    return result
