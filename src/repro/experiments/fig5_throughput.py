"""Experiment ``fig5`` — the throughput grid (paper Fig. 5, §6.2).

Twelve panels: rows are cluster sizes (5/10/20 nodes), columns are
contention levels (20/100/1000 locks) for mixed-locality workloads plus
an isolated 100%-locality column; the x-axis of each panel is
threads/node, the series are the three lock types.

Panel naming matches the paper: for the 5-node row, (a) = 20 locks,
(b) = 100 locks, (c) = 1000 locks (each at the scale's reference
locality, with additional ALock locality series in the low-contention
panel), and (d) = 100% locality; (e)–(h) repeat for 10 nodes and
(i)–(l) for 20 nodes.

Paper shapes asserted per row of panels:

* high contention: ALock wins by an order of magnitude or more;
* low contention: ALock still wins; its advantage grows with locality;
* 100% locality: ALock ≥ ~10× both competitors;
* spinlock saturates and stops scaling with threads.
"""

from __future__ import annotations

from repro.experiments.base import (CONTENTION_LOCKS, ExperimentResult,
                                    is_strict, prefetch_runs, scale_params)
from repro.workload import WorkloadSpec, run_workload

LOCKS = ("alock", "spinlock", "mcs")
#: Reference locality for the mixed-workload panels.
REFERENCE_LOCALITY = 90.0
_PANEL_NAMES = "abcdefghijkl"


def _panel_name(row: int, col: int) -> str:
    return _PANEL_NAMES[row * 4 + col]


def _spec(lock_kind: str, *, n_nodes: int, threads: int, n_locks: int,
          locality: float, params: dict, seed: int) -> WorkloadSpec:
    return WorkloadSpec(
        n_nodes=n_nodes, threads_per_node=threads, n_locks=max(n_locks, n_nodes),
        locality_pct=locality, lock_kind=lock_kind,
        warmup_ns=params["warmup_ns"], measure_ns=params["measure_ns"],
        seed=seed, audit="off")


def _enumerate_specs(params: dict, seed: int):
    """Every spec :func:`run` will evaluate, in its request order.

    Kept structurally parallel to the assembly loops in :func:`run`; a
    spec missed here is still computed (serially) by the fallback in
    ``_throughput``, so drift degrades speed, never results.
    """
    threads_axis = list(params["threads"])
    for n_nodes in params["nodes"]:
        for level, n_locks in CONTENTION_LOCKS.items():
            for lock_kind in LOCKS:
                for threads in threads_axis:
                    yield _spec(lock_kind, n_nodes=n_nodes, threads=threads,
                                n_locks=n_locks, locality=REFERENCE_LOCALITY,
                                params=params, seed=seed)
            if level == "low":
                for locality in params["localities"]:
                    if locality != REFERENCE_LOCALITY:
                        yield _spec("alock", n_nodes=n_nodes,
                                    threads=threads_axis[-1], n_locks=n_locks,
                                    locality=locality, params=params, seed=seed)
        for lock_kind in LOCKS:
            for threads in threads_axis:
                yield _spec(lock_kind, n_nodes=n_nodes, threads=threads,
                            n_locks=CONTENTION_LOCKS["high"], locality=100.0,
                            params=params, seed=seed)


def run(scale: str = "small", seed: int = 0,
        workers: int = 0) -> ExperimentResult:
    params = scale_params(scale)
    prefetched = prefetch_runs(_enumerate_specs(params, seed), workers)

    def _throughput(lock_kind: str, *, n_nodes: int, threads: int,
                    n_locks: int, locality: float, params: dict,
                    seed: int) -> float:
        spec = _spec(lock_kind, n_nodes=n_nodes, threads=threads,
                     n_locks=n_locks, locality=locality, params=params,
                     seed=seed)
        run_result = prefetched.get(spec)
        if run_result is None:
            run_result = run_workload(spec)
        return run_result.throughput_ops_per_sec

    result = ExperimentResult(
        "fig5", "Throughput grid: nodes x contention x locality x threads",
        scale)
    threads_axis = list(params["threads"])

    for row, n_nodes in enumerate(params["nodes"]):
        # Columns 0-2: mixed locality at each contention level.
        for col, (level, n_locks) in enumerate(CONTENTION_LOCKS.items()):
            panel = _panel_name(row, col)
            series: dict[str, list[float]] = {}
            for lock_kind in LOCKS:
                curve = []
                for threads in threads_axis:
                    tput = _throughput(
                        lock_kind, n_nodes=n_nodes, threads=threads,
                        n_locks=n_locks, locality=REFERENCE_LOCALITY,
                        params=params, seed=seed)
                    curve.append(tput)
                    result.rows.append({
                        "panel": panel, "nodes": n_nodes,
                        "contention": level, "locks": n_locks,
                        "locality_pct": REFERENCE_LOCALITY,
                        "lock": lock_kind, "threads_per_node": threads,
                        "throughput_ops": round(tput),
                    })
                series[lock_kind] = curve
            # Locality sensitivity of ALock in the low-contention panel
            # ("improves by 40% from 85% to 90% ... 75% more at 95%").
            if level == "low":
                for locality in params["localities"]:
                    if locality == REFERENCE_LOCALITY:
                        continue
                    tput = _throughput(
                        "alock", n_nodes=n_nodes, threads=threads_axis[-1],
                        n_locks=n_locks, locality=locality, params=params,
                        seed=seed)
                    result.rows.append({
                        "panel": panel, "nodes": n_nodes,
                        "contention": level, "locks": n_locks,
                        "locality_pct": locality, "lock": "alock",
                        "threads_per_node": threads_axis[-1],
                        "throughput_ops": round(tput),
                    })
            result.series[panel] = (threads_axis, series)
            self_check_panel(result, panel, level, series, strict=is_strict(scale))
        # Column 3: the isolated 100%-locality panel (high contention —
        # the paper stresses ALock wins "even ... with just 20 locks").
        panel = _panel_name(row, 3)
        series = {}
        for lock_kind in LOCKS:
            curve = []
            for threads in threads_axis:
                tput = _throughput(
                    lock_kind, n_nodes=n_nodes, threads=threads,
                    n_locks=CONTENTION_LOCKS["high"], locality=100.0,
                    params=params, seed=seed)
                curve.append(tput)
                result.rows.append({
                    "panel": panel, "nodes": n_nodes,
                    "contention": "high", "locks": CONTENTION_LOCKS["high"],
                    "locality_pct": 100.0, "lock": lock_kind,
                    "threads_per_node": threads,
                    "throughput_ops": round(tput),
                })
            series[lock_kind] = curve
        result.series[panel] = (threads_axis, series)
        result.check(
            f"panel ({panel}): 100% locality, ALock leads both competitors",
            series["alock"][-1] > series["spinlock"][-1]
            and series["alock"][-1] > series["mcs"][-1])
        if is_strict(scale):
            result.check(
                f"panel ({panel}): 100% locality, ALock >= 8x spinlock at max threads",
                series["alock"][-1] >= 8 * series["spinlock"][-1])
            result.check(
                f"panel ({panel}): 100% locality, ALock >= 8x MCS at max threads",
                series["alock"][-1] >= 8 * series["mcs"][-1])
    return result


def self_check_panel(result: ExperimentResult, panel: str, level: str,
                     series: dict[str, list[float]], *, strict: bool) -> None:
    """Shape assertions for one mixed-locality panel."""
    alock, spin, mcs = series["alock"], series["spinlock"], series["mcs"]
    result.check(
        f"panel ({panel}): ALock leads both competitors at the top thread count",
        alock[-1] > spin[-1] and alock[-1] > mcs[-1])
    if strict and level == "high":
        result.check(
            f"panel ({panel}): high contention, ALock >= 4x both competitors",
            alock[-1] >= 4 * spin[-1] and alock[-1] >= 4 * mcs[-1])
    if len(alock) >= 3:
        result.check(
            f"panel ({panel}): ALock scales with threads",
            alock[-1] > alock[0])
