"""Shared experiment infrastructure: result container, scale presets."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis import format_table
from repro.common.errors import ConfigError

#: Scale presets.  Extent knobs consumed by the experiment modules:
#: ``nodes`` — cluster sizes to sweep; ``threads`` — threads/node sweep;
#: ``measure_ns``/``warmup_ns`` — measurement window; ``localities`` —
#: locality percentages for mixed workloads.
SCALES: dict[str, dict[str, Any]] = {
    "smoke": {
        "nodes": (3,),
        "threads": (2, 4),
        "fig1_threads": (1, 4, 8, 12),
        "localities": (85.0, 95.0),
        "warmup_ns": 100_000.0,
        "measure_ns": 400_000.0,
        "budgets": (5, 20),
    },
    "small": {
        "nodes": (5,),
        "threads": (1, 2, 4, 8, 12),
        "fig1_threads": (1, 2, 4, 6, 8, 12, 16),
        "localities": (85.0, 90.0, 95.0),
        "warmup_ns": 200_000.0,
        "measure_ns": 1_000_000.0,
        "budgets": (5, 10, 20),
    },
    "paper": {
        "nodes": (5, 10, 20),
        "threads": (1, 2, 4, 8, 12),
        "fig1_threads": (1, 2, 4, 6, 8, 10, 12, 16),
        "localities": (85.0, 90.0, 95.0),
        "warmup_ns": 300_000.0,
        "measure_ns": 1_500_000.0,
        "budgets": (5, 10, 20),
    },
}

#: Table sizes per contention level (§6: "20 locks for high contention,
#: 100 for medium, 1000 for low").
CONTENTION_LOCKS = {"high": 20, "medium": 100, "low": 1000}


def is_strict(scale: str) -> bool:
    """Whether quantitative paper-shape assertions are meaningful.

    ``smoke`` runs are deliberately too small for congestion effects to
    fully develop, so experiments only assert qualitative orderings
    there and reserve the paper's factors for ``small``/``paper``.
    """
    return scale in ("small", "paper")


def scale_params(scale: str) -> dict[str, Any]:
    try:
        return SCALES[scale]
    except KeyError:
        raise ConfigError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}") from None


def prefetch_runs(specs, workers: int) -> dict:
    """Evaluate ``specs`` on a process pool, keyed by spec.

    The parallel seam of the experiment modules: each module enumerates
    the exact specs its assembly phase will ask for, this fans them out
    via :func:`repro.parallel.engine.pmap_workloads`, and the assembly
    code looks results up by spec (``WorkloadSpec`` is frozen, hence
    hashable).  Every cell is a sealed seeded run, so the returned
    ``RunResult`` values are identical to what serial ``run_workload``
    calls would produce — parallelism changes wall-clock only.

    With ``workers <= 1`` returns an empty dict: callers fall back to
    their original inline ``run_workload`` path, keeping the serial code
    the reference implementation.
    """
    if workers <= 1:
        return {}
    from repro.parallel.engine import pmap_workloads
    unique = list(dict.fromkeys(specs))
    return dict(zip(unique, pmap_workloads(unique, workers=workers)))


@dataclass
class ExperimentResult:
    """What one experiment run produced.

    Attributes:
        experiment_id: "fig1", "table1", ...
        title: human-readable description.
        scale: preset used.
        rows: flat dict rows (one per measured configuration).
        series: optional named series for ASCII charts
            (``{panel: (x, {name: y})}``).
        shape_checks: name -> bool for the paper-shape assertions this
            experiment performs on its own output.
        notes: free-form commentary (deviations, caveats).
    """

    experiment_id: str
    title: str
    scale: str
    rows: list[dict] = field(default_factory=list)
    series: dict[str, tuple] = field(default_factory=dict)
    shape_checks: dict[str, bool] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    @property
    def all_shapes_hold(self) -> bool:
        return all(self.shape_checks.values())

    def check(self, name: str, condition: bool) -> None:
        """Record a paper-shape assertion outcome."""
        self.shape_checks[name] = bool(condition)

    def to_markdown(self) -> str:
        parts = [f"## {self.experiment_id}: {self.title}",
                 f"*scale: {self.scale}*", ""]
        if self.rows:
            parts.append("```")
            parts.append(format_table(self.rows))
            parts.append("```")
        if self.shape_checks:
            parts.append("")
            parts.append("Shape checks:")
            for name, ok in self.shape_checks.items():
                parts.append(f"- [{'x' if ok else ' '}] {name}")
        for note in self.notes:
            parts.append(f"\n> {note}")
        return "\n".join(parts)
