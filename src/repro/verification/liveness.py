"""Liveness under weak fairness: the appendix's ``StarvationFree``.

``StarvationFree ≜ ∀ p: (pc[p] = "enter") ⇝ (pc[p] = "cs")`` must hold
on *weakly fair* schedules: a process that stays enabled must eventually
step (TLC's ``fair process``).

Detection is the classic SCC argument.  A starvation witness is an
infinite fair run in which some process ``p`` is forever mid-acquisition
and never at ``cs``.  Any infinite run eventually stays inside one
strongly connected component of the state graph, and conversely any SCC
can be traversed by a cycle visiting all of its states and edges.  So
``p`` can starve iff there is a reachable SCC ``S`` such that:

1. ``S`` contains a cycle (non-trivial, or a self-loop);
2. in every state of ``S``, ``p`` is mid-protocol (not at ``p1``/``ncs``)
   and never at ``cs``;
3. the cycle can be *fair*: every process ``q`` either takes a step on
   some edge inside ``S`` or is disabled (blocked on an ``await``) in
   some state of ``S``.

Condition 3 is exact for weak fairness at SCC granularity: if each ``q``
is served somewhere in ``S``, a single cycle through all those witnesses
serves them all infinitely often.

For the correct ALock spec this check passes (NP ≤ 3 explored
exhaustively); for the ``no_victim_check`` bug it returns the livelock
SCC where both cohort leaders spin forever — precisely the execution
the victim word exists to rule out.
"""

from __future__ import annotations

from repro.verification.checker import CheckResult, Counterexample
from repro.verification.spec import ALockSpec, State

#: pc labels where a process is not (yet) requesting the lock.
_IDLE = frozenset({"p1", "ncs"})


def _reachable_graph(spec: ALockSpec, max_states: int):
    """All reachable states with labeled successor lists."""
    from collections import deque

    from repro.common.errors import ConfigError

    succs: dict[State, list[tuple[int, State]]] = {}
    frontier = deque(spec.initial_states())
    seen = set(frontier)
    while frontier:
        s = frontier.popleft()
        out = list(spec.successors(s))
        succs[s] = out
        for _pid, nxt in out:
            if nxt not in seen:
                if len(seen) >= max_states:
                    raise ConfigError(
                        f"state space exceeds max_states={max_states}")
                seen.add(nxt)
                frontier.append(nxt)
    return succs


def _sccs(succs: dict) -> list[list[State]]:
    """Tarjan's algorithm, iterative (state graphs exceed the recursion
    limit by orders of magnitude)."""
    index: dict[State, int] = {}
    lowlink: dict[State, int] = {}
    on_stack: set[State] = set()
    stack: list[State] = []
    result: list[list[State]] = []
    counter = [0]

    for root in succs:
        if root in index:
            continue
        work = [(root, iter(succs[root]))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for _pid, child in it:
                if child not in index:
                    index[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(succs[child])))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member is node:
                        break
                result.append(component)
    return result


def check_starvation_freedom(spec: ALockSpec, *,
                             max_states: int = 500_000) -> CheckResult:
    """Exhaustive ``StarvationFree`` check under weak process fairness."""
    succs = _reachable_graph(spec, max_states)
    n_states = len(succs)

    for component in _sccs(succs):
        members = set(component)
        # does the SCC contain a cycle?
        internal_edges = [(s, pid, nxt) for s in component
                          for pid, nxt in succs[s] if nxt in members]
        has_cycle = len(component) > 1 or any(
            nxt == s for s, _pid, nxt in internal_edges)
        if not has_cycle:
            continue
        steppers = {pid for _s, pid, _n in internal_edges}
        for p in spec.pids:
            i = p - 1
            stuck = all(s.pc[i] not in _IDLE and s.pc[i] != "cs"
                        for s in component)
            if not stuck:
                continue
            # fairness feasibility: every process steps in S or is
            # disabled somewhere in S
            fair = True
            for q in spec.pids:
                if q in steppers:
                    continue
                if not any(spec.step(s, q) is None for s in component):
                    fair = False
                    break
            if fair:
                witness = component[0]
                return CheckResult(
                    "StarvationFree", False, n_states,
                    Counterexample(
                        [witness], [],
                        f"pid {p} starves: fair cycle through "
                        f"{len(component)} state(s) keeps it at "
                        f"{witness.pc[i]!r} forever"),
                    detail=f"SCC size {len(component)}, "
                           f"stepping pids {sorted(steppers)}")
    return CheckResult("StarvationFree", True, n_states,
                       detail=f"no fair starvation cycle in {n_states} states")
