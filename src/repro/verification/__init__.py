"""Explicit-state model checking of the ALock (paper Appendix A).

The paper ships a TLA+/PlusCal specification of the ALock and checks
MutualExclusion plus liveness properties with TLC.  This package is the
Python equivalent: :mod:`repro.verification.spec` translates the PlusCal
algorithm label-by-label into a transition system (every label is one
atomic step, exactly TLC's granularity), and
:mod:`repro.verification.checker` explores the full reachable state
space by BFS.

Checked properties:

* **MutualExclusion** — no reachable state has two processes at ``cs``
  (an invariant, checked exhaustively);
* **deadlock freedom** — every reachable state has an enabled step;
* **progress possibility** — from every reachable state, every process
  that has started acquiring can still reach ``cs`` on some path (the
  cheap reachability core of ``StarvationFree``);
* **StarvationFree under weak fairness** — the appendix's liveness
  property proper, via an SCC search for fair starvation cycles
  (:mod:`repro.verification.liveness`).

The spec also supports deliberately injected bugs (e.g. skipping the
hand-off wait) so tests can confirm the checker actually finds mutual-
exclusion violations and produces counterexample traces.
"""

from repro.verification.spec import ALockSpec, State
from repro.verification.checker import (
    CheckResult,
    Counterexample,
    check_deadlock_freedom,
    check_mutual_exclusion,
    check_progress_possibility,
    explore,
)
from repro.verification.liveness import check_starvation_freedom

__all__ = [
    "ALockSpec",
    "State",
    "CheckResult",
    "Counterexample",
    "explore",
    "check_mutual_exclusion",
    "check_deadlock_freedom",
    "check_progress_possibility",
    "check_starvation_freedom",
]
