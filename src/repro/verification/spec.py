"""Label-by-label translation of the appendix PlusCal algorithm.

Processes are ``1..NP``.  As in the TLA+ spec, a process's cohort is
determined by parity — ``Us(pid) = (pid % 2) + 1`` — abstracting the
local/remote split; ``cohort`` is the two-slot array of cohort-lock
tails (0 = unlocked, else the pid whose descriptor is the tail), which
doubles as the Peterson flags; ``victim`` holds a pid (the process that
most recently yielded the global lock).

One label = one atomic step, matching TLC's granularity:

* ``p1 → ncs → enter`` (call AcquireCohort) ``→ p2`` (maybe call
  AcquireGlobal) ``→ cs → exit`` (call ReleaseCohort) ``→ p1`` …
* AcquireCohort: ``c1`` init descriptor; ``swap`` (atomic read+swap of
  the cohort tail); ``cwait`` branch on pred; ``c2`` link; ``c3`` await
  budget ≥ 0; ``c4`` branch on budget 0; ``c5`` call AcquireGlobal;
  ``c6`` reset budget; ``c7``/``c9`` set passed; ``c8`` leader budget;
  ``c10`` return.
* AcquireGlobal: ``g1`` victim := self; ``gwait``/``g2``/``g3`` the
  Peterson wait loop; ``g4`` return.
* ReleaseCohort: ``cas`` try to clear the tail; ``r1`` await successor
  link; ``r2`` pass budget − 1; ``r3`` return.

Supported injected bugs (for checker-has-teeth tests):

* ``"skip_handoff_wait"`` — ``c3`` does not wait for the budget to be
  passed (a waiter enters the CS while its predecessor still holds it):
  must break MutualExclusion.
* ``"no_victim_check"`` — ``g3`` never lets the victim yield: must
  deadlock two competing cohort leaders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, NamedTuple

from repro.common.errors import ConfigError


class State(NamedTuple):
    """One global state; fully immutable/hashable for BFS."""

    victim: int
    cohort: tuple            # cohort[1..2] tails, stored as (c1, c2)
    budget: tuple            # per-pid descriptor budget
    next_: tuple             # per-pid descriptor next pointer (0 = null)
    passed: tuple            # per-pid bool
    pc: tuple                # per-pid program counter label
    pred: tuple              # per-pid local var of AcquireCohort
    retstack: tuple          # per-pid tuple of return labels


def us(pid: int) -> int:
    """The cohort (1 or 2) process ``pid`` belongs to."""
    return (pid % 2) + 1


def them(pid: int) -> int:
    return ((pid + 1) % 2) + 1


@dataclass(frozen=True)
class ALockSpec:
    """The transition system for ``n_processes`` and ``initial_budget``.

    Args:
        n_processes: NP (>= 1).  Peterson competition needs both parities,
            i.e. NP >= 2, for cross-cohort behaviour to appear.
        initial_budget: B (>= 1).
        bug: optional injected defect (see module docstring).
    """

    n_processes: int
    initial_budget: int
    bug: str | None = None

    _BUGS = (None, "skip_handoff_wait", "no_victim_check")

    def __post_init__(self) -> None:
        if self.n_processes < 1:
            raise ConfigError("n_processes must be >= 1")
        if self.initial_budget < 1:
            raise ConfigError("initial_budget must be >= 1")
        if self.bug not in self._BUGS:
            raise ConfigError(f"unknown bug {self.bug!r}; known: {self._BUGS}")

    @property
    def pids(self) -> range:
        return range(1, self.n_processes + 1)

    # -- states ---------------------------------------------------------
    def initial_states(self) -> list[State]:
        """TLA init: ``victim ∈ {1, 2}`` gives two initial states."""
        n = self.n_processes
        return [
            State(
                victim=v,
                cohort=(0, 0),
                budget=tuple(-1 for _ in range(n)),
                next_=tuple(0 for _ in range(n)),
                passed=tuple(False for _ in range(n)),
                pc=tuple("p1" for _ in range(n)),
                pred=tuple(0 for _ in range(n)),
                retstack=tuple(() for _ in range(n)),
            )
            for v in (1, 2)
        ]

    # -- helpers over immutable state ----------------------------------
    @staticmethod
    def _set(tup: tuple, pid: int, value) -> tuple:
        i = pid - 1
        return tup[:i] + (value,) + tup[i + 1:]

    def _goto(self, s: State, pid: int, label: str) -> State:
        return s._replace(pc=self._set(s.pc, pid, label))

    def _cohort_get(self, s: State, idx: int) -> int:
        return s.cohort[idx - 1]

    def _cohort_set(self, s: State, idx: int, value: int) -> State:
        c = list(s.cohort)
        c[idx - 1] = value
        return s._replace(cohort=tuple(c))

    def _call(self, s: State, pid: int, entry: str, ret: str) -> State:
        s = s._replace(retstack=self._set(
            s.retstack, pid, s.retstack[pid - 1] + (ret,)))
        return self._goto(s, pid, entry)

    def _return(self, s: State, pid: int) -> State:
        stack = s.retstack[pid - 1]
        ret = stack[-1]
        s = s._replace(retstack=self._set(s.retstack, pid, stack[:-1]))
        return self._goto(s, pid, ret)

    # -- transition relation ----------------------------------------------
    def step(self, s: State, pid: int) -> State | None:
        """The successor when ``pid`` takes its enabled step, or None if
        ``pid`` is blocked (await not satisfied)."""
        label = s.pc[pid - 1]
        i = pid - 1
        B = self.initial_budget

        # ---- outer process loop ----
        if label == "p1":
            return self._goto(s, pid, "ncs")
        if label == "ncs":
            return self._goto(s, pid, "enter")
        if label == "enter":
            return self._call(s, pid, "c1", "p2")
        if label == "p2":
            if not s.passed[i]:
                return self._call(s, pid, "g1", "cs")
            return self._goto(s, pid, "cs")
        if label == "cs":
            return self._goto(s, pid, "exit")
        if label == "exit":
            return self._call(s, pid, "cas", "p1")

        # ---- AcquireCohort ----
        if label == "c1":
            s = s._replace(budget=self._set(s.budget, pid, -1),
                           next_=self._set(s.next_, pid, 0))
            return self._goto(s, pid, "swap")
        if label == "swap":
            tail = self._cohort_get(s, us(pid))
            s = s._replace(pred=self._set(s.pred, pid, tail))
            s = self._cohort_set(s, us(pid), pid)
            return self._goto(s, pid, "cwait")
        if label == "cwait":
            if s.pred[i] != 0:
                return self._goto(s, pid, "c2")
            return self._goto(s, pid, "c8")
        if label == "c2":
            s = s._replace(next_=self._set(s.next_, s.pred[i], pid))
            if self.bug == "skip_handoff_wait":
                return self._goto(s, pid, "c7")
            return self._goto(s, pid, "c3")
        if label == "c3":
            if s.budget[i] < 0:
                return None  # await Budget(self) >= 0
            return self._goto(s, pid, "c4")
        if label == "c4":
            if s.budget[i] == 0:
                return self._goto(s, pid, "c5")
            return self._goto(s, pid, "c7")
        if label == "c5":
            return self._call(s, pid, "g1", "c6")
        if label == "c6":
            s = s._replace(budget=self._set(s.budget, pid, B))
            return self._goto(s, pid, "c7")
        if label == "c7":
            s = s._replace(passed=self._set(s.passed, pid, True))
            return self._goto(s, pid, "c10")
        if label == "c8":
            s = s._replace(budget=self._set(s.budget, pid, B))
            return self._goto(s, pid, "c9")
        if label == "c9":
            s = s._replace(passed=self._set(s.passed, pid, False))
            return self._goto(s, pid, "c10")
        if label == "c10":
            return self._return(s, pid)

        # ---- AcquireGlobal ----
        if label == "g1":
            s = s._replace(victim=pid)
            return self._goto(s, pid, "gwait")
        if label == "gwait":
            return self._goto(s, pid, "g2")
        if label == "g2":
            if self._cohort_get(s, them(pid)) == 0:
                return self._goto(s, pid, "g4")
            return self._goto(s, pid, "g3")
        if label == "g3":
            if self.bug != "no_victim_check" and s.victim != pid:
                return self._goto(s, pid, "g4")
            return self._goto(s, pid, "gwait")
        if label == "g4":
            return self._return(s, pid)

        # ---- ReleaseCohort ----
        if label == "cas":
            if self._cohort_get(s, us(pid)) == pid:
                s = self._cohort_set(s, us(pid), 0)
                return self._goto(s, pid, "r3")
            return self._goto(s, pid, "r1")
        if label == "r1":
            if s.next_[i] == 0:
                return None  # await successor link
            return self._goto(s, pid, "r2")
        if label == "r2":
            succ = s.next_[i]
            s = s._replace(budget=self._set(s.budget, succ, s.budget[i] - 1))
            return self._goto(s, pid, "r3")
        if label == "r3":
            return self._return(s, pid)

        raise ConfigError(f"unknown label {label!r}")  # pragma: no cover

    def successors(self, s: State) -> Iterator[tuple[int, State]]:
        """All (pid, next state) pairs enabled in ``s``."""
        for pid in self.pids:
            nxt = self.step(s, pid)
            if nxt is not None:
                yield pid, nxt

    # -- property helpers ----------------------------------------------
    @staticmethod
    def in_critical_section(s: State, pid: int) -> bool:
        return s.pc[pid - 1] == "cs"

    @staticmethod
    def processes_in_cs(s: State) -> list[int]:
        return [i + 1 for i, label in enumerate(s.pc) if label == "cs"]
