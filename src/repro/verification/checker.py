"""Breadth-first explicit-state exploration and property checks."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.common.errors import ConfigError
from repro.verification.spec import ALockSpec, State


@dataclass
class Counterexample:
    """A finite trace from an initial state to a violating state."""

    states: list[State]
    actions: list[int]  # pid that moved between consecutive states
    violation: str

    def __str__(self) -> str:
        lines = [f"violation: {self.violation}",
                 f"trace length: {len(self.states)}"]
        for i, s in enumerate(self.states):
            mover = f" (pid {self.actions[i - 1]} moved)" if i else ""
            lines.append(f"  step {i}{mover}: pc={s.pc} cohort={s.cohort} "
                         f"victim={s.victim} budget={s.budget}")
        return "\n".join(lines)


@dataclass
class CheckResult:
    """Outcome of one exploration/property check."""

    property_name: str
    holds: bool
    states_explored: int
    counterexample: Optional[Counterexample] = None
    detail: str = ""


@dataclass
class _Exploration:
    spec: ALockSpec
    visited: set[State] = field(default_factory=set)
    #: state -> (predecessor, pid that moved), None for initial states.
    parents: dict[State, tuple[State, int] | None] = field(default_factory=dict)
    frontier: deque[State] = field(default_factory=deque)


def _trace(exp: _Exploration, state: State, violation: str) -> Counterexample:
    states = [state]
    actions: list[int] = []
    cur = state
    while exp.parents[cur] is not None:
        prev, pid = exp.parents[cur]
        states.append(prev)
        actions.append(pid)
        cur = prev
    states.reverse()
    actions.reverse()
    return Counterexample(states, actions, violation)


def explore(spec: ALockSpec, *,
            invariant: Optional[Callable[[State], Optional[str]]] = None,
            max_states: int = 2_000_000,
            require_progress: bool = False) -> CheckResult:
    """BFS over the reachable state space.

    Args:
        invariant: callable returning None when a state is fine, or a
            violation message.  Exploration stops at the first violation
            with a counterexample trace.
        max_states: exploration safety valve; exceeding it raises (a
            bigger configuration needs a bigger bound, not silent
            truncation).
        require_progress: also flag states with no enabled step
            (deadlocks) as violations.
    """
    exp = _Exploration(spec)
    for init in spec.initial_states():
        exp.visited.add(init)
        exp.parents[init] = None
        exp.frontier.append(init)

    name = invariant.__name__ if invariant else "reachability"
    while exp.frontier:
        state = exp.frontier.popleft()
        if invariant is not None:
            message = invariant(state)
            if message is not None:
                return CheckResult(name, False, len(exp.visited),
                                   _trace(exp, state, message))
        moved = False
        for pid, nxt in spec.successors(state):
            moved = True
            if nxt not in exp.visited:
                if len(exp.visited) >= max_states:
                    raise ConfigError(
                        f"state space exceeds max_states={max_states}; "
                        f"raise the bound for this configuration")
                exp.visited.add(nxt)
                exp.parents[nxt] = (state, pid)
                exp.frontier.append(nxt)
        if require_progress and not moved:
            return CheckResult(name, False, len(exp.visited),
                               _trace(exp, state, "deadlock: no enabled step"))
    return CheckResult(name, True, len(exp.visited))


def check_mutual_exclusion(spec: ALockSpec, *, max_states: int = 2_000_000) -> CheckResult:
    """The appendix's MutualExclusion invariant: at most one process at
    ``cs`` in every reachable state."""

    def mutual_exclusion(state: State) -> Optional[str]:
        in_cs = spec.processes_in_cs(state)
        if len(in_cs) > 1:
            return f"processes {in_cs} simultaneously in the critical section"
        return None

    result = explore(spec, invariant=mutual_exclusion, max_states=max_states)
    result.property_name = "MutualExclusion"
    return result


def check_deadlock_freedom(spec: ALockSpec, *, max_states: int = 2_000_000) -> CheckResult:
    """No reachable state is stuck (some process can always move)."""
    result = explore(spec, require_progress=True, max_states=max_states)
    result.property_name = "DeadlockFreedom"
    return result


def check_progress_possibility(spec: ALockSpec, *, max_states: int = 500_000) -> CheckResult:
    """From every reachable state, every process that has begun acquiring
    (``pc ∉ {p1, ncs}``) can still reach ``cs`` on *some* continuation.

    This is the reachability core of the appendix's ``StarvationFree``
    (⇝ requires it) — full starvation freedom additionally needs weak
    fairness over the scheduler, which this possibility check
    approximates; see the package docstring.
    """
    # Full reachable set first, kept as an insertion-ordered BFS list:
    # the witness below is "the first bad state in BFS order", which must
    # not depend on set iteration order (PYTHONHASHSEED).
    order: list[State] = []
    seen: set[State] = set()
    frontier: deque[State] = deque()
    for init in spec.initial_states():
        if init not in seen:
            seen.add(init)
            order.append(init)
            frontier.append(init)
    while frontier:
        s = frontier.popleft()
        for _pid, nxt in spec.successors(s):
            if nxt not in seen:
                if len(seen) >= max_states:
                    raise ConfigError(
                        f"state space exceeds max_states={max_states}; "
                        f"raise the bound for this configuration")
                seen.add(nxt)
                order.append(nxt)
                frontier.append(nxt)

    # Backward check per pid: states from which pid's cs is reachable.
    # Compute forward instead: for each state and pid, BFS until pid hits
    # cs — cached by (state, pid) via a reverse fixpoint:
    # iterate: GOOD_pid = {s : pid at cs in s} ∪ {s : ∃ step → GOOD_pid}.
    succs: dict[State, list[State]] = {
        s: [nxt for _p, nxt in spec.successors(s)] for s in order}
    preds: dict[State, list[State]] = {s: [] for s in order}
    for s, ns in succs.items():
        for n in ns:
            preds[n].append(s)

    for pid in spec.pids:
        good: set[State] = set()
        queue: deque[State] = deque()
        for s in order:
            if spec.in_critical_section(s, pid):
                good.add(s)
                queue.append(s)
        while queue:
            g = queue.popleft()
            for p in preds[g]:
                if p not in good:
                    good.add(p)
                    queue.append(p)
        idle = {"p1", "ncs"}
        for s in order:
            if s.pc[pid - 1] not in idle and s not in good:
                return CheckResult(
                    "ProgressPossibility", False, len(order),
                    Counterexample([s], [], f"pid {pid} at {s.pc[pid-1]} "
                                            f"can never reach cs"),
                    detail=f"pid {pid} permanently excluded")
    return CheckResult("ProgressPossibility", True, len(order),
                       detail=f"checked {len(order)} states x "
                              f"{spec.n_processes} processes")
