"""RDMA-accessible memory substrate.

Each node owns one :class:`MemoryRegion` — a numpy-backed array of 8-byte
words addressable from every node.  Pointers into this address space are
packed integers (node id in the high bits, byte address below — the
paper's ``rdma_ptr``).  Regions support:

* word-granularity reads/writes/CAS (the paper's ``Read``/``Write``/``CAS``);
* **watchers** — event-driven local spinning (a write to a watched word
  wakes the waiter), the mechanism behind MCS local spin;
* a two-phase remote-RMW hook so a remote CAS is *visibly* a read
  followed by a write at the target, reproducing the paper's Table 1
  atomicity gap;
* a :class:`RaceAuditor` that records (or raises on) local/remote RMW
  overlaps — the 'No' cells of Table 1.
"""

from repro.memory.pointer import (
    ADDR_BITS,
    NODE_BITS,
    NULL_PTR,
    RdmaPointer,
    is_null,
    pack_ptr,
    ptr_addr,
    ptr_node,
)
from repro.memory.layout import StructLayout, WordField
from repro.memory.region import MemoryRegion
from repro.memory.races import RaceAuditor, RaceRecord

__all__ = [
    "NODE_BITS",
    "ADDR_BITS",
    "NULL_PTR",
    "RdmaPointer",
    "pack_ptr",
    "ptr_node",
    "ptr_addr",
    "is_null",
    "MemoryRegion",
    "StructLayout",
    "WordField",
    "RaceAuditor",
    "RaceRecord",
]
