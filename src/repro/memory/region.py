"""Per-node RDMA-accessible memory.

A :class:`MemoryRegion` is the slab of memory one node registers with its
RNIC.  It provides 8-byte word operations at three call sites:

* **local API** — ``read``/``write``/``cas`` used by threads running on
  the owning node (the paper's shared-memory operations).  These are
  instantaneous at their linearization point; the *cost* (~100 ns) is
  charged by the calling thread's context, not here.
* **remote landing** — ``remote_read``/``remote_write`` plus the
  two-phase ``remote_rmw_read``/``remote_rmw_commit`` used by the verbs
  layer when an RDMA op arrives at the target NIC.  The two-phase RMW is
  what makes a remote CAS *visibly* a read-then-write to concurrent local
  code (Table 1).
* **watchers** — one-shot events that fire when a word is written,
  regardless of who wrote it.  This is how MCS "spin on a local
  variable" is modeled without polling: the spinner parks on a watcher
  and the predecessor's (possibly remote) write wakes it.

All stored values are raw 64-bit patterns (unsigned ints, masked on
store); helpers convert to/from two's-complement for signed fields such
as budgets.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.common.errors import MemoryError_
from repro.memory.pointer import CACHE_LINE, WORD_SIZE, pack_ptr
from repro.memory.races import LOCAL_READ, LOCAL_RMW, LOCAL_WRITE, RaceAuditor
from repro.sim.core import PENDING, Environment, Event

_MASK64 = (1 << 64) - 1
_SIGN_BIT = 1 << 63


def to_signed(value: int) -> int:
    """Interpret a raw 64-bit pattern as two's-complement int64."""
    return value - (1 << 64) if value & _SIGN_BIT else value


def from_signed(value: int) -> int:
    """Encode a Python int (possibly negative) as a raw 64-bit pattern."""
    return value & _MASK64


class MemoryRegion:
    """One node's RDMA-registered memory slab.

    Args:
        env: simulation environment (for watcher events and audit times).
        node_id: owning node.
        size_bytes: slab size; must be a multiple of the 64B cache line.
        auditor: shared :class:`RaceAuditor`; ``None`` disables auditing.
    """

    __slots__ = ("env", "node_id", "size", "auditor", "_words",
                 "_alloc_cursor", "_watchers", "_node_label", "_labels",
                 "local_reads", "local_writes", "local_rmws",
                 "remote_ops_landed")

    def __init__(self, env: Environment, node_id: int, size_bytes: int,
                 auditor: Optional[RaceAuditor] = None):
        if size_bytes <= 0 or size_bytes % CACHE_LINE != 0:
            raise MemoryError_(
                f"region size {size_bytes} must be a positive multiple of {CACHE_LINE}")
        self.env = env
        self.node_id = node_id
        self.size = size_bytes
        self.auditor = auditor
        # Raw 64-bit patterns as plain ints: the word store is touched on
        # every lock/memory op, and per-access numpy-scalar conversion
        # costs more than the denser array buys at these region sizes.
        # The list is virtual-zero beyond its current length and grows on
        # first store, so constructing a 20-node cluster does not pay for
        # 4 MiB of untouched words per region.
        self._words: list[int] = [0] * min(size_bytes // WORD_SIZE, 4096)
        # First cache line reserved so byte address 0 is never a live object
        # and the packed pointer value 0 can serve as NULL.
        self._alloc_cursor = CACHE_LINE
        self._watchers: dict[int, list[Event]] = {}
        # Protocol names for words (e.g. "alock[k7].tail_l"): locks label
        # their record fields at construction so watch events — and through
        # them the deadlock diagnostics and post-mortem wait-for graph —
        # name the word a process is parked on instead of a raw address.
        self._labels: dict[int, object] = {}
        self._node_label = f"n{node_id}"
        # statistics
        self.local_reads = 0
        self.local_writes = 0
        self.local_rmws = 0
        self.remote_ops_landed = 0

    # -- address helpers ---------------------------------------------------
    def _word_index(self, addr: int) -> int:
        if addr % WORD_SIZE != 0:
            raise MemoryError_(f"misaligned 8-byte access at {addr:#x} on node {self.node_id}")
        if not 0 <= addr <= self.size - WORD_SIZE:
            raise MemoryError_(
                f"address {addr:#x} out of bounds for {self.size}B region on node {self.node_id}")
        return addr // WORD_SIZE

    # -- allocation ----------------------------------------------------------
    def alloc(self, nbytes: int, align: int = CACHE_LINE) -> int:
        """Bump-allocate ``nbytes`` aligned to ``align``; returns the byte
        address.  There is no free(): lock metadata lives for the whole
        experiment, as in the paper's artifact."""
        if nbytes <= 0:
            raise MemoryError_(f"allocation size must be positive, got {nbytes}")
        if align <= 0 or (align & (align - 1)) != 0:
            raise MemoryError_(f"alignment must be a power of two, got {align}")
        addr = (self._alloc_cursor + align - 1) & ~(align - 1)
        if addr + nbytes > self.size:
            raise MemoryError_(
                f"node {self.node_id} region exhausted: need {nbytes}B at {addr:#x}, "
                f"region is {self.size}B")
        self._alloc_cursor = addr + nbytes
        return addr

    def alloc_ptr(self, nbytes: int, align: int = CACHE_LINE) -> int:
        """Like :meth:`alloc` but returns a packed global pointer."""
        return pack_ptr(self.node_id, self.alloc(nbytes, align))

    @property
    def bytes_allocated(self) -> int:
        return self._alloc_cursor

    # -- raw access (no auditing; internal + tests) -----------------------
    def peek(self, addr: int) -> int:
        idx = self._word_index(addr)
        words = self._words
        return words[idx] if idx < len(words) else 0

    def peek_signed(self, addr: int) -> int:
        return to_signed(self.peek(addr))

    def _store(self, addr: int, value: int) -> None:
        idx = self._word_index(addr)
        raw = value & _MASK64
        words = self._words
        if idx >= len(words):
            words.extend([0] * (idx + 1024 - len(words)))
        words[idx] = raw
        watchers = self._watchers.pop(idx, None)
        if watchers:
            for ev in watchers:
                if ev._value is PENDING:
                    ev.succeed((addr, raw))

    # -- local API (shared-memory operations) ------------------------------
    def read(self, addr: int, actor: str = "?") -> int:
        """Local 8-byte atomic load (raw pattern)."""
        self.local_reads += 1
        if self.auditor is not None:
            self.auditor.local_op(self.node_id, addr, LOCAL_READ, actor, self.env.now)
        return self.peek(addr)

    def read_signed(self, addr: int, actor: str = "?") -> int:
        return to_signed(self.read(addr, actor))

    def write(self, addr: int, value: int, actor: str = "?") -> None:
        """Local 8-byte atomic store."""
        self.local_writes += 1
        if self.auditor is not None:
            self.auditor.local_op(self.node_id, addr, LOCAL_WRITE, actor, self.env.now)
        self._store(addr, from_signed(value))

    def cas(self, addr: int, expected: int, desired: int, actor: str = "?") -> int:
        """Local compare-and-swap; returns the *previous* raw value (the
        CAS succeeded iff the return equals ``expected``)."""
        self.local_rmws += 1
        if self.auditor is not None:
            self.auditor.local_op(self.node_id, addr, LOCAL_RMW, actor, self.env.now)
        old = self.peek(addr)
        if old == from_signed(expected):
            self._store(addr, from_signed(desired))
        return old

    def faa(self, addr: int, delta: int, actor: str = "?") -> int:
        """Local fetch-and-add (two's-complement); returns previous value."""
        self.local_rmws += 1
        if self.auditor is not None:
            self.auditor.local_op(self.node_id, addr, LOCAL_RMW, actor, self.env.now)
        old = self.peek(addr)
        self._store(addr, from_signed(to_signed(old) + delta))
        return old

    # -- remote landing (called by the verbs layer at the target) ----------
    def remote_read(self, addr: int) -> int:
        self.remote_ops_landed += 1
        return self.peek(addr)

    def remote_write(self, addr: int, value: int) -> None:
        self.remote_ops_landed += 1
        self._store(addr, from_signed(value))

    def remote_rmw_read(self, addr: int) -> int:
        """Phase 1 of a remote RMW: the NIC's read of the target word."""
        self.remote_ops_landed += 1
        return self.peek(addr)

    def remote_rmw_commit(self, addr: int, value: int) -> None:
        """Phase 2 of a remote RMW: the NIC's write-back.  Unconditional —
        if a local write landed inside the window, it is lost, exactly the
        hazard Table 1 warns about."""
        self._store(addr, from_signed(value))

    # -- word labels ---------------------------------------------------
    def label_word(self, addr: int, label: str) -> None:
        """Register a protocol name for the word at ``addr`` (idempotent;
        the last registration wins).  Labels flow into watch-event info,
        deadlock messages and post-mortem wait-for graphs."""
        self._word_index(addr)  # validate alignment/bounds eagerly
        self._labels[addr] = label

    def describe_word(self, addr: int) -> object:
        """The registered label for ``addr``, or the raw address."""
        return self._labels.get(addr, addr)

    # -- watchers ------------------------------------------------------
    def watch(self, addr: int) -> Event:
        """One-shot event fired by the next write to ``addr`` (local or
        remote).  Value: ``(addr, raw_value)``."""
        idx = self._word_index(addr)
        ev = Event(self.env)
        # one dict probe: labeled words describe themselves in diagnostics
        ev.info = ("watch", self._node_label, self._labels.get(addr, addr))
        self._watchers.setdefault(idx, []).append(ev)
        return ev

    def watch_any(self, addrs: Iterable[int]) -> Event:
        """One-shot event fired by the next write to *any* of ``addrs``."""
        ev = Event(self.env)
        addrs = tuple(addrs)
        labels = self._labels
        ev.info = ("watch", self._node_label) + tuple(labels.get(a, a) for a in addrs)
        for addr in addrs:
            idx = self._word_index(addr)
            self._watchers.setdefault(idx, []).append(ev)
        return ev

    def watcher_count(self) -> int:
        """Live watcher registrations (test/debug aid)."""
        return sum(len(v) for v in self._watchers.values())

    def gc_watchers(self) -> None:
        """Drop already-triggered events left by :meth:`watch_any`."""
        for idx in list(self._watchers):
            alive = [ev for ev in self._watchers[idx] if not ev.triggered]
            if alive:
                self._watchers[idx] = alive
            else:
                del self._watchers[idx]
