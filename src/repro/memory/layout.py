"""Declarative 64-byte-aligned record layouts (paper Fig. 3).

The paper pads every piece of lock metadata to 64 bytes so records never
share a cache line (false sharing would reintroduce coherence traffic the
design works to avoid).  :class:`StructLayout` captures a record as named
8-byte word fields at fixed offsets plus padding, and converts between
field names and absolute byte addresses.

Signedness matters: descriptor ``budget`` fields hold -1 ("waiting"),
while tail words hold unsigned packed pointers.  Fields declare it and
the region accessors honor it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import MemoryError_
from repro.memory.pointer import CACHE_LINE, WORD_SIZE


@dataclass(frozen=True)
class WordField:
    """One 8-byte field inside a record.

    Attributes:
        name: field name (used for trace output and accessors).
        offset: byte offset from the start of the record; 8-byte aligned.
        signed: interpret the stored word as two's-complement int64.
    """

    name: str
    offset: int
    signed: bool = False

    def __post_init__(self) -> None:
        if self.offset % WORD_SIZE != 0:
            raise MemoryError_(
                f"field {self.name!r} offset {self.offset} is not 8-byte aligned")


@dataclass(frozen=True)
class StructLayout:
    """A fixed-size, cache-line-padded record layout.

    >>> alock = StructLayout("ALock", 64, (
    ...     WordField("tail_r", 0), WordField("tail_l", 8),
    ...     WordField("victim", 16, signed=True)))
    >>> alock.offset_of("victim")
    16
    """

    name: str
    size: int
    fields: tuple[WordField, ...]
    _by_name: dict = field(default=None, compare=False, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.size % CACHE_LINE != 0:
            raise MemoryError_(
                f"struct {self.name!r} size {self.size} is not a multiple of "
                f"the {CACHE_LINE}B cache line (paper pads all metadata)")
        seen: dict[str, WordField] = {}
        used: set[int] = set()
        for f in self.fields:
            if f.name in seen:
                raise MemoryError_(f"duplicate field name {f.name!r} in {self.name!r}")
            if f.offset + WORD_SIZE > self.size:
                raise MemoryError_(
                    f"field {f.name!r} at offset {f.offset} overruns {self.size}B struct")
            if f.offset in used:
                raise MemoryError_(f"overlapping fields at offset {f.offset} in {self.name!r}")
            used.add(f.offset)
            seen[f.name] = f
        object.__setattr__(self, "_by_name", seen)

    def field_named(self, name: str) -> WordField:
        try:
            return self._by_name[name]
        except KeyError:
            raise MemoryError_(f"struct {self.name!r} has no field {name!r}") from None

    def offset_of(self, name: str) -> int:
        return self.field_named(name).offset

    def addr_of(self, base_addr: int, name: str) -> int:
        """Absolute byte address of ``name`` for a record at ``base_addr``."""
        return base_addr + self.field_named(name).offset

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def spans_cache_lines(self) -> bool:
        """True if the record straddles more than one cache line (only
        possible for records larger than 64B)."""
        return self.size > CACHE_LINE
