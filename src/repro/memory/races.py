"""Audit the local/remote atomicity matrix (paper Table 1).

RDMA guarantees atomicity between *8-byte* local and remote plain
reads/writes, and among remote atomics themselves (the NIC serializes
them), but **not** between a remote RMW and local writes/RMWs: at the
target, a remote CAS is a read followed by a write with a window in
between.  The 'No' cells of Table 1 are therefore:

* local ``Write``  overlapping a remote ``CAS`` window
* local ``RMW``    overlapping a remote ``CAS`` window

The auditor watches every memory operation the simulation performs and
records (mode ``"record"``) or raises on (mode ``"strict"``) any such
overlap.  A correct RDMA lock — ALock included — must drive the auditor
to zero violations; the deliberately broken lock in
``examples/atomicity_pitfalls.py`` shows what the violations look like
and how they translate into lost updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.common.errors import AtomicityViolation, SimulationError

Mode = Literal["off", "record", "strict"]

#: Local operation kinds reported to the auditor.
LOCAL_READ = "Read"
LOCAL_WRITE = "Write"
LOCAL_RMW = "RMW"

#: Cells of Table 1 that RDMA does *not* make atomic: (local op, remote op).
UNSAFE_PAIRS: frozenset[tuple[str, str]] = frozenset({
    (LOCAL_WRITE, "rCAS"),
    (LOCAL_RMW, "rCAS"),
})


@dataclass(frozen=True)
class RaceRecord:
    """One observed violation of Table 1."""

    time: float
    node: int
    addr: int
    local_op: str
    remote_op: str
    local_actor: str
    remote_actor: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"[{self.time:.1f} ns] n{self.node} addr {self.addr:#x}: "
                f"local {self.local_op} by {self.local_actor} raced "
                f"remote {self.remote_op} by {self.remote_actor}")


@dataclass
class _RmwWindow:
    """An in-flight remote RMW at a target word: [start, end) in sim time."""

    addr: int
    op: str
    actor: str
    start: float
    end: float


@dataclass
class RaceAuditor:
    """Tracks in-flight remote RMW windows per node and checks local ops
    against them.

    One auditor serves the whole cluster; regions report with their node
    id.  ``mode="off"`` short-circuits all bookkeeping for benchmark runs.
    """

    mode: Mode = "record"
    violations: list[RaceRecord] = field(default_factory=list)
    _windows: dict[tuple[int, int], list[_RmwWindow]] = field(default_factory=dict)
    checked_ops: int = 0
    #: retire calls for windows the auditor never saw (double-retire or a
    #: begin/end pairing bug in the verbs layer) — an internal-consistency
    #: error of the *simulator*, distinct from a Table-1 violation.
    consistency_errors: int = 0

    # -- remote RMW windows ------------------------------------------------
    def remote_rmw_begin(self, node: int, addr: int, op: str, actor: str,
                         start: float, end: float) -> _RmwWindow:
        """Register the read→write window of a remote RMW at its target."""
        if self.mode == "off":
            return _RmwWindow(addr, op, actor, start, end)
        win = _RmwWindow(addr, op, actor, start, end)
        self._windows.setdefault((node, addr), []).append(win)
        return win

    def remote_rmw_end(self, node: int, window: _RmwWindow) -> None:
        """Retire a window once its write has landed.

        Retiring a window that was never registered (or already retired)
        means the verbs layer's begin/end pairing is broken — the audit's
        own bookkeeping can no longer be trusted.  It is counted in
        :attr:`consistency_errors` and, in ``strict`` mode, raised
        immediately rather than silently swallowed.
        """
        if self.mode == "off":
            return
        key = (node, window.addr)
        wins = self._windows.get(key)
        if not wins or window not in wins:
            self.consistency_errors += 1
            if self.mode == "strict":
                raise SimulationError(
                    f"RaceAuditor.remote_rmw_end: retiring unknown RMW "
                    f"window (node {node}, addr {window.addr:#x}, op "
                    f"{window.op}, actor {window.actor}): double retire or "
                    f"unmatched begin/end in the verbs layer")
            return
        wins.remove(window)
        if not wins:
            del self._windows[key]

    # -- local operations ----------------------------------------------------
    def local_op(self, node: int, addr: int, op: str, actor: str, time: float) -> None:
        """Check a local ``Read``/``Write``/``RMW`` at ``time`` against
        in-flight remote RMW windows on the same word."""
        if self.mode == "off":
            return
        self.checked_ops += 1
        wins = self._windows.get((node, addr))
        if not wins:
            return
        for win in wins:
            if win.start <= time < win.end and (op, win.op) in UNSAFE_PAIRS:
                rec = RaceRecord(time, node, addr, op, win.op, actor, win.actor)
                self.violations.append(rec)
                if self.mode == "strict":
                    raise AtomicityViolation(
                        str(rec), address=addr, local_op=op, remote_op=win.op)

    # -- reporting -----------------------------------------------------------
    @property
    def violation_count(self) -> int:
        return len(self.violations)

    def assert_clean(self) -> None:
        """Raise if any violation was recorded (test helper)."""
        if self.violations:
            first = self.violations[0]
            raise AtomicityViolation(
                f"{len(self.violations)} Table-1 violations; first: {first}",
                address=first.addr, local_op=first.local_op, remote_op=first.remote_op)

    def reset(self) -> None:
        self.violations.clear()
        self._windows.clear()
        self.checked_ops = 0
        self.consistency_errors = 0
