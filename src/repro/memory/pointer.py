"""Packed RDMA pointers (the paper's ``rdma_ptr<T>``).

The paper packs the home-node id into the first 4 bits of an 8-byte
pointer, leaving 60 bits of address (§6, Fig. 3).  A 4-bit field only
addresses 16 nodes, yet the paper's largest testbed is 20 machines — we
widen the field to 5 bits (32 nodes, 59 address bits) so the 20-node
experiments are representable, and note the deviation in DESIGN.md.

Pointers are plain Python ints in hot paths; :class:`RdmaPointer` is an
ergonomic wrapper for public APIs and debugging.  The integer value 0 is
NULL: byte address 0 is never handed out by any allocator (regions
reserve their first cache line), so ``node 0, addr 0`` cannot collide
with a real object.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import MemoryError_

#: Bits of the pointer reserved for the home-node id (paper: 4; see above).
NODE_BITS = 5
#: Bits available for the byte address within a node.
ADDR_BITS = 64 - NODE_BITS

MAX_NODES = 1 << NODE_BITS
_ADDR_MASK = (1 << ADDR_BITS) - 1

#: The null pointer — also "cohort unlocked" in Peterson flag semantics.
NULL_PTR = 0

WORD_SIZE = 8
CACHE_LINE = 64


def pack_ptr(node: int, addr: int) -> int:
    """Pack ``(node, byte address)`` into one 64-bit pointer value."""
    if not 0 <= node < MAX_NODES:
        raise MemoryError_(f"node id {node} out of range [0, {MAX_NODES})")
    if not 0 <= addr <= _ADDR_MASK:
        raise MemoryError_(f"address {addr:#x} does not fit in {ADDR_BITS} bits")
    return (node << ADDR_BITS) | addr


def ptr_node(ptr: int) -> int:
    """Home-node id encoded in ``ptr``."""
    return ptr >> ADDR_BITS


def ptr_addr(ptr: int) -> int:
    """Byte address within the home node."""
    return ptr & _ADDR_MASK


def is_null(ptr: int) -> bool:
    return ptr == NULL_PTR


@dataclass(frozen=True)
class RdmaPointer:
    """Friendly wrapper over a packed pointer value.

    >>> p = RdmaPointer.make(3, 0x40)
    >>> p.node, p.addr
    (3, 64)
    >>> int(p) == pack_ptr(3, 0x40)
    True
    """

    value: int

    @classmethod
    def make(cls, node: int, addr: int) -> "RdmaPointer":
        return cls(pack_ptr(node, addr))

    @classmethod
    def null(cls) -> "RdmaPointer":
        return cls(NULL_PTR)

    @property
    def node(self) -> int:
        return ptr_node(self.value)

    @property
    def addr(self) -> int:
        return ptr_addr(self.value)

    @property
    def is_null(self) -> bool:
        return self.value == NULL_PTR

    def offset(self, nbytes: int) -> "RdmaPointer":
        """Pointer ``nbytes`` further into the same node's region."""
        if self.is_null:
            raise MemoryError_("cannot offset the null pointer")
        return RdmaPointer.make(self.node, self.addr + nbytes)

    def __int__(self) -> int:
        return self.value

    def __index__(self) -> int:
        return self.value

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_null:
            return "rdma_ptr(NULL)"
        return f"rdma_ptr(n{self.node}:{self.addr:#x})"
