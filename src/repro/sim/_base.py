"""Pieces of the event core shared by every engine implementation.

The simulator ships two interchangeable event cores — the pure-Python
reference engine (:mod:`repro.sim._engine`) and the optional compiled
C extension (:mod:`repro.sim._ccore`, wrapped by
:mod:`repro.sim._compiled`).  Anything whose *object identity* crosses
the engine boundary must live here, exactly once:

* :data:`PENDING` — client code tests ``ev._value is PENDING``; both
  engines must hand out the very same sentinel object.
* :class:`Interrupt` — scenario code catches it; an ``isinstance``
  check must succeed regardless of which engine threw it.
* :class:`FlightLike` — the structural type of the flight-recorder
  hook, referenced by both engines' policy steps.
* :func:`_describe_wait` — the deadlock-diagnostic formatter, a pure
  function of an event's ``info`` label.

This module must stay dependency-free (stdlib + ``repro.common`` only)
so the C extension can import it during its own module init without
creating a cycle through :mod:`repro.sim.core`.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol


class FlightLike(Protocol):
    """Sink for flight-recorder notes (see :mod:`repro.obs.flight`).

    The engine stays ignorant of the recorder's implementation; it only
    needs somewhere to note schedule tie-breaks, which exist solely on
    the policy path, so the default dispatch loop never pays for it.
    """

    def note(self, actor: str, kind: str, *detail: object) -> None: ...


class _Pending:
    """Sentinel for an event value that has not been produced yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


PENDING = _Pending()


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` is whatever the interrupter passed — by convention a
    short string or the interrupting object.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _WaitInfoLike(Protocol):
    """The slice of the Event surface :func:`_describe_wait` touches —
    structural so it accepts events from either engine."""

    info: Optional[tuple]


def _describe_wait(event: Optional[_WaitInfoLike]) -> str:
    """Human-readable description of what a parked process waits on,
    using :attr:`Event.info` labels when the issuer set one."""
    if event is None:
        return "nothing (never parked or mid-interrupt)"
    if event.info is not None:
        kind, *detail = event.info
        return f"{kind}({', '.join(str(d) for d in detail)})"
    return type(event).__name__


__all__ = ["PENDING", "Interrupt", "FlightLike", "_describe_wait"]
