"""Deterministic discrete-event simulation engine.

A purpose-built, simpy-flavoured kernel: processes are Python generators
that ``yield`` events; the environment advances a virtual clock in
nanoseconds.  Determinism is guaranteed by a total order on scheduled
events ``(time, seq)`` where ``seq`` is a monotonically increasing
insertion counter — two runs with the same seed produce identical
trajectories.

Public surface:

* :class:`Environment` — the event loop / clock.
* :class:`Event`, :class:`Timeout`, :class:`Process` — awaitables.
* :class:`AnyOf`, :class:`AllOf` — event combinators.
* :class:`Resource` — FIFO server pool with utilization accounting
  (models NIC pipelines and PCIe lanes).
* :class:`Store` — FIFO message channel.
* :class:`Interrupt` — cooperative cancellation.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    CORE_KIND,
    Environment,
    Event,
    Interrupt,
    PENDING,
    Process,
    Timeout,
    core_info,
)
from repro.sim.resources import Resource, Store

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "PENDING",
    "Resource",
    "Store",
    "CORE_KIND",
    "core_info",
]
