"""Core of the discrete-event engine: clock, events, processes.

Time is a float in **nanoseconds** throughout the library; the RDMA cost
model (microseconds-scale verbs, ~100 ns local ops) fits naturally and
the paper's latency plots are in nanoseconds.

The engine is deliberately small and allocation-light: the simulator is
the hot loop of every benchmark, so event dispatch avoids closures where
a method reference suffices, and the heap stores 3-tuples rather than
objects with rich comparison.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional, Protocol

from repro.common.errors import SimulationError


class FlightLike(Protocol):
    """Sink for flight-recorder notes (see :mod:`repro.obs.flight`).

    The engine stays ignorant of the recorder's implementation; it only
    needs somewhere to note schedule tie-breaks, which exist solely on
    the policy path, so the default dispatch loop never pays for it.
    """

    def note(self, actor: str, kind: str, *detail: object) -> None: ...


class _Pending:
    """Sentinel for an event value that has not been produced yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


PENDING = _Pending()


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` is whatever the interrupter passed — by convention a
    short string or the interrupting object.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    Lifecycle: *pending* → *triggered* (succeed/fail) → *processed*
    (callbacks ran).  Waiting on an already-processed event resumes the
    waiter immediately (scheduled at the current time, preserving the
    global event order).

    ``info`` is an optional ``(kind, detail)`` label set by whoever hands
    the event out (resources, stores, memory watchers).  It feeds the
    deadlock diagnostics only — never simulation state.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "info")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[[Event], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._scheduled = False
        self.info: Optional[tuple] = None

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (succeeded or failed)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if self._scheduled:
            raise SimulationError(f"{self!r} scheduled twice")
        self._value = value
        self._ok = True
        # Inlined ``env._schedule(self)`` — succeed() fires once per
        # resource grant / watcher wakeup, squarely on the hot path.
        env = self.env
        self._scheduled = True
        env._seq += 1
        heappush(env._heap, (env._now, env._seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception; waiters will have it
        raised at their ``yield``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._value = exception
        self._ok = False
        self.env._schedule(self)
        return self

    def _add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: deliver asynchronously at current time to
            # keep the "resume happens via the loop" invariant.
            self.env._schedule(_Echo(self.env, self, fn))
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        # The address is debug output only — never feeds sim state or seeds.
        return f"<{type(self).__name__} {state} at {id(self):#x}>"  # simlint: ignore[nondet-source]


class _Echo(Event):
    """Internal: re-delivers an already-processed event to a late waiter."""

    __slots__ = ("_target", "_fn")

    def __init__(self, env: "Environment", target: Event, fn: Callable[[Event], None]):
        super().__init__(env)
        self._target = target
        self._fn = fn
        self._value = None  # pre-triggered

    def _process(self) -> None:
        self.callbacks = None
        self._fn(self._target)


class Timeout(Event):
    """An event that triggers ``delay`` nanoseconds after creation.

    The value is held aside until the scheduler pops the timeout, so
    :attr:`triggered` stays False until the delay actually elapses.
    """

    __slots__ = ("delay", "_pending_value")

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        # Flattened Event.__init__ + env._schedule: timeouts are the most
        # frequently created event by an order of magnitude, and the two
        # extra frames per construction are measurable in every benchmark.
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._scheduled = True
        self.info = None
        self.delay = delay
        self._pending_value = value
        env._seq += 1
        heappush(env._heap, (env._now + delay, env._seq, self))


class Process(Event):
    """Wraps a generator; the process *is* an event that triggers when the
    generator returns (value = its ``return`` value) or raises."""

    __slots__ = ("_generator", "_waiting_on", "name", "pid", "last_resumed_at")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(f"process target must be a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        #: creation-order id — stable identity for schedule policies and
        #: deadlock reports (never an address).
        self.pid = env._register_process(self)
        self.last_resumed_at = env._now
        # Kick off at the current time.
        boot = Event(env)
        boot._value = None
        boot._ok = True
        env._schedule(boot)
        boot.callbacks.append(self._resume)

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        No-op if the process already finished.
        """
        if not self.is_alive:
            return
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        kick = Event(self.env)
        kick._value = Interrupt(cause)
        kick._ok = False
        self.env._schedule(kick)
        kick.callbacks.append(self._resume)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        env = self.env
        self.last_resumed_at = env._now
        gen = self._generator
        env._active_process = self
        try:
            while True:
                if event._ok:
                    target = gen.send(event._value)
                else:
                    target = gen.throw(event._value)
                if not isinstance(target, Event):
                    raise SimulationError(
                        f"process {self.name!r} yielded non-event {target!r}")
                if target._value is PENDING or target.callbacks is not None:
                    # Pending, or triggered but not yet processed — park and
                    # let the loop process it so ordering matches schedule
                    # order.
                    self._waiting_on = target
                    target.callbacks.append(self._resume)
                    return
                # Already processed: consume its value synchronously.
                event = target
        except StopIteration as stop:
            self._value = stop.value
            self._ok = True
            self.env._schedule(self)
        except Interrupt as intr:
            # An un-handled interrupt terminates the process with a failure.
            self._value = intr
            self._ok = False
            self.env._schedule(self)
        except BaseException as exc:
            self._value = exc
            self._ok = False
            self.env._schedule(self)
            if not isinstance(exc, Exception):  # pragma: no cover - KeyboardInterrupt etc.
                raise
        finally:
            self.env._active_process = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


def _describe_wait(event: Optional[Event]) -> str:
    """Human-readable description of what a parked process waits on,
    using :attr:`Event.info` labels when the issuer set one."""
    if event is None:
        return "nothing (never parked or mid-interrupt)"
    if event.info is not None:
        kind, *detail = event.info
        return f"{kind}({', '.join(str(d) for d in detail)})"
    return type(event).__name__


class _Condition(Event):
    """Base for AnyOf/AllOf combinators."""

    __slots__ = ("events", "_n_done")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._n_done = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("all events in a condition must share an environment")
            ev._add_callback(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events if ev.triggered and ev._ok}


class AnyOf(_Condition):
    """Triggers when the first constituent event triggers.

    Value: dict of the triggered events and their values at that moment.
    A failed constituent fails the condition.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers when every constituent event has triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed(self._collect())


class Environment:
    """The event loop and virtual clock.

    ``run(until=...)`` processes events in ``(time, seq)`` order.  ``seq``
    is a global insertion counter, so simultaneous events run in the order
    they were scheduled — fully deterministic.

    A *schedule policy* (see :mod:`repro.schedcheck`) may be installed to
    override the same-time tie-break: at each step where several events
    are ready at the minimum time, the policy picks which one runs.  With
    no policy installed (the default) the dispatch loop is untouched, and
    the trivial first-ready policy reproduces it decision for decision.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._event_count = 0
        # schedule-exploration hook (None = historical fast path)
        self._policy = None
        self._sched_log: list[int] = []
        self._sched_fanout: list[int] = []
        # flight-recorder hook: only the policy step consults it, so the
        # no-policy hot loop is untouched (see FlightLike)
        self.flight: Optional[FlightLike] = None
        # process registry for deadlock diagnostics / schedule policies
        self._procs: list[Process] = []
        self._next_pid = 0
        self._procs_prune_at = 64

    # -- clock ------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def event_count(self) -> int:
        """Total events processed so far (for engine benchmarks)."""
        return self._event_count

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- factories ----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- process registry ---------------------------------------------
    def _register_process(self, proc: Process) -> int:
        """Track ``proc`` for diagnostics; returns its creation-order pid.
        Finished processes are pruned amortized-O(1) so long simulations
        do not accumulate dead generators."""
        self._next_pid += 1
        self._procs.append(proc)
        if len(self._procs) >= self._procs_prune_at:
            self._procs = [p for p in self._procs if p.is_alive]
            self._procs_prune_at = max(64, 2 * len(self._procs) + 1)
        return self._next_pid

    def alive_processes(self) -> list[Process]:
        """Processes that have not finished, in creation order."""
        return [p for p in self._procs if p.is_alive]

    def describe_alive(self, limit: int = 8) -> str:
        """One-line diagnostic of the still-alive processes — what each is
        named, when it last ran, and what event it is parked on."""
        alive = self.alive_processes()
        if not alive:
            return "no processes alive"
        parts = []
        for p in alive[:limit]:
            parts.append(f"{p.name} (pid {p.pid}, last resumed at "
                         f"{p.last_resumed_at:.1f} ns, waiting on "
                         f"{_describe_wait(p._waiting_on)})")
        if len(alive) > limit:
            parts.append(f"... and {len(alive) - limit} more")
        return "; ".join(parts)

    # -- schedule-exploration hook -------------------------------------
    def set_schedule_policy(self, policy) -> None:
        """Install (or with ``None`` remove) a same-time tie-break policy.

        The policy object needs one method,
        ``choose(ready: list[tuple[float, int, Event]]) -> int``, called
        whenever two or more events are ready at the minimum time.
        ``ready`` is ordered by insertion (ascending ``seq``), so
        returning 0 reproduces the default schedule exactly.  Every
        choice is appended to :attr:`schedule_decisions` /
        :attr:`schedule_fanouts` for replay and shrinking.
        """
        self._policy = policy

    @property
    def schedule_decisions(self) -> list[int]:
        """Chosen ready-list index per choice point (policy runs only)."""
        return self._sched_log

    @property
    def schedule_fanouts(self) -> list[int]:
        """Number of ready events per choice point (policy runs only)."""
        return self._sched_fanout

    # -- scheduling ----------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))

    # -- execution ----------------------------------------------------
    def step(self) -> None:
        """Process exactly one event."""
        if self._policy is not None:
            return self._step_policy()
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        time, _seq, event = heapq.heappop(self._heap)
        self._now = time
        self._event_count += 1
        if isinstance(event, _Echo):
            event._process()
            return
        if isinstance(event, Timeout):
            event._value = event._pending_value
            event._ok = True
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for fn in callbacks:
                fn(event)

    def _step_policy(self) -> None:
        """One step with a schedule policy: collect every event ready at
        the minimum time, let the policy pick, and push the rest back
        (their original ``(time, seq)`` keys keep re-extraction stable).
        """
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        first = heapq.heappop(self._heap)
        time = first[0]
        ready = [first]
        while self._heap and self._heap[0][0] == time:
            ready.append(heapq.heappop(self._heap))
        if len(ready) == 1:
            chosen = first
        else:
            idx = self._policy.choose(ready)
            if not 0 <= idx < len(ready):
                raise SimulationError(
                    f"schedule policy chose index {idx} out of "
                    f"{len(ready)} ready events")
            self._sched_log.append(idx)
            self._sched_fanout.append(len(ready))
            chosen = ready.pop(idx)
            fl = self.flight
            if fl is not None:
                fl.note("sched", "sched.tiebreak", idx, len(ready) + 1)
            for entry in ready:
                heapq.heappush(self._heap, entry)
        event = chosen[2]
        self._now = time
        self._event_count += 1
        if isinstance(event, _Echo):
            event._process()
            return
        if isinstance(event, Timeout):
            event._value = event._pending_value
            event._ok = True
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for fn in callbacks:
                fn(event)

    def peek(self) -> float:
        """Time of the next event, or +inf if none is scheduled."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run until the schedule drains, a deadline passes, or an event fires.

        Args:
            until: ``None`` → run to exhaustion; a number → run while the
                next event is at or before that time, then set ``now`` to
                it; an :class:`Event` → run until it is processed and
                return its value (raising if it failed).
        """
        if until is None:
            if self._policy is not None:
                while self._heap:
                    self._step_policy()
            else:
                self._run_drain(float("inf"))
            return None
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._heap:
                    raise SimulationError(
                        "schedule drained before the awaited event "
                        "triggered (deadlock?); " + self.describe_alive())
                self.step()
            if stop._ok:
                return stop._value
            raise stop._value
        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(f"run(until={deadline}) is in the past (now={self._now})")
        if self._policy is not None:
            while self._heap and self._heap[0][0] <= deadline:
                self._step_policy()
        else:
            self._run_drain(deadline)
        self._now = deadline
        return None

    def _run_drain(self, deadline: float) -> None:
        """The no-policy dispatch loop, inlined from :meth:`step`.

        This is the innermost loop of every benchmark and experiment:
        dispatching through here instead of per-event ``step()`` calls
        removes a Python frame plus several attribute loads per event.
        Semantically identical to ``while heap: step()`` — same pop
        order, same Timeout/_Echo handling, same callback sequence.
        """
        heap = self._heap
        pop = heappop
        count = self._event_count
        try:
            while heap and heap[0][0] <= deadline:
                time, _seq, event = pop(heap)
                self._now = time
                count += 1
                cls = event.__class__
                if cls is Timeout:
                    event._value = event._pending_value
                elif cls is not Event:
                    if isinstance(event, _Echo):
                        event._process()
                        continue
                    if isinstance(event, Timeout):
                        event._value = event._pending_value
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    for fn in callbacks:
                        fn(event)
        finally:
            self._event_count = count
