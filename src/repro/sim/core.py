"""Core of the discrete-event engine — implementation selector.

Two interchangeable event cores implement the engine contract:

* :mod:`repro.sim._engine` — the pure-Python reference (calendar-queue
  scheduler; see its module docstring for the design).
* :mod:`repro.sim._ccore` — an optional compiled C twin (built by
  ``scripts/build_compiled_core.py`` / ``pip install -e .``), wrapped
  by :mod:`repro.sim._compiled`.

Selection happens once, at first import, via ``ALOCK_SIM_CORE``:

* ``auto`` (default, also the empty string) — compiled if the extension
  imports, else pure.  Silent fallback by design.
* ``pure`` — always the pure-Python engine.
* ``compiled`` — the compiled engine; if it cannot be imported this
  *warns* (``RuntimeWarning``) and falls back to pure, so a missing
  build never bricks a dev checkout.  CI's compiled leg turns that
  fallback into a hard failure by asserting ``core_info()["kind"] ==
  "compiled"`` (see ``.github/workflows/ci.yml``).

:func:`core_info` reports what was requested, what actually loaded, and
why a fallback happened, so harnesses (CI, ``repro.parallel`` workers,
benchmarks) can verify or propagate the selection.  Everything observable
— event order, decision strings, flight notes, error messages — is
identical across cores; ``tests/sim/test_core_equivalence.py`` and
``tests/ci/test_core_identity.py`` enforce that.

Downstream code keeps importing names from here (``repro.sim.core``);
which engine serves them is an environment concern, never a code-level
one — simlint confines scheduler internals to the engine modules.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional, TYPE_CHECKING

from repro.common.errors import ConfigError
from repro.sim._base import PENDING, FlightLike, Interrupt, _describe_wait

__all__ = [
    "PENDING", "Interrupt", "FlightLike", "_describe_wait",
    "Event", "Timeout", "Process", "AnyOf", "AllOf",
    "Environment", "CalendarQueue",
    "CORE_KIND", "core_info",
]

_VALID = ("auto", "pure", "compiled")
_requested = os.environ.get("ALOCK_SIM_CORE", "auto").strip().lower() or "auto"
if _requested not in _VALID:
    raise ConfigError(
        f"ALOCK_SIM_CORE={_requested!r} is not one of {'/'.join(_VALID)}")

_fallback_reason: Optional[str] = None

if TYPE_CHECKING:
    # The pure engine is the typed reference contract; the compiled
    # twin is checked against it dynamically (equivalence suite).
    from repro.sim._engine import (
        AllOf,
        AnyOf,
        CalendarQueue,
        Environment,
        Event,
        Process,
        SchedulePolicyLike,
        Timeout,
        _Condition,
        _Echo,
    )

    CORE_KIND = "pure"
else:
    _impl = None
    if _requested in ("auto", "compiled"):
        try:
            from repro.sim import _compiled as _impl
        except ImportError as _exc:
            _fallback_reason = str(_exc)
            if _requested == "compiled":
                warnings.warn(
                    "ALOCK_SIM_CORE=compiled but the compiled event core is "
                    f"unavailable ({_fallback_reason}); falling back to the "
                    "pure-Python engine",
                    RuntimeWarning,
                    stacklevel=2,
                )
    if _impl is None:
        from repro.sim import _engine as _impl

    CORE_KIND = _impl.CORE_KIND if hasattr(_impl, "CORE_KIND") else (
        "compiled" if _impl.__name__.endswith("_compiled") else "pure")
    Environment = _impl.Environment
    Event = _impl.Event
    Timeout = _impl.Timeout
    Process = _impl.Process
    AnyOf = _impl.AnyOf
    AllOf = _impl.AllOf
    _Condition = _impl._Condition
    _Echo = _impl._Echo
    CalendarQueue = _impl.CalendarQueue
    SchedulePolicyLike = _impl.SchedulePolicyLike


def core_info() -> dict[str, Optional[str]]:
    """How the event core was selected for this process.

    Returns ``{"requested": ..., "kind": ..., "fallback_reason": ...}``
    where ``kind`` is the engine actually serving this process ("pure"
    or "compiled") and ``fallback_reason`` is the import error message
    when a requested/auto compiled core could not be loaded (else None).
    """
    return {
        "requested": _requested,
        "kind": CORE_KIND,
        "fallback_reason": _fallback_reason,
    }
