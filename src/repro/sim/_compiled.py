"""Python shell around the compiled event core (:mod:`repro.sim._ccore`).

The C extension implements the hot surface — ``Event``/``Timeout``/
``Process``/``CalendarQueue``/``Environment`` with the calendar-queue
drain loop — and this module adds everything that is cold by
construction and therefore not worth a C transliteration:

* the :class:`AnyOf`/:class:`AllOf` condition combinators,
* the schedule-policy step (``_step_policy``) used only by schedcheck
  exploration and replay,
* the deadlock diagnostics (``describe_alive``/``alive_processes``).

Importing this module raises :class:`ImportError` when the extension
has not been built — :mod:`repro.sim.core` catches that and falls back
to the pure engine (see its module docstring for the selection rules).

Everything observable is identical to :mod:`repro.sim._engine`: event
order, decision strings, flight notes, reprs, and error messages.  The
equivalence and byte-identity suites pin that down.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Protocol

from repro.common.errors import SimulationError
from repro.sim._base import (
    PENDING,
    FlightLike,
    Interrupt,
    _describe_wait,
)
from repro.sim import _ccore

CORE_KIND = "compiled"

Event = _ccore.Event
Timeout = _ccore.Timeout
Process = _ccore.Process
CalendarQueue = _ccore.CalendarQueue
_Echo = _ccore._Echo

__all__ = [
    "PENDING", "Interrupt", "FlightLike", "_describe_wait",
    "Event", "Timeout", "Process", "AnyOf", "AllOf",
    "Environment", "CalendarQueue", "SchedulePolicyLike", "CORE_KIND",
]


class SchedulePolicyLike(Protocol):
    """Structural type of the same-time tie-break hook (see
    :mod:`repro.schedcheck`)."""

    def choose(self, ready: list[tuple[float, int, Event]]) -> int: ...


class _Condition(Event):
    """Base for AnyOf/AllOf combinators."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._n_done = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("all events in a condition must share an environment")
            ev._add_callback(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events if ev.triggered and ev._ok}


class AnyOf(_Condition):
    """Triggers when the first constituent event triggers.

    Value: dict of the triggered events and their values at that moment.
    A failed constituent fails the condition.
    """

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers when every constituent event has triggered."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed(self._collect())


class Environment(_ccore.Environment):
    """Compiled event loop with the Python-side cold paths attached."""

    # -- factories (condition combinators live Python-side) ----------
    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- process registry diagnostics ---------------------------------
    def alive_processes(self) -> list[Process]:
        """Processes that have not finished, in creation order."""
        return [p for p in self._procs if p.is_alive]

    def describe_alive(self, limit: int = 8) -> str:
        """One-line diagnostic of the still-alive processes — what each is
        named, when it last ran, and what event it is parked on."""
        alive = self.alive_processes()
        if not alive:
            return "no processes alive"
        parts = []
        for p in alive[:limit]:
            parts.append(f"{p.name} (pid {p.pid}, last resumed at "
                         f"{p.last_resumed_at:.1f} ns, waiting on "
                         f"{_describe_wait(p._waiting_on)})")
        if len(alive) > limit:
            parts.append(f"... and {len(alive) - limit} more")
        return "; ".join(parts)

    # -- schedule-exploration hook ------------------------------------
    def set_schedule_policy(self, policy: Optional[SchedulePolicyLike]) -> None:
        """Install (or with ``None`` remove) a same-time tie-break policy.

        See :meth:`repro.sim._engine.Environment.set_schedule_policy`;
        the contract is identical across cores.
        """
        self._policy = policy

    def _step_policy(self) -> None:
        """One step with a schedule policy installed — the exploration
        path, deliberately kept in Python: schedcheck runs trade speed
        for introspection, and keeping one readable implementation per
        core pair would be a maintenance trap.  Mirrors
        :meth:`repro.sim._engine.Environment._step_policy` line for
        line against the C engine's members."""
        policy = self._policy
        assert policy is not None
        batch = self._batch
        bh = self._batch_head
        nowq = self._nowq
        nh = self._now_head
        if bh >= len(batch) and nh >= len(nowq):
            if len(self._cal) == 0:
                raise SimulationError("step() on an empty schedule")
            self._pull_batch()
            batch = self._batch
            bh = 0
            nowq = self._nowq
            nh = 0
        ready = batch[bh:]
        if nh < len(nowq):
            ready += nowq[nh:]
        n_batch = len(batch) - bh  # ready[:n_batch] came from the batch
        if len(ready) == 1:
            chosen = ready[0]
            if n_batch:
                self._batch_head = bh + 1
            else:
                self._now_head = nh + 1
        else:
            idx = policy.choose(ready)
            if not 0 <= idx < len(ready):
                raise SimulationError(
                    f"schedule policy chose index {idx} out of "
                    f"{len(ready)} ready events")
            self._sched_log.append(idx)
            self._sched_fanout.append(len(ready))
            chosen = ready[idx]
            fl = self.flight
            if fl is not None:
                fl.note("sched", "sched.tiebreak", idx, len(ready))
            if idx < n_batch:
                del batch[bh + idx]
            else:
                del nowq[nh + idx - n_batch]
        event = chosen[2]
        self._event_count += 1
        if isinstance(event, _Echo):
            event._process()
            return
        if isinstance(event, Timeout):
            event._value = event._pending_value
            event._ok = True
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for fn in callbacks:
                fn(event)
