"""Queued resources for the simulator.

:class:`Resource` models a server pool with FIFO admission — we use it
for NIC TX/RX pipelines and the PCIe bus, where the *queueing delay under
load* is exactly the congestion phenomenon the paper discusses (§2).
It tracks busy time and queue-length statistics so experiments can report
utilization.

:class:`Store` is an unbounded FIFO channel used by RPC-style helpers and
tests.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.common.errors import SimulationError
from repro.sim.core import Environment, Event, Timeout


class Resource:
    """A FIFO resource with ``capacity`` concurrent slots.

    Usage from a process::

        req = resource.request()
        yield req
        ...   # hold the slot
        resource.release()

    Statistics: :attr:`busy_time` integrates (slots in use) over time;
    :meth:`utilization` divides by elapsed × capacity.  :attr:`peak_queue`
    records the worst backlog, which the NIC model uses as its RX-buffer
    occupancy signal.
    """

    __slots__ = ("env", "capacity", "name", "_in_use", "_queue",
                 "_busy_integral", "_last_change", "_started_at",
                 "peak_queue", "total_served")

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: deque[Event] = deque()
        # statistics
        self._busy_integral = 0.0
        self._last_change = env.now
        self._started_at = env.now
        self.peak_queue = 0
        self.total_served = 0

    # -- stats ---------------------------------------------------------
    def _account(self) -> None:
        now = self.env.now
        self._busy_integral += self._in_use * (now - self._last_change)
        self._last_change = now

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def utilization(self) -> float:
        """Mean fraction of capacity busy since construction."""
        self._account()
        elapsed = self.env.now - self._started_at
        if elapsed <= 0:
            return 0.0
        return self._busy_integral / (elapsed * self.capacity)

    # -- protocol -------------------------------------------------------
    def request(self) -> Event:
        """Return an event that triggers once a slot is granted.

        A waiter that gets interrupted while parked on the event MUST
        call :meth:`cancel` with it (or use :meth:`acquire`, which does);
        otherwise the queued grant is eventually succeeded for a dead
        process and the slot leaks.
        """
        ev = Event(self.env)
        ev.info = ("resource", self.name or "unnamed")
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            self.total_served += 1
            ev.succeed(self)
        else:
            self._queue.append(ev)
            if len(self._queue) > self.peak_queue:
                self.peak_queue = len(self._queue)
        return ev

    def cancel(self, ev: Event) -> bool:
        """Withdraw a pending request, or give back an already-granted
        slot the requester will never use.

        Returns True if a slot had been granted (and was released here).
        Safe to call regardless of the request's state, so interrupt
        handlers need no bookkeeping about how far admission got:

        * still queued — the grant event is removed from the queue and
          will never be succeeded;
        * already granted (immediately, or handed over by a
          :meth:`release` in the same timestep the interrupt landed) —
          the slot is released on the canceller's behalf.
        """
        if not ev.triggered:
            try:
                self._queue.remove(ev)
            except ValueError:
                pass  # unknown/foreign event: nothing to withdraw
            return False
        self.release()
        return True

    def release(self) -> None:
        """Free one slot, admitting the next waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        if self._queue:
            # Hand the slot straight to the next waiter; occupancy unchanged.
            self.total_served += 1
            self._queue.popleft().succeed(self)
        else:
            self._account()
            self._in_use -= 1

    def acquire(self):
        """Interrupt-safe admission: ``yield from resource.acquire()``.

        Equivalent to ``yield resource.request()`` except that an
        interrupt (or any exception) delivered while waiting cancels the
        request instead of leaking the queued grant."""
        req = self.request()
        try:
            yield req
        except BaseException:
            self.cancel(req)
            raise

    def serve(self, service_time: float):
        """Convenience process fragment: acquire, hold for ``service_time``,
        release.  ``yield from resource.serve(t)`` inside a process.
        Interrupt-safe in both phases: waiting cancels the request,
        holding releases the slot.

        The :meth:`acquire` protocol is inlined (and the Timeout built
        directly) — serve() runs once per NIC pipeline stage, several
        times per verb, so the extra generator frame is measurable."""
        req = self.request()
        try:
            yield req
        except BaseException:
            self.cancel(req)
            raise
        try:
            yield Timeout(self.env, service_time)
        finally:
            self.release()


class Store:
    """Unbounded FIFO channel of Python objects.

    ``put`` never blocks; ``get`` returns an event that triggers with the
    next item (immediately if one is buffered).
    """

    __slots__ = ("env", "name", "_items", "_getters")

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = self.env.event()
        ev.info = ("store", self.name or "unnamed")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        return len(self._getters)


class WaitQueue:
    """A broadcast/wakeup primitive: processes park on :meth:`wait` and a
    producer wakes one or all.  Used by the memory watcher layer."""

    __slots__ = ("env", "name", "_waiters")

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._waiters: deque[Event] = deque()

    def wait(self) -> Event:
        ev = self.env.event()
        ev.info = ("waitqueue", self.name or "unnamed")
        self._waiters.append(ev)
        return ev

    def wake_one(self, value: Any = None) -> bool:
        if self._waiters:
            self._waiters.popleft().succeed(value)
            return True
        return False

    def wake_all(self, value: Any = None) -> int:
        n = len(self._waiters)
        while self._waiters:
            self._waiters.popleft().succeed(value)
        return n

    def __len__(self) -> int:
        return len(self._waiters)
