"""Pure-Python event core: calendar-queue scheduler, events, processes.

Time is a float in **nanoseconds** throughout the library; the RDMA cost
model (microseconds-scale verbs, ~100 ns local ops) fits naturally and
the paper's latency plots are in nanoseconds.

This module is the reference implementation of the engine contract.  An
optional compiled twin (:mod:`repro.sim._ccore`, built from C source)
implements the same contract; :mod:`repro.sim.core` picks one at import
time via ``ALOCK_SIM_CORE``.  Behavioural changes MUST land here first —
the compiled core is checked against this module event-for-event by
``tests/sim/test_core_equivalence.py``.

Scheduler design
----------------

The heapq scheduler of PRs 0–9 paid an O(log n) comparison chain per
event.  This engine splits the schedule three ways, exploiting how the
simulator actually produces events:

* ``_nowq`` — a plain append-only list for delay-0 schedules.  Every
  resource grant, watcher wakeup, process boot/completion/interrupt and
  echo is scheduled at the *current* time, so the dominant event class
  needs no priority structure at all: append order **is** ``(time,
  seq)`` order.
* ``_batch`` — the events extracted from the calendar at the current
  minimum time, dispatched FIFO.  Extracting a whole same-tick batch at
  once (rather than one pop per event) is what lets the schedule-policy
  hook see the full ready set for free.
* :class:`CalendarQueue` — strictly-future entries (``delay > 0``,
  i.e. timeouts).  Brown-style calendar: events hash into fixed-width
  time buckets (a dict keyed by ``int(t / width)``), a lazy min-heap of
  occupied bucket indices stands in for the ladder — far-future
  timeouts just sit in high-index buckets and cost nothing until the
  clock approaches them.  Bucket width auto-tunes from observed
  inter-batch deltas and from bucket-overflow spills.

Ordering invariants (why this reproduces heapq order exactly):

1. Every entry keeps its ``(time, seq, event)`` triple; ``seq`` is the
   same global insertion counter as before.
2. An entry can only land in the calendar with ``time > now``; by the
   time the clock reaches ``time`` it is extracted into ``_batch``.
   Hence every calendar-born entry at time *t* has a smaller ``seq``
   than every ``_nowq`` entry appended while ``now == t`` — so
   *batch-then-nowq* is ascending ``seq``, which is exactly the heap's
   pop order for equal times.
3. The clock only advances when both ``_batch`` and ``_nowq`` are
   drained, so ``_nowq`` never holds entries from a stale time.

Negative delays would violate invariant 2 (a past bucket can no longer
be reached), so :meth:`Environment.schedule` rejects them with
:class:`~repro.common.errors.ConfigError` — the heap merely masked
them by re-sorting.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional, Protocol

from repro.common.errors import ConfigError, SimulationError
from repro.sim._base import PENDING, FlightLike, Interrupt, _describe_wait

__all__ = [
    "PENDING", "Interrupt", "FlightLike", "_describe_wait",
    "Event", "Timeout", "Process", "AnyOf", "AllOf",
    "Environment", "CalendarQueue",
]

_INF = float("inf")

#: Entries at or past this time (2**1023 ns — effectively "never") skip
#: the bucket math entirely: ``int(t / width)`` on near-inf floats makes
#: absurd indices, and ``inf`` has none.  They live on the ladder's top
#: rung (``_far``) and are only scanned when every bucket has drained.
_FAR_TIME = 8.98846567431158e307


class CalendarQueue:
    """Calendar queue over ``(time, seq, event)`` triples.

    Classic Brown-style shape: entries hash into fixed-width time
    buckets, and each bucket is kept **sorted** by ``(time, seq)`` via
    :func:`bisect.insort` (``seq`` is globally unique, so comparisons
    never reach the event).  That makes the bucket head the bucket
    minimum, batch extraction a prefix slice, and :meth:`min_time` O(1).
    A lazy min-heap of occupied bucket indices stands in for the ladder:
    far-future timeouts sit in high-index buckets and cost nothing until
    the clock approaches them.

    Not a general priority queue: it exploits that the engine (a) always
    extracts *all* entries at the minimum time at once and (b) never
    inserts at or before the last extracted time (the engine routes
    delay-0 work around the calendar).
    """

    __slots__ = (
        "_buckets", "_order", "_width", "_inv_width", "_len", "_far",
        "_pop_count", "_window_t",
    )

    #: pops between width re-evaluations (windowed inter-batch gap)
    GAP_WINDOW = 256
    #: a bucket growing past this many entries triggers an immediate
    #: width shrink — insort's memmove and the prefix scans degrade
    #: toward O(bucket) once a single bucket swallows the schedule
    SPILL_LIMIT = 512
    MIN_WIDTH = 1e-3
    MAX_WIDTH = 65536.0

    def __init__(self, width: float = 128.0):
        if not width > 0.0:
            raise ConfigError(f"calendar bucket width must be positive, got {width!r}")
        # keys are floor(t / width); ints and whole floats mix freely
        # (1 == 1.0 as dict keys and in heap order) — the hot push path
        # produces floats via floor-division, cold paths produce ints
        self._buckets: dict[float, list[tuple[float, int, Event]]] = {}
        # lazy min-heap of occupied bucket indices; for t >= 0, bucket
        # index is monotone in t, so the min index holds the min time
        self._order: list[float] = []
        self._width = width
        self._inv_width = 1.0 / width
        self._len = 0
        self._far: list[tuple[float, int, Event]] = []
        # auto-tuning state: batch-pop counter + the batch time at the
        # last window boundary (gap averaging without per-pop arithmetic)
        self._pop_count = 0
        self._window_t: Optional[float] = None

    def __len__(self) -> int:
        return self._len

    @property
    def width(self) -> float:
        """Current bucket width in nanoseconds (auto-tuned)."""
        return self._width

    def push(self, time: float, seq: int, event: Event) -> None:
        if time >= _FAR_TIME:
            self._far.append((time, seq, event))
            self._len += 1
            return
        idx = int(time * self._inv_width)
        bucket = self._buckets.get(idx)
        if bucket is None:
            self._buckets[idx] = [(time, seq, event)]
            heappush(self._order, idx)
        elif not bucket:
            # drained bucket left in place (see pop_batch): its index is
            # still on the order heap, so this re-arm costs one append
            bucket.append((time, seq, event))
        else:
            insort(bucket, (time, seq, event))
            if len(bucket) > self.SPILL_LIMIT:
                self._shrink_for(bucket)
        self._len += 1

    def min_time(self) -> float:
        """Earliest entry time, or +inf when empty.  O(1) amortized: the
        min bucket is sorted, so its head is the global minimum."""
        order = self._order
        buckets = self._buckets
        while order:
            bucket = buckets.get(order[0])
            if bucket:
                return bucket[0][0]
            del buckets[order[0]]
            heappop(order)
        far = self._far
        if far:
            t = far[0][0]
            for entry in far:
                if entry[0] < t:
                    t = entry[0]
            return t
        return _INF

    def pop_batch(self) -> tuple[float, list[tuple[float, int, Event]]]:
        """Remove and return ``(t, entries)`` — every entry at the
        minimum time *t*, in ascending ``seq`` order (the sorted
        bucket's equal-time prefix).

        A bucket drained by a pop is deliberately left behind (empty)
        in both the dict and the order heap: the next push into the
        same time range re-arms it with a plain append, and the stale
        shell is discarded only when it resurfaces at the heap top.
        That removes the create/delete churn of workloads with one
        outstanding timeout per process — the dominant sim shape.
        """
        order = self._order
        buckets = self._buckets
        while order:
            idx = order[0]
            bucket = buckets[idx]
            if not bucket:
                del buckets[idx]
                heappop(order)
                continue
            t = bucket[0][0]
            n = len(bucket)
            m = 1
            while m < n and bucket[m][0] == t:
                m += 1
            batch = bucket[:m]
            del bucket[:m]
            self._len -= m
            self._pop_count += 1
            if self._pop_count >= self.GAP_WINDOW:
                self._window_retune(t)
            return (t, batch)
        far = self._far
        if far:
            t = far[0][0]
            for entry in far:
                if entry[0] < t:
                    t = entry[0]
            batch = sorted(
                (entry for entry in far if entry[0] == t), key=_entry_key)
            if len(batch) == len(far):
                self._far = []
            else:
                self._far = [entry for entry in far if entry[0] != t]
            self._len -= len(batch)
            return (t, batch)
        raise SimulationError("pop_batch() on an empty calendar")

    # -- width auto-tuning --------------------------------------------
    def _window_retune(self, t: float) -> None:
        """Every GAP_WINDOW batch pops, derive the average inter-batch
        gap from the window's start/end times (no per-pop arithmetic)
        and re-bucket when the width has drifted 2x from its target."""
        last = self._window_t
        self._window_t = t
        self._pop_count = 0
        if last is None or not t > last:
            return
        avg_gap = (t - last) / self.GAP_WINDOW
        # target ~8 batch times per bucket: sorted buckets keep both
        # insert (binary search + memmove) and extract (prefix slice)
        # cheap at that size, and the order-heap traffic drops 8x
        target = min(max(avg_gap * 8.0, self.MIN_WIDTH), self.MAX_WIDTH)
        if target < self._width * 0.5 or target > self._width * 2.0:
            self._rebuild(target)

    def _shrink_for(self, crowded: list[tuple[float, int, Event]]) -> None:
        """Emergency shrink: one (sorted) bucket grew past SPILL_LIMIT,
        so the width is too coarse for the cluster it covers."""
        span = crowded[-1][0] - crowded[0][0]
        if span <= 0.0:
            return  # one giant same-tick burst; width is not the issue
        target = max(span / 8.0, self.MIN_WIDTH)
        if target < self._width * 0.5:
            self._rebuild(target)

    def _rebuild(self, width: float) -> None:
        """Re-bucket everything at the new width, **in place**: the hot
        loops hold local aliases of ``_buckets``/``_order``, so both
        containers must keep their identity across a rebuild."""
        buckets = self._buckets
        order = self._order
        entries = [entry for bucket in buckets.values() for entry in bucket]
        # empty every old bucket list before dropping it: the drain loop
        # may hold an alias of the current minimum bucket across a
        # dispatch, and a stale non-empty alias would resurrect entries
        # that were just re-bucketed
        for bucket in buckets.values():
            del bucket[:]
        # re-bucket in (time, seq) order so each new bucket's insertion
        # order is again ascending seq within equal times
        entries.sort(key=_entry_key)
        self._width = width
        inv = self._inv_width = 1.0 / width
        buckets.clear()
        del order[:]
        for entry in entries:
            idx = int(entry[0] * inv)
            bucket = buckets.get(idx)
            if bucket is None:
                buckets[idx] = [entry]
                heappush(order, idx)
            else:
                bucket.append(entry)


def _entry_key(entry: tuple[float, int, "Event"]) -> tuple[float, int]:
    return (entry[0], entry[1])


class Event:
    """A one-shot occurrence that processes can wait on.

    Lifecycle: *pending* → *triggered* (succeed/fail) → *processed*
    (callbacks ran).  Waiting on an already-processed event resumes the
    waiter immediately (scheduled at the current time, preserving the
    global event order).

    ``info`` is an optional ``(kind, detail)`` label set by whoever hands
    the event out (resources, stores, memory watchers).  It feeds the
    deadlock diagnostics only — never simulation state.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "info")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[[Event], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._scheduled = False
        self.info: Optional[tuple] = None

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (succeeded or failed)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if self._scheduled:
            raise SimulationError(f"{self!r} scheduled twice")
        self._value = value
        self._ok = True
        # Inlined ``env._schedule(self)`` — succeed() fires once per
        # resource grant / watcher wakeup, squarely on the hot path.
        # Delay-0 ⇒ the now-queue; append order is (time, seq) order.
        env = self.env
        self._scheduled = True
        env._seq = seq = env._seq + 1
        env._nowq.append((env._now, seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception; waiters will have it
        raised at their ``yield``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._value = exception
        self._ok = False
        self.env._schedule(self)
        return self

    def _add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: deliver asynchronously at current time to
            # keep the "resume happens via the loop" invariant.
            self.env._schedule(_Echo(self.env, self, fn))
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        # The address is debug output only — never feeds sim state or seeds.
        return f"<{type(self).__name__} {state} at {id(self):#x}>"  # simlint: ignore[nondet-source]


class _Echo(Event):
    """Internal: re-delivers an already-processed event to a late waiter."""

    __slots__ = ("_target", "_fn")

    def __init__(self, env: "Environment", target: Event, fn: Callable[[Event], None]):
        super().__init__(env)
        self._target = target
        self._fn = fn
        self._value = None  # pre-triggered

    def _process(self) -> None:
        self.callbacks = None
        self._fn(self._target)


class Timeout(Event):
    """An event that triggers ``delay`` nanoseconds after creation.

    The value is held aside until the scheduler pops the timeout, so
    :attr:`triggered` stays False until the delay actually elapses.
    """

    __slots__ = ("delay", "_pending_value")

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        # Flattened Event.__init__ + env._schedule: timeouts are the most
        # frequently created event by an order of magnitude, and the two
        # extra frames per construction are measurable in every benchmark.
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._scheduled = True
        self.info = None
        self.delay = delay
        self._pending_value = value
        env._seq = seq = env._seq + 1
        # Route on the *computed* time, not the delay: a positive delay
        # small enough to underflow (now + delay == now) must join the
        # now-queue, where seq order — the heap's tie-break for equal
        # times — is the append order.  The calendar push is inlined
        # (cf. the flattened init above): timeouts are the only event
        # class that ever touches the calendar, and by an order of
        # magnitude the most frequently created.
        now = env._now
        t = now + delay
        if t > now:
            cal = env._cal
            if t < _FAR_TIME:
                # float floor-div is ~20ns cheaper than int() here, and
                # 1.0 == 1 hash-compare equal as dict keys, so mixing
                # float keys (hot path) with int keys (cold paths) is
                # safe
                idx = t * cal._inv_width // 1.0
                bucket = cal._buckets.get(idx)
                if bucket:
                    insort(bucket, (t, seq, self))
                    if len(bucket) > 512:
                        cal._shrink_for(bucket)
                elif bucket is None:
                    cal._buckets[idx] = [(t, seq, self)]
                    heappush(cal._order, idx)
                else:
                    # drained shell still on the order heap: re-arm free
                    bucket.append((t, seq, self))
                cal._len += 1
            else:
                cal.push(t, seq, self)
        else:
            env._nowq.append((now, seq, self))


class Process(Event):
    """Wraps a generator; the process *is* an event that triggers when the
    generator returns (value = its ``return`` value) or raises."""

    __slots__ = ("_generator", "_waiting_on", "name", "pid", "last_resumed_at",
                 "_resume_cb")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(f"process target must be a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        #: creation-order id — stable identity for schedule policies and
        #: deadlock reports (never an address).
        self.pid = env._register_process(self)
        self.last_resumed_at = env._now
        # One bound method for the process's whole life: every park and
        # un-park uses the same object, so ``callbacks.remove`` compares
        # identically and schedule policies keying on ``cb.__self__``
        # see a stable owner.  Also saves a method-object allocation per
        # resume on the hot path.
        self._resume_cb: Callable[[Event], None] = self._resume
        # Kick off at the current time.
        boot = Event(env)
        boot._value = None
        boot._ok = True
        env._schedule(boot)
        assert boot.callbacks is not None
        boot.callbacks.append(self._resume_cb)

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        No-op if the process already finished.
        """
        if not self.is_alive:
            return
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        self._waiting_on = None
        kick = Event(self.env)
        kick._value = Interrupt(cause)
        kick._ok = False
        self.env._schedule(kick)
        assert kick.callbacks is not None
        kick.callbacks.append(self._resume_cb)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        env = self.env
        self.last_resumed_at = env._now
        gen = self._generator
        env._active_process = self
        try:
            while True:
                if event._ok:
                    target = gen.send(event._value)
                else:
                    target = gen.throw(event._value)
                if not isinstance(target, Event):
                    raise SimulationError(
                        f"process {self.name!r} yielded non-event {target!r}")
                if target._value is PENDING or target.callbacks is not None:
                    # Pending, or triggered but not yet processed — park and
                    # let the loop process it so ordering matches schedule
                    # order.
                    self._waiting_on = target
                    target.callbacks.append(self._resume_cb)
                    return
                # Already processed: consume its value synchronously.
                event = target
        except StopIteration as stop:
            self._value = stop.value
            self._ok = True
            self.env._schedule(self)
        except Interrupt as intr:
            # An un-handled interrupt terminates the process with a failure.
            self._value = intr
            self._ok = False
            self.env._schedule(self)
        except BaseException as exc:
            self._value = exc
            self._ok = False
            self.env._schedule(self)
            if not isinstance(exc, Exception):  # pragma: no cover - KeyboardInterrupt etc.
                raise
        finally:
            env._active_process = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class _Condition(Event):
    """Base for AnyOf/AllOf combinators."""

    __slots__ = ("events", "_n_done")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._n_done = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("all events in a condition must share an environment")
            ev._add_callback(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events if ev.triggered and ev._ok}


class AnyOf(_Condition):
    """Triggers when the first constituent event triggers.

    Value: dict of the triggered events and their values at that moment.
    A failed constituent fails the condition.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers when every constituent event has triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed(self._collect())


class SchedulePolicyLike(Protocol):
    """Structural type of the same-time tie-break hook (see
    :mod:`repro.schedcheck`)."""

    def choose(self, ready: list[tuple[float, int, Event]]) -> int: ...


class Environment:
    """The event loop and virtual clock.

    ``run(until=...)`` processes events in ``(time, seq)`` order.  ``seq``
    is a global insertion counter, so simultaneous events run in the order
    they were scheduled — fully deterministic.

    A *schedule policy* (see :mod:`repro.schedcheck`) may be installed to
    override the same-time tie-break: at each step where several events
    are ready at the minimum time, the policy picks which one runs.  With
    no policy installed (the default) the dispatch loop is untouched, and
    the trivial first-ready policy reproduces it decision for decision.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        # three-way schedule: see the module docstring.  _batch/_nowq
        # consume via a head index (amortized O(1), no list.pop(0)).
        self._cal = CalendarQueue()
        self._nowq: list[tuple[float, int, Event]] = []
        self._now_head = 0
        self._batch: list[tuple[float, int, Event]] = []
        self._batch_head = 0
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._event_count = 0
        # schedule-exploration hook (None = historical fast path)
        self._policy: Optional[SchedulePolicyLike] = None
        self._sched_log: list[int] = []
        self._sched_fanout: list[int] = []
        # flight-recorder hook: only the policy step consults it, so the
        # no-policy hot loop is untouched (see FlightLike)
        self.flight: Optional[FlightLike] = None
        # process registry for deadlock diagnostics / schedule policies
        self._procs: list[Process] = []
        self._next_pid = 0
        self._procs_prune_at = 64

    # -- clock ------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def event_count(self) -> int:
        """Total events processed so far (for engine benchmarks)."""
        return self._event_count

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- factories ----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- process registry ---------------------------------------------
    def _register_process(self, proc: Process) -> int:
        """Track ``proc`` for diagnostics; returns its creation-order pid.
        Finished processes are pruned amortized-O(1) so long simulations
        do not accumulate dead generators."""
        self._next_pid += 1
        self._procs.append(proc)
        if len(self._procs) >= self._procs_prune_at:
            self._procs = [p for p in self._procs if p.is_alive]
            self._procs_prune_at = max(64, 2 * len(self._procs) + 1)
        return self._next_pid

    def alive_processes(self) -> list[Process]:
        """Processes that have not finished, in creation order."""
        return [p for p in self._procs if p.is_alive]

    def describe_alive(self, limit: int = 8) -> str:
        """One-line diagnostic of the still-alive processes — what each is
        named, when it last ran, and what event it is parked on."""
        alive = self.alive_processes()
        if not alive:
            return "no processes alive"
        parts = []
        for p in alive[:limit]:
            parts.append(f"{p.name} (pid {p.pid}, last resumed at "
                         f"{p.last_resumed_at:.1f} ns, waiting on "
                         f"{_describe_wait(p._waiting_on)})")
        if len(alive) > limit:
            parts.append(f"... and {len(alive) - limit} more")
        return "; ".join(parts)

    # -- schedule-exploration hook -------------------------------------
    def set_schedule_policy(self, policy: Optional[SchedulePolicyLike]) -> None:
        """Install (or with ``None`` remove) a same-time tie-break policy.

        The policy object needs one method,
        ``choose(ready: list[tuple[float, int, Event]]) -> int``, called
        whenever two or more events are ready at the minimum time.
        ``ready`` is ordered by insertion (ascending ``seq``), so
        returning 0 reproduces the default schedule exactly.  Every
        choice is appended to :attr:`schedule_decisions` /
        :attr:`schedule_fanouts` for replay and shrinking.
        """
        self._policy = policy

    @property
    def schedule_decisions(self) -> list[int]:
        """Chosen ready-list index per choice point (policy runs only)."""
        return self._sched_log

    @property
    def schedule_fanouts(self) -> list[int]:
        """Number of ready events per choice point (policy runs only)."""
        return self._sched_fanout

    # -- scheduling ----------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Schedule ``event`` to be processed ``delay`` ns from now.

        Negative delays are a :class:`ConfigError`: the clock never runs
        backwards, and the calendar queue (unlike the old heap, which
        silently re-sorted) cannot reach a bucket the clock has passed.
        """
        self._schedule(event, delay)

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        if delay < 0:
            raise ConfigError(
                f"schedule() got negative delay {delay!r}; events cannot "
                f"be scheduled in the past (now={self._now})")
        event._scheduled = True
        self._seq = seq = self._seq + 1
        now = self._now
        t = now + delay
        if t > now:
            self._cal.push(t, seq, event)
        else:
            self._nowq.append((now, seq, event))

    def _has_work(self) -> bool:
        return (self._batch_head < len(self._batch)
                or self._now_head < len(self._nowq)
                or len(self._cal) > 0)

    def _pull_batch(self) -> None:
        """Advance the clock to the calendar's minimum time and extract
        the whole same-tick batch.  Caller guarantees batch and nowq are
        consumed and the calendar is non-empty."""
        if self._batch_head:
            del self._batch[:]
            self._batch_head = 0
        if self._now_head:
            del self._nowq[:]
            self._now_head = 0
        t, entries = self._cal.pop_batch()
        self._now = t
        self._batch = entries

    # -- execution ----------------------------------------------------
    def step(self) -> None:
        """Process exactly one event."""
        if self._policy is not None:
            return self._step_policy()
        batch = self._batch
        bh = self._batch_head
        if bh < len(batch):
            self._batch_head = bh + 1
            event = batch[bh][2]
        else:
            nowq = self._nowq
            nh = self._now_head
            if nh < len(nowq):
                self._now_head = nh + 1
                event = nowq[nh][2]
            else:
                if len(self._cal) == 0:
                    raise SimulationError("step() on an empty schedule")
                self._pull_batch()
                self._batch_head = 1
                event = self._batch[0][2]
        self._event_count += 1
        if isinstance(event, _Echo):
            event._process()
            return
        if isinstance(event, Timeout):
            event._value = event._pending_value
            event._ok = True
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for fn in callbacks:
                fn(event)

    def _step_policy(self) -> None:
        """One step with a schedule policy: the ready set is the events
        still pending at the current time — the rest of the calendar
        batch plus everything appended to the now-queue — in ascending
        ``seq`` order (batch seqs predate nowq seqs by invariant 2).
        The policy picks one; the others stay in place, so re-assembly
        next step is stable, exactly like re-pushing heap entries was.
        """
        policy = self._policy
        assert policy is not None
        batch = self._batch
        bh = self._batch_head
        nowq = self._nowq
        nh = self._now_head
        if bh >= len(batch) and nh >= len(nowq):
            if len(self._cal) == 0:
                raise SimulationError("step() on an empty schedule")
            self._pull_batch()
            batch = self._batch
            bh = 0
            nowq = self._nowq
            nh = 0
        ready = batch[bh:]
        if nh < len(nowq):
            ready += nowq[nh:]
        n_batch = len(batch) - bh  # ready[:n_batch] came from the batch
        if len(ready) == 1:
            chosen = ready[0]
            if n_batch:
                self._batch_head = bh + 1
            else:
                self._now_head = nh + 1
        else:
            idx = policy.choose(ready)
            if not 0 <= idx < len(ready):
                raise SimulationError(
                    f"schedule policy chose index {idx} out of "
                    f"{len(ready)} ready events")
            self._sched_log.append(idx)
            self._sched_fanout.append(len(ready))
            chosen = ready[idx]
            fl = self.flight
            if fl is not None:
                fl.note("sched", "sched.tiebreak", idx, len(ready))
            if idx < n_batch:
                del batch[bh + idx]
            else:
                del nowq[nh + idx - n_batch]
        event = chosen[2]
        self._event_count += 1
        if isinstance(event, _Echo):
            event._process()
            return
        if isinstance(event, Timeout):
            event._value = event._pending_value
            event._ok = True
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for fn in callbacks:
                fn(event)

    def peek(self) -> float:
        """Time of the next event, or +inf if none is scheduled."""
        if (self._batch_head < len(self._batch)
                or self._now_head < len(self._nowq)):
            return self._now
        return self._cal.min_time()

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run until the schedule drains, a deadline passes, or an event fires.

        Args:
            until: ``None`` → run to exhaustion; a number → run while the
                next event is at or before that time, then set ``now`` to
                it; an :class:`Event` → run until it is processed and
                return its value (raising if it failed).
        """
        if until is None:
            if self._policy is not None:
                while self._has_work():
                    self._step_policy()
            else:
                self._run_drain(_INF)
            return None
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._has_work():
                    raise SimulationError(
                        "schedule drained before the awaited event "
                        "triggered (deadlock?); " + self.describe_alive())
                self.step()
            if stop._ok:
                return stop._value
            raise stop._value
        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(f"run(until={deadline}) is in the past (now={self._now})")
        if self._policy is not None:
            while self.peek() <= deadline:
                self._step_policy()
        else:
            self._run_drain(deadline)
        self._now = deadline
        return None

    def _run_drain(self, deadline: float) -> None:
        """The no-policy dispatch loop, inlined from :meth:`step`.

        This is the innermost loop of every benchmark and experiment:
        dispatching through here instead of per-event ``step()`` calls
        removes a Python frame plus several attribute loads per event.
        Semantically identical to ``while has_work: step()`` — same
        order, same Timeout/_Echo handling, same callback sequence.

        Dispatching a batch entry cannot grow the batch (new events go
        to the calendar or the now-queue), and the now-queue only grows
        at its tail, so plain index walks over both are exact.

        The calendar pull is inlined too (locals aliasing the bucket
        dict and index heap; :meth:`CalendarQueue._rebuild` mutates both
        in place precisely so these aliases survive a width retune), and
        singleton buckets — the common shape once the width is tuned —
        dispatch without ever materializing a batch list.
        """
        batch = self._batch
        bh = self._batch_head
        nowq = self._nowq
        nh = self._now_head
        cal = self._cal
        buckets = cal._buckets
        order = cal._order
        count = self._event_count
        # calendar counters live in locals for the duration of the drain
        # and are written back in the finally block: pushes from inside
        # dispatched callbacks only ever *increment* cal._len, so the
        # deferred decrement commutes with them
        popped = 0
        pops = cal._pop_count
        try:
            # normalize consumed prefixes once so the hot checks below
            # are plain truth tests instead of head-vs-len compares
            if bh:
                del batch[:bh]
                bh = 0
            if nh:
                del nowq[:nh]
                nh = 0
            while True:
                if batch:
                    # dispatch cannot grow the batch (new events go to
                    # the calendar or the now-queue), so a snapshot-free
                    # for-walk is exact; bh tracks consumption for the
                    # finally block in case a callback raises
                    for entry in batch:
                        bh += 1
                        event = entry[2]
                        count += 1
                        cls = event.__class__
                        if cls is Timeout:
                            event._value = event._pending_value
                        elif cls is not Event:
                            if isinstance(event, _Echo):
                                event._process()
                                continue
                            if isinstance(event, Timeout):
                                event._value = event._pending_value
                        callbacks = event.callbacks
                        event.callbacks = None
                        if callbacks:
                            for fn in callbacks:
                                fn(event)
                    del batch[:]
                    bh = 0
                if nowq:
                    # the now-queue grows at its tail while we walk it,
                    # so the length must be re-read every iteration
                    while nh < len(nowq):
                        event = nowq[nh][2]
                        nh += 1
                        count += 1
                        cls = event.__class__
                        if cls is Timeout:
                            event._value = event._pending_value
                        elif cls is not Event:
                            if isinstance(event, _Echo):
                                event._process()
                                continue
                            if isinstance(event, Timeout):
                                event._value = event._pending_value
                        callbacks = event.callbacks
                        event.callbacks = None
                        if callbacks:
                            for fn in callbacks:
                                fn(event)
                    del nowq[:]
                    nh = 0
                    continue
                # -- pull the next same-tick batch from the calendar --
                if not order:
                    if not cal._far:
                        break
                    t = cal.min_time()  # rare: only far-future timeouts left
                    if t > deadline:
                        break
                    cal._pop_count = pops
                    t, entries = cal.pop_batch()
                    pops = cal._pop_count
                    self._now = t
                    self._batch = batch = entries
                    bh = 0
                    continue
                idx = order[0]
                bucket = buckets[idx]
                if not bucket:
                    # drained shell that was never re-armed: discard
                    del buckets[idx]
                    heappop(order)
                    continue
                if pops >= 256:
                    # width retune happens here, between bucket runs, so
                    # the run loop below never holds an alias across a
                    # rebuild; retune timing does not affect pop order
                    cal._window_retune(bucket[0][0])
                    pops = 0
                    continue
                # -- bucket run: keep dispatching from this bucket while
                #    each head entry is alone at its timestamp.  Time is
                #    monotone, so a bucket re-armed by a dispatched
                #    callback is still the global minimum — no heap peek
                #    or dict lookup between events.
                while True:
                    entry = bucket[0]
                    t = entry[0]
                    if t > deadline:
                        return
                    n = len(bucket)
                    if n > 1 and bucket[1][0] == t:
                        # same-tick cluster: extract the equal-time
                        # prefix as the next batch
                        m = 2
                        while m < n and bucket[m][0] == t:
                            m += 1
                        if m == n:
                            del buckets[idx]
                            heappop(order)
                            entries = bucket
                        else:
                            entries = bucket[:m]
                            del bucket[:m]
                        popped += m
                        pops += 1
                        self._now = t
                        self._batch = batch = entries
                        bh = 0
                        break
                    del bucket[0]
                    popped += 1
                    pops += 1
                    self._now = t
                    event = entry[2]
                    count += 1
                    cls = event.__class__
                    if cls is Timeout:
                        event._value = event._pending_value
                    elif cls is not Event:
                        if isinstance(event, _Echo):
                            event._process()
                            if nowq or not bucket:
                                break
                            continue
                        if isinstance(event, Timeout):
                            event._value = event._pending_value
                    callbacks = event.callbacks
                    event.callbacks = None
                    if callbacks:
                        for fn in callbacks:
                            fn(event)
                    if nowq or not bucket:
                        break
        finally:
            self._event_count = count
            self._batch_head = bh
            self._now_head = nh
            cal._len -= popped
            cal._pop_count = pops
