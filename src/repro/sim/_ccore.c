/* Compiled event core: a C twin of repro.sim._engine.
 *
 * Implements the hot engine classes (Event, _Echo, Timeout, Process,
 * CalendarQueue, Environment) as CPython extension types.  Everything
 * observable -- event order, decision strings, error messages, repr
 * formats -- matches the pure-Python reference engine byte for byte;
 * tests/sim/test_core_equivalence.py and tests/ci/test_core_identity.py
 * enforce that.  Cold paths (schedule-policy stepping, combinators,
 * deadlock diagnostics) live in repro.sim._compiled, a thin Python
 * layer subclassing these types.
 *
 * Scheduler structure mirrors the pure engine exactly:
 *   - now-queue: PyList of (time, seq, event) tuples for delay-0
 *     schedules (append order == (time, seq) order);
 *   - batch: PyList holding the current same-tick calendar batch
 *     (materialized only for multi-event ticks and the policy path);
 *   - calendar: C bucket arrays, sorted by (t, seq), bucket table
 *     keyed by floor(t / width), lazy min-heap of bucket indices,
 *     far-future overflow list, width auto-tuned from observed
 *     inter-batch gaps.  Singleton ticks dispatch straight from the
 *     C entry -- no tuple, no list, no Python frames.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <math.h>
#include <string.h>

/* ---- shared objects imported at module init ---------------------- */
static PyObject *SimulationError;   /* repro.common.errors */
static PyObject *ConfigError;       /* repro.common.errors */
static PyObject *PENDING;           /* repro.sim._base */
static PyObject *InterruptExc;      /* repro.sim._base */

/* 2**1023: times at or beyond this (incl. +inf) skip the buckets */
static const double FAR_TIME = 8.98846567431158e307;

/* ---- forward type decls ------------------------------------------ */
static PyTypeObject EventType;
static PyTypeObject EchoType;
static PyTypeObject TimeoutType;
static PyTypeObject ProcessType;
static PyTypeObject CalendarType;
static PyTypeObject EnvironmentType;

/* ================= calendar queue internals ======================= */

typedef struct {
    double t;
    long long seq;
    PyObject *ev;      /* strong reference */
} centry;

typedef struct {
    centry *items;
    Py_ssize_t len;
    Py_ssize_t cap;
} cbucket;

/* open-addressing hash table: int64 bucket index -> cbucket*      */
typedef struct {
    long long *keys;
    cbucket **vals;    /* NULL = empty slot, TOMB = tombstone */
    Py_ssize_t cap;    /* power of two */
    Py_ssize_t used;   /* live + tombstones */
    Py_ssize_t live;
} cmap;

static cbucket *const TOMB = (cbucket *)1;

typedef struct {
    long long *items;
    Py_ssize_t len;
    Py_ssize_t cap;
} cheap;

typedef struct {
    PyObject_HEAD
    cmap map;
    cheap order;
    centry *far;
    Py_ssize_t far_len, far_cap;
    double width, inv_width;
    Py_ssize_t nlen;          /* total entries */
    long pop_count;           /* batch pops since last window boundary */
    double window_t;          /* batch time at last boundary */
    int window_set;
    unsigned long gen;        /* bumped on every rebuild: the drain's
                                 bucket pointer is invalid if this moved */
} Calendar;

#define GAP_WINDOW 256
#define SPILL_LIMIT 512
#define MIN_WIDTH 1e-3
#define MAX_WIDTH 65536.0

static cbucket *bucket_new(void) {
    cbucket *b = PyMem_Malloc(sizeof(cbucket));
    if (!b) return NULL;
    b->items = NULL; b->len = 0; b->cap = 0;
    return b;
}

static void bucket_free(cbucket *b) {
    Py_ssize_t i;
    if (!b || b == TOMB) return;
    for (i = 0; i < b->len; i++) Py_XDECREF(b->items[i].ev);
    PyMem_Free(b->items);
    PyMem_Free(b);
}

static int bucket_reserve(cbucket *b, Py_ssize_t need) {
    Py_ssize_t cap;
    centry *ni;
    if (need <= b->cap) return 0;
    cap = b->cap ? b->cap * 2 : 4;
    if (cap < need) cap = need;
    ni = PyMem_Realloc(b->items, cap * sizeof(centry));
    if (!ni) { PyErr_NoMemory(); return -1; }
    b->items = ni; b->cap = cap;
    return 0;
}

/* sorted insert by (t, seq); steals a reference to ev */
static int bucket_insort(cbucket *b, double t, long long seq, PyObject *ev) {
    Py_ssize_t lo = 0, hi = b->len, mid;
    if (bucket_reserve(b, b->len + 1) < 0) return -1;
    while (lo < hi) {
        mid = (lo + hi) / 2;
        if (b->items[mid].t < t ||
            (b->items[mid].t == t && b->items[mid].seq < seq)) lo = mid + 1;
        else hi = mid;
    }
    memmove(b->items + lo + 1, b->items + lo,
            (b->len - lo) * sizeof(centry));
    b->items[lo].t = t; b->items[lo].seq = seq; b->items[lo].ev = ev;
    b->len++;
    return 0;
}

static int cmap_init(cmap *m, Py_ssize_t cap) {
    m->keys = PyMem_Malloc(cap * sizeof(long long));
    m->vals = PyMem_Calloc(cap, sizeof(cbucket *));
    if (!m->keys || !m->vals) {
        PyMem_Free(m->keys); PyMem_Free(m->vals);
        PyErr_NoMemory(); return -1;
    }
    m->cap = cap; m->used = 0; m->live = 0;
    return 0;
}

static void cmap_free_buckets(cmap *m) {
    Py_ssize_t i;
    for (i = 0; i < m->cap; i++)
        if (m->vals[i] && m->vals[i] != TOMB) bucket_free(m->vals[i]);
    PyMem_Free(m->keys); PyMem_Free(m->vals);
    m->keys = NULL; m->vals = NULL; m->cap = m->used = m->live = 0;
}

static inline Py_ssize_t cmap_hash(long long key, Py_ssize_t cap) {
    unsigned long long h = (unsigned long long)key;
    h ^= h >> 33; h *= 0xff51afd7ed558ccdULL; h ^= h >> 33;
    return (Py_ssize_t)(h & (unsigned long long)(cap - 1));
}

static cbucket *cmap_get(cmap *m, long long key) {
    Py_ssize_t i = cmap_hash(key, m->cap);
    while (m->vals[i]) {
        if (m->vals[i] != TOMB && m->keys[i] == key) return m->vals[i];
        i = (i + 1) & (m->cap - 1);
    }
    return NULL;
}

static int cmap_set(cmap *m, long long key, cbucket *val);

static int cmap_grow(cmap *m) {
    cmap nm;
    Py_ssize_t i;
    if (cmap_init(&nm, m->cap * 2) < 0) return -1;
    for (i = 0; i < m->cap; i++) {
        if (m->vals[i] && m->vals[i] != TOMB) {
            if (cmap_set(&nm, m->keys[i], m->vals[i]) < 0) {
                PyMem_Free(nm.keys); PyMem_Free(nm.vals);
                return -1;
            }
        }
    }
    PyMem_Free(m->keys); PyMem_Free(m->vals);
    *m = nm;
    return 0;
}

static int cmap_set(cmap *m, long long key, cbucket *val) {
    Py_ssize_t i;
    if ((m->used + 1) * 3 >= m->cap * 2 && cmap_grow(m) < 0) return -1;
    i = cmap_hash(key, m->cap);
    while (m->vals[i] && m->vals[i] != TOMB) {
        if (m->keys[i] == key) { m->vals[i] = val; return 0; }
        i = (i + 1) & (m->cap - 1);
    }
    if (!m->vals[i]) m->used++;
    m->keys[i] = key; m->vals[i] = val;
    m->live++;
    return 0;
}

static void cmap_del(cmap *m, long long key) {
    Py_ssize_t i = cmap_hash(key, m->cap);
    while (m->vals[i]) {
        if (m->vals[i] != TOMB && m->keys[i] == key) {
            m->vals[i] = TOMB;
            m->live--;
            return;
        }
        i = (i + 1) & (m->cap - 1);
    }
}

static int cheap_push(cheap *h, long long v) {
    Py_ssize_t i, p;
    if (h->len == h->cap) {
        Py_ssize_t cap = h->cap ? h->cap * 2 : 16;
        long long *ni = PyMem_Realloc(h->items, cap * sizeof(long long));
        if (!ni) { PyErr_NoMemory(); return -1; }
        h->items = ni; h->cap = cap;
    }
    i = h->len++;
    h->items[i] = v;
    while (i > 0) {
        p = (i - 1) / 2;
        if (h->items[p] <= h->items[i]) break;
        { long long tmp = h->items[p]; h->items[p] = h->items[i]; h->items[i] = tmp; }
        i = p;
    }
    return 0;
}

static long long cheap_pop(cheap *h) {
    long long top = h->items[0];
    Py_ssize_t i = 0, c;
    h->items[0] = h->items[--h->len];
    for (;;) {
        c = 2 * i + 1;
        if (c >= h->len) break;
        if (c + 1 < h->len && h->items[c + 1] < h->items[c]) c++;
        if (h->items[i] <= h->items[c]) break;
        { long long tmp = h->items[i]; h->items[i] = h->items[c]; h->items[c] = tmp; }
        i = c;
    }
    return top;
}

/* ---- calendar operations ----------------------------------------- */

static int cal_rebuild(Calendar *cal, double width);

/* push an entry; steals a reference to ev */
static int cal_push(Calendar *cal, double t, long long seq, PyObject *ev) {
    long long idx;
    cbucket *b;
    if (t >= FAR_TIME) {
        if (cal->far_len == cal->far_cap) {
            Py_ssize_t cap = cal->far_cap ? cal->far_cap * 2 : 8;
            centry *nf = PyMem_Realloc(cal->far, cap * sizeof(centry));
            if (!nf) { Py_DECREF(ev); PyErr_NoMemory(); return -1; }
            cal->far = nf; cal->far_cap = cap;
        }
        cal->far[cal->far_len].t = t;
        cal->far[cal->far_len].seq = seq;
        cal->far[cal->far_len].ev = ev;
        cal->far_len++;
        cal->nlen++;
        return 0;
    }
    idx = (long long)(t * cal->inv_width);
    b = cmap_get(&cal->map, idx);
    if (!b) {
        b = bucket_new();
        if (!b || cmap_set(&cal->map, idx, b) < 0 ||
            cheap_push(&cal->order, idx) < 0) {
            bucket_free(b); Py_DECREF(ev); return -1;
        }
    }
    if (bucket_insort(b, t, seq, ev) < 0) { Py_DECREF(ev); return -1; }
    cal->nlen++;
    if (b->len > SPILL_LIMIT) {
        /* emergency shrink: width too coarse for this cluster */
        double span = b->items[b->len - 1].t - b->items[0].t;
        if (span > 0.0) {
            double target = span / 8.0;
            if (target < MIN_WIDTH) target = MIN_WIDTH;
            if (target < cal->width * 0.5)
                return cal_rebuild(cal, target);
        }
    }
    return 0;
}

static int centry_cmp(const void *pa, const void *pb) {
    const centry *a = pa, *b = pb;
    if (a->t < b->t) return -1;
    if (a->t > b->t) return 1;
    if (a->seq < b->seq) return -1;
    if (a->seq > b->seq) return 1;
    return 0;
}

static int cal_rebuild(Calendar *cal, double width) {
    /* collect every bucketed entry, re-bucket at the new width */
    centry *all;
    cal->gen++;
    Py_ssize_t n = 0, i, j;
    cmap old = cal->map;
    all = PyMem_Malloc((cal->nlen ? cal->nlen : 1) * sizeof(centry));
    if (!all) { PyErr_NoMemory(); return -1; }
    for (i = 0; i < old.cap; i++) {
        cbucket *b = old.vals[i];
        if (b && b != TOMB)
            for (j = 0; j < b->len; j++) all[n++] = b->items[j];
    }
    qsort(all, n, sizeof(centry), centry_cmp);
    if (cmap_init(&cal->map, 64) < 0) { PyMem_Free(all); cal->map = old; return -1; }
    cal->order.len = 0;
    cal->width = width;
    cal->inv_width = 1.0 / width;
    for (i = 0; i < n; i++) {
        long long idx = (long long)(all[i].t * cal->inv_width);
        cbucket *b = cmap_get(&cal->map, idx);
        if (!b) {
            b = bucket_new();
            if (!b || cmap_set(&cal->map, idx, b) < 0 ||
                cheap_push(&cal->order, idx) < 0) {
                /* unrecoverable mid-rebuild OOM: leak-safe bail */
                bucket_free(b); PyMem_Free(all);
                cmap_free_buckets(&cal->map); cal->map = old;
                return -1;
            }
        }
        if (bucket_reserve(b, b->len + 1) < 0) {
            PyMem_Free(all); return -1;
        }
        b->items[b->len++] = all[i];   /* sorted input stays sorted */
    }
    /* old buckets: entries were moved, free shells only */
    for (i = 0; i < old.cap; i++)
        if (old.vals[i] && old.vals[i] != TOMB) {
            PyMem_Free(old.vals[i]->items);
            PyMem_Free(old.vals[i]);
        }
    PyMem_Free(old.keys); PyMem_Free(old.vals);
    PyMem_Free(all);
    return 0;
}

static void cal_window_retune(Calendar *cal, double t) {
    double last = cal->window_t;
    int had = cal->window_set;
    cal->window_t = t;
    cal->window_set = 1;
    cal->pop_count = 0;
    if (!had || !(t > last)) return;
    {
        double avg_gap = (t - last) / GAP_WINDOW;
        double target = avg_gap * 8.0;
        if (target < MIN_WIDTH) target = MIN_WIDTH;
        if (target > MAX_WIDTH) target = MAX_WIDTH;
        if (target < cal->width * 0.5 || target > cal->width * 2.0)
            cal_rebuild(cal, target);   /* OOM here leaves width as-is */
    }
}

/* min bucket with live entries, discarding drained shells; NULL when
 * no bucketed entries remain (check far separately) */
static cbucket *cal_top(Calendar *cal, long long *idx_out) {
    while (cal->order.len) {
        long long idx = cal->order.items[0];
        cbucket *b = cmap_get(&cal->map, idx);
        if (b && b->len) { *idx_out = idx; return b; }
        cheap_pop(&cal->order);
        if (b) { bucket_free(b); cmap_del(&cal->map, idx); }
    }
    return NULL;
}

static double cal_min_time(Calendar *cal) {
    long long idx;
    cbucket *b = cal_top(cal, &idx);
    if (b) return b->items[0].t;
    if (cal->far_len) {
        double t = cal->far[0].t;
        Py_ssize_t i;
        for (i = 1; i < cal->far_len; i++)
            if (cal->far[i].t < t) t = cal->far[i].t;
        return t;
    }
    return Py_HUGE_VAL;
}

/* pop every far entry at the minimum far time into a fresh list of
 * (t, seq, ev) tuples, ascending seq; transfers refs into the list */
static PyObject *cal_pop_far(Calendar *cal, double *t_out) {
    double t = cal->far[0].t;
    Py_ssize_t i, j;
    PyObject *list;
    for (i = 1; i < cal->far_len; i++)
        if (cal->far[i].t < t) t = cal->far[i].t;
    list = PyList_New(0);
    if (!list) return NULL;
    /* ascending seq == append order among equal times (pushes were in
     * seq order, and we scan in push order) */
    for (i = 0; i < cal->far_len; ) {
        if (cal->far[i].t == t) {
            PyObject *tup = Py_BuildValue("(dLN)", cal->far[i].t,
                                          cal->far[i].seq, cal->far[i].ev);
            if (!tup || PyList_Append(list, tup) < 0) {
                Py_XDECREF(tup); Py_DECREF(list); return NULL;
            }
            Py_DECREF(tup);
            /* remove, preserving order of the remainder */
            for (j = i; j < cal->far_len - 1; j++) cal->far[j] = cal->far[j + 1];
            cal->far_len--;
            cal->nlen--;
        } else i++;
    }
    *t_out = t;
    return list;
}

/* ========================= Event ================================== */

typedef struct {
    PyObject_HEAD
    PyObject *env;        /* Environment (borrowed cycle; GC-tracked) */
    PyObject *callbacks;  /* list | None */
    PyObject *value;      /* PENDING sentinel until triggered */
    PyObject *info;       /* tuple | None */
    char ok;
    char scheduled;
} CEvent;

typedef struct {
    CEvent base;
    PyObject *target;
    PyObject *fn;
} CEcho;

typedef struct {
    CEvent base;
    double delay;
    PyObject *pending_value;
} CTimeout;

typedef struct {
    CEvent base;
    PyObject *generator;
    PyObject *waiting_on;  /* Event | None */
    PyObject *name;
    PyObject *resume_cb;   /* cached bound _resume */
    long long pid;
    double last_resumed_at;
} CProcess;

/* Environment: declared here because Event methods touch it */
typedef struct {
    PyObject_HEAD
    double now;
    long long seq;
    long long event_count;
    PyObject *cal;          /* Calendar */
    PyObject *nowq;         /* list of (t, seq, ev) tuples */
    PyObject *batch;        /* list of (t, seq, ev) tuples */
    Py_ssize_t now_head;
    Py_ssize_t batch_head;
    PyObject *active_process;   /* Process | None */
    PyObject *policy;           /* None = fast path */
    PyObject *sched_log;        /* list[int] */
    PyObject *sched_fanout;     /* list[int] */
    PyObject *flight;           /* None | recorder */
    PyObject *procs;            /* list[Process] */
    long long next_pid;
    Py_ssize_t procs_prune_at;
} CEnv;

static int env_schedule_now(CEnv *env, PyObject *ev) {
    /* delay-0 schedule: append (now, ++seq, ev) to the now-queue */
    PyObject *tup;
    env->seq += 1;
    tup = Py_BuildValue("(dLO)", env->now, env->seq, ev);
    if (!tup) return -1;
    if (PyList_Append(env->nowq, tup) < 0) { Py_DECREF(tup); return -1; }
    Py_DECREF(tup);
    return 0;
}

/* full _schedule: double-schedule check, negative-delay check, route */
static int env_schedule(CEnv *env, CEvent *ev, double delay) {
    if (ev->scheduled) {
        PyErr_Format(SimulationError, "%R scheduled twice", ev);
        return -1;
    }
    if (delay < 0) {
        PyObject *d = PyFloat_FromDouble(delay);
        PyObject *n = PyFloat_FromDouble(env->now);
        if (d && n)
            PyErr_Format(ConfigError,
                "schedule() got negative delay %R; events cannot be "
                "scheduled in the past (now=%S)", d, n);
        Py_XDECREF(d); Py_XDECREF(n);
        return -1;
    }
    ev->scheduled = 1;
    {
        double t = env->now + delay;
        if (t > env->now) {
            env->seq += 1;
            Py_INCREF(ev);
            return cal_push((Calendar *)env->cal, t, env->seq, (PyObject *)ev);
        }
    }
    return env_schedule_now(env, (PyObject *)ev);
}

static int Event_traverse(CEvent *self, visitproc visit, void *arg) {
    Py_VISIT(self->env);
    Py_VISIT(self->callbacks);
    Py_VISIT(self->value);
    Py_VISIT(self->info);
    return 0;
}

static int Event_clear_slots(CEvent *self) {
    Py_CLEAR(self->env);
    Py_CLEAR(self->callbacks);
    Py_CLEAR(self->value);
    Py_CLEAR(self->info);
    return 0;
}

static void Event_dealloc(CEvent *self) {
    PyObject_GC_UnTrack(self);
    Event_clear_slots(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int Event_init(CEvent *self, PyObject *args, PyObject *kwds) {
    PyObject *env;
    static char *kwlist[] = {"env", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O!", kwlist,
                                     &EnvironmentType, &env))
        return -1;
    Py_INCREF(env);
    Py_XSETREF(self->env, env);
    Py_XSETREF(self->callbacks, PyList_New(0));
    if (!self->callbacks) return -1;
    Py_INCREF(PENDING);
    Py_XSETREF(self->value, PENDING);
    Py_INCREF(Py_None);
    Py_XSETREF(self->info, Py_None);
    self->ok = 1;
    self->scheduled = 0;
    return 0;
}

static PyObject *Event_get_triggered(CEvent *self, void *closure) {
    return PyBool_FromLong(self->value != PENDING);
}

static PyObject *Event_get_processed(CEvent *self, void *closure) {
    return PyBool_FromLong(self->callbacks == Py_None || self->callbacks == NULL);
}

static PyObject *Event_get_ok(CEvent *self, void *closure) {
    if (self->value == PENDING) {
        PyErr_SetString(SimulationError, "event value not yet available");
        return NULL;
    }
    return PyBool_FromLong(self->ok);
}

static PyObject *Event_get_value(CEvent *self, void *closure) {
    if (self->value == PENDING) {
        PyErr_SetString(SimulationError, "event value not yet available");
        return NULL;
    }
    Py_INCREF(self->value);
    return self->value;
}

static PyObject *Event_repr(CEvent *self) {
    const char *state =
        (self->callbacks == Py_None || self->callbacks == NULL) ? "processed"
        : (self->value != PENDING) ? "triggered" : "pending";
    return PyUnicode_FromFormat("<%s %s at %p>",
                                Py_TYPE(self)->tp_name, state, (void *)self);
}

static PyObject *Event_succeed(CEvent *self, PyObject *args, PyObject *kwds) {
    PyObject *value = Py_None;
    static char *kwlist[] = {"value", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|O", kwlist, &value))
        return NULL;
    if (self->value != PENDING) {
        PyErr_Format(SimulationError, "%R already triggered", self);
        return NULL;
    }
    if (self->scheduled) {
        PyErr_Format(SimulationError, "%R scheduled twice", self);
        return NULL;
    }
    Py_INCREF(value);
    Py_XSETREF(self->value, value);
    self->ok = 1;
    self->scheduled = 1;
    if (env_schedule_now((CEnv *)self->env, (PyObject *)self) < 0)
        return NULL;
    Py_INCREF(self);
    return (PyObject *)self;
}

static PyObject *Event_fail(CEvent *self, PyObject *exc) {
    if (self->value != PENDING) {
        PyErr_Format(SimulationError, "%R already triggered", self);
        return NULL;
    }
    if (!PyObject_IsInstance(exc, PyExc_BaseException)) {
        PyErr_Format(SimulationError, "fail() needs an exception, got %R", exc);
        return NULL;
    }
    Py_INCREF(exc);
    Py_XSETREF(self->value, exc);
    self->ok = 0;
    if (env_schedule((CEnv *)self->env, self, 0.0) < 0) return NULL;
    Py_INCREF(self);
    return (PyObject *)self;
}

static PyObject *Event_add_callback(CEvent *self, PyObject *fn) {
    if (self->callbacks == Py_None || self->callbacks == NULL) {
        /* already processed: deliver via a fresh _Echo at current time */
        PyObject *echo = PyObject_CallFunctionObjArgs(
            (PyObject *)&EchoType, self->env, (PyObject *)self, fn, NULL);
        if (!echo) return NULL;
        if (env_schedule((CEnv *)self->env, (CEvent *)echo, 0.0) < 0) {
            Py_DECREF(echo); return NULL;
        }
        Py_DECREF(echo);
    } else {
        if (PyList_Append(self->callbacks, fn) < 0) return NULL;
    }
    Py_RETURN_NONE;
}

static PyGetSetDef Event_getset[] = {
    {"triggered", (getter)Event_get_triggered, NULL,
     "True once the event has a value (succeeded or failed).", NULL},
    {"processed", (getter)Event_get_processed, NULL,
     "True once callbacks have run.", NULL},
    {"ok", (getter)Event_get_ok, NULL, NULL, NULL},
    {"value", (getter)Event_get_value, NULL, NULL, NULL},
    {NULL}
};

static PyMemberDef Event_members[] = {
    {"env", T_OBJECT, offsetof(CEvent, env), 0, NULL},
    {"callbacks", T_OBJECT, offsetof(CEvent, callbacks), 0, NULL},
    {"_value", T_OBJECT, offsetof(CEvent, value), 0, NULL},
    {"info", T_OBJECT, offsetof(CEvent, info), 0, NULL},
    {"_ok", T_BOOL, offsetof(CEvent, ok), 0, NULL},
    {"_scheduled", T_BOOL, offsetof(CEvent, scheduled), 0, NULL},
    {NULL}
};

static PyMethodDef Event_methods[] = {
    {"succeed", (PyCFunction)Event_succeed, METH_VARARGS | METH_KEYWORDS,
     "Trigger the event successfully with ``value``."},
    {"fail", (PyCFunction)Event_fail, METH_O,
     "Trigger the event with an exception."},
    {"_add_callback", (PyCFunction)Event_add_callback, METH_O, NULL},
    {NULL}
};

static PyTypeObject EventType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ccore.Event",
    .tp_basicsize = sizeof(CEvent),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A one-shot occurrence that processes can wait on.",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Event_init,
    .tp_dealloc = (destructor)Event_dealloc,
    .tp_traverse = (traverseproc)Event_traverse,
    .tp_clear = (inquiry)Event_clear_slots,
    .tp_repr = (reprfunc)Event_repr,
    .tp_getset = Event_getset,
    .tp_members = Event_members,
    .tp_methods = Event_methods,
};

/* ========================= _Echo ================================== */

static int Echo_traverse(CEcho *self, visitproc visit, void *arg) {
    Py_VISIT(self->target);
    Py_VISIT(self->fn);
    return Event_traverse(&self->base, visit, arg);
}

static int Echo_clear_slots(CEcho *self) {
    Py_CLEAR(self->target);
    Py_CLEAR(self->fn);
    return Event_clear_slots(&self->base);
}

static void Echo_dealloc(CEcho *self) {
    PyObject_GC_UnTrack(self);
    Echo_clear_slots(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int Echo_init(CEcho *self, PyObject *args, PyObject *kwds) {
    PyObject *env, *target, *fn;
    static char *kwlist[] = {"env", "target", "fn", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O!OO", kwlist,
                                     &EnvironmentType, &env, &target, &fn))
        return -1;
    {
        PyObject *ia = PyTuple_Pack(1, env);
        int rc;
        if (!ia) return -1;
        rc = Event_init(&self->base, ia, NULL);
        Py_DECREF(ia);
        if (rc < 0) return -1;
    }
    Py_INCREF(target);
    Py_XSETREF(self->target, target);
    Py_INCREF(fn);
    Py_XSETREF(self->fn, fn);
    Py_INCREF(Py_None);          /* pre-triggered */
    Py_XSETREF(self->base.value, Py_None);
    return 0;
}

/* consume: callbacks = None; fn(target) */
static PyObject *Echo_process(CEcho *self, PyObject *noarg) {
    PyObject *res;
    Py_INCREF(Py_None);
    Py_XSETREF(self->base.callbacks, Py_None);
    res = PyObject_CallFunctionObjArgs(self->fn, self->target, NULL);
    if (!res) return NULL;
    Py_DECREF(res);
    Py_RETURN_NONE;
}

static PyMemberDef Echo_members[] = {
    {"_target", T_OBJECT, offsetof(CEcho, target), 0, NULL},
    {"_fn", T_OBJECT, offsetof(CEcho, fn), 0, NULL},
    {NULL}
};

static PyMethodDef Echo_methods[] = {
    {"_process", (PyCFunction)Echo_process, METH_NOARGS, NULL},
    {NULL}
};

static PyTypeObject EchoType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ccore._Echo",
    .tp_basicsize = sizeof(CEcho),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Internal: re-delivers an already-processed event to a late waiter.",
    .tp_base = &EventType,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Echo_init,
    .tp_dealloc = (destructor)Echo_dealloc,
    .tp_traverse = (traverseproc)Echo_traverse,
    .tp_clear = (inquiry)Echo_clear_slots,
    .tp_members = Echo_members,
    .tp_methods = Echo_methods,
};

/* ========================= Timeout ================================ */

static int Timeout_traverse(CTimeout *self, visitproc visit, void *arg) {
    Py_VISIT(self->pending_value);
    return Event_traverse(&self->base, visit, arg);
}

static int Timeout_clear_slots(CTimeout *self) {
    Py_CLEAR(self->pending_value);
    return Event_clear_slots(&self->base);
}

static void Timeout_dealloc(CTimeout *self) {
    PyObject_GC_UnTrack(self);
    Timeout_clear_slots(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int Timeout_init(CTimeout *self, PyObject *args, PyObject *kwds) {
    PyObject *envobj, *value = Py_None;
    CEnv *env;
    double delay;
    static char *kwlist[] = {"env", "delay", "value", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O!d|O", kwlist,
                                     &EnvironmentType, &envobj, &delay, &value))
        return -1;
    if (delay < 0) {
        PyObject *d = PyFloat_FromDouble(delay);
        if (d) {
            PyErr_Format(SimulationError, "negative timeout delay %R", d);
            Py_DECREF(d);
        }
        return -1;
    }
    env = (CEnv *)envobj;
    Py_INCREF(envobj);
    Py_XSETREF(self->base.env, envobj);
    Py_XSETREF(self->base.callbacks, PyList_New(0));
    if (!self->base.callbacks) return -1;
    Py_INCREF(PENDING);
    Py_XSETREF(self->base.value, PENDING);
    Py_INCREF(Py_None);
    Py_XSETREF(self->base.info, Py_None);
    self->base.ok = 1;
    self->base.scheduled = 1;
    self->delay = delay;
    Py_INCREF(value);
    Py_XSETREF(self->pending_value, value);
    /* route on the computed time (underflow-safe), same as the pure
     * engine: strictly-future -> calendar, else now-queue */
    {
        double t = env->now + delay;
        if (t > env->now) {
            env->seq += 1;
            Py_INCREF(self);
            return cal_push((Calendar *)env->cal, t, env->seq,
                            (PyObject *)self);
        }
    }
    return env_schedule_now(env, (PyObject *)self);
}

static PyMemberDef Timeout_members[] = {
    {"delay", T_DOUBLE, offsetof(CTimeout, delay), 0, NULL},
    {"_pending_value", T_OBJECT, offsetof(CTimeout, pending_value), 0, NULL},
    {NULL}
};

static PyTypeObject TimeoutType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ccore.Timeout",
    .tp_basicsize = sizeof(CTimeout),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "An event that triggers ``delay`` nanoseconds after creation.",
    .tp_base = &EventType,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Timeout_init,
    .tp_dealloc = (destructor)Timeout_dealloc,
    .tp_traverse = (traverseproc)Timeout_traverse,
    .tp_clear = (inquiry)Timeout_clear_slots,
    .tp_members = Timeout_members,
};

/* ========================= Process ================================ */

static int Process_traverse(CProcess *self, visitproc visit, void *arg) {
    Py_VISIT(self->generator);
    Py_VISIT(self->waiting_on);
    Py_VISIT(self->name);
    Py_VISIT(self->resume_cb);
    return Event_traverse(&self->base, visit, arg);
}

static int Process_clear_slots(CProcess *self) {
    Py_CLEAR(self->generator);
    Py_CLEAR(self->waiting_on);
    Py_CLEAR(self->name);
    Py_CLEAR(self->resume_cb);
    return Event_clear_slots(&self->base);
}

static void Process_dealloc(CProcess *self) {
    PyObject_GC_UnTrack(self);
    Process_clear_slots(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static long long env_register_process(CEnv *env, PyObject *proc);

static int Process_init(CProcess *self, PyObject *args, PyObject *kwds) {
    PyObject *envobj, *generator, *name = NULL;
    CEnv *env;
    static char *kwlist[] = {"env", "generator", "name", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O!O|U", kwlist,
                                     &EnvironmentType, &envobj,
                                     &generator, &name))
        return -1;
    if (!PyObject_HasAttrString(generator, "send")) {
        PyErr_Format(SimulationError,
                     "process target must be a generator, got %R", generator);
        return -1;
    }
    {
        PyObject *ia = PyTuple_Pack(1, envobj);
        int rc;
        if (!ia) return -1;
        rc = Event_init(&self->base, ia, NULL);
        Py_DECREF(ia);
        if (rc < 0) return -1;
    }
    env = (CEnv *)envobj;
    Py_INCREF(generator);
    Py_XSETREF(self->generator, generator);
    Py_INCREF(Py_None);
    Py_XSETREF(self->waiting_on, Py_None);
    if (name && PyUnicode_GET_LENGTH(name) > 0) {
        Py_INCREF(name);
        Py_XSETREF(self->name, name);
    } else {
        PyObject *gname = PyObject_GetAttrString(generator, "__name__");
        if (!gname) {
            PyErr_Clear();
            gname = PyUnicode_FromString("process");
            if (!gname) return -1;
        }
        Py_XSETREF(self->name, gname);
    }
    self->pid = env_register_process(env, (PyObject *)self);
    if (self->pid < 0) return -1;
    self->last_resumed_at = env->now;
    {
        PyObject *cb = PyObject_GetAttrString((PyObject *)self, "_resume");
        if (!cb) return -1;
        Py_XSETREF(self->resume_cb, cb);
    }
    /* kick off at the current time via a pre-triggered boot event */
    {
        PyObject *boot = PyObject_CallFunctionObjArgs(
            (PyObject *)&EventType, envobj, NULL);
        if (!boot) return -1;
        Py_INCREF(Py_None);
        Py_XSETREF(((CEvent *)boot)->value, Py_None);
        ((CEvent *)boot)->ok = 1;
        if (env_schedule(env, (CEvent *)boot, 0.0) < 0 ||
            PyList_Append(((CEvent *)boot)->callbacks, self->resume_cb) < 0) {
            Py_DECREF(boot);
            return -1;
        }
        Py_DECREF(boot);
    }
    return 0;
}

static PyObject *Process_get_is_alive(CProcess *self, void *closure) {
    return PyBool_FromLong(self->base.value == PENDING);
}

static PyObject *Process_repr(CProcess *self) {
    return PyUnicode_FromFormat("<Process %R %s>", self->name,
        self->base.value == PENDING ? "alive" : "done");
}

static PyObject *Process_interrupt(CProcess *self, PyObject *args, PyObject *kwds) {
    PyObject *cause = Py_None;
    static char *kwlist[] = {"cause", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|O", kwlist, &cause))
        return NULL;
    if (self->base.value != PENDING)
        Py_RETURN_NONE;                         /* already finished */
    {
        PyObject *target = self->waiting_on;
        if (target != Py_None) {
            PyObject *cbs = ((CEvent *)target)->callbacks;
            if (cbs && cbs != Py_None) {
                PyObject *r = PyObject_CallMethod(cbs, "remove", "O",
                                                  self->resume_cb);
                if (!r) {
                    if (PyErr_ExceptionMatches(PyExc_ValueError))
                        PyErr_Clear();
                    else
                        return NULL;
                } else Py_DECREF(r);
            }
        }
    }
    Py_INCREF(Py_None);
    Py_XSETREF(self->waiting_on, Py_None);
    {
        PyObject *kick = PyObject_CallFunctionObjArgs(
            (PyObject *)&EventType, self->base.env, NULL);
        PyObject *intr;
        if (!kick) return NULL;
        intr = PyObject_CallFunctionObjArgs(InterruptExc, cause, NULL);
        if (!intr) { Py_DECREF(kick); return NULL; }
        Py_XSETREF(((CEvent *)kick)->value, intr);
        ((CEvent *)kick)->ok = 0;
        if (env_schedule((CEnv *)self->base.env, (CEvent *)kick, 0.0) < 0 ||
            PyList_Append(((CEvent *)kick)->callbacks, self->resume_cb) < 0) {
            Py_DECREF(kick);
            return NULL;
        }
        Py_DECREF(kick);
    }
    Py_RETURN_NONE;
}

/* The generator-driving loop.  Mirrors _engine.Process._resume. */
static PyObject *Process_resume(CProcess *self, PyObject *eventobj) {
    CEnv *env = (CEnv *)self->base.env;
    PyObject *gen = self->generator;
    CEvent *event = (CEvent *)eventobj;
    PyObject *result = NULL;
    Py_INCREF(Py_None);
    Py_XSETREF(self->waiting_on, Py_None);
    self->last_resumed_at = env->now;
    Py_INCREF((PyObject *)self);
    Py_XSETREF(env->active_process, (PyObject *)self);
    Py_INCREF(eventobj);            /* `event` may be rebound below */
    for (;;) {
        PyObject *target;
        if (event->ok) {
            PySendResult sr = PyIter_Send(gen, event->value, &target);
            if (sr == PYGEN_RETURN) {
                /* StopIteration: the process finished */
                self->base.ok = 1;
                Py_XSETREF(self->base.value, target);   /* steals */
                Py_DECREF((PyObject *)event);
                if (env_schedule(env, &self->base, 0.0) < 0) goto error_done;
                goto done_ok;
            }
            if (sr == PYGEN_ERROR) { Py_DECREF((PyObject *)event); goto excpath; }
        } else {
            target = PyObject_CallMethod(gen, "throw", "O", event->value);
            if (!target) {
                if (PyErr_ExceptionMatches(PyExc_StopIteration)) {
                    PyObject *etype, *evalue, *etb, *retval = Py_None;
                    PyErr_Fetch(&etype, &evalue, &etb);
                    if (evalue) {
                        retval = ((PyStopIterationObject *)evalue)->value;
                        if (!retval) retval = Py_None;
                    }
                    Py_INCREF(retval);
                    Py_XDECREF(etype); Py_XDECREF(evalue); Py_XDECREF(etb);
                    self->base.ok = 1;
                    Py_XSETREF(self->base.value, retval);
                    Py_DECREF((PyObject *)event);
                    if (env_schedule(env, &self->base, 0.0) < 0) goto error_done;
                    goto done_ok;
                }
                Py_DECREF((PyObject *)event);
                goto excpath;
            }
        }
        Py_DECREF((PyObject *)event);
        if (!PyObject_TypeCheck(target, &EventType)) {
            PyErr_Format(SimulationError,
                         "process %R yielded non-event %R", self->name, target);
            Py_DECREF(target);
            goto excpath;
        }
        {
            CEvent *tev = (CEvent *)target;
            if (tev->value == PENDING ||
                (tev->callbacks && tev->callbacks != Py_None)) {
                /* pending, or triggered but not yet processed: park */
                Py_INCREF(target);
                Py_XSETREF(self->waiting_on, target);
                if (PyList_Append(tev->callbacks, self->resume_cb) < 0) {
                    Py_DECREF(target);
                    goto excpath;
                }
                Py_DECREF(target);
                goto done_ok;
            }
        }
        event = (CEvent *)target;      /* already processed: consume now */
    }
excpath:
    /* an exception escaped the generator (or parking failed): the
     * process fails with it, re-raising only non-Exception kinds */
    {
        PyObject *etype, *evalue, *etb;
        PyErr_Fetch(&etype, &evalue, &etb);
        PyErr_NormalizeException(&etype, &evalue, &etb);
        if (etb) PyException_SetTraceback(evalue, etb);
        if (PyErr_GivenExceptionMatches(evalue, InterruptExc)) {
            self->base.ok = 0;
            Py_INCREF(evalue);
            Py_XSETREF(self->base.value, evalue);
            Py_XDECREF(etype); Py_XDECREF(evalue); Py_XDECREF(etb);
            if (env_schedule(env, &self->base, 0.0) < 0) goto error_done;
        } else {
            self->base.ok = 0;
            Py_INCREF(evalue);
            Py_XSETREF(self->base.value, evalue);
            if (env_schedule(env, &self->base, 0.0) < 0) {
                Py_XDECREF(etype); Py_XDECREF(evalue); Py_XDECREF(etb);
                goto error_done;
            }
            if (!PyErr_GivenExceptionMatches(evalue, PyExc_Exception)) {
                PyErr_Restore(etype, evalue, etb);   /* KeyboardInterrupt etc. */
                goto error_done;
            }
            Py_XDECREF(etype); Py_XDECREF(evalue); Py_XDECREF(etb);
        }
    }
done_ok:
    result = Py_None;
    Py_INCREF(result);
error_done:
    Py_INCREF(Py_None);
    Py_XSETREF(env->active_process, Py_None);
    return result;
}

static PyGetSetDef Process_getset[] = {
    {"is_alive", (getter)Process_get_is_alive, NULL, NULL, NULL},
    {NULL}
};

static PyMemberDef Process_members[] = {
    {"_generator", T_OBJECT, offsetof(CProcess, generator), 0, NULL},
    {"_waiting_on", T_OBJECT, offsetof(CProcess, waiting_on), 0, NULL},
    {"name", T_OBJECT, offsetof(CProcess, name), 0, NULL},
    {"_resume_cb", T_OBJECT, offsetof(CProcess, resume_cb), READONLY, NULL},
    {"pid", T_LONGLONG, offsetof(CProcess, pid), 0, NULL},
    {"last_resumed_at", T_DOUBLE, offsetof(CProcess, last_resumed_at), 0, NULL},
    {NULL}
};

static PyMethodDef Process_methods[] = {
    {"interrupt", (PyCFunction)Process_interrupt, METH_VARARGS | METH_KEYWORDS,
     "Throw Interrupt into the process at its current yield."},
    {"_resume", (PyCFunction)Process_resume, METH_O, NULL},
    {NULL}
};

static PyTypeObject ProcessType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ccore.Process",
    .tp_basicsize = sizeof(CProcess),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Wraps a generator; the process is an event that triggers "
              "when the generator returns or raises.",
    .tp_base = &EventType,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Process_init,
    .tp_dealloc = (destructor)Process_dealloc,
    .tp_traverse = (traverseproc)Process_traverse,
    .tp_clear = (inquiry)Process_clear_slots,
    .tp_repr = (reprfunc)Process_repr,
    .tp_getset = Process_getset,
    .tp_members = Process_members,
    .tp_methods = Process_methods,
};

/* ==================== CalendarQueue (Python type) ================= */

static int Calendar_traverse(Calendar *self, visitproc visit, void *arg) {
    Py_ssize_t i, j;
    for (i = 0; i < self->map.cap; i++) {
        cbucket *b = self->map.vals[i];
        if (b && b != TOMB)
            for (j = 0; j < b->len; j++) Py_VISIT(b->items[j].ev);
    }
    for (i = 0; i < self->far_len; i++) Py_VISIT(self->far[i].ev);
    return 0;
}

static int Calendar_clear_slots(Calendar *self) {
    Py_ssize_t i;
    cmap old = self->map;
    centry *far = self->far;
    Py_ssize_t far_len = self->far_len;
    /* detach first: bucket_free decrefs can re-enter */
    if (cmap_init(&self->map, 8) < 0) PyErr_Clear();
    self->order.len = 0;
    self->far = NULL; self->far_len = 0; self->far_cap = 0;
    self->nlen = 0;
    cmap_free_buckets(&old);
    for (i = 0; i < far_len; i++) Py_XDECREF(far[i].ev);
    PyMem_Free(far);
    return 0;
}

static void Calendar_dealloc(Calendar *self) {
    PyObject_GC_UnTrack(self);
    Calendar_clear_slots(self);
    PyMem_Free(self->map.keys); PyMem_Free(self->map.vals);
    PyMem_Free(self->order.items);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int Calendar_init(Calendar *self, PyObject *args, PyObject *kwds) {
    double width = 128.0;
    static char *kwlist[] = {"width", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|d", kwlist, &width))
        return -1;
    if (!(width > 0.0)) {
        PyObject *w = PyFloat_FromDouble(width);
        if (w) {
            PyErr_Format(ConfigError,
                         "calendar bucket width must be positive, got %R", w);
            Py_DECREF(w);
        }
        return -1;
    }
    if (self->map.cap == 0 && cmap_init(&self->map, 64) < 0) return -1;
    self->width = width;
    self->inv_width = 1.0 / width;
    self->nlen = 0;
    self->pop_count = 0;
    self->window_set = 0;
    self->gen = 0;
    return 0;
}

static Py_ssize_t Calendar_len(Calendar *self) { return self->nlen; }

static PyObject *Calendar_push(Calendar *self, PyObject *args) {
    double t;
    long long seq;
    PyObject *ev;
    if (!PyArg_ParseTuple(args, "dLO", &t, &seq, &ev)) return NULL;
    Py_INCREF(ev);
    if (cal_push(self, t, seq, ev) < 0) return NULL;
    Py_RETURN_NONE;
}

static PyObject *Calendar_min_time(Calendar *self, PyObject *noarg) {
    return PyFloat_FromDouble(cal_min_time(self));
}

/* (t, [(t, seq, ev), ...]) for the minimum-time tick */
static PyObject *Calendar_pop_batch(Calendar *self, PyObject *noarg) {
    long long idx;
    cbucket *b = cal_top(self, &idx);
    if (b) {
        double t = b->items[0].t;
        Py_ssize_t m = 1, i;
        PyObject *list, *result;
        while (m < b->len && b->items[m].t == t) m++;
        list = PyList_New(m);
        if (!list) return NULL;
        for (i = 0; i < m; i++) {
            PyObject *tup = Py_BuildValue("(dLN)", b->items[i].t,
                                          b->items[i].seq, b->items[i].ev);
            if (!tup) {
                /* entries i..m-1 still owned by the bucket; the ones
                 * already moved live in the list */
                while (i < m) { b->items[i] = b->items[i]; i++; }
                Py_DECREF(list);
                return NULL;
            }
            PyList_SET_ITEM(list, i, tup);
        }
        memmove(b->items, b->items + m, (b->len - m) * sizeof(centry));
        b->len -= m;
        self->nlen -= m;
        self->pop_count++;
        if (self->pop_count >= GAP_WINDOW)
            cal_window_retune(self, t);
        result = Py_BuildValue("(dN)", t, list);
        return result;
    }
    if (self->far_len) {
        double t;
        PyObject *list = cal_pop_far(self, &t);
        if (!list) return NULL;
        return Py_BuildValue("(dN)", t, list);
    }
    PyErr_SetString(SimulationError, "pop_batch() on an empty calendar");
    return NULL;
}

static PyObject *Calendar_get_width(Calendar *self, void *closure) {
    return PyFloat_FromDouble(self->width);
}

static PySequenceMethods Calendar_as_sequence = {
    .sq_length = (lenfunc)Calendar_len,
};

static PyGetSetDef Calendar_getset[] = {
    {"width", (getter)Calendar_get_width, NULL,
     "Current bucket width in nanoseconds (auto-tuned).", NULL},
    {NULL}
};

static PyMethodDef Calendar_methods[] = {
    {"push", (PyCFunction)Calendar_push, METH_VARARGS, NULL},
    {"min_time", (PyCFunction)Calendar_min_time, METH_NOARGS,
     "Earliest entry time, or +inf when empty."},
    {"pop_batch", (PyCFunction)Calendar_pop_batch, METH_NOARGS,
     "Remove and return (t, entries) for the minimum time t."},
    {NULL}
};

static PyTypeObject CalendarType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ccore.CalendarQueue",
    .tp_basicsize = sizeof(Calendar),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Calendar/ladder priority queue over (time, seq, event).",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Calendar_init,
    .tp_dealloc = (destructor)Calendar_dealloc,
    .tp_traverse = (traverseproc)Calendar_traverse,
    .tp_clear = (inquiry)Calendar_clear_slots,
    .tp_as_sequence = &Calendar_as_sequence,
    .tp_getset = Calendar_getset,
    .tp_methods = Calendar_methods,
};

/* ==================== Environment helpers ========================= */

static long long env_register_process(CEnv *env, PyObject *proc) {
    env->next_pid += 1;
    if (PyList_Append(env->procs, proc) < 0) PyErr_Clear();
    if (PyList_GET_SIZE(env->procs) >= env->procs_prune_at) {
        Py_ssize_t i, n = PyList_GET_SIZE(env->procs);
        PyObject *kept = PyList_New(0);
        if (kept) {
            for (i = 0; i < n; i++) {
                PyObject *po = PyList_GET_ITEM(env->procs, i);
                if (((CEvent *)po)->value == PENDING &&
                    PyList_Append(kept, po) < 0) {
                    Py_DECREF(kept); kept = NULL; break;
                }
            }
        }
        if (kept) {
            Py_SETREF(env->procs, kept);
        } else {
            PyErr_Clear();  /* allocation failure: skip this prune */
        }
        {
            Py_ssize_t keep = PyList_GET_SIZE(env->procs);
            Py_ssize_t floor_ = 2 * keep + 1;
            env->procs_prune_at = floor_ > 64 ? floor_ : 64;
        }
    }
    return env->next_pid;
}

/* Dispatch one triggered event: Timeout value swap, Echo fan-out,
 * then run its callbacks.  Mirrors the pure drain's inline dispatch. */
static int env_dispatch(CEnv *env, PyObject *evo) {
    CEvent *ev = (CEvent *)evo;
    PyObject *cbs;
    if (Py_TYPE(evo) == &TimeoutType) {
        CTimeout *to = (CTimeout *)evo;
        Py_SETREF(ev->value, to->pending_value);
        to->pending_value = NULL;
    } else if (Py_TYPE(evo) == &EchoType) {
        PyObject *r = Echo_process((CEcho *)evo, NULL);
        if (!r) return -1;
        Py_DECREF(r);
        return 0;
    } else if (Py_TYPE(evo) != &EventType) {
        /* subclass fallback, mirroring the pure drain's isinstance path */
        if (PyObject_TypeCheck(evo, &EchoType)) {
            PyObject *r = Echo_process((CEcho *)evo, NULL);
            if (!r) return -1;
            Py_DECREF(r);
            return 0;
        }
        if (PyObject_TypeCheck(evo, &TimeoutType)) {
            CTimeout *to = (CTimeout *)evo;
            Py_SETREF(ev->value, to->pending_value);
            to->pending_value = NULL;
        }
    }
    cbs = ev->callbacks;
    if (cbs == NULL || cbs == Py_None) {
        ev->callbacks = Py_None;
        Py_INCREF(Py_None);
        Py_XDECREF(cbs);
        return 0;
    }
    ev->callbacks = Py_None;
    Py_INCREF(Py_None);
    {
        Py_ssize_t i, n = PyList_GET_SIZE(cbs);
        for (i = 0; i < n; i++) {
            PyObject *cb = PyList_GET_ITEM(cbs, i);
            PyObject *r = PyObject_CallOneArg(cb, evo);
            if (!r) { Py_DECREF(cbs); return -1; }
            Py_DECREF(r);
        }
    }
    Py_DECREF(cbs);
    return 0;
}

/* ==================== Environment (Python type) =================== */

static int Env_traverse(CEnv *self, visitproc visit, void *arg) {
    Py_VISIT(self->cal);
    Py_VISIT(self->nowq);
    Py_VISIT(self->batch);
    Py_VISIT(self->active_process);
    Py_VISIT(self->policy);
    Py_VISIT(self->sched_log);
    Py_VISIT(self->sched_fanout);
    Py_VISIT(self->flight);
    Py_VISIT(self->procs);
    return 0;
}

static int Env_clear_slots(CEnv *self) {
    Py_CLEAR(self->cal);
    Py_CLEAR(self->nowq);
    Py_CLEAR(self->batch);
    Py_CLEAR(self->active_process);
    Py_CLEAR(self->policy);
    Py_CLEAR(self->sched_log);
    Py_CLEAR(self->sched_fanout);
    Py_CLEAR(self->flight);
    Py_CLEAR(self->procs);
    return 0;
}

static void Env_dealloc(CEnv *self) {
    PyObject_GC_UnTrack(self);
    Env_clear_slots(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int Env_init(CEnv *self, PyObject *args, PyObject *kwds) {
    double initial_time = 0.0;
    static char *kwlist[] = {"initial_time", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|d", kwlist, &initial_time))
        return -1;
    self->now = initial_time;
    self->seq = 0;
    self->event_count = 0;
    self->now_head = 0;
    self->batch_head = 0;
    self->next_pid = 0;
    self->procs_prune_at = 64;
    {
        PyObject *cal = PyObject_CallNoArgs((PyObject *)&CalendarType);
        if (!cal) return -1;
        Py_XSETREF(self->cal, cal);
    }
    Py_XSETREF(self->nowq, PyList_New(0));
    Py_XSETREF(self->batch, PyList_New(0));
    Py_XSETREF(self->sched_log, PyList_New(0));
    Py_XSETREF(self->sched_fanout, PyList_New(0));
    Py_XSETREF(self->procs, PyList_New(0));
    if (!self->nowq || !self->batch || !self->sched_log ||
        !self->sched_fanout || !self->procs)
        return -1;
    Py_INCREF(Py_None); Py_XSETREF(self->active_process, Py_None);
    Py_INCREF(Py_None); Py_XSETREF(self->policy, Py_None);
    Py_INCREF(Py_None); Py_XSETREF(self->flight, Py_None);
    return 0;
}

/* -- properties ---------------------------------------------------- */

static PyObject *Env_get_now(CEnv *self, void *c) {
    return PyFloat_FromDouble(self->now);
}
static PyObject *Env_get_event_count(CEnv *self, void *c) {
    return PyLong_FromLongLong(self->event_count);
}
static PyObject *Env_get_active_process(CEnv *self, void *c) {
    Py_INCREF(self->active_process);
    return self->active_process;
}
static PyObject *Env_get_sched_log(CEnv *self, void *c) {
    Py_INCREF(self->sched_log);
    return self->sched_log;
}
static PyObject *Env_get_sched_fanout(CEnv *self, void *c) {
    Py_INCREF(self->sched_fanout);
    return self->sched_fanout;
}

/* -- factories ------------------------------------------------------ */

static PyObject *Env_event(CEnv *self, PyObject *noarg) {
    return PyObject_CallFunctionObjArgs((PyObject *)&EventType,
                                        (PyObject *)self, NULL);
}

static PyObject *Env_timeout(CEnv *self, PyObject *args, PyObject *kwds) {
    PyObject *delay, *value = Py_None;
    static char *kwlist[] = {"delay", "value", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|O", kwlist,
                                     &delay, &value))
        return NULL;
    return PyObject_CallFunctionObjArgs((PyObject *)&TimeoutType,
                                        (PyObject *)self, delay, value, NULL);
}

static PyObject *Env_process(CEnv *self, PyObject *args, PyObject *kwds) {
    PyObject *generator, *name = NULL;
    static char *kwlist[] = {"generator", "name", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|U", kwlist,
                                     &generator, &name))
        return NULL;
    if (name)
        return PyObject_CallFunctionObjArgs((PyObject *)&ProcessType,
                                            (PyObject *)self, generator,
                                            name, NULL);
    return PyObject_CallFunctionObjArgs((PyObject *)&ProcessType,
                                        (PyObject *)self, generator, NULL);
}

/* -- scheduling ----------------------------------------------------- */

static PyObject *Env_schedule(CEnv *self, PyObject *args, PyObject *kwds) {
    PyObject *event;
    double delay = 0.0;
    static char *kwlist[] = {"event", "delay", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O!|d", kwlist,
                                     &EventType, &event, &delay))
        return NULL;
    if (env_schedule(self, (CEvent *)event, delay) < 0) return NULL;
    Py_RETURN_NONE;
}

static PyObject *Env_has_work(CEnv *self, PyObject *noarg) {
    return PyBool_FromLong(
        self->batch_head < PyList_GET_SIZE(self->batch)
        || self->now_head < PyList_GET_SIZE(self->nowq)
        || ((Calendar *)self->cal)->nlen > 0);
}

/* Advance the clock to the calendar's minimum tick and install the
 * whole same-tick batch (as a list of (t, seq, ev) tuples). */
static int env_pull_batch(CEnv *self) {
    Calendar *cal = (Calendar *)self->cal;
    if (self->batch_head) {
        if (PyList_SetSlice(self->batch, 0, PY_SSIZE_T_MAX, NULL) < 0)
            return -1;
        self->batch_head = 0;
    }
    if (self->now_head) {
        if (PyList_SetSlice(self->nowq, 0, PY_SSIZE_T_MAX, NULL) < 0)
            return -1;
        self->now_head = 0;
    }
    {
        PyObject *pair = Calendar_pop_batch(cal, NULL);
        PyObject *entries;
        if (!pair) return -1;
        self->now = PyFloat_AS_DOUBLE(PyTuple_GET_ITEM(pair, 0));
        entries = PyTuple_GET_ITEM(pair, 1);
        Py_INCREF(entries);
        Py_SETREF(self->batch, entries);
        Py_DECREF(pair);
    }
    return 0;
}

static PyObject *Env_pull_batch(CEnv *self, PyObject *noarg) {
    if (env_pull_batch(self) < 0) return NULL;
    Py_RETURN_NONE;
}

static PyObject *Env_peek(CEnv *self, PyObject *noarg) {
    if (self->batch_head < PyList_GET_SIZE(self->batch)
        || self->now_head < PyList_GET_SIZE(self->nowq))
        return PyFloat_FromDouble(self->now);
    return PyFloat_FromDouble(cal_min_time((Calendar *)self->cal));
}

/* One no-policy step.  Policy steps live in the Python wrapper
 * (_compiled.Environment._step_policy) — cold by construction. */
static PyObject *Env_step(CEnv *self, PyObject *noarg) {
    PyObject *event;
    if (self->policy != Py_None)
        return PyObject_CallMethod((PyObject *)self, "_step_policy", NULL);
    if (self->batch_head < PyList_GET_SIZE(self->batch)) {
        PyObject *entry = PyList_GET_ITEM(self->batch, self->batch_head);
        self->batch_head += 1;
        event = PyTuple_GET_ITEM(entry, 2);
    } else if (self->now_head < PyList_GET_SIZE(self->nowq)) {
        PyObject *entry = PyList_GET_ITEM(self->nowq, self->now_head);
        self->now_head += 1;
        event = PyTuple_GET_ITEM(entry, 2);
    } else {
        if (((Calendar *)self->cal)->nlen == 0) {
            PyErr_SetString(SimulationError, "step() on an empty schedule");
            return NULL;
        }
        if (env_pull_batch(self) < 0) return NULL;
        self->batch_head = 1;
        event = PyTuple_GET_ITEM(PyList_GET_ITEM(self->batch, 0), 2);
    }
    self->event_count += 1;
    Py_INCREF(event);
    if (env_dispatch(self, event) < 0) { Py_DECREF(event); return NULL; }
    Py_DECREF(event);
    Py_RETURN_NONE;
}

/* The no-policy dispatch loop, mirroring _engine.Environment._run_drain:
 * batch walk -> now-queue walk -> calendar pull, with singleton bucket
 * entries dispatched straight from C entries (no tuple materialized).
 * Heads and calendar counters are persisted on every exit path. */
static int env_run_drain(CEnv *self, double deadline) {
    PyObject *batch = self->batch;      /* borrowed aliases; batch is  */
    PyObject *nowq = self->nowq;        /* re-pointed on every pull    */
    Calendar *cal = (Calendar *)self->cal;
    Py_ssize_t bh = self->batch_head;
    Py_ssize_t nh = self->now_head;
    long long count = self->event_count;
    long long popped = 0;
    long long pops = cal->pop_count;
    int rc = 0;

    /* normalize consumed prefixes once */
    if (bh) {
        if (PyList_SetSlice(batch, 0, bh, NULL) < 0) { rc = -1; goto done; }
        bh = 0;
    }
    if (nh) {
        if (PyList_SetSlice(nowq, 0, nh, NULL) < 0) { rc = -1; goto done; }
        nh = 0;
    }
    for (;;) {
        if (PyList_GET_SIZE(batch)) {
            /* dispatch cannot grow the batch (new events go to the
             * calendar or the now-queue), so one length read is exact */
            Py_ssize_t n = PyList_GET_SIZE(batch);
            while (bh < n) {
                PyObject *ev = PyTuple_GET_ITEM(PyList_GET_ITEM(batch, bh), 2);
                bh++;
                count++;
                Py_INCREF(ev);
                if (env_dispatch(self, ev) < 0) {
                    Py_DECREF(ev); rc = -1; goto done;
                }
                Py_DECREF(ev);
            }
            if (PyList_SetSlice(batch, 0, PY_SSIZE_T_MAX, NULL) < 0) {
                rc = -1; goto done;
            }
            bh = 0;
        }
        if (PyList_GET_SIZE(nowq)) {
            /* the now-queue grows at its tail while we walk it */
            while (nh < PyList_GET_SIZE(nowq)) {
                PyObject *ev = PyTuple_GET_ITEM(PyList_GET_ITEM(nowq, nh), 2);
                nh++;
                count++;
                Py_INCREF(ev);
                if (env_dispatch(self, ev) < 0) {
                    Py_DECREF(ev); rc = -1; goto done;
                }
                Py_DECREF(ev);
            }
            if (PyList_SetSlice(nowq, 0, PY_SSIZE_T_MAX, NULL) < 0) {
                rc = -1; goto done;
            }
            nh = 0;
            continue;
        }
        /* -- pull the next same-tick batch from the calendar -- */
        if (cal->order.len == 0) {
            double t;
            PyObject *list;
            if (cal->far_len == 0) break;
            t = cal_min_time(cal);      /* rare: only far timeouts left */
            if (t > deadline) break;
            list = cal_pop_far(cal, &t);
            if (!list) { rc = -1; goto done; }
            self->now = t;
            Py_SETREF(self->batch, list);
            batch = list;
            bh = 0;
            continue;
        }
        {
            long long bidx = cal->order.items[0];
            cbucket *bucket = cmap_get(&cal->map, bidx);
            unsigned long g;
            if (!bucket || bucket->len == 0) {
                /* drained shell that was never re-armed: discard */
                cheap_pop(&cal->order);
                if (bucket) { bucket_free(bucket); cmap_del(&cal->map, bidx); }
                continue;
            }
            if (pops >= GAP_WINDOW) {
                /* retune between bucket runs only, so the run below
                 * never holds a bucket pointer across a rebuild */
                cal_window_retune(cal, bucket->items[0].t);
                pops = 0;
                continue;
            }
            g = cal->gen;
            /* -- bucket run: keep dispatching from this bucket while
             * each head entry is alone at its timestamp.  Time is
             * monotone, so a bucket re-armed by a dispatched callback
             * is still the global minimum. */
            for (;;) {
                centry entry = bucket->items[0];
                double t = entry.t;
                Py_ssize_t n;
                if (t > deadline) goto done;
                n = bucket->len;
                if (n > 1 && bucket->items[1].t == t) {
                    /* same-tick cluster: materialize the equal-time
                     * prefix as the next batch */
                    Py_ssize_t m = 2, i;
                    PyObject *list;
                    while (m < n && bucket->items[m].t == t) m++;
                    list = PyList_New(m);
                    if (!list) { rc = -1; goto done; }
                    for (i = 0; i < m; i++) {
                        PyObject *tup = Py_BuildValue(
                            "(dLO)", bucket->items[i].t,
                            bucket->items[i].seq, bucket->items[i].ev);
                        if (!tup) { Py_DECREF(list); rc = -1; goto done; }
                        PyList_SET_ITEM(list, i, tup);
                    }
                    for (i = 0; i < m; i++) Py_DECREF(bucket->items[i].ev);
                    if (m == n) {
                        bucket->len = 0;
                        cheap_pop(&cal->order);
                        cmap_del(&cal->map, bidx);
                        bucket_free(bucket);
                    } else {
                        memmove(bucket->items, bucket->items + m,
                                (n - m) * sizeof(centry));
                        bucket->len = n - m;
                    }
                    popped += m;
                    pops += 1;
                    self->now = t;
                    Py_SETREF(self->batch, list);
                    batch = list;
                    bh = 0;
                    break;
                }
                /* singleton: dispatch straight from the C entry (the
                 * bucket's ref transfers to this frame) */
                memmove(bucket->items, bucket->items + 1,
                        (n - 1) * sizeof(centry));
                bucket->len = n - 1;
                popped++;
                pops++;
                self->now = t;
                count++;
                if (env_dispatch(self, entry.ev) < 0) {
                    Py_DECREF(entry.ev); rc = -1; goto done;
                }
                Py_DECREF(entry.ev);
                /* leave the run when the now-queue has work, a rebuild
                 * replaced the buckets (gen bump), or this one drained;
                 * short-circuit keeps the stale pointer untouched */
                if (PyList_GET_SIZE(nowq) || cal->gen != g ||
                    bucket->len == 0)
                    break;
            }
        }
    }
done:
    self->event_count = count;
    self->batch_head = bh;
    self->now_head = nh;
    cal->nlen -= popped;
    cal->pop_count = pops;
    return rc;
}

static PyObject *Env_run(CEnv *self, PyObject *args, PyObject *kwds) {
    PyObject *until = Py_None;
    static char *kwlist[] = {"until", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|O", kwlist, &until))
        return NULL;
    if (until == Py_None) {
        if (self->policy != Py_None) {
            while (self->batch_head < PyList_GET_SIZE(self->batch)
                   || self->now_head < PyList_GET_SIZE(self->nowq)
                   || ((Calendar *)self->cal)->nlen > 0) {
                PyObject *r = PyObject_CallMethod((PyObject *)self,
                                                  "_step_policy", NULL);
                if (!r) return NULL;
                Py_DECREF(r);
            }
        } else if (env_run_drain(self, Py_HUGE_VAL) < 0)
            return NULL;
        Py_RETURN_NONE;
    }
    if (PyObject_TypeCheck(until, &EventType)) {
        CEvent *stop = (CEvent *)until;
        while (stop->callbacks != Py_None && stop->callbacks != NULL) {
            PyObject *r;
            if (!(self->batch_head < PyList_GET_SIZE(self->batch)
                  || self->now_head < PyList_GET_SIZE(self->nowq)
                  || ((Calendar *)self->cal)->nlen > 0)) {
                PyObject *desc = PyObject_CallMethod(
                    (PyObject *)self, "describe_alive", NULL);
                if (!desc) return NULL;
                PyErr_Format(SimulationError,
                             "schedule drained before the awaited event "
                             "triggered (deadlock?); %S", desc);
                Py_DECREF(desc);
                return NULL;
            }
            r = Env_step(self, NULL);
            if (!r) return NULL;
            Py_DECREF(r);
        }
        if (stop->ok) {
            Py_INCREF(stop->value);
            return stop->value;
        }
        PyErr_SetObject((PyObject *)Py_TYPE(stop->value), stop->value);
        return NULL;
    }
    {
        double deadline = PyFloat_AsDouble(until);
        if (deadline == -1.0 && PyErr_Occurred()) return NULL;
        if (deadline < self->now) {
            PyObject *d = PyFloat_FromDouble(deadline);
            PyObject *n = PyFloat_FromDouble(self->now);
            if (d && n)
                PyErr_Format(SimulationError,
                             "run(until=%S) is in the past (now=%S)", d, n);
            Py_XDECREF(d); Py_XDECREF(n);
            return NULL;
        }
        if (self->policy != Py_None) {
            for (;;) {
                double next;
                PyObject *r;
                if (self->batch_head < PyList_GET_SIZE(self->batch)
                    || self->now_head < PyList_GET_SIZE(self->nowq))
                    next = self->now;
                else
                    next = cal_min_time((Calendar *)self->cal);
                if (!(next <= deadline)) break;
                r = PyObject_CallMethod((PyObject *)self,
                                        "_step_policy", NULL);
                if (!r) return NULL;
                Py_DECREF(r);
            }
        } else if (env_run_drain(self, deadline) < 0)
            return NULL;
        self->now = deadline;
        Py_RETURN_NONE;
    }
}

static PyMemberDef Env_members[] = {
    /* engine internals, exposed with the pure engine's names so the
     * Python cold paths (_compiled._step_policy etc.) share one code
     * shape with _engine */
    {"_now", T_DOUBLE, offsetof(CEnv, now), 0, NULL},
    {"_seq", T_LONGLONG, offsetof(CEnv, seq), 0, NULL},
    {"_event_count", T_LONGLONG, offsetof(CEnv, event_count), 0, NULL},
    {"_cal", T_OBJECT, offsetof(CEnv, cal), READONLY, NULL},
    {"_nowq", T_OBJECT, offsetof(CEnv, nowq), 0, NULL},
    {"_batch", T_OBJECT, offsetof(CEnv, batch), 0, NULL},
    {"_now_head", T_PYSSIZET, offsetof(CEnv, now_head), 0, NULL},
    {"_batch_head", T_PYSSIZET, offsetof(CEnv, batch_head), 0, NULL},
    {"_active_process", T_OBJECT, offsetof(CEnv, active_process), 0, NULL},
    {"_policy", T_OBJECT, offsetof(CEnv, policy), 0, NULL},
    {"_sched_log", T_OBJECT, offsetof(CEnv, sched_log), 0, NULL},
    {"_sched_fanout", T_OBJECT, offsetof(CEnv, sched_fanout), 0, NULL},
    {"flight", T_OBJECT, offsetof(CEnv, flight), 0, NULL},
    {"_procs", T_OBJECT, offsetof(CEnv, procs), 0, NULL},
    {"_next_pid", T_LONGLONG, offsetof(CEnv, next_pid), 0, NULL},
    {"_procs_prune_at", T_PYSSIZET, offsetof(CEnv, procs_prune_at), 0, NULL},
    {NULL}
};

static PyGetSetDef Env_getset[] = {
    {"now", (getter)Env_get_now, NULL,
     "Current simulated time in nanoseconds.", NULL},
    {"event_count", (getter)Env_get_event_count, NULL,
     "Total events processed so far (for engine benchmarks).", NULL},
    {"active_process", (getter)Env_get_active_process, NULL, NULL, NULL},
    {"schedule_decisions", (getter)Env_get_sched_log, NULL,
     "Chosen ready-list index per choice point (policy runs only).", NULL},
    {"schedule_fanouts", (getter)Env_get_sched_fanout, NULL,
     "Number of ready events per choice point (policy runs only).", NULL},
    {NULL}
};

static PyMethodDef Env_methods[] = {
    {"event", (PyCFunction)Env_event, METH_NOARGS, NULL},
    {"timeout", (PyCFunction)Env_timeout, METH_VARARGS | METH_KEYWORDS, NULL},
    {"process", (PyCFunction)Env_process, METH_VARARGS | METH_KEYWORDS, NULL},
    {"schedule", (PyCFunction)Env_schedule, METH_VARARGS | METH_KEYWORDS,
     "Schedule ``event`` to be processed ``delay`` ns from now."},
    {"_schedule", (PyCFunction)Env_schedule, METH_VARARGS | METH_KEYWORDS, NULL},
    {"step", (PyCFunction)Env_step, METH_NOARGS, "Process exactly one event."},
    {"peek", (PyCFunction)Env_peek, METH_NOARGS,
     "Time of the next event, or +inf if none is scheduled."},
    {"run", (PyCFunction)Env_run, METH_VARARGS | METH_KEYWORDS,
     "Run until the schedule drains, a deadline passes, or an event fires."},
    {"_has_work", (PyCFunction)Env_has_work, METH_NOARGS, NULL},
    {"_pull_batch", (PyCFunction)Env_pull_batch, METH_NOARGS, NULL},
    {NULL}
};

static PyTypeObject EnvironmentType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ccore.Environment",
    .tp_basicsize = sizeof(CEnv),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "The event loop and virtual clock (compiled core).",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Env_init,
    .tp_dealloc = (destructor)Env_dealloc,
    .tp_traverse = (traverseproc)Env_traverse,
    .tp_clear = (inquiry)Env_clear_slots,
    .tp_members = Env_members,
    .tp_getset = Env_getset,
    .tp_methods = Env_methods,
};

/* ==================== module ====================================== */

static struct PyModuleDef ccoremodule = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._ccore",
    .m_doc = "Compiled calendar-queue event core (C twin of "
             "repro.sim._engine).",
    .m_size = -1,
};

PyMODINIT_FUNC PyInit__ccore(void) {
    PyObject *mod = NULL, *errors = NULL, *base = NULL;

    errors = PyImport_ImportModule("repro.common.errors");
    if (!errors) return NULL;
    SimulationError = PyObject_GetAttrString(errors, "SimulationError");
    ConfigError = PyObject_GetAttrString(errors, "ConfigError");
    Py_DECREF(errors);
    if (!SimulationError || !ConfigError) goto fail;

    base = PyImport_ImportModule("repro.sim._base");
    if (!base) goto fail;
    PENDING = PyObject_GetAttrString(base, "PENDING");
    InterruptExc = PyObject_GetAttrString(base, "Interrupt");
    Py_DECREF(base);
    base = NULL;
    if (!PENDING || !InterruptExc) goto fail;

    EchoType.tp_base = &EventType;
    TimeoutType.tp_base = &EventType;
    ProcessType.tp_base = &EventType;
    if (PyType_Ready(&EventType) < 0 ||
        PyType_Ready(&EchoType) < 0 ||
        PyType_Ready(&TimeoutType) < 0 ||
        PyType_Ready(&ProcessType) < 0 ||
        PyType_Ready(&CalendarType) < 0 ||
        PyType_Ready(&EnvironmentType) < 0)
        goto fail;

    mod = PyModule_Create(&ccoremodule);
    if (!mod) goto fail;

    if (PyModule_AddObjectRef(mod, "Event", (PyObject *)&EventType) < 0 ||
        PyModule_AddObjectRef(mod, "_Echo", (PyObject *)&EchoType) < 0 ||
        PyModule_AddObjectRef(mod, "Timeout", (PyObject *)&TimeoutType) < 0 ||
        PyModule_AddObjectRef(mod, "Process", (PyObject *)&ProcessType) < 0 ||
        PyModule_AddObjectRef(mod, "CalendarQueue",
                              (PyObject *)&CalendarType) < 0 ||
        PyModule_AddObjectRef(mod, "Environment",
                              (PyObject *)&EnvironmentType) < 0 ||
        PyModule_AddObjectRef(mod, "PENDING", PENDING) < 0 ||
        PyModule_AddObjectRef(mod, "Interrupt", InterruptExc) < 0)
        goto fail;
    return mod;

fail:
    Py_XDECREF(mod);
    Py_XDECREF(SimulationError); SimulationError = NULL;
    Py_XDECREF(ConfigError); ConfigError = NULL;
    Py_XDECREF(PENDING); PENDING = NULL;
    Py_XDECREF(InterruptExc); InterruptExc = NULL;
    return NULL;
}
