"""The process-pool experiment engine.

Shards sweep cells across worker processes and merges their results
deterministically.  The engine exploits the repo's central invariant:
every run is a *sealed seeded cell* — ``run_workload(spec)`` is a pure
function of the spec — so replication across processes cannot change
any result, only the wall-clock time to produce it.

Scheduling is **chunked work-stealing**: cells are split into small
contiguous chunks, every chunk is submitted up front, and the pool's
workers pull the next chunk the moment they finish one.  Heterogeneous
cells (a 20-node × 12-thread cell takes ~50× a 3-node smoke cell) thus
load-balance without any cost model.

Failure containment is per cell: a worker exception is caught *inside*
the worker and returned as a failed :class:`CellResult` (repr +
traceback), so one diverging cell never loses a sweep.  A chunk lost to
a worker crash (pool broken, unpicklable result) is recorded the same
way for every cell in the chunk, and a *malformed* chunk — a worker
returning the wrong shape, or rows for the wrong cells — is validated
against the submitted chunk and recorded cell by cell, never allowed to
abort the sweep late with a generic error.

Execution runs through a pluggable **shell** seam
(:class:`SweepShell`): the in-process shell is the serial reference
path, the process-pool shell is today's fan-out, and a multi-host
backend can slot in later without touching the sealed-cell interface —
a shell only ever sees primitive chunks and returns primitive results.
This module is the repo's only pool chokepoint (simlint
``process-boundary``), so every shell lives here.

``KeyboardInterrupt`` (or any error) in the parent cancels all pending
chunks and shuts the pool down *waiting* for workers to exit, so an
aborted sweep leaves no orphan processes behind.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import FIRST_COMPLETED, Executor, ProcessPoolExecutor, wait
from typing import Callable, Optional, Sequence

from repro.common.errors import ConfigError, SimulationError
from repro.sim import core_info
from repro.parallel.cache import ResultCache
from repro.parallel.cells import CellResult, SweepCell, worker_entry
from repro.workload.metrics import RunResult
from repro.workload.runner import run_workload
from repro.workload.spec import WorkloadSpec

#: Named metrics a cell row records under ``"metric"``.  Referenced by
#: name so the choice crosses the process boundary as a string, never a
#: callable.
METRICS: dict[str, Callable[[RunResult], float]] = {
    "throughput": lambda r: r.throughput_ops_per_sec,
    "p50": lambda r: r.latency.p50,
    "p99": lambda r: r.latency.p99,
    "p999": lambda r: r.latency.p999,
    "mean_latency": lambda r: r.latency.mean,
}


def _cell_row(result: RunResult, metric: str) -> dict:
    """The primitive row a cell contributes to the merged output."""
    row = result.summary_row()
    row["metric"] = float(METRICS[metric](result))
    return row


@worker_entry
def run_cell_chunk(chunk: "tuple[SweepCell, ...]", metric: str = "throughput") -> list[CellResult]:
    """Worker entry point: execute one chunk of sealed cells.

    Receives only :class:`SweepCell` values (primitive-keyed specs) and
    a metric *name*; builds each cell's whole world — cluster, locks,
    workload — inside this process.  Exceptions become failed-cell
    records; they never escape the chunk.
    """
    out: list[CellResult] = []
    for cell in chunk:
        try:
            result = run_workload(cell.spec)
            out.append(CellResult(key=cell.key, ok=True,
                                  row=_cell_row(result, metric)))
        except Exception as exc:
            # A failure site (runner, sim core, locktable) may have hung
            # a post-mortem dump on the exception; a failed cell carries
            # it home as a plain string (boundary-safe).
            out.append(CellResult(
                key=cell.key, ok=False,
                error=f"{exc!r}\n{traceback.format_exc()}",
                dump=getattr(exc, "_postmortem", None)))
    return out


@worker_entry
def run_spec_chunk(chunk: "tuple[WorkloadSpec, ...]") -> list[RunResult]:
    """Worker entry point for the experiment prefetch path: execute a
    chunk of specs and return the full (picklable) :class:`RunResult`
    values.  Exceptions propagate — an experiment run is not allowed to
    silently drop a cell."""
    return [run_workload(spec) for spec in chunk]


def default_chunk_size(n_items: int, workers: int) -> int:
    """Small chunks for work-stealing, large enough to amortize IPC:
    aim for ~4 chunks per worker, capped at 8 cells per chunk."""
    if n_items <= 0:
        return 1
    return max(1, min(8, -(-n_items // (max(1, workers) * 4))))


def _chunks(items: Sequence, size: int) -> list[tuple]:
    return [tuple(items[i:i + size]) for i in range(0, len(items), size)]


# --------------------------------------------------------------------------
# the shell seam
# --------------------------------------------------------------------------

class SweepShell:
    """Where chunks execute.  A shell receives primitive chunks (the
    sealed-cell boundary) and reports ``(chunk_index, value, error)`` to
    ``on_chunk_done`` in completion order; it guarantees that whatever
    execution substrate it owns is fully torn down — workers joined —
    before returning or raising.  Implementations today run in-process
    or on a local process pool; a multi-host backend implements the same
    two methods."""

    #: short name for CLI/progress display.
    name = "shell"

    def run_chunks(self, chunks: "list[tuple]", submit_fn,
                   on_chunk_done: Callable[[int, object, Optional[BaseException]], None]) -> None:
        raise NotImplementedError


class InProcessShell(SweepShell):
    """The serial reference shell: chunks run one after another in this
    process, in submission order.  This is the ``workers <= 1`` path —
    the same worker functions, no pool at all — which is what makes the
    byte-identity comparison against pooled runs meaningful."""

    name = "in-process"

    def run_chunks(self, chunks, submit_fn, on_chunk_done) -> None:
        for idx, chunk in enumerate(chunks):
            fn, *args = submit_fn(chunk)
            try:
                value, error = fn(*args), None
            except Exception as exc:
                value, error = None, exc
            on_chunk_done(idx, value, error)


class ProcessPoolShell(SweepShell):
    """Chunked work-stealing on a local process pool."""

    name = "process-pool"

    def __init__(self, workers: int,
                 executor_factory: Optional[Callable[[int], Executor]] = None):
        self.workers = max(1, workers)
        self.executor_factory = executor_factory

    def run_chunks(self, chunks, submit_fn, on_chunk_done) -> None:
        # Pin the *resolved* event core for the workers' lifetime: a
        # forked worker inherits the parent's imported engine anyway,
        # but a spawn-mode (or crashed-and-respawned) worker re-imports
        # repro.sim.core and re-reads ALOCK_SIM_CORE — under "auto" it
        # could resolve differently from the parent (e.g. a compiled
        # .so appearing mid-sweep), silently mixing cores within one
        # sweep.  Exporting the resolved kind makes every worker's
        # selection identical to the parent's, and a worker that cannot
        # honor a pinned "compiled" warns instead of silently serving
        # different bytes.
        pinned_prev = os.environ.get("ALOCK_SIM_CORE")
        os.environ["ALOCK_SIM_CORE"] = core_info()["kind"]
        if self.executor_factory is not None:
            executor = self.executor_factory(self.workers)
        else:
            executor = ProcessPoolExecutor(max_workers=self.workers)
        try:
            pending = {executor.submit(*submit_fn(chunk)): i
                       for i, chunk in enumerate(chunks)}
            while pending:
                done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
                for fut in done:
                    idx = pending.pop(fut)
                    error = fut.exception()
                    value = None if error is not None else fut.result()
                    on_chunk_done(idx, value, error)
        except BaseException:
            # Interrupt/crash in the parent: drop what hasn't started and
            # wait for in-flight workers so no orphan processes survive.
            executor.shutdown(wait=True, cancel_futures=True)
            raise
        finally:
            if pinned_prev is None:
                os.environ.pop("ALOCK_SIM_CORE", None)
            else:
                os.environ["ALOCK_SIM_CORE"] = pinned_prev
        executor.shutdown(wait=True)


def resolve_shell(workers: int,
                  executor_factory: Optional[Callable[[int], Executor]] = None,
                  shell: Optional[SweepShell] = None) -> SweepShell:
    """Pick the execution shell: an explicit ``shell`` wins, a factory or
    ``workers > 1`` means the pool, anything else runs in-process."""
    if shell is not None:
        return shell
    if workers > 1 or executor_factory is not None:
        return ProcessPoolShell(workers, executor_factory)
    return InProcessShell()


def _execute_chunks(chunks: list[tuple], submit_fn, workers: int,
                    executor_factory: Optional[Callable[[int], Executor]],
                    on_chunk_done: Callable[[int, object, Optional[BaseException]], None],
                    shell: Optional[SweepShell] = None) -> None:
    resolve_shell(workers, executor_factory, shell).run_chunks(
        chunks, submit_fn, on_chunk_done)


def _validated_chunk_results(chunk: "tuple[SweepCell, ...]", idx: int,
                             value: object,
                             error: Optional[BaseException]) -> list[CellResult]:
    """Reconcile whatever came back for ``chunk`` against what was
    submitted, one :class:`CellResult` per submitted cell.

    A crashed chunk fails every cell; a malformed chunk — wrong type,
    foreign/duplicate keys, missing cells — fails exactly the cells the
    worker did not properly answer for.  The sweep never aborts late
    over a worker's bad return value.
    """
    if error is not None:
        # The whole chunk died (worker crash / broken pool): record
        # every cell of the chunk as failed, keep the sweep going.
        return [CellResult(key=cell.key, ok=False,
                           error=f"chunk failure: {error!r}")
                for cell in chunk]
    returned = value if isinstance(value, (list, tuple)) else None
    by_key: dict[tuple, CellResult] = {}
    anomalies: list[str] = []
    if returned is None:
        anomalies.append(f"returned {type(value).__name__!r}, "
                         f"expected a list of CellResult")
    else:
        for item in returned:
            if not isinstance(item, CellResult):
                anomalies.append(f"non-CellResult entry {type(item).__name__!r}")
            elif item.key in by_key:
                anomalies.append(f"duplicate key {item.key!r}")
            else:
                by_key[item.key] = item
    expected = {cell.key: cell for cell in chunk}
    for key in list(by_key):
        if key not in expected:
            anomalies.append(f"foreign key {key!r}")
            del by_key[key]
    out: list[CellResult] = []
    for cell in chunk:
        res = by_key.get(cell.key)
        if res is None:
            detail = "; ".join(anomalies) or "cell missing from returned chunk"
            res = CellResult(key=cell.key, ok=False,
                             error=f"malformed chunk {idx}: worker returned "
                                   f"no result for this cell ({detail})")
        out.append(res)
    return out


def run_cells(cells: Sequence[SweepCell], *, workers: int = 0,
              metric: str = "throughput", chunk_size: Optional[int] = None,
              on_result: Optional[Callable[[CellResult], None]] = None,
              executor_factory: Optional[Callable[[int], Executor]] = None,
              cache: Optional[ResultCache] = None,
              shell: Optional[SweepShell] = None) -> list[CellResult]:
    """Execute ``cells`` and return their results **in cell-key order**
    (= enumeration order), regardless of worker count or completion
    order — the deterministic-merge guarantee.

    Args:
        cells: sealed cells (see :func:`repro.parallel.sweep.enumerate_grid`).
        workers: ``<= 1`` runs inline (the serial path, no pool at all);
            ``N > 1`` shards over N processes.
        metric: named metric recorded in each row (see :data:`METRICS`).
        chunk_size: cells per work-stealing chunk; default
            :func:`default_chunk_size`.
        on_result: progress callback, invoked in **completion** order
            (not merge order) with each :class:`CellResult`; cache hits
            are reported first, in enumeration order.
        executor_factory: test seam; ``workers -> Executor``.
        cache: optional :class:`~repro.parallel.cache.ResultCache` —
            hits skip submission entirely, fresh successful results are
            written back as they arrive, so an interrupted sweep resumes
            from whatever the store already holds.
        shell: optional execution shell override (see :class:`SweepShell`).
    """
    if metric not in METRICS:
        raise ConfigError(f"unknown metric {metric!r}; choose from {sorted(METRICS)}")
    cells = list(cells)
    merged: dict[tuple, CellResult] = {}
    if cache is not None:
        for cell in cells:
            hit = cache.lookup_cell(cell, metric)
            if hit is not None:
                merged[cell.key] = hit
                if on_result is not None:
                    on_result(hit)
    misses = [cell for cell in cells if cell.key not in merged]

    size = chunk_size if chunk_size else default_chunk_size(len(misses), workers)
    chunks = _chunks(misses, size)

    def on_chunk_done(idx: int, value, error: Optional[BaseException]) -> None:
        for res in _validated_chunk_results(chunks[idx], idx, value, error):
            if cache is not None:
                # Write-back precedes the progress callback so a cell is
                # durably resumable by the time the operator sees it.
                cache.store_cell(_cell_of(chunks[idx], res.key), metric, res)
            merged[res.key] = res
            if on_result is not None:
                on_result(res)

    def _cell_of(chunk: "tuple[SweepCell, ...]", key: tuple) -> SweepCell:
        for cell in chunk:
            if cell.key == key:
                return cell
        raise SimulationError(f"no submitted cell with key {key!r}")  # pragma: no cover

    if chunks:
        resolve_shell(workers, executor_factory, shell).run_chunks(
            chunks, lambda chunk: (run_cell_chunk, chunk, metric),
            on_chunk_done)
    missing = [cell.key for cell in cells if cell.key not in merged]
    if missing:  # pragma: no cover - defensive
        raise SimulationError(f"sweep lost cells {missing[:3]}...")
    return [merged[cell.key] for cell in cells]


def _add_note(exc: BaseException, note: str) -> None:
    """Attach ``note`` to ``exc`` — ``add_note`` on 3.11+, the plain
    ``__notes__`` attribute on 3.10 (same shape, just not auto-printed)."""
    add_note = getattr(exc, "add_note", None)
    if add_note is not None:
        add_note(note)
    else:  # pragma: no cover - py3.10
        notes = getattr(exc, "__notes__", None)
        if notes is None:
            notes = []
            exc.__notes__ = notes
        notes.append(note)


def pmap_workloads(specs: Sequence[WorkloadSpec], *, workers: int = 0,
                   chunk_size: Optional[int] = None,
                   executor_factory: Optional[Callable[[int], Executor]] = None,
                   cache: Optional[ResultCache] = None,
                   shell: Optional[SweepShell] = None) -> list[RunResult]:
    """Run every spec and return full :class:`RunResult` values in input
    order.  The experiment-module fan-out path: results are exactly what
    ``run_workload`` would have produced serially (sealed seeded cells),
    so callers assemble tables/series byte-identically.

    Unlike :func:`run_cells` a worker exception here propagates — paper
    experiments must not silently drop cells.  When several chunks fail,
    the first failure is raised with every other failure chained onto it
    as ``__notes__`` naming each failed chunk's index and spec labels,
    so no failure identity is ever discarded.
    """
    specs = list(specs)
    results: dict[int, RunResult] = {}
    if cache is not None:
        for i, spec in enumerate(specs):
            hit = cache.lookup_run(spec)
            if hit is not None:
                results[i] = hit
    miss_indices = [i for i in range(len(specs)) if i not in results]
    if workers <= 1 and executor_factory is None and shell is None:
        for i in miss_indices:
            results[i] = run_workload(specs[i])
            if cache is not None:
                cache.store_run(specs[i], results[i])
        return [results[i] for i in range(len(specs))]

    size = chunk_size if chunk_size else default_chunk_size(len(miss_indices), workers)
    index_chunks = _chunks(miss_indices, size)
    failures: list[tuple[int, BaseException]] = []

    def _chunk_desc(idx: int) -> str:
        labels = [specs[i].label() for i in index_chunks[idx]]
        shown = "; ".join(labels[:3])
        if len(labels) > 3:
            shown += f"; ... {len(labels) - 3} more"
        return shown

    def on_chunk_done(idx: int, value, error: Optional[BaseException]) -> None:
        if error is not None:
            failures.append((idx, error))
            return
        for i, result in zip(index_chunks[idx], value):
            results[i] = result
            if cache is not None:
                cache.store_run(specs[i], result)

    if index_chunks:
        resolve_shell(workers, executor_factory, shell).run_chunks(
            index_chunks,
            lambda chunk: (run_spec_chunk, tuple(specs[i] for i in chunk)),
            on_chunk_done)
    if failures:
        failures.sort(key=lambda pair: pair[0])
        first_idx, primary = failures[0]
        _add_note(primary,
                  f"pmap chunk {first_idx} failed (specs: {_chunk_desc(first_idx)})")
        for idx, exc in failures[1:]:
            _add_note(primary,
                      f"also failed: chunk {idx} "
                      f"(specs: {_chunk_desc(idx)}): {exc!r}")
        raise primary
    out: list[RunResult] = []
    for i in range(len(specs)):
        out.append(results[i])
    return out
