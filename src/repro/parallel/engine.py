"""The process-pool experiment engine.

Shards sweep cells across worker processes and merges their results
deterministically.  The engine exploits the repo's central invariant:
every run is a *sealed seeded cell* — ``run_workload(spec)`` is a pure
function of the spec — so replication across processes cannot change
any result, only the wall-clock time to produce it.

Scheduling is **chunked work-stealing**: cells are split into small
contiguous chunks, every chunk is submitted up front, and the pool's
workers pull the next chunk the moment they finish one.  Heterogeneous
cells (a 20-node × 12-thread cell takes ~50× a 3-node smoke cell) thus
load-balance without any cost model.

Failure containment is per cell: a worker exception is caught *inside*
the worker and returned as a failed :class:`CellResult` (repr +
traceback), so one diverging cell never loses a sweep.  A chunk lost to
a worker crash (pool broken, unpicklable result) is recorded the same
way for every cell in the chunk.

``KeyboardInterrupt`` (or any error) in the parent cancels all pending
chunks and shuts the pool down *waiting* for workers to exit, so an
aborted sweep leaves no orphan processes behind.
"""

from __future__ import annotations

import traceback
from concurrent.futures import FIRST_COMPLETED, Executor, ProcessPoolExecutor, wait
from typing import Callable, Optional, Sequence

from repro.common.errors import ConfigError, SimulationError
from repro.parallel.cells import CellResult, SweepCell, worker_entry
from repro.workload.metrics import RunResult
from repro.workload.runner import run_workload
from repro.workload.spec import WorkloadSpec

#: Named metrics a cell row records under ``"metric"``.  Referenced by
#: name so the choice crosses the process boundary as a string, never a
#: callable.
METRICS: dict[str, Callable[[RunResult], float]] = {
    "throughput": lambda r: r.throughput_ops_per_sec,
    "p50": lambda r: r.latency.p50,
    "p99": lambda r: r.latency.p99,
    "p999": lambda r: r.latency.p999,
    "mean_latency": lambda r: r.latency.mean,
}


def _cell_row(result: RunResult, metric: str) -> dict:
    """The primitive row a cell contributes to the merged output."""
    row = result.summary_row()
    row["metric"] = float(METRICS[metric](result))
    return row


@worker_entry
def run_cell_chunk(chunk: "tuple[SweepCell, ...]", metric: str = "throughput") -> list[CellResult]:
    """Worker entry point: execute one chunk of sealed cells.

    Receives only :class:`SweepCell` values (primitive-keyed specs) and
    a metric *name*; builds each cell's whole world — cluster, locks,
    workload — inside this process.  Exceptions become failed-cell
    records; they never escape the chunk.
    """
    out: list[CellResult] = []
    for cell in chunk:
        try:
            result = run_workload(cell.spec)
            out.append(CellResult(key=cell.key, ok=True,
                                  row=_cell_row(result, metric)))
        except Exception as exc:
            out.append(CellResult(
                key=cell.key, ok=False,
                error=f"{exc!r}\n{traceback.format_exc()}"))
    return out


@worker_entry
def run_spec_chunk(chunk: "tuple[WorkloadSpec, ...]") -> list[RunResult]:
    """Worker entry point for the experiment prefetch path: execute a
    chunk of specs and return the full (picklable) :class:`RunResult`
    values.  Exceptions propagate — an experiment run is not allowed to
    silently drop a cell."""
    return [run_workload(spec) for spec in chunk]


def default_chunk_size(n_items: int, workers: int) -> int:
    """Small chunks for work-stealing, large enough to amortize IPC:
    aim for ~4 chunks per worker, capped at 8 cells per chunk."""
    if n_items <= 0:
        return 1
    return max(1, min(8, -(-n_items // (max(1, workers) * 4))))


def _chunks(items: Sequence, size: int) -> list[tuple]:
    return [tuple(items[i:i + size]) for i in range(0, len(items), size)]


def _execute_chunks(chunks: list[tuple], submit_fn, workers: int,
                    executor_factory: Optional[Callable[[int], Executor]],
                    on_chunk_done: Callable[[int, object, Optional[BaseException]], None]) -> None:
    """Run every chunk on a pool, reporting ``(chunk_index, value, error)``
    to ``on_chunk_done`` in completion order.  Guarantees the pool is
    fully shut down — workers joined — before returning or raising."""
    if executor_factory is not None:
        executor = executor_factory(workers)
    else:
        executor = ProcessPoolExecutor(max_workers=workers)
    try:
        pending = {executor.submit(*submit_fn(chunk)): i
                   for i, chunk in enumerate(chunks)}
        while pending:
            done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
            for fut in done:
                idx = pending.pop(fut)
                error = fut.exception()
                value = None if error is not None else fut.result()
                on_chunk_done(idx, value, error)
    except BaseException:
        # Interrupt/crash in the parent: drop what hasn't started and
        # wait for in-flight workers so no orphan processes survive.
        executor.shutdown(wait=True, cancel_futures=True)
        raise
    executor.shutdown(wait=True)


def run_cells(cells: Sequence[SweepCell], *, workers: int = 0,
              metric: str = "throughput", chunk_size: Optional[int] = None,
              on_result: Optional[Callable[[CellResult], None]] = None,
              executor_factory: Optional[Callable[[int], Executor]] = None
              ) -> list[CellResult]:
    """Execute ``cells`` and return their results **in cell-key order**
    (= enumeration order), regardless of worker count or completion
    order — the deterministic-merge guarantee.

    Args:
        cells: sealed cells (see :func:`repro.parallel.sweep.enumerate_grid`).
        workers: ``<= 1`` runs inline (the serial path, no pool at all);
            ``N > 1`` shards over N processes.
        metric: named metric recorded in each row (see :data:`METRICS`).
        chunk_size: cells per work-stealing chunk; default
            :func:`default_chunk_size`.
        on_result: progress callback, invoked in **completion** order
            (not merge order) with each :class:`CellResult`.
        executor_factory: test seam; ``workers -> Executor``.
    """
    if metric not in METRICS:
        raise ConfigError(f"unknown metric {metric!r}; choose from {sorted(METRICS)}")
    cells = list(cells)
    if workers <= 1 and executor_factory is None:
        # Serial reference path: same worker function, same process.
        out = []
        for cell in cells:
            res = run_cell_chunk((cell,), metric)[0]
            if on_result is not None:
                on_result(res)
            out.append(res)
        return out

    size = chunk_size if chunk_size else default_chunk_size(len(cells), workers)
    chunks = _chunks(cells, size)
    merged: dict[tuple, CellResult] = {}

    def on_chunk_done(idx: int, value, error: Optional[BaseException]) -> None:
        results = value
        if error is not None:
            # The whole chunk died (worker crash / broken pool): record
            # every cell of the chunk as failed, keep the sweep going.
            results = [CellResult(key=cell.key, ok=False,
                                  error=f"chunk failure: {error!r}")
                       for cell in chunks[idx]]
        for res in results:
            merged[res.key] = res
            if on_result is not None:
                on_result(res)

    _execute_chunks(chunks, lambda chunk: (run_cell_chunk, chunk, metric),
                    workers, executor_factory, on_chunk_done)
    missing = [cell.key for cell in cells if cell.key not in merged]
    if missing:  # pragma: no cover - defensive
        raise SimulationError(f"sweep lost cells {missing[:3]}...")
    return [merged[cell.key] for cell in cells]


def pmap_workloads(specs: Sequence[WorkloadSpec], *, workers: int = 0,
                   chunk_size: Optional[int] = None,
                   executor_factory: Optional[Callable[[int], Executor]] = None
                   ) -> list[RunResult]:
    """Run every spec and return full :class:`RunResult` values in input
    order.  The experiment-module fan-out path: results are exactly what
    ``run_workload`` would have produced serially (sealed seeded cells),
    so callers assemble tables/series byte-identically.

    Unlike :func:`run_cells` a worker exception here propagates — paper
    experiments must not silently drop cells."""
    specs = list(specs)
    if workers <= 1 and executor_factory is None:
        return [run_workload(spec) for spec in specs]
    size = chunk_size if chunk_size else default_chunk_size(len(specs), workers)
    chunks = _chunks(specs, size)
    by_chunk: dict[int, list[RunResult]] = {}
    failures: list[BaseException] = []

    def on_chunk_done(idx: int, value, error: Optional[BaseException]) -> None:
        if error is not None:
            failures.append(error)
        else:
            by_chunk[idx] = value

    _execute_chunks(chunks, lambda chunk: (run_spec_chunk, chunk),
                    workers, executor_factory, on_chunk_done)
    if failures:
        raise failures[0]
    out: list[RunResult] = []
    for i in range(len(chunks)):
        out.extend(by_chunk[i])
    return out
