"""Sweep cells: the unit of work the parallel engine ships to workers.

A *cell* is one sealed, seeded simulation run: a :class:`WorkloadSpec`
plus a stable **cell key**.  Because every run is deterministic given
its spec (the repo-wide seed discipline), a cell can execute in any
process, in any order, and produce the same result — which is what
makes fan-out safe (see docs/architecture.md § Parallel experiments).

The process boundary is deliberately narrow:

* a worker *receives* only :class:`SweepCell` values — frozen
  dataclasses of primitives (the spec itself is primitives + an
  optional frozen :class:`~repro.faults.FaultPlan`);
* a worker *returns* only :class:`CellResult` values — primitives
  again (the row dict is ``summary_row()`` output, not live objects).

No :class:`~repro.sim.core.Environment`, cluster, lock, or numpy buffer
ever crosses the boundary; each worker builds its own world from the
spec.  The :func:`worker_entry` marker plus simlint's
``process-boundary`` rule keep it that way.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, is_dataclass
from typing import Callable, Optional, TypeVar

from repro.common.errors import ConfigError
from repro.workload.spec import WorkloadSpec

_F = TypeVar("_F", bound=Callable)

#: Types allowed to cross the process boundary (recursively, through
#: tuples/dicts/dataclasses).  Used by :func:`check_boundary_value` and
#: the tests/parallel boundary audit.
_PRIMITIVES = (bool, int, float, str, bytes, type(None))


def worker_entry(fn: _F) -> _F:
    """Mark ``fn`` as a process-pool entry point.

    The marker is a no-op at runtime; it exists so simlint's
    ``process-boundary`` rule (and human readers) can find every
    function whose arguments cross a process boundary and check that
    those arguments are annotated as cell specs / primitives only.
    """
    fn.__is_worker_entry__ = True
    return fn


def check_boundary_value(value, path: str = "cell") -> None:
    """Raise :class:`ConfigError` if ``value`` contains anything beyond
    primitives, tuples/lists/dicts of primitives, or frozen dataclasses
    thereof.  This is the runtime side of the process-boundary
    contract; the engine audits every cell before submitting it."""
    if isinstance(value, _PRIMITIVES):
        return
    if isinstance(value, (tuple, list)):
        for i, item in enumerate(value):
            check_boundary_value(item, f"{path}[{i}]")
        return
    if isinstance(value, dict):
        for k, v in value.items():
            check_boundary_value(k, f"{path} key {k!r}")
            check_boundary_value(v, f"{path}[{k!r}]")
        return
    if is_dataclass(value) and not isinstance(value, type):
        for f in fields(value):
            check_boundary_value(getattr(value, f.name), f"{path}.{f.name}")
        return
    raise ConfigError(
        f"{path}: {type(value).__name__!r} may not cross the process "
        f"boundary — cells must be primitive-keyed specs (no live "
        f"Environment/Cluster/lock objects)")


@dataclass(frozen=True)
class SweepCell:
    """One schedulable unit: ``key`` identifies it, ``spec`` seals it.

    Attributes:
        index: position in enumeration order.  The merge step orders
            results by key, whose first element is this index, so the
            merged output is byte-identical to a serial run.
        key: stable primitive tuple ``(index, (axis, value), ...)``.
        spec: the sealed run description (includes the seed).
    """

    index: int
    key: tuple
    spec: WorkloadSpec

    def __post_init__(self) -> None:
        check_boundary_value(self.key, "cell.key")
        check_boundary_value(self.spec, "cell.spec")


@dataclass(frozen=True)
class CellResult:
    """What one cell produced — primitives only.

    ``ok`` distinguishes a measured row from a recorded failure: a
    worker exception becomes a failed cell (``error`` carries the
    ``repr`` + traceback text), never a lost sweep.  When the failure
    produced a post-mortem (see :mod:`repro.obs.postmortem`), ``dump``
    carries it as canonical JSON — a string, so the boundary contract
    holds and the blob survives pickling unchanged.
    """

    key: tuple
    ok: bool
    row: Optional[dict] = field(default=None)
    error: Optional[str] = field(default=None)
    dump: Optional[str] = field(default=None)

    def __post_init__(self) -> None:
        check_boundary_value(self.key, "result.key")
        if self.row is not None:
            check_boundary_value(self.row, "result.row")


def cell_key(index: int, overrides: dict) -> tuple:
    """The stable cell key: enumeration index first (so key order *is*
    serial order), then the axis assignments that produced the cell."""
    return (index,) + tuple((axis, overrides[axis]) for axis in overrides)
