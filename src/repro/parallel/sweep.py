"""Parallel parameter sweeps with deterministic, byte-identical output.

This is the user-facing layer of the parallel engine: enumerate a
(seed × config) grid into sealed :class:`SweepCell` values, fan them out
with :func:`repro.parallel.engine.run_cells`, and serialize the merged
result.  The serialized JSON/CSV is **byte-identical at any worker
count** (gated by tests/parallel/test_determinism.py) because

1. cells are enumerated in a fixed order and keyed by that order,
2. each cell is a sealed seeded run — its row does not depend on which
   process computed it, and
3. the merge sorts by cell key before serializing, discarding
   completion order.

Wall-clock metadata (worker count, elapsed time) is intentionally kept
*out* of the serialized payload so identical sweeps produce identical
bytes regardless of hardware.
"""

from __future__ import annotations

import csv
import io
import itertools
import json
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.common.errors import ConfigError
from repro.parallel.cache import ResultCache
from repro.parallel.cells import CellResult, SweepCell, cell_key
from repro.parallel.engine import SweepShell, run_cells
from repro.workload.spec import WorkloadSpec


def enumerate_grid(base: WorkloadSpec, axes: "dict[str, Sequence]",
                   seeds: Optional[Sequence[int]] = None) -> list[SweepCell]:
    """Enumerate the cartesian (seed × config) grid into sealed cells.

    ``seeds``, when given, becomes the outermost axis (named ``"seed"``),
    so repetitions of the whole grid are contiguous.  Enumeration order
    — ``itertools.product`` over axes in the given order — defines the
    cell index, which is the first element of every cell key and hence
    the canonical (serial) output order.
    """
    if seeds is not None and "seed" in axes:
        raise ConfigError(
            "the 'seed' axis is reserved when seeds= is given; pass the "
            "seed values through seeds= (outermost axis) or as an "
            "explicit axis, not both")
    all_axes: dict[str, Sequence] = {}
    if seeds is not None:
        all_axes["seed"] = list(seeds)
    all_axes.update(axes)
    names = tuple(all_axes)
    cells: list[SweepCell] = []
    for index, combo in enumerate(itertools.product(*(all_axes[n] for n in names))):
        overrides = dict(zip(names, combo))
        cells.append(SweepCell(index=index, key=cell_key(index, overrides),
                               spec=base.with_(**overrides)))
    return cells


@dataclass
class ParallelSweepResult:
    """Merged outcome of a (possibly parallel) sweep.

    ``results`` is in cell-key order — i.e. exactly the order a serial
    sweep would have produced.  ``workers``, ``elapsed_s``, and the
    cache counters describe how the sweep *ran* and are excluded from
    serialization — a cached row and a computed row are the same row.
    """

    axes: tuple[str, ...]
    results: list[CellResult] = field(default_factory=list)
    metric: str = "throughput"
    workers: int = 1
    elapsed_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def rows(self) -> list[dict]:
        """Rows of successful cells, in cell-key order."""
        return [r.row for r in self.results if r.ok]

    @property
    def failures(self) -> list[CellResult]:
        return [r for r in self.results if not r.ok]

    def _axis_values(self, result: CellResult) -> dict:
        return dict(result.key[1:])

    # -- serialization (deterministic; byte-identity gated by tests) -----
    def to_json_bytes(self) -> bytes:
        """Canonical JSON: sorted keys, fixed separators, ``\\n``-ended.
        Contains only run-content (axes, metric, per-cell rows/errors),
        never how the sweep was executed."""
        payload = {
            "axes": list(self.axes),
            "metric": self.metric,
            "cells": [
                {
                    "key": list(r.key[1:]),
                    "index": r.key[0],
                    "ok": r.ok,
                    "row": r.row,
                    "error": r.error,
                }
                for r in self.results
            ],
        }
        return (json.dumps(payload, sort_keys=True, indent=2,
                           ensure_ascii=True) + "\n").encode("ascii")

    def _columns(self) -> list[str]:
        row_keys: set[str] = set()
        for r in self.results:
            if r.row:
                row_keys.update(r.row)
        extra = sorted(row_keys - set(self.axes))
        return ["index", *self.axes, *extra, "ok", "error"]

    def to_csv_bytes(self) -> bytes:
        """Canonical CSV: one line per cell in key order, fixed column
        order (index, axes, sorted row fields, ok, error), ``\\n`` line
        endings on every platform."""
        columns = self._columns()
        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=columns, lineterminator="\n")
        writer.writeheader()
        for r in self.results:
            line = {"index": r.key[0], "ok": r.ok, "error": r.error or ""}
            line.update(self._axis_values(r))
            if r.row:
                line.update({k: v for k, v in r.row.items() if k in columns})
            writer.writerow(line)
        return buf.getvalue().encode("utf-8")

    def write(self, json_path: Optional[str] = None,
              csv_path: Optional[str] = None) -> None:
        if json_path:
            with open(json_path, "wb") as fh:
                fh.write(self.to_json_bytes())
        if csv_path:
            with open(csv_path, "wb") as fh:
                fh.write(self.to_csv_bytes())


def run_sweep_parallel(base: WorkloadSpec, axes: "dict[str, Sequence]", *,
                       seeds: Optional[Sequence[int]] = None,
                       workers: int = 0, metric: str = "throughput",
                       chunk_size: Optional[int] = None,
                       on_result: Optional[Callable[[CellResult], None]] = None,
                       executor_factory=None,
                       cache: Optional[ResultCache] = None,
                       shell: Optional[SweepShell] = None) -> ParallelSweepResult:
    """Run a (seed × config) grid sweep, sharded over ``workers``
    processes, and return the deterministically merged result.

    ``workers <= 1`` runs inline in this process — the serial reference
    path; any ``workers`` value yields byte-identical
    :meth:`ParallelSweepResult.to_json_bytes` /
    :meth:`~ParallelSweepResult.to_csv_bytes` output.  A ``cache``
    short-circuits cells whose content address is already in the store
    (and write-backs fresh ones), which is also the resume path: re-run
    an interrupted sweep with the same cache and only missing cells
    recompute.  The serialized bytes are identical with or without it.
    """
    cells = enumerate_grid(base, axes, seeds)
    hits0 = cache.stats.hits if cache is not None else 0
    misses0 = cache.stats.misses if cache is not None else 0
    start = time.perf_counter()  # simlint: ignore[nondet-source]
    results = run_cells(cells, workers=workers, metric=metric,
                        chunk_size=chunk_size, on_result=on_result,
                        executor_factory=executor_factory,
                        cache=cache, shell=shell)
    elapsed = time.perf_counter() - start  # simlint: ignore[nondet-source]
    axis_names = cells[0].key[1:] if cells else ()
    return ParallelSweepResult(
        axes=tuple(name for name, _ in axis_names),
        results=results, metric=metric,
        workers=max(1, workers), elapsed_s=elapsed,
        cache_hits=(cache.stats.hits - hits0) if cache is not None else 0,
        cache_misses=(cache.stats.misses - misses0) if cache is not None else 0)
