"""Process-pool experiment engine: shard sealed seeded cells across
workers, merge deterministically (see docs/architecture.md § Parallel
experiments).

Quick start::

    from repro.parallel import run_sweep_parallel
    from repro.workload import WorkloadSpec

    res = run_sweep_parallel(
        WorkloadSpec(n_nodes=5, threads_per_node=4, n_locks=100),
        axes={"lock_kind": ["alock", "mcs", "spinlock"],
              "locality_pct": [85.0, 95.0]},
        seeds=range(3), workers=4)
    res.write(json_path="sweep.json", csv_path="sweep.csv")

The output is byte-identical at any ``workers`` value — and, with a
:class:`ResultCache`, identical again when most cells come out of the
content-addressed store instead of a worker::

    from repro.parallel import ResultCache

    cache = ResultCache(".alock-cache")
    res = run_sweep_parallel(..., workers=4, cache=cache)   # computes
    res = run_sweep_parallel(..., workers=4, cache=cache)   # all hits
"""

from repro.parallel.cache import (CacheStats, ResultCache,
                                  SourceFingerprinter, canonical_spec)
from repro.parallel.cells import (CellResult, SweepCell, cell_key,
                                  check_boundary_value, worker_entry)
from repro.parallel.engine import (METRICS, InProcessShell, ProcessPoolShell,
                                   SweepShell, default_chunk_size,
                                   pmap_workloads, resolve_shell, run_cells)
from repro.parallel.store import BlobStore
from repro.parallel.sweep import (ParallelSweepResult, enumerate_grid,
                                  run_sweep_parallel)

__all__ = [
    "CellResult",
    "SweepCell",
    "cell_key",
    "check_boundary_value",
    "worker_entry",
    "METRICS",
    "default_chunk_size",
    "pmap_workloads",
    "run_cells",
    "ParallelSweepResult",
    "enumerate_grid",
    "run_sweep_parallel",
    "CacheStats",
    "ResultCache",
    "SourceFingerprinter",
    "canonical_spec",
    "BlobStore",
    "SweepShell",
    "InProcessShell",
    "ProcessPoolShell",
    "resolve_shell",
]
