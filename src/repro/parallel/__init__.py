"""Process-pool experiment engine: shard sealed seeded cells across
workers, merge deterministically (see docs/architecture.md § Parallel
experiments).

Quick start::

    from repro.parallel import run_sweep_parallel
    from repro.workload import WorkloadSpec

    res = run_sweep_parallel(
        WorkloadSpec(n_nodes=5, threads_per_node=4, n_locks=100),
        axes={"lock_kind": ["alock", "mcs", "spinlock"],
              "locality_pct": [85.0, 95.0]},
        seeds=range(3), workers=4)
    res.write(json_path="sweep.json", csv_path="sweep.csv")

The output is byte-identical at any ``workers`` value.
"""

from repro.parallel.cells import (CellResult, SweepCell, cell_key,
                                  check_boundary_value, worker_entry)
from repro.parallel.engine import (METRICS, default_chunk_size, pmap_workloads,
                                   run_cells)
from repro.parallel.sweep import (ParallelSweepResult, enumerate_grid,
                                  run_sweep_parallel)

__all__ = [
    "CellResult",
    "SweepCell",
    "cell_key",
    "check_boundary_value",
    "worker_entry",
    "METRICS",
    "default_chunk_size",
    "pmap_workloads",
    "run_cells",
    "ParallelSweepResult",
    "enumerate_grid",
    "run_sweep_parallel",
]
