"""Content-addressed memoization of sweep cells.

The cache exploits the repo's central invariant from the other side:
because ``run_workload(spec)`` is a *pure function* of the sealed,
seeded spec, a cell's result is fully determined by

1. the spec's canonical form (which includes the seed),
2. the metric reduced into the row, and
3. the **source code** that executes the cell.

Digesting those three into a content address makes the common path of
figure regeneration — the unchanged cell — nearly free, the same
asymmetric bet the ALock paper makes for lock acquisition: optimize the
overwhelmingly frequent case (local/unchanged) and pay full price only
on the rare one (remote/edited).

The code fingerprint is deliberately *scoped per lock kind*: it hashes
every source file of the shared execution core (``repro.sim``,
``repro.workload``, ``repro.faults``) plus the transitive
``repro.locks``-internal import closure of the module implementing the
cell's ``lock_kind``.  Editing ``baselines/spinlock.py`` therefore
invalidates spinlock cells and nothing else, while editing
``sim/core.py`` invalidates everything — exactly the staleness rule a
human would apply by hand.

Nothing in this module crosses a process boundary: lookups happen in the
parent before chunks are submitted, write-back happens in the parent as
results arrive, and loaded rows are re-audited with
:func:`~repro.parallel.cells.check_boundary_value` before they are
allowed to stand in for a worker's output.  Disk (de)serialization is
delegated to :class:`repro.parallel.store.BlobStore`, the one module
allowed to touch pickle/JSON blobs (simlint ``process-boundary``).
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import importlib.util
import json
import os
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ConfigError
from repro.parallel.cells import CellResult, SweepCell, check_boundary_value
from repro.parallel.store import BlobStore
from repro.workload.spec import WorkloadSpec

#: Bump to invalidate every existing store entry when the digest scheme
#: or entry layout changes incompatibly.
CACHE_FORMAT = 1

#: Packages hashed into every cell's fingerprint: the shared execution
#: core every run flows through, regardless of lock kind.
SHARED_FINGERPRINT_PACKAGES: tuple[str, ...] = (
    "repro.sim",
    "repro.workload",
    "repro.faults",
)

#: The package whose modules are fingerprinted *per lock kind*.
LOCKS_PACKAGE = "repro.locks"

#: ``repro.locks`` modules every lock depends on (registry, layouts),
#: hashed into the shared part rather than any one kind's closure.
LOCKS_SHARED_MODULES: tuple[str, ...] = (
    "repro.locks",
    "repro.locks.base",
    "repro.locks.layout",
)


def canonical_spec(spec: WorkloadSpec) -> dict:
    """The spec as a canonical primitives tree (dataclasses flattened,
    tuples listed).  This — not pickle — is what gets digested, so the
    address is stable across Python versions and pickle protocols."""
    return dataclasses.asdict(spec)


def _canonical_json(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=_reject_nonprimitive)


def _reject_nonprimitive(value: object) -> object:
    raise ConfigError(
        f"cannot canonicalize {type(value).__name__!r} into a cache "
        f"digest; specs must stay primitives + frozen dataclasses")


def _sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


# --------------------------------------------------------------------------
# code fingerprints
# --------------------------------------------------------------------------

def _module_file(module: str) -> Optional[str]:
    """Source path for ``module`` (package → its ``__init__.py``)."""
    try:
        spec = importlib.util.find_spec(module)
    except (ImportError, ValueError):
        return None
    if spec is None or spec.origin is None or not spec.origin.endswith(".py"):
        return None
    return spec.origin


def _is_package(module: str) -> bool:
    try:
        spec = importlib.util.find_spec(module)
    except (ImportError, ValueError):
        return False
    return spec is not None and spec.submodule_search_locations is not None


def _package_source_files(package: str) -> list[tuple[str, str]]:
    """``(dotted module name, path)`` for every ``.py`` under
    ``package``, in sorted order (``__init__.py`` → the package name)."""
    init = _module_file(package)
    if init is None:
        return []
    root = os.path.dirname(init)
    out: list[tuple[str, str]] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        rel_dir = os.path.relpath(dirpath, root)
        prefix = package if rel_dir == "." else \
            f"{package}.{rel_dir.replace(os.sep, '.')}"
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            module = prefix if name == "__init__.py" else \
                f"{prefix}.{name[:-3]}"
            out.append((module, os.path.join(dirpath, name)))
    return out


class SourceFingerprinter:
    """Hashes the source files a cell's execution depends on.

    ``overlay`` maps module names to replacement source bytes; tests use
    it to model "this file was edited" without touching the tree.  The
    per-kind closure walk is pure AST analysis — it never imports or
    executes anything beyond what :data:`repro.locks.LOCK_TYPES` already
    loaded to register the factories.
    """

    def __init__(self, overlay: Optional[dict] = None) -> None:
        self.overlay = dict(overlay or {})
        self._per_kind: dict[str, str] = {}
        self._shared: Optional[str] = None

    # -- file hashing -----------------------------------------------------
    def _hash_source(self, module_name: str, path: str) -> str:
        data = self.overlay.get(module_name)
        if data is None:
            try:
                with open(path, "rb") as fh:
                    data = fh.read()
            except OSError:
                data = b"<unreadable>"
        if isinstance(data, str):
            data = data.encode("utf-8")
        return _sha256_hex(data)

    # -- import closure over repro.locks ----------------------------------
    def _locks_imports(self, module: str, path: str) -> list[str]:
        """``repro.locks``-internal modules ``module`` imports, resolved
        (including relative imports), in first-seen order."""
        try:
            source = self.overlay.get(module)
            if source is None:
                with open(path, "rb") as fh:
                    source = fh.read()
            tree = ast.parse(source)
        except (OSError, SyntaxError, ValueError):
            return []
        package = module if _is_package(module) else module.rpartition(".")[0]
        found: list[str] = []

        def _add(name: Optional[str]) -> None:
            if name and name.startswith(LOCKS_PACKAGE) and name not in found:
                found.append(name)

        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    _add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    try:
                        base = importlib.util.resolve_name(
                            "." * node.level + base, package)
                    except (ImportError, ValueError):
                        continue
                _add(base)
                for alias in node.names:
                    # ``from repro.locks.alock import alock`` pulls a
                    # submodule; include it when it resolves to a file.
                    sub = f"{base}.{alias.name}"
                    if sub.startswith(LOCKS_PACKAGE) and \
                            _module_file(sub) is not None:
                        _add(sub)
        return found

    def _lock_closure(self, root_module: str) -> list[tuple[str, str]]:
        """Transitive ``repro.locks``-internal closure of ``root_module``
        as sorted ``(module, path)`` pairs."""
        seen: dict[str, str] = {}
        stack = [root_module]
        while stack:
            module = stack.pop()
            if module in seen:
                continue
            path = _module_file(module)
            if path is None:
                continue
            seen[module] = path
            for dep in self._locks_imports(module, path):
                if dep not in seen:
                    stack.append(dep)
        for shared in LOCKS_SHARED_MODULES:
            # Shared infra is hashed for every kind anyway; keep it out
            # of the per-kind closure so its membership is uniform.
            seen.pop(shared, None)
        return sorted(seen.items())

    def _resolve_lock_module(self, lock_kind: str) -> Optional[str]:
        from repro.locks.base import LOCK_TYPES

        factory = LOCK_TYPES.get(lock_kind)
        if factory is None:
            return None
        return getattr(factory, "__module__", None)

    # -- public API -------------------------------------------------------
    def shared_fingerprint(self) -> str:
        """Digest of the execution core every cell runs on."""
        if self._shared is None:
            parts: list[tuple[str, str]] = []
            for package in SHARED_FINGERPRINT_PACKAGES:
                for name, path in _package_source_files(package):
                    parts.append((name, self._hash_source(name, path)))
            for module in LOCKS_SHARED_MODULES:
                path = _module_file(module)
                if path is not None:
                    parts.append((module, self._hash_source(module, path)))
            self._shared = _sha256_hex(
                _canonical_json(sorted(parts)).encode("utf-8"))
        return self._shared

    def fingerprint(self, lock_kind: str) -> str:
        """Digest of everything ``lock_kind`` cells execute: the shared
        core plus the kind's own module closure.  An unregistered kind
        (a cell that will fail in the worker) falls back to hashing the
        whole locks package — safe, merely over-broad."""
        cached = self._per_kind.get(lock_kind)
        if cached is not None:
            return cached
        module = self._resolve_lock_module(lock_kind)
        if module is not None:
            closure = self._lock_closure(module)
        else:
            closure = [(name, path)
                       for name, path in _package_source_files(LOCKS_PACKAGE)]
        parts = [(name, self._hash_source(name, path))
                 for name, path in closure]
        digest = _sha256_hex(_canonical_json(
            {"shared": self.shared_fingerprint(),
             "lock": sorted(parts)}).encode("utf-8"))
        self._per_kind[lock_kind] = digest
        return digest


# --------------------------------------------------------------------------
# the result cache
# --------------------------------------------------------------------------

@dataclass
class CacheStats:
    """Counters for one cache instance's lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    invalid: int = 0  # present but corrupt/failed-audit entries (= misses)

    def snapshot(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "invalid": self.invalid}


@dataclass
class ResultCache:
    """Content-addressed cache of sweep-cell rows and full RunResults.

    Only *successful* results are stored: a failed cell recomputes on
    the next sweep, which is what makes an interrupted or partially
    failing sweep resumable by simply re-running it.
    """

    cache_dir: str
    store: BlobStore = field(default=None)  # type: ignore[assignment]
    fingerprinter: SourceFingerprinter = field(default=None)  # type: ignore[assignment]
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.store is None:
            self.store = BlobStore(self.cache_dir)
        if self.fingerprinter is None:
            self.fingerprinter = SourceFingerprinter()

    # -- digests ----------------------------------------------------------
    def cell_digest(self, spec: WorkloadSpec, metric: str) -> str:
        payload = {
            "format": CACHE_FORMAT,
            "kind": "cell-row",
            "metric": metric,
            "spec": canonical_spec(spec),
            "code": self.fingerprinter.fingerprint(spec.lock_kind),
        }
        return _sha256_hex(_canonical_json(payload).encode("utf-8"))

    def run_digest(self, spec: WorkloadSpec) -> str:
        payload = {
            "format": CACHE_FORMAT,
            "kind": "run-result",
            "spec": canonical_spec(spec),
            "code": self.fingerprinter.fingerprint(spec.lock_kind),
        }
        return _sha256_hex(_canonical_json(payload).encode("utf-8"))

    # -- cell rows (run_cells / sweep path) -------------------------------
    def lookup_cell(self, cell: SweepCell, metric: str) -> Optional[CellResult]:
        """A hit returns a :class:`CellResult` indistinguishable from a
        fresh worker's; anything less than a fully valid entry is a
        miss."""
        digest = self.cell_digest(cell.spec, metric)
        payload = self.store.get_json(digest)
        if payload is None:
            self.stats.misses += 1
            return None
        row = payload.get("row")
        if payload.get("format") != CACHE_FORMAT or not isinstance(row, dict):
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        try:
            check_boundary_value(row, "cache row")
            result = CellResult(key=cell.key, ok=True, row=row)
        except ConfigError:
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def store_cell(self, cell: SweepCell, metric: str,
                   result: CellResult) -> None:
        if not result.ok or result.row is None:
            return  # failures are retried, never memoized
        self.store.put_json(self.cell_digest(cell.spec, metric),
                            {"format": CACHE_FORMAT, "row": result.row})
        self.stats.writes += 1

    # -- full RunResults (pmap_workloads path) ----------------------------
    def lookup_run(self, spec: WorkloadSpec):
        """Cached :class:`~repro.workload.metrics.RunResult` for ``spec``,
        or ``None``.  The loaded value must carry a spec equal to the
        requested one — a digest collision or stale blob can never leak
        a foreign run into an experiment."""
        from repro.workload.metrics import RunResult

        value = self.store.get_pickle(self.run_digest(spec))
        if not isinstance(value, RunResult) or value.spec != spec:
            self.stats.invalid += int(value is not None)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def store_run(self, spec: WorkloadSpec, result) -> None:
        self.store.put_pickle(self.run_digest(spec), result)
        self.stats.writes += 1
