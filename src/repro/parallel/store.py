"""Content-addressed blob store backing the sweep cache.

This module is the repo's **serialization chokepoint**: the only place
in the sensitive packages allowed to (de)serialize result blobs to disk
(enforced by simlint's ``process-boundary`` rule, the same way pool
construction is confined to :mod:`repro.parallel.engine`).  Confining it
here keeps two invariants checkable:

* everything written passes the same primitives-only audit as the
  process boundary (the cache layer runs ``check_boundary_value`` on
  rows before they are stored and after they are loaded), and
* **corruption is a miss, never a crash** — a truncated, garbled, or
  hand-edited blob makes its cell recompute; it cannot take a sweep
  down or, worse, silently feed it a wrong row.

Layout is a git-style fan-out under the store root::

    <root>/<digest[:2]>/<digest>.json   # cell rows (canonical JSON)
    <root>/<digest[:2]>/<digest>.pkl    # full RunResults (pickle)

Digests are computed by :mod:`repro.parallel.cache`; the store never
interprets them.  Writes are atomic (temp file + ``os.replace``) so an
interrupted sweep leaves either a whole entry or no entry — which is
what makes ``sweep --resume`` sound.
"""

from __future__ import annotations

import json
import os
import pickle
from typing import Optional

_JSON_EXT = ".json"
_PICKLE_EXT = ".pkl"


class BlobStore:
    """A directory of content-addressed blobs with atomic writes.

    The store is deliberately dumb: ``get_*`` returns ``None`` for
    anything it cannot fully load and validate as its format (missing,
    truncated, corrupt, wrong type), and ``put_*`` unconditionally
    (re)writes.  All keying/invalidations live in the digest.
    """

    def __init__(self, root: str) -> None:
        self.root = str(root)

    def _path(self, digest: str, ext: str) -> str:
        if not digest or not all(c in "0123456789abcdef" for c in digest):
            raise ValueError(f"malformed digest {digest!r}")
        return os.path.join(self.root, digest[:2], digest + ext)

    def _write_atomic(self, path: str, data: bytes) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):  # failed mid-write: leave no debris
                os.unlink(tmp)

    # -- JSON blobs (cell rows) ------------------------------------------
    def get_json(self, digest: str) -> Optional[dict]:
        """Load a JSON blob; ``None`` if absent or not a JSON object."""
        try:
            with open(self._path(digest, _JSON_EXT), "rb") as fh:
                payload = json.loads(fh.read().decode("utf-8"))
        except (OSError, ValueError, UnicodeDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def put_json(self, digest: str, payload: dict) -> None:
        data = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        self._write_atomic(self._path(digest, _JSON_EXT), data)

    # -- pickle blobs (full RunResults, pmap path) -----------------------
    def get_pickle(self, digest: str) -> Optional[object]:
        """Load a pickled blob; ``None`` if absent or unreadable.

        The blob is trusted no further than the cache layer's
        post-load audit — callers re-validate shape and boundary
        safety before using anything returned here.
        """
        try:
            with open(self._path(digest, _PICKLE_EXT), "rb") as fh:
                return pickle.loads(fh.read())
        except Exception:
            # Any unpickling failure (truncation, version skew, garbage)
            # is a miss by contract.
            return None

    def put_pickle(self, digest: str, value: object) -> None:
        self._write_atomic(self._path(digest, _PICKLE_EXT),
                           pickle.dumps(value, protocol=4))

    # -- introspection ----------------------------------------------------
    def has_json(self, digest: str) -> bool:
        return os.path.exists(self._path(digest, _JSON_EXT))

    def json_path(self, digest: str) -> str:
        """Where a JSON entry lives (for tests and debugging)."""
        return self._path(digest, _JSON_EXT)

    def entry_count(self) -> int:
        """Number of blobs currently stored (any format)."""
        n = 0
        if not os.path.isdir(self.root):
            return 0
        for fan in sorted(os.listdir(self.root)):
            sub = os.path.join(self.root, fan)
            if os.path.isdir(sub):
                n += sum(1 for name in os.listdir(sub)
                         if name.endswith((_JSON_EXT, _PICKLE_EXT)))
        return n
