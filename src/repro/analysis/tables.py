"""Aligned text tables and ASCII series renderers."""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_table(rows: Iterable[dict], columns: Sequence[str] | None = None,
                 title: str = "") -> str:
    """Render dict rows as an aligned, pipe-separated text table.

    Column order: ``columns`` if given, else the keys of the first row.
    """
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[_fmt(row.get(c)) for c in cols] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in cells)) for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in cells:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(x: Sequence[float], ys: dict[str, Sequence[float]],
                  *, x_label: str = "x", width: int = 40,
                  title: str = "") -> str:
    """Render several named series over a shared x-axis as an ASCII chart:
    one bar row per (x, series) pair, scaled to the global maximum.  Not a
    substitute for the paper's plots, but enough to eyeball shapes (who
    wins, where curves cross) in a terminal or markdown block."""
    peak = max((max(v) for v in ys.values() if len(v)), default=0.0)
    lines = []
    if title:
        lines.append(title)
    name_w = max((len(n) for n in ys), default=4)
    for i, xv in enumerate(x):
        lines.append(f"{x_label}={_fmt(xv)}")
        for name, series in ys.items():
            v = series[i]
            bar = "#" * (round(width * v / peak) if peak > 0 else 0)
            lines.append(f"  {name.ljust(name_w)} {_fmt(v).rjust(10)} |{bar}")
    return "\n".join(lines)
