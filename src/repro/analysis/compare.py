"""Comparison helpers used by shape assertions in benchmarks and by
EXPERIMENTS.md generation."""

from __future__ import annotations

from typing import Sequence


def ratio(a: float, b: float) -> float:
    """``a / b`` guarded against zero denominators (returns inf)."""
    if b == 0:
        return float("inf") if a > 0 else 0.0
    return a / b


def relative_speedup(value: float, baseline: float) -> float:
    """Percent improvement of ``value`` over ``baseline`` (Fig. 4's
    y-axis): +23 means 23% faster."""
    if baseline == 0:
        return float("inf") if value > 0 else 0.0
    return 100.0 * (value - baseline) / baseline


def crossover_point(x: Sequence[float], a: Sequence[float],
                    b: Sequence[float]) -> float | None:
    """First x where series ``a`` overtakes ``b`` (a >= b after being
    behind), or None if their order never flips.  Used to locate the
    contention/locality crossovers the paper discusses."""
    if len(x) != len(a) or len(x) != len(b):
        raise ValueError("series lengths differ")
    behind = None
    for xi, ai, bi in zip(x, a, b):
        now_behind = ai < bi
        if behind is not None and behind and not now_behind:
            return xi
        behind = now_behind
    return None
