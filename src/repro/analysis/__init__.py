"""Result analysis and terminal rendering.

The experiment harness reports results the way the paper does — as
throughput series per lock type (Fig. 5), latency CDFs (Fig. 6), and
relative-speedup bars (Fig. 4) — rendered as aligned text tables and
ASCII series suitable for EXPERIMENTS.md and CI logs.
"""

from repro.analysis.tables import format_table, format_series
from repro.analysis.compare import ratio, relative_speedup, crossover_point

__all__ = [
    "format_table",
    "format_series",
    "ratio",
    "relative_speedup",
    "crossover_point",
]
