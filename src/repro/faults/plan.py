"""Declarative fault schedules.

A :class:`FaultPlan` describes *what* can go wrong in a run — verb loss,
latency spikes, node crash windows, lock-holder stalls — plus the
requester-side retry policy that masks the transient failures.  The plan
is pure configuration: immutable, hashable (so it can ride on the frozen
:class:`~repro.workload.spec.WorkloadSpec`), and free of randomness.
All stochastic draws happen in the :class:`~repro.faults.FaultInjector`,
which pulls from the cluster's seeded RNG registry, so a fault-enabled
run is exactly as reproducible as a fault-free one.

The failure model mirrors an RC transport: a *lost* verb is dropped on
the request path, before the target executes it, and the requester
retransmits after a timeout.  Ops therefore execute at most once at the
target — retries can never double-apply an rCAS — which is what the PSN
dedup of a real reliable connection guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class CrashWindow:
    """Node ``node`` is unreachable during ``[start_ns, end_ns)``.

    Every verb targeting the node inside the window is dropped (the
    requester sees timeouts and retries); the node answers again once the
    window closes — a crash/restart cycle as seen from its peers.
    """

    node: int
    start_ns: float
    end_ns: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ConfigError("CrashWindow.node must be >= 0")
        if self.start_ns < 0 or self.end_ns <= self.start_ns:
            raise ConfigError(
                f"CrashWindow needs 0 <= start_ns < end_ns, got "
                f"[{self.start_ns}, {self.end_ns})")

    def covers(self, now: float) -> bool:
        return self.start_ns <= now < self.end_ns


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, deterministic fault schedule for one run.

    Attributes:
        verb_loss_rate: probability that a verb's request packet is lost
            in flight (per transmission attempt, including retries).
        spike_rate: probability that a verb is delayed by ``spike_ns``
            before issue (a transient fabric/NIC latency spike).
        spike_ns: extra latency added when a spike fires.
        crash_windows: :class:`CrashWindow` intervals during which a
            node drops all inbound verbs.
        holder_stall_rate: probability that a lock holder stalls inside
            its critical section (GC pause, scheduler preemption, ...).
        holder_stall_ns: duration of one holder stall.
        lease_ns: lock-table lease length; waiters that observe the same
            holder across a full lease period report it as stalled and
            flag the lock degraded (0 disables monitoring).
        retry_timeout_ns: requester timeout for the first transmission;
            a verb unacknowledged for this long is retransmitted.
        retry_backoff: multiplier applied to the timeout after each
            retransmission (exponential backoff).
        retry_limit: transmission attempts before the verb surfaces a
            :class:`~repro.common.errors.VerbTimeout` to its caller.
    """

    verb_loss_rate: float = 0.0
    spike_rate: float = 0.0
    spike_ns: float = 0.0
    crash_windows: tuple[CrashWindow, ...] = ()
    holder_stall_rate: float = 0.0
    holder_stall_ns: float = 0.0
    lease_ns: float = 0.0
    retry_timeout_ns: float = 25_000.0
    retry_backoff: float = 2.0
    retry_limit: int = 8

    def __post_init__(self) -> None:
        for name in ("verb_loss_rate", "spike_rate", "holder_stall_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"FaultPlan.{name} must be in [0, 1], got {rate}")
        for name in ("spike_ns", "holder_stall_ns", "lease_ns"):
            if getattr(self, name) < 0:
                raise ConfigError(f"FaultPlan.{name} must be >= 0")
        if self.retry_timeout_ns <= 0:
            raise ConfigError("FaultPlan.retry_timeout_ns must be > 0")
        if self.retry_backoff < 1.0:
            raise ConfigError("FaultPlan.retry_backoff must be >= 1")
        if self.retry_limit < 1:
            raise ConfigError("FaultPlan.retry_limit must be >= 1")
        if self.spike_rate > 0 and self.spike_ns == 0:
            raise ConfigError("spike_rate > 0 needs spike_ns > 0")
        if self.holder_stall_rate > 0 and self.holder_stall_ns == 0:
            raise ConfigError("holder_stall_rate > 0 needs holder_stall_ns > 0")
        if not isinstance(self.crash_windows, tuple):
            object.__setattr__(self, "crash_windows", tuple(self.crash_windows))

    @property
    def active(self) -> bool:
        """True if any fault source is enabled.  An inactive plan makes
        the verb path byte-identical to the fault-free code path."""
        return bool(self.verb_loss_rate or self.spike_rate
                    or self.crash_windows or self.holder_stall_rate
                    or self.lease_ns)

    def crashed(self, node: int, now: float) -> bool:
        """Is ``node`` inside one of its crash windows at ``now``?"""
        for win in self.crash_windows:
            if win.node == node and win.covers(now):
                return True
        return False
