"""Runtime side of fault injection: seeded draws + bookkeeping.

One :class:`FaultInjector` serves a whole cluster.  Verb-level decisions
draw from a single ``("verb",)`` stream — the simulation's total event
order is deterministic, so the draw sequence (and therefore every
injected fault) replays exactly for a fixed seed.  Holder stalls draw
from per-thread streams so a thread's stall schedule does not depend on
how its ops interleave with other threads'.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import RngStreams
from repro.faults.plan import FaultPlan


@dataclass(frozen=True)
class VerbFault:
    """The injector's verdict for one transmission attempt."""

    dropped: bool = False
    delay_ns: float = 0.0
    #: why it was dropped: "" (not dropped), "loss", or "crash".
    cause: str = ""


#: Verdict singletons for the common no-fault case (avoids allocation on
#: the hot path when only a subset of fault sources is enabled).
_CLEAN = VerbFault()


class FaultInjector:
    """Draws fault decisions for a cluster and counts what it injected.

    Args:
        plan: the fault schedule.
        rngs: a seeded stream family, conventionally
            ``cluster.rng.fork("faults")`` so fault draws never perturb
            workload or jitter streams.
    """

    def __init__(self, plan: FaultPlan, rngs: RngStreams):
        self.plan = plan
        self._rngs = rngs
        self._verb_rng = rngs.get("verb")
        #: flight-recorder handle, attached by the Cluster; injected
        #: faults become ring events so post-mortems show what the fault
        #: layer did in the window before a failure.
        self.flight = None
        # -- counters ----------------------------------------------------
        self.injected_losses = 0
        self.injected_spikes = 0
        self.crash_drops = 0
        self.retries = 0
        self.verb_timeouts = 0
        self.holder_stalls = 0
        self.retries_by_verb: dict[str, int] = {}

    # -- verb path ---------------------------------------------------------
    def decide_verb(self, verb: str, src_node: int, dst_node: int,
                    now: float) -> VerbFault:
        """Fault verdict for one transmission attempt of ``verb``."""
        plan = self.plan
        fl = self.flight
        if plan.crash_windows and plan.crashed(dst_node, now):
            self.crash_drops += 1
            if fl is not None:
                fl.note(f"n{src_node}", "fault.drop", verb, dst_node, "crash")
            return VerbFault(dropped=True, cause="crash")
        delay = 0.0
        if plan.spike_rate > 0 and self._verb_rng.random() < plan.spike_rate:
            self.injected_spikes += 1
            delay = plan.spike_ns
            if fl is not None:
                fl.note(f"n{src_node}", "fault.delay", verb, dst_node, delay)
        if plan.verb_loss_rate > 0 and self._verb_rng.random() < plan.verb_loss_rate:
            self.injected_losses += 1
            if fl is not None:
                fl.note(f"n{src_node}", "fault.drop", verb, dst_node, "loss")
            return VerbFault(dropped=True, delay_ns=delay, cause="loss")
        if delay == 0.0:
            return _CLEAN
        return VerbFault(delay_ns=delay)

    def note_retry(self, verb: str) -> None:
        self.retries += 1
        self.retries_by_verb[verb] = self.retries_by_verb.get(verb, 0) + 1

    def note_verb_timeout(self, verb: str) -> None:
        self.verb_timeouts += 1

    # -- application path --------------------------------------------------
    def holder_stall(self, node: int, thread: int) -> float:
        """Stall duration (ns) for the critical section the given thread
        just entered; 0 for no stall.  Per-thread stream."""
        plan = self.plan
        if plan.holder_stall_rate <= 0:
            return 0.0
        rng = self._rngs.get("stall", node, thread)
        if rng.random() < plan.holder_stall_rate:
            self.holder_stalls += 1
            fl = self.flight
            if fl is not None:
                fl.note(f"t{thread}@n{node}", "fault.stall", plan.holder_stall_ns)
            return plan.holder_stall_ns
        return 0.0

    # -- reporting ---------------------------------------------------------
    def stats(self) -> dict:
        """Flat counter dict merged into ``RunResult.fault_stats``."""
        return {
            "injected_losses": self.injected_losses,
            "injected_spikes": self.injected_spikes,
            "crash_drops": self.crash_drops,
            "retries": self.retries,
            "retries_by_verb": dict(self.retries_by_verb),
            "verb_timeouts": self.verb_timeouts,
            "holder_stalls": self.holder_stalls,
        }
