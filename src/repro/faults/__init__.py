"""Fault injection & recovery.

Real RDMA lock services must tolerate lost packets, latency spikes,
crashed peers, and stalled lock holders; the failure-free simulator
would otherwise overstate every design's robustness.  This package adds
a deterministic fault layer:

* :class:`FaultPlan` — immutable, seedable description of *what* goes
  wrong (loss rate, spikes, crash windows, holder stalls) and the
  requester's retry policy.
* :class:`FaultInjector` — the runtime that draws each decision from
  the cluster's seeded RNG registry and counts what it injected.
* :class:`CrashWindow` — one node-unreachability interval.

The verb path (:mod:`repro.rdma.network`) consumes the injector:
lost transmissions hang in flight, a requester-side watchdog interrupts
them (:meth:`repro.sim.core.Process.interrupt`), and the verb is
retransmitted with exponential backoff until it lands or the retry
budget surfaces a :class:`~repro.common.errors.VerbTimeout`.  The lock
table (:mod:`repro.locktable`) consumes the plan's lease to detect
stalled holders and report degraded-mode metrics.
"""

from repro.faults.injector import FaultInjector, VerbFault
from repro.faults.plan import CrashWindow, FaultPlan

__all__ = ["FaultPlan", "FaultInjector", "CrashWindow", "VerbFault"]
