"""RPC-based lock service (the §1 alternative ALock avoids).

One server process per node owns every lock homed there; clients send
``("lock", lock_id)`` / ``("unlock", lock_id)`` requests over the
two-sided transport.  The server grants in FIFO order and defers the
reply of a queued waiter until the holder's unlock arrives — the client
simply blocks on its RPC.

Correctness is trivial (one CPU serializes everything — there is no
local/remote atomicity question at all), which is precisely why RPCs
remain common in RDMA systems (§1).  The measured price: two message
traversals per operation, and the server CPU as a shared bottleneck —
even *local* clients queue behind it.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.common.errors import ProtocolError
from repro.locks.base import (
    DistributedLock,
    observed_acquire,
    observed_release,
    register_lock_type,
)
from repro.rdma.rpc import RpcRequest, RpcTransport

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster, ThreadContext


class RpcLockService:
    """The per-cluster lock service: one transport + one server process
    per node.  Created lazily and cached on the cluster so every
    :class:`RpcLock` shares it."""

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.transport = RpcTransport(cluster.env, cluster.network)
        # lock_id -> holder gid (0 = free); lock_id -> FIFO of waiting requests
        self._holders: dict[int, int] = {}
        self._waiters: dict[int, deque] = {}
        self._next_lock_id = 0
        self.grants = 0
        self.deferred_grants = 0
        for node in range(cluster.n_nodes):
            cluster.env.process(
                self.transport.serve(node, self._make_handler(node)),
                name=f"rpc-lock-server-{node}")

    @classmethod
    def shared(cls, cluster: "Cluster") -> "RpcLockService":
        service = getattr(cluster, "_rpc_lock_service", None)
        if service is None:
            service = cls(cluster)
            cluster._rpc_lock_service = service
        return service

    def new_lock_id(self) -> int:
        lock_id = self._next_lock_id
        self._next_lock_id += 1
        self._holders[lock_id] = 0
        self._waiters[lock_id] = deque()
        return lock_id

    def _make_handler(self, node: int):
        def handler(request: RpcRequest):
            op, lock_id, gid = request.payload
            if op == "lock":
                if self._holders[lock_id] == 0:
                    self._holders[lock_id] = gid
                    self.grants += 1
                    return "granted", False
                self._waiters[lock_id].append((request, gid))
                return None, True  # deferred until the unlock arrives
            if op == "unlock":
                if self._holders[lock_id] != gid:
                    return "not-holder", False
                waiters = self._waiters[lock_id]
                if waiters:
                    next_request, next_gid = waiters.popleft()
                    self._holders[lock_id] = next_gid
                    self.grants += 1
                    self.deferred_grants += 1
                    self.transport.reply(node, next_request, "granted")
                else:
                    self._holders[lock_id] = 0
                return "released", False
            return "bad-op", False  # pragma: no cover - defensive

        return handler


class RpcLock(DistributedLock):
    """Client-side handle for one lock managed by the RPC service."""

    kind = "rpc"

    def __init__(self, cluster: "Cluster", home_node: int, name: str = ""):
        super().__init__(cluster, home_node, name)
        self.service = RpcLockService.shared(cluster)
        self.lock_id = self.service.new_lock_id()

    @observed_acquire
    def lock(self, ctx: "ThreadContext"):
        reply = yield from self.service.transport.call(
            ctx.node_id, ctx.thread_id, self.home_node,
            ("lock", self.lock_id, ctx.gid))
        if reply != "granted":  # pragma: no cover - defensive
            raise ProtocolError(f"{self.name}: unexpected reply {reply!r}")
        self._note_acquired(ctx)
        ctx.trace("cs.enter", f"{self.name} (rpc)")

    @observed_release
    def unlock(self, ctx: "ThreadContext"):
        if self.holder_gid != ctx.gid:
            raise ProtocolError(f"{ctx.actor} unlocking {self.name} without holding it")
        self._note_released(ctx)
        ctx.trace("cs.exit", self.name)
        reply = yield from self.service.transport.call(
            ctx.node_id, ctx.thread_id, self.home_node,
            ("unlock", self.lock_id, ctx.gid))
        if reply != "released":  # pragma: no cover - defensive
            raise ProtocolError(f"{self.name}: unexpected reply {reply!r}")


def _make_rpc(cluster, home_node, **options):
    return RpcLock(cluster, home_node, **options)


register_lock_type("rpc", _make_rpc)
