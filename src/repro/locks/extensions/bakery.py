"""Lamport's bakery algorithm, ported to RDMA (paper §7).

Like the filter lock, the bakery needs only plain reads and writes, and
the paper notes it "demonstrates the same undesirable behavior" for
remote threads: taking a ticket reads every slot (``n`` remote reads),
and the wait loop re-reads every other thread's ``choosing`` flag and
ticket — remote spinning with O(n) traffic per check.

Its one advantage over the filter lock — first-come-first-served
fairness by ticket order — is preserved and tested.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import ConfigError, ProtocolError
from repro.locks.base import (
    DistributedLock,
    observed_acquire,
    observed_release,
    register_lock_type,
)
from repro.memory.pointer import CACHE_LINE

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster, ThreadContext


class BakeryLock(DistributedLock):
    """One bakery lock with a fixed slot capacity."""

    kind = "bakery"

    def __init__(self, cluster: "Cluster", home_node: int, name: str = "",
                 max_slots: int = 8):
        super().__init__(cluster, home_node, name)
        if max_slots < 2:
            raise ConfigError("bakery lock needs max_slots >= 2")
        self.max_slots = max_slots
        region = cluster.regions[home_node]
        self._choosing_ptrs = [region.alloc_ptr(CACHE_LINE) for _ in range(max_slots)]
        self._number_ptrs = [region.alloc_ptr(CACHE_LINE) for _ in range(max_slots)]
        self._slots: dict[int, int] = {}
        # statistics
        self.spin_reads = 0
        self.tickets_issued = 0

    def _slot_of(self, ctx: "ThreadContext") -> int:
        slot = self._slots.get(ctx.gid)
        if slot is None:
            if len(self._slots) >= self.max_slots:
                raise ConfigError(
                    f"{self.name}: more than max_slots={self.max_slots} "
                    f"distinct threads used this bakery lock")
            slot = len(self._slots)
            self._slots[ctx.gid] = slot
        return slot

    @observed_acquire
    def lock(self, ctx: "ThreadContext"):
        me = self._slot_of(ctx)
        n = self.max_slots
        # doorway: take a ticket greater than every ticket seen
        yield from ctx.r_write(self._choosing_ptrs[me], 1)
        highest = 0
        for k in range(n):
            ticket = yield from ctx.r_read(self._number_ptrs[k])
            highest = max(highest, ticket)
        my_ticket = highest + 1
        self.tickets_issued += 1
        yield from ctx.r_write(self._number_ptrs[me], my_ticket)
        yield from ctx.r_write(self._choosing_ptrs[me], 0)
        # wait for every earlier ticket
        for k in range(n):
            if k == me:
                continue
            while True:
                choosing = yield from ctx.r_read(self._choosing_ptrs[k])
                self.spin_reads += 1
                if not choosing:
                    break
            while True:
                ticket = yield from ctx.r_read(self._number_ptrs[k])
                self.spin_reads += 1
                if ticket == 0 or (ticket, k) > (my_ticket, me):
                    break
        yield from ctx.fence()
        self._note_acquired(ctx)
        ctx.trace("cs.enter", f"{self.name} (bakery, ticket {my_ticket})")

    @observed_release
    def unlock(self, ctx: "ThreadContext"):
        slot = self._slots.get(ctx.gid)
        if slot is None or self.holder_gid != ctx.gid:
            raise ProtocolError(f"{ctx.actor} unlocking {self.name} without holding it")
        yield from ctx.fence()
        self._note_released(ctx)
        ctx.trace("cs.exit", self.name)
        yield from ctx.r_write(self._number_ptrs[slot], 0)


def _make_bakery(cluster, home_node, **options):
    return BakeryLock(cluster, home_node, **options)


register_lock_type("bakery", _make_bakery)
