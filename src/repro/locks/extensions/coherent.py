"""The naive mixed-atomics lock — wrong on RDMA, right on CXL (§7).

``MixedAtomicLock`` is the one-word design everybody writes first: local
threads take the lock with a shared-memory CAS, remote threads with
rCAS, on the *same* word.  Table 1 forbids exactly that pair, and under
the default RDMA cost model the race auditor flags it (the
``atomicity_pitfalls`` example shows the resulting lost updates).

The paper's closing discussion (§7) notes that cache-coherent
interconnects like CXL would make local and remote atomics mutually
atomic, removing the need for ALock's machinery — at whatever
latency/coherence price the hardware exacts.  :func:`cxl_config`
models that future: the remote-RMW window collapses to zero (the
interconnect serializes it against local ops) and fabric latency drops
to load/store-ish scale.  Under that config this lock is correct, and
the ``bench_extensions`` ablation measures how close it gets to ALock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import ProtocolError
from repro.locks.base import (
    DistributedLock,
    observed_acquire,
    observed_release,
    register_lock_type,
)
from repro.locks.layout import SPINLOCK_LAYOUT
from repro.rdma.config import RdmaConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster, ThreadContext


def cxl_config() -> RdmaConfig:
    """A CXL-like coherent interconnect: atomic remote RMWs (zero
    read→write window) and sub-microsecond fabric latency.  Values follow
    published CXL.mem load latencies (~300–600 ns access)."""
    return (RdmaConfig()
            .with_nic(atomic_window_ns=0.0, loopback_turnaround_ns=0.0)
            .with_fabric(one_way_latency_ns=250.0))


class MixedAtomicLock(DistributedLock):
    """One lock word; local CAS for co-located threads, rCAS otherwise.

    CORRECTNESS CAVEAT: sound only on a coherent interconnect
    (``cxl_config``).  On the default RDMA model the Table-1 auditor
    records violations and mutual exclusion can break — which is the
    point of shipping it: the hazard is executable.
    """

    kind = "mixedcas"

    def __init__(self, cluster: "Cluster", home_node: int, name: str = ""):
        super().__init__(cluster, home_node, name)
        self.base_ptr = cluster.alloc_on(home_node, SPINLOCK_LAYOUT.size)
        self.word_ptr = SPINLOCK_LAYOUT.addr_of(self.base_ptr, "word")
        self.cas_attempts = 0
        self.overlap_oracle = 0
        self._in_cs = 0

    @observed_acquire
    def lock(self, ctx: "ThreadContext"):
        local = ctx.is_local(self.word_ptr)
        while True:
            if local:
                old = yield from ctx.cas(self.word_ptr, 0, ctx.gid)
            else:
                old = yield from ctx.r_cas(self.word_ptr, 0, ctx.gid)
            self.cas_attempts += 1
            if old == 0:
                break
        yield from ctx.fence()
        # Oracle bookkeeping WITHOUT the strict holder assertion: on a
        # non-coherent fabric this lock is *expected* to double-grant, and
        # we want to count that instead of crashing the simulation.
        self._in_cs += 1
        if self._in_cs > 1:
            self.overlap_oracle += 1
        self._holder_gid = ctx.gid
        self.acquisitions += 1
        ctx.trace("cs.enter", f"{self.name} (mixedcas)")

    @observed_release
    def unlock(self, ctx: "ThreadContext"):
        if self._in_cs <= 0:
            raise ProtocolError(f"{ctx.actor} unlocking {self.name} without holding it")
        yield from ctx.fence()
        self._in_cs -= 1
        self._holder_gid = 0
        ctx.trace("cs.exit", self.name)
        if ctx.is_local(self.word_ptr):
            yield from ctx.write(self.word_ptr, 0)
        else:
            yield from ctx.r_write(self.word_ptr, 0)


def _make_mixedcas(cluster, home_node, **options):
    return MixedAtomicLock(cluster, home_node, **options)


register_lock_type("mixedcas", _make_mixedcas)
