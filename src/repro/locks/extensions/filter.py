"""Peterson's filter lock, ported to RDMA (paper §7).

The filter lock generalizes Peterson's algorithm to ``n`` threads with
``n − 1`` levels, each holding back one thread.  It needs only plain
reads and writes — attractive for RDMA, where mixed atomics are the
problem — but the paper dismisses it for exactly the costs this
implementation makes measurable:

* a thread climbs ``n − 1`` levels *even when running alone*;
* each level's wait re-reads up to ``n − 1`` other slots plus the
  victim word — all remote spinning;
* ``n`` is the number of threads that *might* contend, so the slot
  array must be provisioned for the worst case.

Memory layout on the home node: ``level[slots]`` then
``victim[slots]`` (victim index 0 unused), each word on its own cache
line to match the metadata-padding discipline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import ConfigError, ProtocolError
from repro.locks.base import (
    DistributedLock,
    observed_acquire,
    observed_release,
    register_lock_type,
)
from repro.memory.pointer import CACHE_LINE

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster, ThreadContext


class FilterLock(DistributedLock):
    """One filter lock with a fixed slot capacity.

    Args:
        max_slots: threads that may ever use this lock (n).  Slots are
            assigned on first acquisition; exceeding the capacity raises.
    """

    kind = "filter"

    def __init__(self, cluster: "Cluster", home_node: int, name: str = "",
                 max_slots: int = 8):
        super().__init__(cluster, home_node, name)
        if max_slots < 2:
            raise ConfigError("filter lock needs max_slots >= 2")
        self.max_slots = max_slots
        region = cluster.regions[home_node]
        self._level_ptrs = [region.alloc_ptr(CACHE_LINE) for _ in range(max_slots)]
        self._victim_ptrs = [region.alloc_ptr(CACHE_LINE) for _ in range(max_slots)]
        self._slots: dict[int, int] = {}
        # statistics
        self.spin_reads = 0

    def _slot_of(self, ctx: "ThreadContext") -> int:
        slot = self._slots.get(ctx.gid)
        if slot is None:
            if len(self._slots) >= self.max_slots:
                raise ConfigError(
                    f"{self.name}: more than max_slots={self.max_slots} "
                    f"distinct threads used this filter lock")
            slot = len(self._slots)
            self._slots[ctx.gid] = slot
        return slot

    @observed_acquire
    def lock(self, ctx: "ThreadContext"):
        me = self._slot_of(ctx)
        n = self.max_slots
        for lvl in range(1, n):
            yield from ctx.r_write(self._level_ptrs[me], lvl)
            yield from ctx.r_write(self._victim_ptrs[lvl], me + 1)
            while True:
                victim = yield from ctx.r_read(self._victim_ptrs[lvl])
                self.spin_reads += 1
                if victim != me + 1:
                    break
                blocked = False
                for k in range(n):
                    if k == me:
                        continue
                    other = yield from ctx.r_read(self._level_ptrs[k])
                    self.spin_reads += 1
                    if other >= lvl:
                        blocked = True
                        break
                if not blocked:
                    break
        yield from ctx.fence()
        self._note_acquired(ctx)
        ctx.trace("cs.enter", f"{self.name} (filter, slot {me})")

    @observed_release
    def unlock(self, ctx: "ThreadContext"):
        slot = self._slots.get(ctx.gid)
        if slot is None or self.holder_gid != ctx.gid:
            raise ProtocolError(f"{ctx.actor} unlocking {self.name} without holding it")
        yield from ctx.fence()
        self._note_released(ctx)
        ctx.trace("cs.exit", self.name)
        yield from ctx.r_write(self._level_ptrs[slot], 0)


def _make_filter(cluster, home_node, **options):
    return FilterLock(cluster, home_node, **options)


register_lock_type("filter", _make_filter)
