"""Alternative designs from the paper's related-work discussion (§1, §7).

The paper motivates ALock by arguing the alternatives are inadequate;
this package implements them so the claims are *measured*, not cited:

* :class:`FilterLock` — Peterson's filter lock over RDMA (§7): correct
  with plain reads/writes only (no atomics needed), but needs n−1
  levels, remote spinning, and a number of remote operations
  proportional to the number of threads that *might* contend.
* :class:`BakeryLock` — Lamport's bakery over RDMA (§7): "demonstrates
  the same undesirable behavior".
* :class:`RpcLock` — the send/receive design of §1: every lock/unlock
  is an RPC to the lock's home-node server; trivially correct, but all
  ops pay two message traversals and serialize on the server CPU.
* :class:`MixedAtomicLock` — the naive one-word local-CAS + rCAS lock.
  Incorrect on RDMA (Table 1) but *correct and fast* on a cache-coherent
  interconnect — the CXL future the paper's §7 closes with; pair it
  with :func:`repro.rdma.config.cxl_config`.
"""

from repro.locks.extensions.filter import FilterLock
from repro.locks.extensions.bakery import BakeryLock
from repro.locks.extensions.rpc_lock import RpcLock, RpcLockService
from repro.locks.extensions.coherent import MixedAtomicLock

__all__ = ["FilterLock", "BakeryLock", "RpcLock", "RpcLockService",
           "MixedAtomicLock"]
